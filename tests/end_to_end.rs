//! Cross-crate integration: full transfers through the simulator with
//! every layer engaged (netsim, transports, middleware, workloads).

use iq_echo::{AdaptiveSourceAgent, EchoSinkAgent, MarkingAdapter, Policy, SourceConfig};
use iq_netsim::{build_dumbbell, time, Addr, DumbbellSpec, FlowId, LinkSpec, Simulator};
use iq_rudp::{BulkSenderAgent, RudpConfig, RudpSinkAgent, SenderConn};
use iq_tcp::{TcpBulkSenderAgent, TcpConfig, TcpSenderConn, TcpSinkAgent};
use iq_workload::{CbrSource, UdpSink};

/// RUDP delivers a full transfer across the dumbbell while an iperf-like
/// flow congests the bottleneck.
#[test]
fn rudp_transfer_completes_under_cross_traffic() {
    let mut sim = Simulator::new(1);
    let db = build_dumbbell(&mut sim, &DumbbellSpec::paper_default(2));
    sim.add_agent(
        db.left_hosts[1],
        9,
        Box::new(CbrSource::new(
            Addr::new(db.right_hosts[1], 9),
            FlowId(9),
            17.5e6,
            972,
        )),
    );
    let cross_rx = sim.add_agent(db.right_hosts[1], 9, Box::new(UdpSink::new()));

    let cfg = RudpConfig::default();
    sim.add_agent(
        db.left_hosts[0],
        1,
        Box::new(BulkSenderAgent::new(
            SenderConn::new(1, cfg.clone()),
            Addr::new(db.right_hosts[0], 1),
            FlowId(1),
            500,
            1400,
        )),
    );
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(RudpSinkAgent::new(1, cfg, FlowId(1))),
    );
    sim.run_until(time::secs(60.0));

    let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
    assert!(sink.is_finished(), "transfer did not complete");
    assert_eq!(sink.metrics.messages(), 500);
    // The cross traffic also flowed.
    assert!(sim.agent::<UdpSink>(cross_rx).unwrap().received > 1000);
    // The bottleneck actually dropped something (congestion was real).
    assert!(sim.link_stats(db.bottleneck).dropped_packets > 0);
}

/// TCP and RUDP complete the same job over the same network; both
/// deliver everything, reliably, in order.
#[test]
fn both_transports_deliver_identical_payloads() {
    for transport in ["tcp", "rudp"] {
        let mut sim = Simulator::new(5);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(
            a,
            b,
            LinkSpec::new(10e6, time::millis(10), 64_000).with_random_loss(0.02),
        );
        match transport {
            "tcp" => {
                let cfg = TcpConfig::default();
                sim.add_agent(
                    a,
                    1,
                    Box::new(TcpBulkSenderAgent::new(
                        TcpSenderConn::new(1, cfg.clone()),
                        Addr::new(b, 1),
                        FlowId(1),
                        200,
                        1000,
                    )),
                );
                let rx = sim.add_agent(
                    b,
                    1,
                    Box::new(TcpSinkAgent::new(1, cfg, FlowId(1)).keep_messages()),
                );
                sim.run_until(time::secs(120.0));
                let sink = sim.agent::<TcpSinkAgent>(rx).unwrap();
                assert!(sink.is_finished(), "tcp did not finish");
                assert_eq!(sink.messages.len(), 200);
                // In-order, no duplicates, no gaps.
                for (i, m) in sink.messages.iter().enumerate() {
                    assert_eq!(m.msg_id, i as u64);
                    assert_eq!(m.size, 1000);
                }
            }
            _ => {
                let cfg = RudpConfig::default();
                sim.add_agent(
                    a,
                    1,
                    Box::new(BulkSenderAgent::new(
                        SenderConn::new(1, cfg.clone()),
                        Addr::new(b, 1),
                        FlowId(1),
                        200,
                        1000,
                    )),
                );
                let rx = sim.add_agent(
                    b,
                    1,
                    Box::new(RudpSinkAgent::new(1, cfg, FlowId(1)).keep_messages()),
                );
                sim.run_until(time::secs(120.0));
                let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
                assert!(sink.is_finished(), "rudp did not finish");
                assert_eq!(sink.messages.len(), 200);
                for (i, m) in sink.messages.iter().enumerate() {
                    assert_eq!(m.msg_id, i as u64);
                    assert_eq!(m.size, 1000);
                    assert!(m.marked);
                }
            }
        }
    }
}

/// With marking + receiver tolerance, everything *tagged* arrives even
/// when raw data is dropped or abandoned; losses stay within tolerance.
#[test]
fn tagged_data_survives_reliability_adaptation() {
    let mut sim = Simulator::new(13);
    let a = sim.add_node();
    let b = sim.add_node();
    // Lossy link to force abandonment decisions.
    sim.add_duplex_link(
        a,
        b,
        LinkSpec::new(6e6, time::millis(10), 32_000).with_random_loss(0.05),
    );
    let mut cfg = SourceConfig::new(3, vec![1400; 600]);
    cfg.rudp.loss_tolerance = 0.30;
    cfg.datagram_mode = true;
    let sink_cfg = cfg.rudp.clone();
    // Pre-unmarked policy: heavy unmarking from the start.
    let adapter = MarkingAdapter {
        unmark_prob: 0.6,
        ..MarkingAdapter::default()
    };
    let src = AdaptiveSourceAgent::new(
        cfg,
        Policy::Marking(adapter),
        Addr::new(b, 1),
        FlowId(1),
    );
    let tx = sim.add_agent(a, 1, Box::new(src));
    let rx = sim.add_agent(
        b,
        1,
        Box::new(EchoSinkAgent::new(3, sink_cfg, FlowId(1)).keep_messages()),
    );
    sim.run_until(time::secs(120.0));

    let src = sim.agent::<AdaptiveSourceAgent>(tx).unwrap();
    let sink = sim.agent::<EchoSinkAgent>(rx).unwrap();
    assert!(sink.is_finished(), "did not finish");
    // Every tagged (control) datagram was delivered: the source tags
    // every 5th datagram and the tolerance only covers unmarked ones.
    let tagged_delivered = sink.messages.iter().filter(|m| m.marked).count() as u64;
    let tagged_offered = src.offered_msgs.div_ceil(5);
    assert!(
        tagged_delivered >= tagged_offered,
        "tagged loss: {tagged_delivered} < {tagged_offered}"
    );
    // Undelivered fraction stays within the receiver's tolerance (with
    // margin for rounding).
    let undelivered = src.offered_msgs - sink.metrics.messages();
    assert!(
        (undelivered as f64) <= 0.30 * src.offered_msgs as f64 + 1.0,
        "tolerance exceeded: {undelivered} of {}",
        src.offered_msgs
    );
}

/// The whole stack is deterministic: same seed, same world, same run.
#[test]
fn full_stack_runs_are_reproducible() {
    let run = || {
        let mut sim = Simulator::new(77);
        let db = build_dumbbell(&mut sim, &DumbbellSpec::paper_default(2));
        sim.add_agent(
            db.left_hosts[1],
            9,
            Box::new(CbrSource::new(
                Addr::new(db.right_hosts[1], 9),
                FlowId(9),
                15e6,
                972,
            )),
        );
        sim.add_agent(db.right_hosts[1], 9, Box::new(UdpSink::new()));
        let mut cfg = SourceConfig::new(1, vec![1400; 300]);
        cfg.rudp.upper_threshold = Some(0.1);
        cfg.rudp.lower_threshold = Some(0.01);
        cfg.datagram_mode = true;
        let sink_cfg = cfg.rudp.clone();
        let src = AdaptiveSourceAgent::new(
            cfg,
            Policy::Marking(MarkingAdapter::default()),
            Addr::new(db.right_hosts[0], 1),
            FlowId(1),
        );
        sim.add_agent(db.left_hosts[0], 1, Box::new(src));
        let rx = sim.add_agent(
            db.right_hosts[0],
            1,
            Box::new(EchoSinkAgent::new(1, sink_cfg, FlowId(1))),
        );
        sim.run_until(time::secs(60.0));
        let sink = sim.agent::<EchoSinkAgent>(rx).unwrap();
        (
            sink.metrics.messages(),
            sink.metrics.bytes(),
            sink.metrics.duration_s(),
            sim.counters().events_processed,
        )
    };
    assert_eq!(run(), run());
}

/// Flow control holds: a tiny receive buffer never overflows even with
/// an aggressive sender.
#[test]
fn receiver_window_prevents_buffer_overrun() {
    let mut sim = Simulator::new(3);
    let a = sim.add_node();
    let b = sim.add_node();
    // Reordering via jitter creates out-of-order arrivals that must be
    // buffered.
    sim.add_duplex_link(
        a,
        b,
        LinkSpec::new(20e6, time::millis(5), 256_000).with_jitter(time::millis(4)),
    );
    let cfg = RudpConfig {
        recv_buffer_segments: 16,
        ..RudpConfig::default()
    };
    sim.add_agent(
        a,
        1,
        Box::new(BulkSenderAgent::new(
            SenderConn::new(1, cfg.clone()),
            Addr::new(b, 1),
            FlowId(1),
            400,
            1400,
        )),
    );
    let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(1, cfg, FlowId(1))));
    sim.run_until(time::secs(60.0));
    let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
    assert!(sink.is_finished());
    assert_eq!(sink.metrics.messages(), 400);
}

/// Channel fan-out + IQ-FTP exercise the full public API surface of the
/// extension crates in one simulation.
#[test]
fn extensions_compose_in_one_simulation() {
    use iq_echo::{ChannelSourceAgent, Subscription};
    use iq_ftp::{FileSpec, FtpConfig, FtpReceiverAgent, FtpSenderAgent};

    let mut sim = Simulator::new(41);
    let hub = sim.add_node();
    let sub1 = sim.add_node();
    let sub2 = sim.add_node();
    let ftp_dst = sim.add_node();
    for n in [sub1, sub2, ftp_dst] {
        sim.add_duplex_link(hub, n, LinkSpec::new(10e6, time::millis(5), 64_000));
    }
    // An event channel with two subscribers...
    let subs = vec![
        Subscription::new(1, Addr::new(sub1, 1), FlowId(1)),
        Subscription::new(2, Addr::new(sub2, 1), FlowId(2)),
    ];
    sim.add_agent(
        hub,
        1,
        Box::new(ChannelSourceAgent::new(vec![1000; 50], 50.0, subs)),
    );
    let rx1 = sim.add_agent(
        sub1,
        1,
        Box::new(EchoSinkAgent::new(1, RudpConfig::default(), FlowId(1))),
    );
    let rx2 = sim.add_agent(
        sub2,
        1,
        Box::new(EchoSinkAgent::new(2, RudpConfig::default(), FlowId(2))),
    );
    // ...and an IQ-FTP transfer sharing the hub.
    let file = FileSpec::with_center_focus(100, 1400);
    let cfg = FtpConfig::new(3);
    let rudp = cfg.rudp.clone();
    let ftx = sim.add_agent(
        hub,
        2,
        Box::new(FtpSenderAgent::new(
            cfg,
            &file,
            Addr::new(ftp_dst, 1),
            FlowId(3),
        )),
    );
    let frx = sim.add_agent(ftp_dst, 1, Box::new(FtpReceiverAgent::new(3, rudp, FlowId(3))));
    sim.run_until(time::secs(60.0));

    assert_eq!(sim.agent::<EchoSinkAgent>(rx1).unwrap().metrics.messages(), 50);
    assert_eq!(sim.agent::<EchoSinkAgent>(rx2).unwrap().metrics.messages(), 50);
    let sender = sim.agent::<FtpSenderAgent>(ftx).unwrap();
    let receiver = sim.agent::<FtpReceiverAgent>(frx).unwrap();
    let (got, total) = iq_ftp::completeness_at(sender, receiver, 0.0);
    assert_eq!(got, total);
    // Per-flow ground truth saw all three flows.
    for f in [1, 2, 3] {
        assert!(sim.flow_stats(FlowId(f)).sent_packets > 0, "flow {f} silent");
    }
}
