//! Integration tests for the coordination schemes themselves: scaled-
//! down versions of the paper's experiments asserting the *directional*
//! outcomes that define each scheme.

use iq_experiments::tables::{
    table3_scenarios, table8_scenarios, Size,
};
use iq_experiments::{run_scenario, PolicySpec, Scenario, Scheme};

/// §3.3 conflict: coordinated discard means fewer messages delivered
/// (within tolerance) but no slower completion than uncoordinated RUDP.
#[test]
fn conflict_coordination_trades_messages_for_time() {
    let scenarios = table3_scenarios(Size::SMOKE);
    let iq = run_scenario(&scenarios[0]);
    let rudp = run_scenario(&scenarios[1]);
    assert!(iq.finished && rudp.finished);
    // The coordinated run discards unmarked datagrams...
    assert!(
        iq.msgs_delivered < rudp.msgs_delivered,
        "iq {} !< rudp {}",
        iq.msgs_delivered,
        rudp.msgs_delivered
    );
    // ...but never below the receiver's tolerance floor.
    assert!(iq.delivered_pct >= 100.0 * (1.0 - 0.40) - 1.0);
    // And it finishes no later.
    assert!(iq.duration_s <= rudp.duration_s * 1.05);
    // Only the coordinated sender discarded at the API.
    assert!(iq.sender_stats.unwrap().msgs_discarded > 0);
    assert_eq!(rudp.sender_stats.unwrap().msgs_discarded, 0);
}

/// §3.4 over-reaction: the coordinated scheme re-inflates the window
/// after reported downsampling; the uncoordinated one never rescales.
#[test]
fn overreaction_coordination_rescales_window() {
    let mut sc = Scenario::new(
        Scheme::Coordinated,
        PolicySpec::Resolution,
        vec![1400; 400],
    );
    sc.datagram_mode = true;
    sc.thresholds = (Some(0.05), Some(0.005));
    sc.cross.cbr_bps = Some(18e6);
    sc.deadline_s = 180.0;
    let iq = run_scenario(&sc);
    sc.scheme = Scheme::Uncoordinated;
    let rudp = run_scenario(&sc);

    assert!(iq.finished && rudp.finished);
    let iq_log = iq.coordination.unwrap();
    let rudp_log = rudp.coordination.unwrap();
    assert!(iq_log.window_rescales > 0, "no coordination happened");
    assert_eq!(rudp_log.window_rescales, 0);
    // Adaptation actually engaged in both runs.
    assert!(iq.callbacks.0 > 0 && rudp.callbacks.0 > 0);
}

/// §3.5 obsolete information: with ADAPT_COND the transport corrects
/// deferred adaptations; the ordering of the three schemes holds.
#[test]
fn granularity_cond_correction_orders_schemes() {
    let scenarios = table8_scenarios(Size::SMOKE);
    let cond = run_scenario(&scenarios[0]);
    let nocond = run_scenario(&scenarios[1]);
    let rudp = run_scenario(&scenarios[2]);
    assert!(cond.finished && nocond.finished && rudp.finished);
    // Eq. (1) was actually used, and only in the COND scheme.
    assert!(cond.coordination.unwrap().cond_corrections > 0);
    assert_eq!(nocond.coordination.unwrap().cond_corrections, 0);
    assert_eq!(rudp.coordination.unwrap().window_rescales, 0);
    // The paper's ordering: COND does at least as well as the others.
    assert!(
        cond.throughput_kbps >= nocond.throughput_kbps * 0.98,
        "cond {} < nocond {}",
        cond.throughput_kbps,
        nocond.throughput_kbps
    );
    assert!(
        cond.throughput_kbps >= rudp.throughput_kbps * 0.98,
        "cond {} < rudp {}",
        cond.throughput_kbps,
        rudp.throughput_kbps
    );
}

/// §3.4 on the telemetry bus: every `window_reinflate` record follows
/// the down-sample that caused it within one smoothed RTT — the
/// coordination is synchronous with the application's report, not a
/// delayed side effect.
#[test]
fn reinflation_follows_downsample_within_one_rtt_on_the_bus() {
    use iq_telemetry::{parse_jsonl, TelemetryEvent};
    iq_experiments::set_telemetry_capture(true);
    let mut sc = Scenario::new(
        Scheme::Coordinated,
        PolicySpec::Resolution,
        vec![1400; 400],
    );
    sc.datagram_mode = true;
    sc.thresholds = (Some(0.05), Some(0.005));
    sc.cross.cbr_bps = Some(18e6);
    sc.deadline_s = 180.0;
    let r = run_scenario(&sc);
    iq_experiments::set_telemetry_capture(false);
    assert!(r.finished);
    assert!(r.coordination.unwrap().window_rescales > 0, "no coordination happened");

    let records = parse_jsonl(&r.telemetry).expect("captured telemetry parses");
    let mut last_downsample: Option<u64> = None;
    let mut reinflations = 0u64;
    for rec in records.iter().filter(|rec| rec.flow == 1) {
        match &rec.event {
            TelemetryEvent::AdaptPktSize { .. } => last_downsample = Some(rec.at),
            TelemetryEvent::WindowReinflate { srtt_ms, factor, .. } => {
                let t = last_downsample
                    .expect("window re-inflation without a preceding down-sample report");
                let rtt_ns = (srtt_ms * 1e6) as u64;
                assert!(
                    rec.at.saturating_sub(t) <= rtt_ns,
                    "re-inflation at {} lags its down-sample at {t} by more than \
                     one RTT ({rtt_ns} ns)",
                    rec.at
                );
                assert!(*factor > 1.0, "re-inflation factor must exceed 1");
                reinflations += 1;
            }
            _ => {}
        }
    }
    assert!(reinflations > 0, "bus carried no window_reinflate records");
}

/// The cc-disabled scheme ("app adaptation only") really runs with a
/// pinned window.
#[test]
fn app_adaptation_only_disables_congestion_control() {
    let mut sc = Scenario::new(
        Scheme::AppAdaptOnly,
        PolicySpec::Resolution,
        vec![1400; 150],
    );
    sc.datagram_mode = true;
    sc.thresholds = (Some(0.05), Some(0.005));
    sc.fixed_cwnd = 24.0;
    sc.cross.cbr_bps = Some(17e6);
    sc.deadline_s = 180.0;
    let r = run_scenario(&sc);
    assert!(r.finished);
    // The application adapted (it is the only control loop left).
    assert!(r.callbacks.0 > 0, "app never adapted");
}

/// TCP rows run through the same harness and produce sane metrics.
#[test]
fn tcp_scheme_flows_through_harness() {
    let mut sc = Scenario::new(Scheme::Tcp, PolicySpec::None, vec![5000; 100]);
    sc.cross.cbr_bps = Some(10e6);
    sc.deadline_s = 120.0;
    let r = run_scenario(&sc);
    assert!(r.finished);
    assert!(r.throughput_kbps > 0.0);
    assert!(r.msgs_delivered > 0);
    assert!(r.coordination.is_none());
}

/// Scheme labels match the paper's row names.
#[test]
fn scheme_labels() {
    assert_eq!(Scheme::Tcp.label(), "TCP");
    assert_eq!(Scheme::Uncoordinated.label(), "RUDP");
    assert_eq!(Scheme::Coordinated.label(), "IQ-RUDP");
    assert_eq!(
        Scheme::CoordinatedWithCond.label(),
        "IQ-RUDP w/ ADAPT_COND"
    );
}
