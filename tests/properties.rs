//! Property-based tests (proptest) for the core invariants of the
//! reproduction: protocol reliability under arbitrary loss, conservation
//! laws in the simulator, statistics correctness, and attribute/window
//! math.

use proptest::prelude::*;

use iq_attrs::{AttrList, AttrValue};
use iq_core::{cond_window_factor, resolution_window_factor};
use iq_metrics::Welford;
use iq_netsim::time::millis;
use iq_rudp::{ReceiverConn, RudpConfig, Segment, SenderConn};
use iq_trace::{MembershipConfig, MembershipTrace};

/// Drives a sender/receiver pair over an in-memory "wire" where the
/// given boolean pattern decides whether each transmission survives.
/// Returns (delivered message ids, sender stats, receiver stats).
fn run_lossy_pipe(
    messages: &[(u32, bool)],
    drops: &[bool],
    tolerance: f64,
) -> (Vec<(u64, bool)>, iq_rudp::SenderStats, iq_rudp::ReceiverStats) {
    let cfg = RudpConfig {
        loss_tolerance: tolerance,
        ..RudpConfig::default()
    };
    let mut tx = SenderConn::new(1, cfg.clone());
    let mut rx = ReceiverConn::new(1, cfg);
    let mut now: u64 = 0;
    let mut drop_iter = drops.iter().cycle();
    for &(size, marked) in messages {
        tx.send_message(now, size.max(1), marked);
    }
    tx.finish();

    let mut delivered = Vec::new();
    // Generous upper bound on exchanges; the protocol must terminate
    // well before this.
    for _ in 0..200_000 {
        if tx.is_closed() {
            break;
        }
        let mut progressed = false;
        while let Some(seg) = tx.poll_transmit(now) {
            progressed = true;
            // Data may be dropped by the pattern; control segments too.
            let dropped = *drop_iter.next().unwrap();
            if !dropped {
                rx.on_segment(now + millis(10), &seg);
            }
        }
        while let Some(seg) = rx.poll_transmit(now + millis(10)) {
            progressed = true;
            let dropped = matches!(seg, Segment::Ack(_)) && *drop_iter.next().unwrap();
            if !dropped {
                tx.on_segment(now + millis(20), &seg);
            }
        }
        for m in rx.take_messages() {
            delivered.push((m.msg_id, m.marked));
        }
        now += millis(25);
        tx.on_tick(now);
        if !progressed {
            // Idle: jump to the next timeout.
            if let Some(t) = tx.next_timeout(now) {
                now = now.max(t) + 1;
                tx.on_tick(now);
            }
        }
    }
    for m in rx.take_messages() {
        delivered.push((m.msg_id, m.marked));
    }
    (delivered, tx.stats(), rx.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every marked message is delivered exactly once, in order, for any
    /// loss pattern; unmarked losses never exceed the tolerance.
    #[test]
    fn rudp_delivers_marked_messages_under_any_loss(
        messages in prop::collection::vec((1u32..4000, any::<bool>()), 1..40),
        drops in prop::collection::vec(prop::bool::weighted(0.25), 16..128),
        tolerance in 0.0f64..0.6,
    ) {
        let (delivered, _txs, _rxs) = run_lossy_pipe(&messages, &drops, tolerance);
        // Marked messages: all delivered.
        let marked_sent: Vec<u64> = messages
            .iter()
            .enumerate()
            .filter(|(_, &(_, m))| m)
            .map(|(i, _)| i as u64)
            .collect();
        let marked_got: Vec<u64> = delivered
            .iter()
            .filter(|&&(_, m)| m)
            .map(|&(id, _)| id)
            .collect();
        prop_assert_eq!(&marked_got, &marked_sent, "marked messages lost or reordered");
        // All deliveries strictly increasing (in-order, no duplicates).
        prop_assert!(delivered.windows(2).all(|w| w[0].0 < w[1].0));
        // Tolerance is enforced at segment granularity: abandonments
        // never exceed the tolerated share of completed segments.
        let completed = _txs.segments_acked + _txs.segments_abandoned;
        if completed > 0 {
            let share = _txs.segments_abandoned as f64 / completed as f64;
            prop_assert!(
                share <= tolerance + 2.0 / completed as f64,
                "abandoned share {} > tolerance {}", share, tolerance
            );
        }
        // A message only goes missing if at least one of its fragments
        // was abandoned.
        let undelivered = (messages.len() - delivered.len()) as u64;
        prop_assert!(
            undelivered <= _txs.segments_abandoned,
            "{} missing messages but only {} abandoned segments",
            undelivered, _txs.segments_abandoned
        );
    }

    /// With zero tolerance, everything is delivered regardless of marks.
    #[test]
    fn rudp_zero_tolerance_is_fully_reliable(
        messages in prop::collection::vec((1u32..3000, any::<bool>()), 1..30),
        drops in prop::collection::vec(prop::bool::weighted(0.3), 16..128),
    ) {
        let (delivered, _txs, _rxs) = run_lossy_pipe(&messages, &drops, 0.0);
        prop_assert_eq!(delivered.len(), messages.len());
        prop_assert!(delivered.windows(2).all(|w| w[0].0 + 1 == w[1].0));
    }

    /// Welford statistics match the naive two-pass formulas.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
    }

    /// Welford merge is equivalent to pushing everything sequentially.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 0..80),
        ys in prop::collection::vec(-1e3f64..1e3, 0..80),
    ) {
        let mut a = Welford::new();
        for &x in &xs { a.push(x); }
        let mut b = Welford::new();
        for &y in &ys { b.push(y); }
        a.merge(&b);
        let mut all = Welford::new();
        for &v in xs.iter().chain(&ys) { all.push(v); }
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-9 * all.mean().abs().max(1.0));
        prop_assert!((a.variance() - all.variance()).abs() < 1e-6 * all.variance().max(1.0));
    }

    /// AttrList behaves like a map with last-write-wins semantics.
    #[test]
    fn attrlist_is_a_last_write_wins_map(
        ops in prop::collection::vec((0u8..6, -100i64..100), 1..60),
    ) {
        use std::collections::HashMap;
        let keys = ["a", "b", "c", "d", "e", "f"];
        let mut list = AttrList::new();
        let mut model: HashMap<&str, i64> = HashMap::new();
        for (k, v) in ops {
            let key = keys[k as usize];
            list.set(key, v);
            model.insert(key, v);
        }
        prop_assert_eq!(list.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(list.get_int(k), Some(*v));
        }
    }

    /// Attribute values round-trip through float/int views coherently.
    #[test]
    fn attr_value_views(v in -1e9f64..1e9) {
        let a = AttrValue::Float(v);
        prop_assert_eq!(a.as_float(), Some(v));
        let i = AttrValue::Int(v as i64);
        prop_assert_eq!(i.as_float(), Some((v as i64) as f64));
    }

    /// Membership traces always respect their configured bounds and
    /// length, whatever the knobs.
    #[test]
    fn membership_trace_bounds(
        seed in any::<u64>(),
        len in 1usize..600,
        base in 1.0f64..30.0,
        burst in 0.0f64..20.0,
        min in 1u32..5,
        spread in 0u32..40,
    ) {
        let cfg = MembershipConfig {
            seed,
            len,
            base,
            burst_scale: burst,
            min,
            max: min + spread,
            ..MembershipConfig::default()
        };
        let t = MembershipTrace::generate(&cfg);
        prop_assert_eq!(t.len(), len);
        prop_assert!(t.samples.iter().all(|&g| g >= min && g <= min + spread));
        // Determinism.
        prop_assert_eq!(t, MembershipTrace::generate(&cfg));
    }

    /// The §3.4 window factor is the exact bit-rate compensation: the
    /// shrunken frames times the inflated window restore the original
    /// bit volume per window.
    #[test]
    fn resolution_factor_restores_bit_rate(rate_chg in 0.0f64..0.9) {
        let factor = resolution_window_factor(rate_chg);
        let restored = (1.0 - rate_chg) * factor;
        prop_assert!((restored - 1.0).abs() < 1e-9);
    }

    /// Eq. (1) is monotone in the network drift: more congestion now
    /// than at decision time means a smaller window factor.
    #[test]
    fn cond_factor_monotone_in_drift(
        rate_chg in 0.0f64..0.8,
        then in 0.0f64..0.8,
        d in 0.01f64..0.2,
    ) {
        let worse = cond_window_factor(rate_chg, then, (then + d).min(0.95));
        let same = cond_window_factor(rate_chg, then, then);
        let better = cond_window_factor(rate_chg, then, (then - d).max(0.0));
        prop_assert!(worse <= same + 1e-12);
        prop_assert!(better >= same - 1e-12);
    }
}

/// Conservation and TCP-order properties over the simulator itself.
mod sim_properties {
    use super::*;
    use iq_netsim::{payload, Agent, Ctx, LinkSpec, Packet, Simulator};
    use iq_tcp::{TcpConfig, TcpReceiverConn, TcpSegment, TcpSenderConn};

    struct Pusher {
        dst: iq_netsim::Addr,
        n: u32,
        size: u32,
        gap_us: u64,
        sent: u32,
    }
    impl Agent for Pusher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(0, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent < self.n {
                ctx.send(self.dst, self.size, iq_netsim::FlowId(1), payload(self.sent));
                self.sent += 1;
                ctx.set_timer(iq_netsim::time::micros(self.gap_us), 0);
            }
        }
    }

    #[derive(Default)]
    struct Counter(u64);
    impl Agent for Counter {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.0 += 1;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Packet conservation on a single link: enqueued = delivered +
        /// drop-tail drops + random losses, for arbitrary link shapes
        /// and offered loads.
        #[test]
        fn link_conserves_packets(
            rate_mbps in 1.0f64..100.0,
            delay_ms in 1u64..50,
            queue_kb in 2u32..128,
            loss in 0.0f64..0.3,
            n in 1u32..400,
            size in 100u32..1500,
            gap_us in 10u64..2000,
            seed in any::<u64>(),
        ) {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node();
            let b = sim.add_node();
            let (fwd, _back) = sim.add_duplex_link(
                a,
                b,
                LinkSpec::new(rate_mbps * 1e6, millis(delay_ms), queue_kb * 1024)
                    .with_random_loss(loss),
            );
            sim.add_agent(a, 1, Box::new(Pusher {
                dst: iq_netsim::Addr::new(b, 2),
                n,
                size,
                gap_us,
                sent: 0,
            }));
            let rx = sim.add_agent(b, 2, Box::new(Counter::default()));
            sim.run_until(iq_netsim::time::secs(600.0));
            let stats = sim.link_stats(fwd);
            let delivered = sim.agent::<Counter>(rx).unwrap().0;
            // Everything offered to the link is accounted for.
            prop_assert_eq!(
                stats.enqueued_packets + stats.dropped_packets,
                u64::from(n),
                "offered packets unaccounted"
            );
            prop_assert_eq!(
                stats.transmitted_packets,
                stats.enqueued_packets,
                "packets stuck in queue after drain"
            );
            prop_assert_eq!(
                delivered + stats.random_losses,
                stats.transmitted_packets,
                "transmitted packets unaccounted"
            );
        }

        /// TCP delivers every message exactly once, in order, for any
        /// loss pattern on the in-memory pipe.
        #[test]
        fn tcp_total_order_under_any_loss(
            sizes in prop::collection::vec(1u32..4000, 1..30),
            drops in prop::collection::vec(prop::bool::weighted(0.25), 16..128),
        ) {
            let cfg = TcpConfig::default();
            let mut tx = TcpSenderConn::new(1, cfg.clone());
            let mut rx = TcpReceiverConn::new(1, cfg);
            for &s in &sizes {
                tx.send_message(0, s);
            }
            tx.finish();
            let mut now: u64 = 0;
            let mut drop_iter = drops.iter().cycle();
            let mut got = Vec::new();
            for _ in 0..200_000 {
                if tx.is_closed() {
                    break;
                }
                let mut progressed = false;
                while let Some(seg) = tx.poll_transmit(now) {
                    progressed = true;
                    if !*drop_iter.next().unwrap() {
                        rx.on_segment(now + millis(10), &seg);
                    }
                }
                while let Some(seg) = rx.poll_transmit(now + millis(10)) {
                    progressed = true;
                    let dropped =
                        matches!(seg, TcpSegment::Ack(_)) && *drop_iter.next().unwrap();
                    if !dropped {
                        tx.on_segment(now + millis(20), &seg);
                    }
                }
                got.extend(rx.take_messages());
                now += millis(25);
                tx.on_tick(now);
                if !progressed {
                    if let Some(t) = tx.next_timeout(now) {
                        now = now.max(t) + 1;
                        tx.on_tick(now);
                    }
                }
            }
            got.extend(rx.take_messages());
            prop_assert_eq!(got.len(), sizes.len(), "message count mismatch");
            for (i, m) in got.iter().enumerate() {
                prop_assert_eq!(m.msg_id, i as u64);
                prop_assert_eq!(m.size, sizes[i]);
            }
        }
    }
}
