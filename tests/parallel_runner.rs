//! The parallel experiment runner must be invisible in the results: any
//! worker count and any submission order must reproduce the serial
//! output bit-for-bit. These tests pin that contract at the integration
//! level (the unit tests in `runner.rs` cover the executor internals).

use iq_experiments::tables::{render_table1, table1_scenarios, table3_scenarios, Size};
use iq_experiments::{run_scenario, Executor, ScenarioSpec};
use proptest::prelude::*;

/// A cheap scenario set: table 1 at minimum scale (40 frames per run).
fn small_specs() -> Vec<ScenarioSpec> {
    table1_scenarios(Size(0.02))
        .into_iter()
        .map(ScenarioSpec::from)
        .collect()
}

#[test]
fn rendered_table_is_byte_identical_across_worker_counts() {
    let serial = Executor::new(1).run(&small_specs());
    let parallel = Executor::new(4).run(&small_specs());
    let rows_serial: Vec<_> = serial.into_iter().map(|r| r.result).collect();
    let rows_parallel: Vec<_> = parallel.into_iter().map(|r| r.result).collect();
    let rendered_serial = render_table1(&rows_serial);
    let rendered_parallel = render_table1(&rows_parallel);
    assert_eq!(
        rendered_serial, rendered_parallel,
        "rendered table differs between -j 1 and -j 4"
    );
    // Not vacuous: the render carries real measurements.
    assert!(rendered_serial.lines().count() >= rows_serial.len());
}

#[test]
fn conflict_table_survives_oversubscribed_pool() {
    // More workers than scenarios: workers must drain and exit cleanly
    // and order must still match declaration order.
    let specs: Vec<ScenarioSpec> = table3_scenarios(Size(0.05))
        .into_iter()
        .map(ScenarioSpec::from)
        .collect();
    let reports = Executor::new(8).run(&specs);
    assert_eq!(reports.len(), specs.len());
    for (report, spec) in reports.iter().zip(&specs) {
        assert_eq!(report.name, spec.name);
        assert!(report.wall_s >= 0.0);
        assert!(report.events_per_sec > 0.0, "no events counted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Submitting the same scenarios in any order yields, per scenario,
    /// exactly the result of running it alone: no cross-scenario state
    /// leaks through the worker pool.
    #[test]
    fn permuted_submission_order_is_result_invariant(
        swaps in prop::collection::vec((0usize..4, 0usize..4), 0..6),
        workers in 1usize..5,
    ) {
        let mut specs = small_specs();
        // Distinct seeds so every spec has a distinguishable result.
        for (i, spec) in specs.iter_mut().enumerate() {
            spec.scenario.seed = 1000 + i as u64;
        }
        // The deterministic projection of a result: every measurement
        // plus the canonical sim-plane metric text. Engine-plane data
        // (phase profiler wall-clock, pool hit/miss that depends on how
        // warm the worker thread's pool already is) is the one part of
        // a RunResult that legitimately varies with execution context.
        fn canonical(r: &iq_experiments::scenario::RunResult) -> (String, String) {
            let mut reg = r.obs.clone();
            reg.sort();
            let mut c = r.clone();
            c.phase_profile.clear();
            c.obs = iq_obs::Registry::new();
            (format!("{c:?}"), reg.sim_text())
        }
        let baseline: Vec<(String, String)> = specs
            .iter()
            .map(|s| canonical(&run_scenario(&s.scenario)))
            .collect();

        let mut permuted = specs.clone();
        let n = permuted.len();
        for &(a, b) in &swaps {
            permuted.swap(a % n, b % n);
        }
        let reports = Executor::new(workers).run(&permuted);
        prop_assert_eq!(reports.len(), permuted.len());
        for (report, spec) in reports.iter().zip(&permuted) {
            // Reports come back in submission order...
            prop_assert_eq!(&report.name, &spec.name);
            // ...and each carries the exact solo-run result.
            let solo = specs.iter().position(|s| s.name == spec.name).unwrap();
            prop_assert_eq!(canonical(&report.result), baseline[solo].clone());
        }
    }
}
