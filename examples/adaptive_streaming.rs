//! Adaptive media streaming against over-reaction (§3.4's scenario).
//!
//! ```text
//! cargo run --release --example adaptive_streaming
//! ```
//!
//! A streaming server downsamples its media (reduces packet size) when
//! the transport reports loss above 15 %, and recovers resolution when
//! loss falls below 1 %. Without coordination, the application's
//! reduction *and* the transport's window reduction stack: the flow
//! drops below its fair share. With IQ-RUDP, the reported `ADAPT_PKTSIZE`
//! re-inflates the window by `1/(1 − rate_chg)`. The example sweeps the
//! background load and prints both schemes side by side — the
//! improvement grows with congestion (the paper's Figure 4).

use iq_core::CoordinationMode;
use iq_echo::{AdaptiveSourceAgent, EchoSinkAgent, Policy, ResolutionAdapter, SourceConfig};
use iq_netsim::{build_dumbbell, time, Addr, DumbbellSpec, FlowId, Simulator};
use iq_workload::CbrSource;

fn run(mode: CoordinationMode, cross_bps: f64) -> (f64, f64, f64) {
    let mut sim = Simulator::new(23);
    let db = build_dumbbell(&mut sim, &DumbbellSpec::paper_default(2));
    sim.add_agent(
        db.left_hosts[1],
        9,
        Box::new(CbrSource::new(
            Addr::new(db.right_hosts[1], 9),
            FlowId(99),
            cross_bps,
            972,
        )),
    );
    sim.add_agent(db.right_hosts[1], 9, Box::new(iq_workload::UdpSink::new()));

    let mut cfg = SourceConfig::new(1, vec![1400; 2500]);
    cfg.mode = mode;
    cfg.datagram_mode = true;
    cfg.rudp.upper_threshold = Some(0.15);
    cfg.rudp.lower_threshold = Some(0.01);
    let sink_cfg = cfg.rudp.clone();
    let source = AdaptiveSourceAgent::new(
        cfg,
        Policy::Resolution(ResolutionAdapter::default()),
        Addr::new(db.right_hosts[0], 1),
        FlowId(1),
    );
    sim.add_agent(db.left_hosts[0], 1, Box::new(source));
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(EchoSinkAgent::new(1, sink_cfg, FlowId(1))),
    );
    sim.run_until(time::secs(300.0));
    let sink = sim.agent::<EchoSinkAgent>(rx).expect("sink");
    (
        sink.metrics.throughput_kbps(),
        sink.metrics.duration_s(),
        sink.metrics.jitter_s() * 1e3,
    )
}

fn main() {
    println!("Adaptive streaming: coordination against over-reaction\n");
    println!(
        "{:<12}{:>14}{:>14}{:>14}{:>14}{:>16}",
        "cross (Mb)", "IQ tp(KB/s)", "RUDP tp", "IQ jit(ms)", "RUDP jit", "tp gain (%)"
    );
    for cross in [12e6, 14e6, 16e6] {
        let (iq_tp, _iq_dur, iq_jit) = run(CoordinationMode::Coordinated, cross);
        let (ru_tp, _ru_dur, ru_jit) = run(CoordinationMode::Uncoordinated, cross);
        println!(
            "{:<12}{:>14.1}{:>14.1}{:>14.2}{:>14.2}{:>16.1}",
            cross / 1e6,
            iq_tp,
            ru_tp,
            iq_jit,
            ru_jit,
            100.0 * (iq_tp / ru_tp - 1.0)
        );
    }
    println!(
        "\nEach row is one congestion level; the right column is IQ-RUDP's \
         throughput improvement\nfrom reporting its downsampling to the \
         transport (window re-inflation by 1/(1-rate_chg))."
    );
}
