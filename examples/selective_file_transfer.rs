//! IQ-FTP: selectively lossy file transfer (the paper's §4 follow-on).
//!
//! ```text
//! cargo run --release --example selective_file_transfer
//! ```
//!
//! A 7 MB "simulation output" file crosses a congested WAN. The user's
//! criticality function scores blocks by distance from the region of
//! interest. IQ-FTP streams most-critical-first with an adaptive
//! priority cutoff: under congestion, low-priority blocks become
//! droppable and coordination sheds them before they enter the network.
//! The same transfer fully reliable (tolerance 0, no cutoff) shows what
//! that selectivity buys.

use iq_core::CoordinationMode;
use iq_ftp::{completeness_at, FileSpec, FtpConfig, FtpReceiverAgent, FtpSenderAgent};
use iq_netsim::{build_dumbbell, time, Addr, DumbbellSpec, FlowId, Simulator};
use iq_workload::CbrSource;

struct Outcome {
    duration_s: f64,
    critical_pct: f64,
    overall_pct: f64,
    discarded: u64,
    cutoff_raises: u64,
}

fn run(selective: bool) -> Outcome {
    let mut sim = Simulator::new(3);
    let db = build_dumbbell(&mut sim, &DumbbellSpec::paper_default(2));
    sim.add_agent(
        db.left_hosts[1],
        9,
        Box::new(CbrSource::new(
            Addr::new(db.right_hosts[1], 9),
            FlowId(99),
            18e6, // heavy iperf background: ~2 Mb/s left for the file
            972,
        )),
    );
    sim.add_agent(db.right_hosts[1], 9, Box::new(iq_workload::UdpSink::new()));

    let file = FileSpec::with_center_focus(5000, 1400); // 7 MB
    let mut cfg = FtpConfig::new(1);
    if !selective {
        cfg.rudp.loss_tolerance = 0.0;
        cfg.max_cutoff = 0.0; // cutoff can never rise: everything marked
        cfg.mode = CoordinationMode::Uncoordinated;
    }
    let rudp = cfg.rudp.clone();
    let tx = sim.add_agent(
        db.left_hosts[0],
        1,
        Box::new(FtpSenderAgent::new(
            cfg,
            &file,
            Addr::new(db.right_hosts[0], 1),
            FlowId(1),
        )),
    );
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(FtpReceiverAgent::new(1, rudp, FlowId(1))),
    );
    sim.run_until(time::secs(600.0));

    let sender = sim.agent::<FtpSenderAgent>(tx).expect("sender");
    let receiver = sim.agent::<FtpReceiverAgent>(rx).expect("receiver");
    let (crit_got, crit_total) = completeness_at(sender, receiver, 0.8);
    let (all_got, all_total) = completeness_at(sender, receiver, 0.0);
    let report = sender.report();
    Outcome {
        duration_s: receiver.metrics().duration_s(),
        critical_pct: 100.0 * crit_got as f64 / crit_total as f64,
        overall_pct: 100.0 * all_got as f64 / all_total as f64,
        discarded: report.discarded_blocks,
        cutoff_raises: report.cutoff_raises,
    }
}

fn main() {
    println!("IQ-FTP: selectively lossy file transfer over a congested WAN\n");
    let selective = run(true);
    let reliable = run(false);
    println!("{:<28}{:>14}{:>16}", "", "IQ-FTP", "fully reliable");
    println!(
        "{:<28}{:>14.1}{:>16.1}",
        "transfer time (s)", selective.duration_s, reliable.duration_s
    );
    println!(
        "{:<28}{:>13.1}%{:>15.1}%",
        "critical blocks delivered", selective.critical_pct, reliable.critical_pct
    );
    println!(
        "{:<28}{:>13.1}%{:>15.1}%",
        "all blocks delivered", selective.overall_pct, reliable.overall_pct
    );
    println!(
        "{:<28}{:>14}{:>16}",
        "blocks shed at transport", selective.discarded, reliable.discarded
    );
    println!(
        "{:<28}{:>14}{:>16}",
        "cutoff adaptations", selective.cutoff_raises, reliable.cutoff_raises
    );
    println!(
        "\nThe selective transfer keeps 100% of the region of interest and \
         finishes {:.0}% sooner\nby letting the user's criticality function \
         decide what congestion may drop.",
        100.0 * (1.0 - selective.duration_s / reliable.duration_s.max(1e-9))
    );
}
