//! Quickstart: a coordinated IQ-RUDP transfer over a congested
//! bottleneck, in ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's dumbbell (20 Mb bottleneck, 30 ms RTT), runs one
//! adaptive application flow with the §3.4 resolution policy against
//! iperf-style cross traffic, and prints what the receiver saw and what
//! coordination did.

use iq_echo::{AdaptiveSourceAgent, EchoSinkAgent, Policy, ResolutionAdapter, SourceConfig};
use iq_netsim::{build_dumbbell, time, Addr, DumbbellSpec, FlowId, Simulator};
use iq_workload::CbrSource;

fn main() {
    // 1. A deterministic simulation and the paper's topology.
    let mut sim = Simulator::new(7);
    let db = build_dumbbell(&mut sim, &DumbbellSpec::paper_default(2));

    // 2. iperf-style UDP cross traffic congesting the bottleneck.
    sim.add_agent(
        db.left_hosts[1],
        9,
        Box::new(CbrSource::new(
            Addr::new(db.right_hosts[1], 9),
            FlowId(99),
            16e6, // 16 of the 20 Mb/s
            972,
        )),
    );
    sim.add_agent(db.right_hosts[1], 9, Box::new(iq_workload::UdpSink::new()));

    // 3. The adaptive application: 1200 frames of 1400 B, sent as fast
    //    as IQ-RUDP allows, downsampling on loss with coordinated window
    //    re-adjustment.
    let mut cfg = SourceConfig::new(1, vec![1400; 1200]);
    cfg.rudp.upper_threshold = Some(0.15);
    cfg.rudp.lower_threshold = Some(0.01);
    cfg.datagram_mode = true;
    let sink_cfg = cfg.rudp.clone();
    let source = AdaptiveSourceAgent::new(
        cfg,
        Policy::Resolution(ResolutionAdapter::default()),
        Addr::new(db.right_hosts[0], 1),
        FlowId(1),
    );
    let tx = sim.add_agent(db.left_hosts[0], 1, Box::new(source));
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(EchoSinkAgent::new(1, sink_cfg, FlowId(1))),
    );

    // 4. Run and report.
    sim.run_until(time::secs(120.0));
    let src = sim.agent::<AdaptiveSourceAgent>(tx).expect("source");
    let sink = sim.agent::<EchoSinkAgent>(rx).expect("sink");
    println!("finished:          {}", sink.is_finished());
    println!(
        "messages:          {}/{}",
        sink.metrics.messages(),
        src.offered_msgs
    );
    println!("duration:          {:.2} s", sink.metrics.duration_s());
    println!(
        "goodput:           {:.1} KB/s",
        sink.metrics.throughput_kbps()
    );
    println!(
        "inter-arrival:     {:.2} ms (jitter {:.2} ms)",
        sink.metrics.inter_arrival_s() * 1e3,
        sink.metrics.jitter_s() * 1e3
    );
    println!(
        "callbacks:         {} upper / {} lower",
        src.callbacks.0, src.callbacks.1
    );
    let log = src.coordination_log();
    println!(
        "coordination:      {} window re-adjustments (cumulative x{:.2})",
        log.window_rescales, log.cumulative_factor
    );
    let stats = src.conn().stats();
    println!(
        "transport:         {} segments, {} retransmits, {} timeouts",
        stats.segments_sent, stats.retransmits, stats.timeouts
    );
}
