//! Limited adaptation granularity and obsolete information (§3.5's
//! scenario) on a long-RTT path.
//!
//! ```text
//! cargo run --release --example deferred_adaptation
//! ```
//!
//! A rate-based bulk application on a 250 ms-RTT path can only adapt at
//! frame-group boundaries (every 20 frames). Three schemes:
//!
//! 1. **RUDP** — the callback returns void; the transport adapts alone.
//! 2. **IQ-RUDP w/o ADAPT_COND** — `ADAPT_WHEN` announces the delayed
//!    adaptation; the window is re-adjusted when it executes.
//! 3. **IQ-RUDP w/ ADAPT_COND** — the execution also carries the error
//!    ratio the decision was based on, and the transport corrects for
//!    network drift during the delay (Eq. 1).

use iq_core::CoordinationMode;
use iq_echo::{
    AdaptiveSourceAgent, DeferredResolution, EchoSinkAgent, Policy, ResolutionAdapter,
    SourceConfig,
};
use iq_netsim::{build_dumbbell, time, Addr, DumbbellSpec, FlowId, Simulator};
use iq_experiments::VbrSpec;
use iq_workload::{CbrSource, VbrSource};

fn run(mode: CoordinationMode, include_cond: bool) -> (f64, f64, f64, u64) {
    let mut sim = Simulator::new(42);
    let db = build_dumbbell(&mut sim, &DumbbellSpec::long_rtt(3));

    sim.add_agent(
        db.left_hosts[1],
        9,
        Box::new(CbrSource::new(
            Addr::new(db.right_hosts[1], 9),
            FlowId(99),
            16e6,
            972,
        )),
    );
    sim.add_agent(db.right_hosts[1], 9, Box::new(iq_workload::UdpSink::new()));
    // Fluctuating VBR cross traffic: the "changing network".
    let vbr = VbrSpec {
        fps: 500.0,
        mean_bps: 3e6,
        seed: 29,
    };
    sim.add_agent(
        db.left_hosts[2],
        10,
        Box::new(VbrSource::new(
            Addr::new(db.right_hosts[2], 10),
            FlowId(98),
            vbr.fps,
            vbr.frame_sizes(),
        )),
    );
    sim.add_agent(db.right_hosts[2], 10, Box::new(iq_workload::UdpSink::new()));

    let mut cfg = SourceConfig::new(1, vec![1400; 900]);
    cfg.mode = mode;
    cfg.fps = Some(120.0);
    cfg.datagram_mode = true;
    cfg.rudp.upper_threshold = Some(0.10);
    cfg.rudp.lower_threshold = Some(0.02);
    cfg.rudp.measure_period = time::millis(300);
    let sink_cfg = cfg.rudp.clone();
    let source = AdaptiveSourceAgent::new(
        cfg,
        Policy::Deferred(DeferredResolution::new(
            ResolutionAdapter::default(),
            20,
            include_cond,
        )),
        Addr::new(db.right_hosts[0], 1),
        FlowId(1),
    );
    let tx = sim.add_agent(db.left_hosts[0], 1, Box::new(source));
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(EchoSinkAgent::new(1, sink_cfg, FlowId(1))),
    );
    sim.run_until(time::secs(300.0));
    let src = sim.agent::<AdaptiveSourceAgent>(tx).expect("source");
    let sink = sim.agent::<EchoSinkAgent>(rx).expect("sink");
    (
        sink.metrics.throughput_kbps(),
        sink.metrics.duration_s(),
        sink.metrics.jitter_s() * 1e3,
        src.coordination_log().cond_corrections,
    )
}

fn main() {
    println!("Deferred adaptation on a 250 ms-RTT path (granularity: 20 frames)\n");
    let rows = [
        ("RUDP", CoordinationMode::Uncoordinated, false),
        ("IQ-RUDP w/o ADAPT_COND", CoordinationMode::Coordinated, false),
        (
            "IQ-RUDP w/ ADAPT_COND",
            CoordinationMode::CoordinatedWithCond,
            true,
        ),
    ];
    println!(
        "{:<26}{:>12}{:>12}{:>12}{:>18}",
        "scheme", "tp (KB/s)", "dur (s)", "jit (ms)", "Eq.1 corrections"
    );
    for (label, mode, cond) in rows {
        let (tp, dur, jit, corrections) = run(mode, cond);
        println!("{label:<26}{tp:>12.1}{dur:>12.1}{jit:>12.2}{corrections:>18}");
    }
    println!(
        "\nADAPT_COND lets the transport correct the deferred adaptation for \
         the network change\nthat happened while the application was waiting \
         for its frame boundary."
    );
}
