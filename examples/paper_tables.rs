//! Regenerates every table and figure of the IQ-RUDP paper.
//!
//! ```text
//! cargo run --release --example paper_tables            # full scale
//! cargo run --release --example paper_tables -- 0.3     # scaled down
//! cargo run --release --example paper_tables -- 1.0 t3  # one table
//! ```
//!
//! Absolute numbers differ from the paper's EMULAB testbed; the
//! comparisons (who wins, by roughly what factor) are the reproduction
//! target. See EXPERIMENTS.md for the paper-vs-measured record.

use iq_experiments::figures::{figure1, figure4_from_rows, figures_2_3, render_figure4};
use iq_metrics::{bar_chart, line_plot, PlotConfig};
use iq_experiments::tables::{
    render_table1, render_table2, render_table3, render_table4, render_table5, render_table6,
    render_table7, render_table8, run_table1, run_table2, run_table3, run_table4, run_table5,
    run_table6, run_table7, run_table8, Size,
};

fn main() {
    iq_experiments::tune_allocator();
    // Runner flags (`-j N`/`--jobs N`, `--verify-determinism`,
    // `--timing`) are stripped before positional parsing, so
    // `paper_tables -- -j 4 1.0 t3` works. Output on stdout is
    // byte-identical for any worker count.
    let mut args: Vec<String> = Vec::new();
    let mut it = std::env::args().collect::<Vec<_>>().into_iter();
    args.push(it.next().unwrap_or_default()); // argv[0]
    while let Some(a) = it.next() {
        match a.as_str() {
            "-j" | "--jobs" => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: {a} requires a positive integer argument");
                    std::process::exit(2);
                });
                iq_experiments::set_jobs(n);
            }
            "--verify-determinism" => iq_experiments::set_verify_determinism(true),
            "--timing" => iq_experiments::set_timing_report(true),
            _ => args.push(a),
        }
    }
    let size = Size(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0));
    let only: Option<&str> = args.get(2).map(|s| s.as_str());
    let want = |k: &str| only.is_none() || only == Some(k);

    let figdir = std::path::Path::new("figures");
    let save = |name: &str, svg: String| {
        if std::fs::create_dir_all(figdir).is_ok() {
            let path = figdir.join(name);
            if std::fs::write(&path, svg).is_ok() {
                println!("   -> wrote {}", path.display());
            }
        }
    };
    if want("f1") {
        let f1 = figure1();
        println!(
            "== Figure 1: Membership dynamics == ({} frames, group size min {} max {}; \
             first 10: {:?})",
            f1.len(),
            f1.values().fold(f64::INFINITY, f64::min),
            f1.values().fold(0.0, f64::max),
            f1.points.iter().take(10).map(|&(_, v)| v as u32).collect::<Vec<_>>()
        );
        save(
            "figure1_membership_dynamics.svg",
            line_plot(
                &PlotConfig::new("Figure 1: Membership dynamics", "frame", "group size"),
                &[("audience", &f1)],
            ),
        );
        println!();
    }
    if want("t1") {
        println!("{}", render_table1(&run_table1(size)));
    }
    if want("t2") {
        println!("{}", render_table2(&run_table2(size)));
    }
    if want("t3") {
        println!("{}", render_table3(&run_table3(size)));
    }
    if want("t4") {
        println!("{}", render_table4(&run_table4(size)));
    }
    if want("t5") {
        println!("{}", render_table5(&run_table5(size)));
    }
    let mut t6_rows = None;
    if want("t6") || want("f4") {
        let rows = run_table6(size);
        if want("t6") {
            println!("{}", render_table6(&rows));
        }
        t6_rows = Some(rows);
    }
    if want("t7") {
        println!("{}", render_table7(&run_table7(size)));
    }
    if want("t8") {
        println!("{}", render_table8(&run_table8(size)));
    }
    if want("f23") {
        let (iq, rudp) = figures_2_3(size);
        println!(
            "== Figures 2/3: per-packet delay jitter == IQ-RUDP: {} samples, mean {:.2} ms, \
             peak {:.2} ms | RUDP: {} samples, mean {:.2} ms, peak {:.2} ms",
            iq.len(),
            iq.mean(),
            iq.values().fold(0.0, f64::max),
            rudp.len(),
            rudp.mean(),
            rudp.values().fold(0.0, f64::max),
        );
        save(
            "figure2_jitter_iqrudp.svg",
            line_plot(
                &PlotConfig::new("Figure 2: Delay jitter - IQ-RUDP", "packet", "jitter (ms)"),
                &[("IQ-RUDP", &iq)],
            ),
        );
        save(
            "figure3_jitter_rudp.svg",
            line_plot(
                &PlotConfig::new("Figure 3: Delay jitter - RUDP", "packet", "jitter (ms)"),
                &[("RUDP", &rudp)],
            ),
        );
        println!();
    }
    if want("f4") {
        if let Some(rows) = &t6_rows {
            let points = figure4_from_rows(rows);
            println!("{}", render_figure4(&points));
            let labels: Vec<String> = points
                .iter()
                .map(|p| format!("{:.0} Mb", p.iperf_bps / 1e6))
                .collect();
            save(
                "figure4_improvement_overreaction.svg",
                bar_chart(
                    &PlotConfig::new(
                        "Figure 4: Performance improvement - overreaction",
                        "iperf background rate",
                        "percent",
                    ),
                    &labels,
                    &[
                        (
                            "throughput gain %",
                            points.iter().map(|p| p.throughput_gain_pct).collect(),
                        ),
                        (
                            "jitter reduction %",
                            points.iter().map(|p| p.jitter_reduction_pct).collect(),
                        ),
                    ],
                ),
            );
        }
    }
}
