//! Remote visualization with selective reliability (§3.3's motivating
//! scenario).
//!
//! ```text
//! cargo run --release --example remote_visualization
//! ```
//!
//! A scientist steers a remote visualization: control information (every
//! fifth datagram) must arrive, raw data outside the current focus may
//! be lost. Under congestion the application *unmarks* raw-data packets
//! to trade reliability for the timeliness of the tagged control stream.
//! The example runs the same workload twice — coordinated (IQ-RUDP
//! discards unmarked datagrams before they enter the network) and
//! uncoordinated (RUDP keeps sending everything) — and compares the
//! tagged stream's latency profile.

use iq_core::CoordinationMode;
use iq_echo::{AdaptiveSourceAgent, EchoSinkAgent, MarkingAdapter, Policy, SourceConfig};
use iq_netsim::{build_dumbbell, time, Addr, DumbbellSpec, FlowId, Simulator};
use iq_trace::{MembershipConfig, MembershipTrace};
use iq_workload::CbrSource;

struct Outcome {
    duration_s: f64,
    delivered_pct: f64,
    tagged_delay_ms: f64,
    tagged_jitter_ms: f64,
    discarded: u64,
}

fn run(mode: CoordinationMode) -> Outcome {
    let mut sim = Simulator::new(11);
    let db = build_dumbbell(&mut sim, &DumbbellSpec::paper_default(2));

    // 12 Mb of iperf cross traffic.
    sim.add_agent(
        db.left_hosts[1],
        9,
        Box::new(CbrSource::new(
            Addr::new(db.right_hosts[1], 9),
            FlowId(99),
            12e6,
            972,
        )),
    );
    sim.add_agent(db.right_hosts[1], 9, Box::new(iq_workload::UdpSink::new()));

    // Visualization frames follow audience dynamics (Figure 1 trace),
    // 3000 B per member, 100 frames/s, split into markable datagrams.
    let trace = MembershipTrace::generate(&MembershipConfig {
        seed: 5,
        len: 1500,
        base: 3.0,
        burst_scale: 3.0,
        min: 1,
        max: 10,
        ..MembershipConfig::default()
    });
    let mut cfg = SourceConfig::new(1, trace.frame_sizes(3000));
    cfg.mode = mode;
    cfg.fps = Some(100.0);
    cfg.datagram_mode = true;
    cfg.rudp.loss_tolerance = 0.40; // receiver tolerates 40% raw-data loss
    cfg.rudp.upper_threshold = Some(0.10);
    cfg.rudp.lower_threshold = Some(0.02);
    cfg.min_lower_gap = time::secs(1.5);
    let sink_cfg = cfg.rudp.clone();
    let source = AdaptiveSourceAgent::new(
        cfg,
        Policy::Marking(MarkingAdapter::default()),
        Addr::new(db.right_hosts[0], 1),
        FlowId(1),
    );
    let tx = sim.add_agent(db.left_hosts[0], 1, Box::new(source));
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(EchoSinkAgent::new(1, sink_cfg, FlowId(1))),
    );
    sim.run_until(time::secs(180.0));

    let src = sim.agent::<AdaptiveSourceAgent>(tx).expect("source");
    let sink = sim.agent::<EchoSinkAgent>(rx).expect("sink");
    Outcome {
        duration_s: sink.metrics.duration_s(),
        delivered_pct: sink.metrics.delivered_pct(src.offered_msgs),
        tagged_delay_ms: sink.metrics.tagged_inter_arrival_s() * 1e3,
        tagged_jitter_ms: sink.metrics.tagged_jitter_s() * 1e3,
        discarded: src.conn().stats().msgs_discarded,
    }
}

fn main() {
    println!("Remote visualization: reliability vs timeliness under congestion\n");
    let iq = run(CoordinationMode::Coordinated);
    let rudp = run(CoordinationMode::Uncoordinated);
    println!("{:<26}{:>12}{:>12}", "", "IQ-RUDP", "RUDP");
    println!(
        "{:<26}{:>12.1}{:>12.1}",
        "duration (s)", iq.duration_s, rudp.duration_s
    );
    println!(
        "{:<26}{:>12.1}{:>12.1}",
        "datagrams delivered (%)", iq.delivered_pct, rudp.delivered_pct
    );
    println!(
        "{:<26}{:>12.2}{:>12.2}",
        "tagged delay (ms)", iq.tagged_delay_ms, rudp.tagged_delay_ms
    );
    println!(
        "{:<26}{:>12.2}{:>12.2}",
        "tagged jitter (ms)", iq.tagged_jitter_ms, rudp.tagged_jitter_ms
    );
    println!(
        "{:<26}{:>12}{:>12}",
        "discarded at transport", iq.discarded, rudp.discarded
    );
    println!(
        "\nCoordination let the transport drop {} unmarked datagrams before \
         they entered the network;\nthe tagged control stream arrives {:.0}% \
         sooner per message.",
        iq.discarded,
        100.0 * (1.0 - iq.tagged_delay_ms / rudp.tagged_delay_ms.max(1e-9)),
    );
}
