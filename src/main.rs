//! `iqrudp` — command-line front end for the IQ-RUDP reproduction.
//!
//! ```text
//! iqrudp [FLAGS] tables [SIZE] [t1..t9]     regenerate the paper's tables
//!                                           (t9: CC × scheme matrix)
//! iqrudp [FLAGS] figures [SIZE]             regenerate the figures (+ SVGs)
//! iqrudp [FLAGS] ablations [SIZE]           run the design-choice ablations
//! iqrudp [FLAGS] bench [SIZE] [OPTS]        measure simulator throughput
//! iqrudp trace [FRAMES] [SEED]              dump a membership trace as TSV
//! iqrudp demo                               one coordinated flow, annotated
//! iqrudp mc [OPTS]                          model-check the coordination protocol
//! iqrudp [FLAGS] obs [SIZE] [OPTS]          print a scenario's metric exposition
//! ```
//!
//! `mc` runs the bounded model checker over a named scenario
//! (`--scenario basic|deferred|two-flow`), exploring every interleaving
//! of delivery, reordering, bounded drop, and timer firing up to
//! `--depth` transitions with `--drops`/`--ticks` budgets, and checks
//! the three coordination invariants on every application transition.
//! Exits 1 on a violation (printing a replayable minimal
//! counterexample). `--seed-break reinflate|cond|deferral` flips the
//! polarity: it seeds that coordination bug and exits 1 unless the
//! checker catches it — the self-test that the invariants have teeth.
//!
//! `bench` runs a fixed scenario sweep and writes `BENCH_netsim.json`
//! (events/sec, wall time per scenario, peak RSS). Options: `--out PATH`,
//! `--label STR`, `--only NAME` (run a single scenario), `--check PATH`
//! (fail when events/sec regresses more than `--max-regress FRAC`,
//! default 0.20, against the committed file — and, on hosts with ≥ 4
//! cores, when the `mega_flows` 4-shard rate is below 2× the 1-shard
//! rate).
//!
//! `SIZE` scales the experiment workloads (1.0 = paper scale). Flags:
//!
//! * `-j N` / `--jobs N` — run scenarios on N worker threads (default:
//!   one per core). Rendered output is byte-identical for any N.
//! * `--shards N` — worker threads inside a sharded scenario
//!   (`mega_flows`); results are byte-identical for any N (0 = one per
//!   core, default 1).
//! * `--verify-determinism` — run every scenario twice with the same
//!   seed and abort if any metric differs bit-for-bit.
//! * `--no-timing` — suppress the per-scenario wall-clock / events-per-
//!   second report on stderr.
//! * `--telemetry DIR` — capture the structured telemetry bus for every
//!   scenario and write one JSONL stream per scenario into `DIR`. The
//!   dumps are byte-identical for any `-j`, and rendered tables do not
//!   change.
//! * `--metrics DIR` — write each scenario's metric registry into `DIR`
//!   as `NNN_<scenario>.prom` (Prometheus text exposition) and
//!   `NNN_<scenario>.jsonl` (one JSON object per sample). Sim-plane
//!   metrics are byte-identical for any `-j`/`--shards`; engine-plane
//!   metrics (scheduler placement, pool hit rates, phase times) vary
//!   with thread scheduling.
//!
//! `obs` runs one bench scenario (default `bulk_rudp`, pick with
//! `--only NAME`) and prints its full exposition on stdout; `--verify`
//! re-runs it at `--shards 2` and `4` and fails unless the sim-plane
//! exposition is byte-identical.

use iq_experiments::ablations::run_all_ablations;
use iq_experiments::figures::{figure1, figure4_from_rows, figures_2_3, render_figure4};
use iq_experiments::tables::*;
use iq_metrics::{line_plot, PlotConfig};
use iq_trace::{MembershipConfig, MembershipTrace};

fn parse_size(args: &[String], idx: usize) -> Size {
    Size(args.get(idx).and_then(|s| s.parse().ok()).unwrap_or(1.0))
}

fn cmd_tables(args: &[String]) {
    let size = parse_size(args, 0);
    let only = args.get(1).map(|s| s.as_str());
    let want = |k: &str| only.is_none() || only == Some(k);
    if want("t1") {
        println!("{}", render_table1(&run_table1(size)));
    }
    if want("t2") {
        println!("{}", render_table2(&run_table2(size)));
    }
    if want("t3") {
        println!("{}", render_table3(&run_table3(size)));
    }
    if want("t4") {
        println!("{}", render_table4(&run_table4(size)));
    }
    if want("t5") {
        println!("{}", render_table5(&run_table5(size)));
    }
    if want("t6") {
        println!("{}", render_table6(&run_table6(size)));
    }
    if want("t7") {
        println!("{}", render_table7(&run_table7(size)));
    }
    if want("t8") {
        println!("{}", render_table8(&run_table8(size)));
    }
    if want("t9") {
        println!("{}", render_table9(&run_table9(size)));
    }
}

fn cmd_figures(args: &[String]) {
    let size = parse_size(args, 0);
    let f1 = figure1();
    println!(
        "Figure 1: {} frames, group sizes {:.0}..{:.0}",
        f1.len(),
        f1.values().fold(f64::INFINITY, f64::min),
        f1.values().fold(0.0, f64::max)
    );
    let (iq, rudp) = figures_2_3(size);
    println!(
        "Figures 2/3: IQ-RUDP mean jitter {:.2} ms, RUDP {:.2} ms",
        iq.mean(),
        rudp.mean()
    );
    let rows = run_table6(size);
    println!("{}", render_figure4(&figure4_from_rows(&rows)));
    let _ = std::fs::create_dir_all("figures");
    let _ = std::fs::write(
        "figures/figure1_membership_dynamics.svg",
        line_plot(
            &PlotConfig::new("Figure 1: Membership dynamics", "frame", "group size"),
            &[("audience", &f1)],
        ),
    );
    let _ = std::fs::write(
        "figures/figures_2_3_jitter.svg",
        line_plot(
            &PlotConfig::new("Figures 2/3: per-packet delay jitter", "packet", "jitter (ms)"),
            &[("IQ-RUDP", &iq), ("RUDP", &rudp)],
        ),
    );
    println!("wrote figures/*.svg");
}

fn cmd_bench(args: &[String]) {
    use iq_experiments::BenchOptions;
    let mut opts = BenchOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => opts.out_path = p.clone(),
                None => die("--out requires a path"),
            },
            "--label" => match it.next() {
                Some(l) => opts.label = l.clone(),
                None => die("--label requires a string"),
            },
            "--check" => match it.next() {
                Some(p) => opts.check_path = Some(p.clone()),
                None => die("--check requires a path"),
            },
            "--max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => opts.max_regress = f,
                None => die("--max-regress requires a fraction (e.g. 0.2)"),
            },
            "--only" => match it.next() {
                Some(n) => opts.only = Some(n.clone()),
                None => die("--only requires a scenario name"),
            },
            other => match other.parse::<f64>() {
                Ok(s) if s > 0.0 => opts.size = Size(s),
                _ => die(&format!("bench: unknown argument `{other}`")),
            },
        }
    }
    match iq_experiments::bench_main(&opts) {
        Ok(run) => {
            println!(
                "bench: {} events in {:.2}s = {:.0} events/s (peak RSS {:.1} MiB); wrote {}",
                run.total_events,
                run.total_wall_s,
                run.total_events_per_sec,
                run.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                opts.out_path,
            );
            for sc in &run.scenarios {
                println!(
                    "  {:<16} {:>10} events  {:>8.3}s  {:>12.0} events/s  rss {:>7.1} MiB",
                    sc.name,
                    sc.events,
                    sc.wall_s,
                    sc.events_per_sec,
                    sc.peak_rss_bytes as f64 / (1024.0 * 1024.0)
                );
            }
        }
        Err(e) => {
            eprintln!("bench: {e}");
            std::process::exit(1);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// `iqrudp obs [SIZE] [--only NAME] [--verify]` — run one bench
/// scenario and print its metric exposition (Prometheus text, both
/// planes) on stdout. `--verify` re-runs the scenario at `--shards 2`
/// and `4` and fails unless the sim-plane exposition is byte-identical
/// every time. Combine with the global `--metrics DIR` flag to also
/// write `.prom`/`.jsonl` dumps.
fn cmd_obs(args: &[String]) {
    let mut size = Size(0.05);
    let mut only = "bulk_rudp".to_string();
    let mut verify = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--only" => match it.next() {
                Some(n) => only = n.clone(),
                None => die("--only requires a scenario name"),
            },
            "--verify" => verify = true,
            other => match other.parse::<f64>() {
                Ok(s) if s > 0.0 => size = Size(s),
                _ => die(&format!("obs: unknown argument `{other}`")),
            },
        }
    }
    let mut specs = iq_experiments::benchmode::bench_specs(size);
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    specs.retain(|s| s.name == only);
    if specs.is_empty() {
        die(&format!(
            "obs: no scenario named `{only}` (available: {})",
            names.join(", ")
        ));
    }

    let reports = iq_experiments::run_specs(&specs);
    for rep in &reports {
        let mut reg = rep.result.obs.clone();
        reg.sort();
        let text = iq_obs::expo::render_prom(&reg, None);
        match iq_obs::expo::validate_prom(&text) {
            Ok(n) => eprintln!(
                "obs: `{}` exposition parses ({n} samples), counter fingerprint {:#018x}",
                rep.name,
                reg.sim_fingerprint()
            ),
            Err(e) => {
                eprintln!("obs: `{}` exposition INVALID: {e}", rep.name);
                std::process::exit(1);
            }
        }
        print!("{text}");
    }

    if verify {
        let before = iq_experiments::shards();
        for shards in [2usize, 4] {
            iq_experiments::set_shards(shards);
            let again = iq_experiments::run_specs(&specs);
            for (a, b) in reports.iter().zip(&again) {
                if a.result.obs.sim_text() != b.result.obs.sim_text() {
                    eprintln!(
                        "obs verify: FAILED — `{}` sim-plane metrics diverged at \
                         --shards {shards}",
                        a.name
                    );
                    std::process::exit(1);
                }
            }
        }
        iq_experiments::set_shards(before);
        eprintln!(
            "obs verify: `{only}` sim-plane metrics byte-identical across \
             --shards {before}/2/4 — ok"
        );
    }
}

fn cmd_mc(args: &[String]) {
    use iq_mc::{check, replay, scenario_names, scenario_with_cc, CheckerConfig, Mutation};
    use iq_rudp::CcAlgorithm;

    let mut name = "basic".to_string();
    let mut cc = CcAlgorithm::default();
    let mut cfg = CheckerConfig::default();
    let mut mutation = Mutation::None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" => match it.next() {
                Some(s) => name = s.clone(),
                None => die("--scenario requires a name"),
            },
            "--cc" => match it.next().map(|s| CcAlgorithm::from_name(s)) {
                Some(Some(alg)) => cc = alg,
                _ => die("--cc requires one of: lda, cubic, bbr, rrr, fixed"),
            },
            "--depth" => match it.next().and_then(|v| v.parse().ok()) {
                Some(d) => cfg.max_depth = d,
                None => die("--depth requires a positive integer"),
            },
            "--drops" => match it.next().and_then(|v| v.parse().ok()) {
                Some(d) => cfg.drop_budget = d,
                None => die("--drops requires an integer"),
            },
            "--ticks" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => cfg.tick_budget = t,
                None => die("--ticks requires an integer"),
            },
            "--seed-break" => match it.next().map(|s| Mutation::from_name(s)) {
                Some(Some(m)) => mutation = m,
                _ => die("--seed-break requires one of: reinflate, cond, deferral"),
            },
            other => die(&format!("mc: unknown argument `{other}`")),
        }
    }
    let cc_name = cc.name();
    let spec = scenario_with_cc(&name, cc).unwrap_or_else(|| {
        die(&format!(
            "unknown scenario `{name}` (available: {})",
            scenario_names().join(", ")
        ))
    });

    let report = check(&spec, mutation, &cfg);
    println!(
        "mc: scenario {} cc {} depth {} (reached {}) drops {} ticks {}: \
         {} states explored, space {}",
        spec.name,
        cc_name,
        cfg.max_depth,
        report.depth_reached,
        cfg.drop_budget,
        cfg.tick_budget,
        report.explored,
        if report.complete { "exhausted" } else { "bounded by depth" },
    );
    match report.counterexample {
        Some(ce) => {
            println!("VIOLATION: {}", ce.violation);
            println!("minimal counterexample ({} steps):", ce.trace.len());
            print!("{}", iq_mc::trace::render(&ce.trace));
            let replayed = replay(&spec, mutation, &cfg, &ce.trace);
            match replayed {
                Some(v) if v.invariant == ce.violation.invariant => {
                    println!("replay: reproduced");
                }
                _ => {
                    println!("replay: FAILED to reproduce");
                    std::process::exit(2);
                }
            }
            // A violation is success when we seeded the bug ourselves.
            if mutation == Mutation::None {
                std::process::exit(1);
            }
        }
        None => {
            println!("no violations");
            if mutation != Mutation::None {
                eprintln!("mc: seeded mutation {mutation:?} was NOT caught");
                std::process::exit(1);
            }
        }
    }
}

fn cmd_trace(args: &[String]) {
    let len = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000usize);
    let seed = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0x4d42_6f6e);
    let trace = MembershipTrace::generate(&MembershipConfig {
        seed,
        len,
        ..MembershipConfig::default()
    });
    for (i, g) in trace.samples.iter().enumerate() {
        println!("{i}\t{g}");
    }
}

fn cmd_demo() {
    use iq_echo::{AdaptiveSourceAgent, EchoSinkAgent, Policy, ResolutionAdapter, SourceConfig};
    use iq_netsim::{build_dumbbell, time, Addr, DumbbellSpec, FlowId, Simulator};
    use iq_workload::CbrSource;

    let mut sim = Simulator::new(1);
    let db = build_dumbbell(&mut sim, &DumbbellSpec::paper_default(2));
    sim.add_agent(
        db.left_hosts[1],
        9,
        Box::new(CbrSource::new(
            Addr::new(db.right_hosts[1], 9),
            FlowId(99),
            18e6,
            972,
        )),
    );
    sim.add_agent(db.right_hosts[1], 9, Box::new(iq_workload::UdpSink::new()));
    let mut cfg = SourceConfig::new(1, vec![1400; 600]);
    cfg.rudp.upper_threshold = Some(0.15);
    cfg.rudp.lower_threshold = Some(0.01);
    cfg.datagram_mode = true;
    let sink_cfg = cfg.rudp.clone();
    let src = AdaptiveSourceAgent::new(
        cfg,
        Policy::Resolution(ResolutionAdapter::default()),
        Addr::new(db.right_hosts[0], 1),
        FlowId(1),
    );
    let tx = sim.add_agent(db.left_hosts[0], 1, Box::new(src));
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(EchoSinkAgent::new(1, sink_cfg, FlowId(1))),
    );
    sim.run_until(time::secs(60.0));
    let src = sim.agent::<AdaptiveSourceAgent>(tx).unwrap();
    let sink = sim.agent::<EchoSinkAgent>(rx).unwrap();
    println!(
        "delivered {}/{} messages in {:.1} s at {:.1} KB/s (jitter {:.2} ms); \
         {} upper callbacks, {} window re-adjustments",
        sink.metrics.messages(),
        src.offered_msgs,
        sink.metrics.duration_s(),
        sink.metrics.throughput_kbps(),
        sink.metrics.jitter_s() * 1e3,
        src.callbacks.0,
        src.coordination_log().window_rescales,
    );
    // Ground truth from the simulator's per-flow accounting.
    let fs = sim.flow_stats(FlowId(1));
    println!(
        "ground truth: {} packets sent, {:.2}% network loss",
        fs.sent_packets,
        100.0 * fs.loss_ratio()
    );
}

/// Strips the runner flags (`-j`/`--jobs`, `--shards`,
/// `--verify-determinism`, `--no-timing`, `--telemetry DIR`) out of the
/// argument list, applying them globally, and returns the remaining
/// positional arguments.
fn apply_runner_flags(args: Vec<String>) -> Vec<String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut timing = true;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-j" | "--jobs" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("error: {a} requires a positive integer argument");
                        std::process::exit(2);
                    });
                iq_experiments::set_jobs(n);
            }
            _ if a.starts_with("--jobs=") || a.starts_with("-j=") => {
                let n = a.split_once('=').and_then(|(_, v)| v.parse().ok());
                match n {
                    Some(n) => iq_experiments::set_jobs(n),
                    None => {
                        eprintln!("error: {a}: expected a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--verify-determinism" => iq_experiments::set_verify_determinism(true),
            "--shards" => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --shards requires a non-negative integer (0 = auto)");
                    std::process::exit(2);
                });
                iq_experiments::set_shards(n);
            }
            _ if a.starts_with("--shards=") => {
                match a.split_once('=').and_then(|(_, v)| v.parse().ok()) {
                    Some(n) => iq_experiments::set_shards(n),
                    None => {
                        eprintln!("error: {a}: expected a non-negative integer");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("error: --telemetry requires a directory argument");
                    std::process::exit(2);
                });
                iq_experiments::set_telemetry_dir(Some(dir));
            }
            _ if a.starts_with("--telemetry=") => {
                match a.split_once('=').map(|(_, v)| v.to_string()) {
                    Some(dir) if !dir.is_empty() => iq_experiments::set_telemetry_dir(Some(dir)),
                    _ => {
                        eprintln!("error: --telemetry= requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("error: --metrics requires a directory argument");
                    std::process::exit(2);
                });
                iq_experiments::set_metrics_dir(Some(dir));
            }
            _ if a.starts_with("--metrics=") => {
                match a.split_once('=').map(|(_, v)| v.to_string()) {
                    Some(dir) if !dir.is_empty() => iq_experiments::set_metrics_dir(Some(dir)),
                    _ => {
                        eprintln!("error: --metrics= requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--no-timing" => timing = false,
            _ => rest.push(a),
        }
    }
    iq_experiments::set_timing_report(timing);
    rest
}

fn main() {
    iq_experiments::tune_allocator();
    let args = apply_runner_flags(std::env::args().skip(1).collect());
    match args.first().map(|s| s.as_str()) {
        Some("tables") => cmd_tables(&args[1..]),
        Some("figures") => cmd_figures(&args[1..]),
        Some("ablations") => {
            let size = parse_size(&args[1..], 0);
            println!("{}", run_all_ablations(size));
        }
        Some("bench") => cmd_bench(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("mc") => cmd_mc(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        _ => {
            eprintln!(
                "usage: iqrudp [-j N] [--shards N] [--verify-determinism] [--no-timing] \
                 [--telemetry DIR] [--metrics DIR] \
                 <tables [SIZE] [tN] | figures [SIZE] | ablations [SIZE] | \
                 bench [SIZE] [--out PATH] [--label STR] [--check PATH] \
                 [--max-regress FRAC] [--only NAME] | trace [FRAMES] [SEED] | demo | \
                 mc [--scenario NAME] [--cc lda|cubic|bbr|rrr] [--depth N] \
                 [--drops K] [--ticks K] \
                 [--seed-break reinflate|cond|deferral] | \
                 obs [SIZE] [--only NAME] [--verify]>"
            );
            std::process::exit(2);
        }
    }
}