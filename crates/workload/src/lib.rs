//! # iq-workload
//!
//! Cross-traffic generators for the IQ-RUDP experiments:
//!
//! * [`CbrSource`] — fixed-rate UDP, the stand-in for the paper's
//!   *iperf* background traffic.
//! * [`VbrSource`] — variable-bit-rate UDP at a fixed frame rate with
//!   frame sizes driven by the MBone membership trace (§3.1's changing-
//!   network workload).
//! * [`UdpSink`] — counts arrivals and computes received rate.

#![warn(missing_docs)]

use iq_metrics::FlowMetrics;
use iq_netsim::{payload, time, Addr, Agent, Ctx, FlowId, Packet, TimeDelta};

/// Wire overhead modelled for plain UDP datagrams (IP + UDP).
pub const UDP_HEADER_BYTES: u32 = 28;

/// Payload marker for plain UDP traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Sequence number within the flow.
    pub seq: u64,
}

const SEND_TOKEN: u64 = 1;

/// Constant-bit-rate UDP source (iperf-like).
///
/// Emits fixed-size datagrams at a fixed rate, forever or until a
/// configured volume is reached.
pub struct CbrSource {
    dst: Addr,
    flow: FlowId,
    /// Datagram payload size in bytes.
    datagram_bytes: u32,
    /// Stop after this many datagrams (`u64::MAX` = unbounded).
    limit: u64,
    sent: u64,
    /// Start delay before the first datagram.
    start_after: TimeDelta,
    /// Inter-datagram gap, precomputed once: the source re-arms its
    /// timer on every send, so this sits on the per-packet path.
    interval: TimeDelta,
}

impl CbrSource {
    /// Creates an unbounded CBR source.
    pub fn new(dst: Addr, flow: FlowId, rate_bps: f64, datagram_bytes: u32) -> Self {
        let wire = f64::from(datagram_bytes + UDP_HEADER_BYTES) * 8.0;
        Self {
            dst,
            flow,
            datagram_bytes,
            limit: u64::MAX,
            sent: 0,
            start_after: 0,
            interval: time::secs(wire / rate_bps.max(1.0)),
        }
    }

    /// Delays the first datagram.
    pub fn with_start_after(mut self, delay: TimeDelta) -> Self {
        self.start_after = delay;
        self
    }

    /// Bounds the total number of datagrams.
    pub fn with_limit(mut self, datagrams: u64) -> Self {
        self.limit = datagrams;
        self
    }

    /// Datagrams sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Agent for CbrSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_after, SEND_TOKEN);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent >= self.limit {
            return;
        }
        ctx.send(
            self.dst,
            self.datagram_bytes + UDP_HEADER_BYTES,
            self.flow,
            payload(UdpDatagram { seq: self.sent }),
        );
        self.sent += 1;
        if self.sent < self.limit {
            ctx.set_timer(self.interval, SEND_TOKEN);
        }
    }
}

/// Variable-bit-rate UDP source: a fixed frame rate with per-frame sizes
/// from a trace. Each frame is burst onto the network as MTU-sized
/// datagrams, emulating "a content delivery server that uses multiple
/// unicast streams to multicast" (§3.1).
pub struct VbrSource {
    dst: Addr,
    flow: FlowId,
    /// Frames per second (paper: 500).
    fps: f64,
    /// Per-frame sizes in bytes; the trace loops when exhausted.
    frame_sizes: Vec<u32>,
    /// Maximum datagram payload.
    mtu: u32,
    next_frame: usize,
    /// Whether to loop the trace (default) or stop at its end.
    looping: bool,
    sent_datagrams: u64,
    sent_bytes: u64,
}

impl VbrSource {
    /// Creates a looping VBR source.
    pub fn new(dst: Addr, flow: FlowId, fps: f64, frame_sizes: Vec<u32>) -> Self {
        assert!(!frame_sizes.is_empty(), "VBR source needs a trace");
        Self {
            dst,
            flow,
            fps,
            frame_sizes,
            mtu: 1400,
            next_frame: 0,
            looping: true,
            sent_datagrams: 0,
            sent_bytes: 0,
        }
    }

    /// Stop at the end of the trace instead of looping.
    pub fn once(mut self) -> Self {
        self.looping = false;
        self
    }

    /// Total payload bytes sent so far.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Average offered rate in bits/second.
    pub fn offered_bps(&self) -> f64 {
        let mean = self.frame_sizes.iter().map(|&s| f64::from(s)).sum::<f64>()
            / self.frame_sizes.len() as f64;
        mean * 8.0 * self.fps
    }
}

impl Agent for VbrSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(0, SEND_TOKEN);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.next_frame >= self.frame_sizes.len() {
            if !self.looping {
                return;
            }
            self.next_frame = 0;
        }
        let size = self.frame_sizes[self.next_frame];
        self.next_frame += 1;
        // Burst the frame as MTU datagrams.
        let mut remaining = size;
        while remaining > 0 {
            let len = remaining.min(self.mtu);
            remaining -= len;
            ctx.send(
                self.dst,
                len + UDP_HEADER_BYTES,
                self.flow,
                payload(UdpDatagram {
                    seq: self.sent_datagrams,
                }),
            );
            self.sent_datagrams += 1;
            self.sent_bytes += u64::from(len);
        }
        ctx.set_timer(time::secs(1.0 / self.fps), SEND_TOKEN);
    }
}

/// Counts UDP arrivals.
#[derive(Default)]
pub struct UdpSink {
    /// Arrival metrics (bytes, rates, inter-arrival).
    pub metrics: FlowMetrics,
    /// Datagrams received.
    pub received: u64,
}

impl UdpSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Agent for UdpSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if pkt.payload_as::<UdpDatagram>().is_some() {
            self.received += 1;
            self.metrics.on_message(
                ctx.now(),
                pkt.sent_at,
                u64::from(pkt.size.saturating_sub(UDP_HEADER_BYTES)),
                false,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::{LinkSpec, Simulator};

    #[test]
    fn cbr_hits_configured_rate() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(20e6, time::millis(5), 100_000));
        sim.add_agent(
            a,
            1,
            Box::new(CbrSource::new(Addr::new(b, 1), FlowId(9), 8e6, 972)),
        );
        let rx = sim.add_agent(b, 1, Box::new(UdpSink::new()));
        sim.run_until(time::secs(5.0));
        let sink = sim.agent::<UdpSink>(rx).unwrap();
        // 8 Mb/s of 1000 B wire datagrams = 1000/s.
        let expected = 5.0 * 8e6 / 8000.0;
        let got = sink.received as f64;
        assert!(
            (got - expected).abs() / expected < 0.02,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn cbr_respects_limit_and_start_delay() {
        let mut sim = Simulator::new(2);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(20e6, time::millis(5), 100_000));
        sim.add_agent(
            a,
            1,
            Box::new(
                CbrSource::new(Addr::new(b, 1), FlowId(9), 8e6, 972)
                    .with_limit(10)
                    .with_start_after(time::secs(1.0)),
            ),
        );
        let rx = sim.add_agent(b, 1, Box::new(UdpSink::new()));
        sim.run_until(time::millis(900));
        assert_eq!(sim.agent::<UdpSink>(rx).unwrap().received, 0);
        sim.run_until(time::secs(5.0));
        assert_eq!(sim.agent::<UdpSink>(rx).unwrap().received, 10);
    }

    #[test]
    fn vbr_bursts_frames_at_frame_rate() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(100e6, time::millis(1), 1_000_000));
        // 100 fps, frames of 4000 B => 3 datagrams per frame.
        sim.add_agent(
            a,
            1,
            Box::new(VbrSource::new(
                Addr::new(b, 1),
                FlowId(9),
                100.0,
                vec![4000],
            )),
        );
        let rx = sim.add_agent(b, 1, Box::new(UdpSink::new()));
        sim.run_until(time::secs(1.0));
        let sink = sim.agent::<UdpSink>(rx).unwrap();
        // ~100 frames x 3 datagrams.
        assert!((295..=303).contains(&sink.received), "{}", sink.received);
    }

    #[test]
    fn vbr_once_stops_at_trace_end() {
        let mut sim = Simulator::new(4);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(100e6, time::millis(1), 1_000_000));
        sim.add_agent(
            a,
            1,
            Box::new(
                VbrSource::new(Addr::new(b, 1), FlowId(9), 100.0, vec![1000; 5]).once(),
            ),
        );
        let rx = sim.add_agent(b, 1, Box::new(UdpSink::new()));
        sim.run_until(time::secs(2.0));
        assert_eq!(sim.agent::<UdpSink>(rx).unwrap().received, 5);
    }

    #[test]
    fn offered_rate_math() {
        let v = VbrSource::new(
            Addr::new(iq_netsim::NodeId(0), 1),
            FlowId(1),
            500.0,
            vec![2000, 4000],
        );
        // Mean 3000 B at 500 fps = 12 Mb/s.
        assert!((v.offered_bps() - 12e6).abs() < 1.0);
    }
}
