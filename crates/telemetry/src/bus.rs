//! The per-flow ring-buffer bus and the cheap sink handle emit points
//! hold.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::{TelemetryEvent, TelemetryRecord};

/// Default per-flow ring capacity: enough for every decision-level event
/// of a long scenario while bounding the packet-level firehose.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Bounded event storage for one flow.
#[derive(Debug, Default)]
struct FlowRing {
    buf: VecDeque<TelemetryRecord>,
    /// Oldest records evicted once the ring filled.
    evicted: u64,
}

/// Collects [`TelemetryRecord`]s into per-flow ring buffers.
///
/// Each record gets a global monotonic sequence number at push time, so
/// a merged export reproduces exact emission order regardless of how
/// records were bucketed per flow.
#[derive(Debug)]
pub struct TelemetryBus {
    per_flow_capacity: usize,
    flows: BTreeMap<u64, FlowRing>,
    next_seq: u64,
}

impl TelemetryBus {
    /// Creates a bus whose flows each hold at most `per_flow_capacity`
    /// records (0 means [`DEFAULT_RING_CAPACITY`]).
    pub fn new(per_flow_capacity: usize) -> Self {
        Self {
            per_flow_capacity: if per_flow_capacity == 0 {
                DEFAULT_RING_CAPACITY
            } else {
                per_flow_capacity
            },
            flows: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Appends one event, evicting the flow's oldest record when its
    /// ring is full.
    pub fn push(&mut self, at: u64, flow: u64, event: TelemetryEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ring = self.flows.entry(flow).or_default();
        if ring.buf.len() >= self.per_flow_capacity {
            ring.buf.pop_front();
            ring.evicted += 1;
        }
        ring.buf.push_back(TelemetryRecord {
            at,
            seq,
            flow,
            event,
        });
    }

    /// Total records currently held.
    pub fn len(&self) -> usize {
        self.flows.values().map(|r| r.buf.len()).sum()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted from `flow`'s ring by overflow.
    pub fn evicted(&self, flow: u64) -> u64 {
        self.flows.get(&flow).map_or(0, |r| r.evicted)
    }

    /// Records evicted across all flows.
    pub fn total_evicted(&self) -> u64 {
        self.flows.values().map(|r| r.evicted).sum()
    }

    /// All held records merged back into emission order.
    pub fn records(&self) -> Vec<TelemetryRecord> {
        let mut out: Vec<TelemetryRecord> = self
            .flows
            .values()
            .flat_map(|r| r.buf.iter().cloned())
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }
}

impl Default for TelemetryBus {
    fn default() -> Self {
        Self::new(0)
    }
}

/// A cheap, clonable handle emit points hold.
///
/// The disabled sink (the default) is a `None` and every emit is one
/// branch; nothing is allocated, locked, or formatted. An attached sink
/// shares one [`TelemetryBus`] behind an `Arc<Mutex<_>>` — simulations
/// are single-threaded, so the lock is uncontended and exists only to
/// keep the handle `Send + Sync` for the parallel scenario runner.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    bus: Option<Arc<Mutex<TelemetryBus>>>,
}

impl TelemetrySink {
    /// The disabled sink: every emit is a no-op.
    pub fn disabled() -> Self {
        Self { bus: None }
    }

    /// A sink feeding `bus`.
    pub fn attached(bus: Arc<Mutex<TelemetryBus>>) -> Self {
        Self { bus: Some(bus) }
    }

    /// Creates a fresh bus and a sink feeding it.
    pub fn new_bus(per_flow_capacity: usize) -> (Self, Arc<Mutex<TelemetryBus>>) {
        let bus = Arc::new(Mutex::new(TelemetryBus::new(per_flow_capacity)));
        (Self::attached(bus.clone()), bus)
    }

    /// Whether emits reach a bus.
    pub fn is_enabled(&self) -> bool {
        self.bus.is_some()
    }

    /// Emits one event (no-op when disabled).
    pub fn emit(&self, at: u64, flow: u64, event: TelemetryEvent) {
        if let Some(bus) = &self.bus {
            bus.lock().unwrap_or_else(|e| e.into_inner()).push(at, flow, event);
        }
    }

    /// Emits the event `f` builds — `f` runs only when the sink is
    /// enabled, so emit points that must gather extra state stay free
    /// when telemetry is off.
    pub fn emit_with(&self, at: u64, flow: u64, f: impl FnOnce() -> TelemetryEvent) {
        if let Some(bus) = &self.bus {
            bus.lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(at, flow, f());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cwnd: f64) -> TelemetryEvent {
        TelemetryEvent::CwndUpdate {
            cwnd,
            reason: crate::event::CwndReason::Period,
        }
    }

    #[test]
    fn disabled_sink_is_noop() {
        let s = TelemetrySink::disabled();
        assert!(!s.is_enabled());
        s.emit(0, 1, ev(1.0));
        s.emit_with(0, 1, || panic!("must not run"));
    }

    #[test]
    fn records_merge_in_emission_order_across_flows() {
        let (s, bus) = TelemetrySink::new_bus(16);
        s.emit(10, 2, ev(1.0));
        s.emit(20, 1, ev(2.0));
        s.emit(30, 2, ev(3.0));
        let b = bus.lock().unwrap();
        let recs = b.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs.iter().map(|r| (r.seq, r.flow)).collect::<Vec<_>>(),
            vec![(0, 2), (1, 1), (2, 2)]
        );
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let mut bus = TelemetryBus::new(2);
        for i in 0..5 {
            bus.push(i, 7, ev(i as f64));
        }
        assert_eq!(bus.len(), 2);
        assert_eq!(bus.evicted(7), 3);
        assert_eq!(bus.total_evicted(), 3);
        // The newest records survive.
        let recs = bus.records();
        assert_eq!(recs[0].seq, 3);
        assert_eq!(recs[1].seq, 4);
        // Unknown flow: zero evictions.
        assert_eq!(bus.evicted(9), 0);
    }
}
