//! Hand-rolled JSONL serialization for telemetry records.
//!
//! The build environment is offline (no serde); records are flat
//! objects with string/number/bool values, so a ~100-line writer and
//! parser cover the format exactly. Floats are written with Rust's
//! shortest-round-trip `Display`, which `str::parse::<f64>` inverts
//! bit-exactly — the round trip is lossless and the output is
//! deterministic for a given stream of records.

use std::fmt::Write as _;

use crate::event::{CwndReason, PacketKind, TelemetryEvent, TelemetryRecord};

/// Why a JSONL line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line was not a well-formed flat JSON object.
    Malformed(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// A field held the wrong kind of value.
    BadField(&'static str),
    /// The `type` tag named no known event.
    UnknownKind(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(s) => write!(f, "malformed JSON: {s}"),
            ParseError::MissingField(n) => write!(f, "missing field `{n}`"),
            ParseError::BadField(n) => write!(f, "bad value for field `{n}`"),
            ParseError::UnknownKind(k) => write!(f, "unknown event type `{k}`"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A scanned scalar value. Numbers keep their raw token so integers
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(String),
    Bool(bool),
    Str(String),
}

/// Writes one `"key":value` pair, prefixed with a comma.
fn field(out: &mut String, key: &str, tok: &str) {
    let _ = write!(out, ",\"{key}\":{tok}");
}

fn field_str(out: &mut String, key: &str, val: &str) {
    let _ = write!(out, ",\"{key}\":\"{val}\"");
}

fn field_f64(out: &mut String, key: &str, val: f64) {
    let _ = write!(out, ",\"{key}\":{val}");
}

impl TelemetryRecord {
    /// Serializes to one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"at\":{},\"seq\":{},\"flow\":{}",
            self.at, self.seq, self.flow
        );
        field_str(&mut out, "type", self.event.kind());
        match &self.event {
            TelemetryEvent::CwndUpdate { cwnd, reason } => {
                field_f64(&mut out, "cwnd", *cwnd);
                field_str(&mut out, "reason", reason.label());
            }
            TelemetryEvent::RtoFired { seq, rto_ns, backoff } => {
                field(&mut out, "rto_seq", &seq.to_string());
                field(&mut out, "rto_ns", &rto_ns.to_string());
                field(&mut out, "backoff", &backoff.to_string());
            }
            TelemetryEvent::SegmentDropped { seq, marked } => {
                field(&mut out, "drop_seq", &seq.to_string());
                field(&mut out, "marked", if *marked { "true" } else { "false" });
            }
            TelemetryEvent::Unmarked { size } => {
                field(&mut out, "size", &size.to_string());
            }
            TelemetryEvent::AdaptWhen { frames_ahead } => {
                field(&mut out, "frames_ahead", &frames_ahead.to_string());
            }
            TelemetryEvent::AdaptCond { eratio_then, eratio_now } => {
                field_f64(&mut out, "eratio_then", *eratio_then);
                field_f64(&mut out, "eratio_now", *eratio_now);
            }
            TelemetryEvent::WindowReinflate { rate_chg, factor, cwnd, srtt_ms } => {
                field_f64(&mut out, "rate_chg", *rate_chg);
                field_f64(&mut out, "factor", *factor);
                field_f64(&mut out, "cwnd", *cwnd);
                field_f64(&mut out, "srtt_ms", *srtt_ms);
            }
            TelemetryEvent::QueueDepth { link, queued_bytes, queue_len, dropped } => {
                field(&mut out, "link", &link.to_string());
                field(&mut out, "queued_bytes", &queued_bytes.to_string());
                field(&mut out, "queue_len", &queue_len.to_string());
                field(&mut out, "dropped", if *dropped { "true" } else { "false" });
            }
            TelemetryEvent::Packet { packet_id, size, kind, link } => {
                field(&mut out, "packet_id", &packet_id.to_string());
                field(&mut out, "size", &size.to_string());
                field_str(&mut out, "kind", kind.label());
                field(&mut out, "link", &link.to_string());
            }
            TelemetryEvent::MsgDelivered { msg_id, size, marked, latency_ns } => {
                field(&mut out, "msg_id", &msg_id.to_string());
                field(&mut out, "size", &size.to_string());
                field(&mut out, "marked", if *marked { "true" } else { "false" });
                field(&mut out, "latency_ns", &latency_ns.to_string());
            }
            TelemetryEvent::GapSkipped { seq } => {
                field(&mut out, "skip_seq", &seq.to_string());
            }
            TelemetryEvent::ToleranceChange { tolerance, raised } => {
                field_f64(&mut out, "tolerance", *tolerance);
                field(&mut out, "raised", if *raised { "true" } else { "false" });
            }
            TelemetryEvent::PeriodSample {
                eratio,
                eratio_smoothed,
                srtt_ms,
                cwnd,
                rate_kbps,
            } => {
                field_f64(&mut out, "eratio", *eratio);
                field_f64(&mut out, "eratio_smoothed", *eratio_smoothed);
                field_f64(&mut out, "srtt_ms", *srtt_ms);
                field_f64(&mut out, "cwnd", *cwnd);
                field_f64(&mut out, "rate_kbps", *rate_kbps);
            }
            TelemetryEvent::Threshold { upper, eratio } => {
                field(&mut out, "upper", if *upper { "true" } else { "false" });
                field_f64(&mut out, "eratio", *eratio);
            }
            TelemetryEvent::AdaptMark { unmark_prob } => {
                field_f64(&mut out, "unmark_prob", *unmark_prob);
            }
            TelemetryEvent::AdaptPktSize { rate_chg } => {
                field_f64(&mut out, "rate_chg", *rate_chg);
            }
            TelemetryEvent::AdaptFreq { rate_chg } => {
                field_f64(&mut out, "rate_chg", *rate_chg);
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSON object produced by [`Self::to_json`].
    pub fn from_json(line: &str) -> Result<Self, ParseError> {
        let map = parse_object(line)?;
        let at = get_u64(&map, "at")?;
        let seq = get_u64(&map, "seq")?;
        let flow = get_u64(&map, "flow")?;
        let kind = get_str(&map, "type")?;
        let event = match kind {
            "cwnd_update" => TelemetryEvent::CwndUpdate {
                cwnd: get_f64(&map, "cwnd")?,
                reason: CwndReason::from_label(get_str(&map, "reason")?)
                    .ok_or(ParseError::BadField("reason"))?,
            },
            "rto_fired" => TelemetryEvent::RtoFired {
                seq: get_u64(&map, "rto_seq")?,
                rto_ns: get_u64(&map, "rto_ns")?,
                backoff: get_u64(&map, "backoff")? as u32,
            },
            "segment_dropped" => TelemetryEvent::SegmentDropped {
                seq: get_u64(&map, "drop_seq")?,
                marked: get_bool(&map, "marked")?,
            },
            "unmarked" => TelemetryEvent::Unmarked {
                size: get_u64(&map, "size")? as u32,
            },
            "adapt_when" => TelemetryEvent::AdaptWhen {
                frames_ahead: get_i64(&map, "frames_ahead")?,
            },
            "adapt_cond" => TelemetryEvent::AdaptCond {
                eratio_then: get_f64(&map, "eratio_then")?,
                eratio_now: get_f64(&map, "eratio_now")?,
            },
            "window_reinflate" => TelemetryEvent::WindowReinflate {
                rate_chg: get_f64(&map, "rate_chg")?,
                factor: get_f64(&map, "factor")?,
                cwnd: get_f64(&map, "cwnd")?,
                srtt_ms: get_f64(&map, "srtt_ms")?,
            },
            "queue_depth" => TelemetryEvent::QueueDepth {
                link: get_u64(&map, "link")?,
                queued_bytes: get_u64(&map, "queued_bytes")?,
                queue_len: get_u64(&map, "queue_len")?,
                dropped: get_bool(&map, "dropped")?,
            },
            "packet" => TelemetryEvent::Packet {
                packet_id: get_u64(&map, "packet_id")?,
                size: get_u64(&map, "size")? as u32,
                kind: PacketKind::from_label(get_str(&map, "kind")?)
                    .ok_or(ParseError::BadField("kind"))?,
                link: get_i64(&map, "link")?,
            },
            "msg_delivered" => TelemetryEvent::MsgDelivered {
                msg_id: get_u64(&map, "msg_id")?,
                size: get_u64(&map, "size")? as u32,
                marked: get_bool(&map, "marked")?,
                latency_ns: get_u64(&map, "latency_ns")?,
            },
            "gap_skipped" => TelemetryEvent::GapSkipped {
                seq: get_u64(&map, "skip_seq")?,
            },
            "tolerance_change" => TelemetryEvent::ToleranceChange {
                tolerance: get_f64(&map, "tolerance")?,
                raised: get_bool(&map, "raised")?,
            },
            "period_sample" => TelemetryEvent::PeriodSample {
                eratio: get_f64(&map, "eratio")?,
                eratio_smoothed: get_f64(&map, "eratio_smoothed")?,
                srtt_ms: get_f64(&map, "srtt_ms")?,
                cwnd: get_f64(&map, "cwnd")?,
                rate_kbps: get_f64(&map, "rate_kbps")?,
            },
            "threshold" => TelemetryEvent::Threshold {
                upper: get_bool(&map, "upper")?,
                eratio: get_f64(&map, "eratio")?,
            },
            "adapt_mark" => TelemetryEvent::AdaptMark {
                unmark_prob: get_f64(&map, "unmark_prob")?,
            },
            "adapt_pktsize" => TelemetryEvent::AdaptPktSize {
                rate_chg: get_f64(&map, "rate_chg")?,
            },
            "adapt_freq" => TelemetryEvent::AdaptFreq {
                rate_chg: get_f64(&map, "rate_chg")?,
            },
            other => return Err(ParseError::UnknownKind(other.to_string())),
        };
        Ok(TelemetryRecord { at, seq, flow, event })
    }
}

/// Serializes records as one JSON object per line.
pub fn to_jsonl(records: &[TelemetryRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSONL stream produced by [`to_jsonl`] (blank lines are
/// skipped).
pub fn parse_jsonl(s: &str) -> Result<Vec<TelemetryRecord>, ParseError> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(TelemetryRecord::from_json)
        .collect()
}

fn find(map: &[(String, Tok)], key: &'static str) -> Result<Tok, ParseError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .ok_or(ParseError::MissingField(key))
}

fn get_u64(map: &[(String, Tok)], key: &'static str) -> Result<u64, ParseError> {
    match find(map, key)? {
        Tok::Num(n) => n.parse().map_err(|_| ParseError::BadField(key)),
        _ => Err(ParseError::BadField(key)),
    }
}

fn get_i64(map: &[(String, Tok)], key: &'static str) -> Result<i64, ParseError> {
    match find(map, key)? {
        Tok::Num(n) => n.parse().map_err(|_| ParseError::BadField(key)),
        _ => Err(ParseError::BadField(key)),
    }
}

fn get_f64(map: &[(String, Tok)], key: &'static str) -> Result<f64, ParseError> {
    match find(map, key)? {
        Tok::Num(n) => n.parse().map_err(|_| ParseError::BadField(key)),
        _ => Err(ParseError::BadField(key)),
    }
}

fn get_bool(map: &[(String, Tok)], key: &'static str) -> Result<bool, ParseError> {
    match find(map, key)? {
        Tok::Bool(b) => Ok(b),
        _ => Err(ParseError::BadField(key)),
    }
}

fn get_str<'m>(map: &'m [(String, Tok)], key: &'static str) -> Result<&'m str, ParseError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, Tok::Str(s))) => Ok(s),
        Some(_) => Err(ParseError::BadField(key)),
        None => Err(ParseError::MissingField(key)),
    }
}

/// Scans one flat JSON object into key/value pairs.
fn parse_object(s: &str) -> Result<Vec<(String, Tok)>, ParseError> {
    let bad = |msg: &str| ParseError::Malformed(msg.to_string());
    let bytes = s.trim().as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return Err(bad("not an object"));
    }
    let mut out = Vec::new();
    let mut i = 1;
    let end = bytes.len() - 1;
    loop {
        // Skip whitespace and separators.
        while i < end && (bytes[i] == b',' || bytes[i].is_ascii_whitespace()) {
            i += 1;
        }
        if i >= end {
            break;
        }
        // Key.
        if bytes[i] != b'"' {
            return Err(bad("expected key"));
        }
        let (key, next) = scan_string(bytes, i).ok_or_else(|| bad("unterminated key"))?;
        i = next;
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= end || bytes[i] != b':' {
            return Err(bad("expected colon"));
        }
        i += 1;
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= end {
            return Err(bad("missing value"));
        }
        // Value: string, bool, or number.
        let tok = match bytes[i] {
            b'"' => {
                let (v, next) = scan_string(bytes, i).ok_or_else(|| bad("unterminated string"))?;
                i = next;
                Tok::Str(v)
            }
            b't' if s[i..].starts_with("true") => {
                i += 4;
                Tok::Bool(true)
            }
            b'f' if s[i..].starts_with("false") => {
                i += 5;
                Tok::Bool(false)
            }
            _ => {
                let start = i;
                while i < end && bytes[i] != b',' && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                let raw = &s[start..i];
                if raw.is_empty() {
                    return Err(bad("empty value"));
                }
                Tok::Num(raw.to_string())
            }
        };
        out.push((key, tok));
    }
    Ok(out)
}

/// Scans a double-quoted string starting at `bytes[start] == b'"'`;
/// returns the contents and the index one past the closing quote. The
/// only escapes the writer emits are none at all, but `\"` and `\\` are
/// accepted for robustness.
fn scan_string(bytes: &[u8], start: usize) -> Option<(String, usize)> {
    let mut i = start + 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, i + 1)),
            b'\\' if i + 1 < bytes.len() => {
                out.push(bytes[i + 1] as char);
                i += 2;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One record of every event type, with awkward float values.
    pub(crate) fn sample_records() -> Vec<TelemetryRecord> {
        let events = vec![
            TelemetryEvent::CwndUpdate {
                cwnd: 2.0,
                reason: CwndReason::Timeout,
            },
            TelemetryEvent::RtoFired {
                seq: 42,
                rto_ns: 1_000_000_000,
                backoff: 3,
            },
            TelemetryEvent::SegmentDropped {
                seq: 7,
                marked: false,
            },
            TelemetryEvent::Unmarked { size: 972 },
            TelemetryEvent::AdaptWhen { frames_ahead: -2 },
            TelemetryEvent::AdaptCond {
                eratio_then: 0.3,
                eratio_now: 0.1 + 0.2, // deliberately 0.30000000000000004
            },
            TelemetryEvent::WindowReinflate {
                rate_chg: 0.2,
                factor: 1.25,
                cwnd: 17.5,
                srtt_ms: 31.07,
            },
            TelemetryEvent::QueueDepth {
                link: 4,
                queued_bytes: 12_000,
                queue_len: 9,
                dropped: true,
            },
            TelemetryEvent::Packet {
                packet_id: u64::MAX,
                size: 1400,
                kind: PacketKind::DroppedQueue,
                link: -1,
            },
            TelemetryEvent::MsgDelivered {
                msg_id: 5,
                size: 3000,
                marked: true,
                latency_ns: 31_000_001,
            },
            TelemetryEvent::GapSkipped { seq: 11 },
            TelemetryEvent::ToleranceChange {
                tolerance: 0.35,
                raised: true,
            },
            TelemetryEvent::PeriodSample {
                eratio: 0.0,
                eratio_smoothed: 0.015,
                srtt_ms: 30.0,
                cwnd: 12.0,
                rate_kbps: 998.7,
            },
            TelemetryEvent::Threshold {
                upper: true,
                eratio: 0.09,
            },
            TelemetryEvent::AdaptMark { unmark_prob: 0.4 },
            TelemetryEvent::AdaptPktSize { rate_chg: 0.2 },
            TelemetryEvent::AdaptFreq { rate_chg: -0.1 },
        ];
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TelemetryRecord {
                at: i as u64 * 1_000_003,
                seq: i as u64,
                flow: 1 + (i as u64 % 2),
                event,
            })
            .collect()
    }

    #[test]
    fn every_event_type_round_trips() {
        let records = sample_records();
        let jsonl = to_jsonl(&records);
        let parsed = parse_jsonl(&jsonl).expect("parse back");
        assert_eq!(parsed, records);
        // And serializing again is byte-identical.
        assert_eq!(to_jsonl(&parsed), jsonl);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(TelemetryRecord::from_json("not json").is_err());
        assert!(TelemetryRecord::from_json("{}").is_err());
        assert!(TelemetryRecord::from_json(
            "{\"at\":1,\"seq\":0,\"flow\":1,\"type\":\"no_such_event\"}"
        )
        .is_err());
        // Missing event field.
        assert!(TelemetryRecord::from_json(
            "{\"at\":1,\"seq\":0,\"flow\":1,\"type\":\"unmarked\"}"
        )
        .is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let records = sample_records();
        let mut jsonl = String::from("\n");
        jsonl.push_str(&to_jsonl(&records[..2]));
        jsonl.push('\n');
        assert_eq!(parse_jsonl(&jsonl).unwrap(), &records[..2]);
    }
}
