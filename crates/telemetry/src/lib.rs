//! # iq-telemetry
//!
//! Structured telemetry for the IQ-RUDP stack: typed per-flow event
//! records carried on a cheap ring-buffer bus with simulation-time
//! stamps, plus JSONL/CSV exporters and a summarizing report.
//!
//! The paper's coordination schemes (§3.3–§3.5) are claims about
//! *internal dynamics* — window re-inflation after a down-sample,
//! pre-network discard of unmarked datagrams, drift correction between
//! `ADAPT_COND` and the live error ratio. End-state table numbers cannot
//! observe any of that; this crate can. Every layer of the stack
//! (netsim links, the RUDP sender/receiver, the coordinator, the ECho
//! adapters) emits [`TelemetryEvent`]s through a shared
//! [`TelemetrySink`] handle:
//!
//! * **Disabled is free.** A sink is a `Option<Arc<Mutex<..>>>`
//!   internally; the disabled sink is `None` and [`TelemetrySink::emit`]
//!   is a single branch. Closure-building emit points use
//!   [`TelemetrySink::emit_with`] so the event is never even
//!   constructed.
//! * **Deterministic.** Events carry a global monotonic sequence number
//!   assigned at emission; exports are ordered by it, so a stream is a
//!   pure function of the (seeded, single-threaded) simulation and is
//!   byte-identical regardless of how many runner jobs executed
//!   concurrently.
//! * **Bounded.** Each flow gets a ring buffer; overflow evicts the
//!   oldest record and is counted, never reallocating without bound.

#![warn(missing_docs)]

pub mod bus;
pub mod event;
pub mod export;
pub mod json;
pub mod report;

pub use bus::{TelemetryBus, TelemetrySink, DEFAULT_RING_CAPACITY};
pub use event::{CwndReason, PacketKind, TelemetryEvent, TelemetryRecord};
pub use export::{to_csv, Fnv64};
pub use json::{parse_jsonl, to_jsonl, ParseError};
pub use report::{jitter_series_ms, TelemetryReport};
