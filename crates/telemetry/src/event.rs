//! Typed telemetry event records.

/// Why the congestion window changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CwndReason {
    /// End-of-period adjustment (LDA/RRR loss reaction, BBR-like model
    /// re-derivation).
    Period,
    /// Retransmission-timeout backoff.
    Timeout,
    /// Coordination rescale ([`TelemetryEvent::WindowReinflate`] carries
    /// the matching factor).
    Rescale,
    /// ACK-clocked growth (CUBIC and other per-ACK controllers; emitted
    /// only when the window actually moved).
    Ack,
    /// Fast-retransmit loss event (duplicate-ACK threshold crossed).
    Loss,
}

impl CwndReason {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            CwndReason::Period => "period",
            CwndReason::Timeout => "timeout",
            CwndReason::Rescale => "rescale",
            CwndReason::Ack => "ack",
            CwndReason::Loss => "loss",
        }
    }

    /// Parses a wire label back.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "period" => CwndReason::Period,
            "timeout" => CwndReason::Timeout,
            "rescale" => CwndReason::Rescale,
            "ack" => CwndReason::Ack,
            "loss" => CwndReason::Loss,
            _ => return None,
        })
    }
}

/// What happened to a packet inside the simulated network (the folded-in
/// netsim packet log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Injected by an agent.
    Sent,
    /// Handed to the destination agent.
    Delivered,
    /// Dropped by a queue (drop-tail or RED early drop).
    DroppedQueue,
    /// Lost by the random-loss failure model.
    LostRandom,
}

impl PacketKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            PacketKind::Sent => "sent",
            PacketKind::Delivered => "delivered",
            PacketKind::DroppedQueue => "dropped_queue",
            PacketKind::LostRandom => "lost_random",
        }
    }

    /// Parses a wire label back.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "sent" => PacketKind::Sent,
            "delivered" => PacketKind::Delivered,
            "dropped_queue" => PacketKind::DroppedQueue,
            "lost_random" => PacketKind::LostRandom,
            _ => return None,
        })
    }
}

/// One structured event emitted somewhere in the stack.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// The congestion window changed.
    CwndUpdate {
        /// New window, fractional segments.
        cwnd: f64,
        /// What caused the change.
        reason: CwndReason,
    },
    /// A retransmission timeout fired for the earliest outstanding
    /// segment.
    RtoFired {
        /// Sequence number that timed out.
        seq: u64,
        /// The RTO that expired, nanoseconds.
        rto_ns: u64,
        /// Karn backoff level after this timeout.
        backoff: u32,
    },
    /// The sender abandoned a lost segment under the receiver's loss
    /// tolerance instead of retransmitting it.
    SegmentDropped {
        /// Abandoned sequence number.
        seq: u64,
        /// Whether the segment belonged to a marked message.
        marked: bool,
    },
    /// Discard-unmarked coordination dropped an unmarked message before
    /// it entered the network (§3.3).
    Unmarked {
        /// Size of the discarded message, bytes.
        size: u32,
    },
    /// The application announced a deferred adaptation (§3.5
    /// `ADAPT_WHEN`).
    AdaptWhen {
        /// Frames until the announced execution.
        frames_ahead: i64,
    },
    /// A deferred adaptation executed with Eq. (1) drift correction
    /// (§3.5 `ADAPT_COND`).
    AdaptCond {
        /// Error ratio the application decided on.
        eratio_then: f64,
        /// Transport's live smoothed error ratio at execution.
        eratio_now: f64,
    },
    /// Coordination re-inflated the window after a reported resolution
    /// adaptation (§3.4).
    WindowReinflate {
        /// Reported rate change (fraction of data removed).
        rate_chg: f64,
        /// Factor applied to the window.
        factor: f64,
        /// Window after re-inflation, segments.
        cwnd: f64,
        /// Smoothed RTT at the rescale, milliseconds (0 before the
        /// first sample).
        srtt_ms: f64,
    },
    /// Queue occupancy of a link observed when a packet was offered to
    /// it.
    QueueDepth {
        /// Link identifier.
        link: u64,
        /// Bytes waiting after the enqueue decision.
        queued_bytes: u64,
        /// Packets waiting after the enqueue decision.
        queue_len: u64,
        /// Whether the offered packet was dropped.
        dropped: bool,
    },
    /// Packet lifecycle event folded in from the netsim packet log.
    Packet {
        /// Simulator-assigned packet id.
        packet_id: u64,
        /// Wire size, bytes.
        size: u32,
        /// What happened.
        kind: PacketKind,
        /// Link involved for queue drops and random losses; `-1`
        /// otherwise.
        link: i64,
    },
    /// A reassembled message reached the receiving application.
    MsgDelivered {
        /// Application message id.
        msg_id: u64,
        /// Message size, bytes.
        size: u32,
        /// Whether it was marked (must-deliver).
        marked: bool,
        /// Send-to-delivery latency, nanoseconds.
        latency_ns: u64,
    },
    /// The receiver skipped abandoned sequence numbers up to a `fwd_seq`
    /// floor.
    GapSkipped {
        /// First skipped sequence number.
        seq: u64,
    },
    /// The receiving application re-adapted its loss tolerance.
    ToleranceChange {
        /// New tolerance in `[0, 1]`.
        tolerance: f64,
        /// Whether the tolerance was raised.
        raised: bool,
    },
    /// A measuring period ended with these observed conditions.
    PeriodSample {
        /// Raw per-period error ratio.
        eratio: f64,
        /// Smoothed error ratio.
        eratio_smoothed: f64,
        /// Smoothed RTT, milliseconds.
        srtt_ms: f64,
        /// Window at period end, segments.
        cwnd: f64,
        /// Acked rate over the period, KB/s.
        rate_kbps: f64,
    },
    /// An error-ratio threshold callback fired toward the application.
    Threshold {
        /// `true` for the upper (congestion) threshold, `false` for the
        /// lower (recovery) one.
        upper: bool,
        /// Error ratio that crossed the threshold.
        eratio: f64,
    },
    /// The application changed its unmarking probability (§3.3).
    AdaptMark {
        /// New probability of unmarking a non-control datagram.
        unmark_prob: f64,
    },
    /// The application down-/up-sampled its frames (§3.4; negative
    /// values are size increases).
    AdaptPktSize {
        /// Fraction of data removed (negative: added).
        rate_chg: f64,
    },
    /// The application changed its frame frequency.
    AdaptFreq {
        /// Fractional frequency reduction (negative: increase).
        rate_chg: f64,
    },
}

impl TelemetryEvent {
    /// Stable wire label of the event type.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::CwndUpdate { .. } => "cwnd_update",
            TelemetryEvent::RtoFired { .. } => "rto_fired",
            TelemetryEvent::SegmentDropped { .. } => "segment_dropped",
            TelemetryEvent::Unmarked { .. } => "unmarked",
            TelemetryEvent::AdaptWhen { .. } => "adapt_when",
            TelemetryEvent::AdaptCond { .. } => "adapt_cond",
            TelemetryEvent::WindowReinflate { .. } => "window_reinflate",
            TelemetryEvent::QueueDepth { .. } => "queue_depth",
            TelemetryEvent::Packet { .. } => "packet",
            TelemetryEvent::MsgDelivered { .. } => "msg_delivered",
            TelemetryEvent::GapSkipped { .. } => "gap_skipped",
            TelemetryEvent::ToleranceChange { .. } => "tolerance_change",
            TelemetryEvent::PeriodSample { .. } => "period_sample",
            TelemetryEvent::Threshold { .. } => "threshold",
            TelemetryEvent::AdaptMark { .. } => "adapt_mark",
            TelemetryEvent::AdaptPktSize { .. } => "adapt_pktsize",
            TelemetryEvent::AdaptFreq { .. } => "adapt_freq",
        }
    }
}

/// One timestamped record on the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecord {
    /// Simulation time, nanoseconds.
    pub at: u64,
    /// Global emission order (monotonic across all flows of one bus).
    pub seq: u64,
    /// Flow the event belongs to.
    pub flow: u64,
    /// The event itself.
    pub event: TelemetryEvent,
}
