//! Summaries derived from a telemetry stream.

use std::collections::BTreeMap;

use crate::event::{TelemetryEvent, TelemetryRecord};

/// Aggregate view of one telemetry stream.
///
/// Everything here is derived purely from the records, so a report built
/// from a parsed JSONL file equals one built from the live bus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Record count per event type, keyed by wire label.
    pub counts: BTreeMap<&'static str, u64>,
    /// Sim-time of the first record, nanoseconds.
    pub first_at: Option<u64>,
    /// Sim-time of the last record, nanoseconds.
    pub last_at: Option<u64>,
    /// Smallest congestion window observed in `cwnd_update` records.
    pub min_cwnd: Option<f64>,
    /// Largest congestion window observed in `cwnd_update` records.
    pub max_cwnd: Option<f64>,
    /// Number of retransmission timeouts.
    pub rto_count: u64,
    /// Number of coordination window re-inflations.
    pub reinflations: u64,
    /// Cumulative product of re-inflation factors.
    pub reinflation_factor: f64,
    /// Segments abandoned under loss tolerance.
    pub segments_dropped: u64,
    /// Unmarked messages discarded before the network (§3.3).
    pub unmarked_discards: u64,
    /// Messages delivered to the application.
    pub msgs_delivered: u64,
    /// Mean delivery latency over `msg_delivered` records, milliseconds.
    pub mean_delivery_ms: f64,
}

impl TelemetryReport {
    /// Builds a report from records (any order; `at` extremes are taken
    /// over all records).
    pub fn from_records(records: &[TelemetryRecord]) -> Self {
        let mut rep = TelemetryReport {
            reinflation_factor: 1.0,
            ..TelemetryReport::default()
        };
        let mut latency_sum_ns = 0u64;
        for r in records {
            *rep.counts.entry(r.event.kind()).or_insert(0) += 1;
            rep.first_at = Some(rep.first_at.map_or(r.at, |f| f.min(r.at)));
            rep.last_at = Some(rep.last_at.map_or(r.at, |l| l.max(r.at)));
            match &r.event {
                TelemetryEvent::CwndUpdate { cwnd, .. } => {
                    rep.min_cwnd = Some(rep.min_cwnd.map_or(*cwnd, |m| m.min(*cwnd)));
                    rep.max_cwnd = Some(rep.max_cwnd.map_or(*cwnd, |m| m.max(*cwnd)));
                }
                TelemetryEvent::RtoFired { .. } => rep.rto_count += 1,
                TelemetryEvent::WindowReinflate { factor, .. } => {
                    rep.reinflations += 1;
                    rep.reinflation_factor *= *factor;
                }
                TelemetryEvent::SegmentDropped { .. } => rep.segments_dropped += 1,
                TelemetryEvent::Unmarked { .. } => rep.unmarked_discards += 1,
                TelemetryEvent::MsgDelivered { latency_ns, .. } => {
                    rep.msgs_delivered += 1;
                    latency_sum_ns += *latency_ns;
                }
                _ => {}
            }
        }
        if rep.msgs_delivered > 0 {
            rep.mean_delivery_ms =
                latency_sum_ns as f64 / rep.msgs_delivered as f64 / 1e6;
        }
        rep
    }

    /// Count for one event type by wire label (0 when absent).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }
}

/// Rebuilds a flow's jitter time-series from its `msg_delivered` events.
///
/// This mirrors `FlowMetrics::on_message` exactly — for each delivery
/// after the first, the inter-arrival gap feeds a running (Welford) mean
/// and the point recorded at the delivery time is the absolute deviation
/// of that gap from the *updated* mean, in milliseconds. Records must be
/// in emission order (as [`crate::bus::TelemetryBus::records`] and
/// [`crate::json::parse_jsonl`] on an exported stream both yield), so
/// the series is bit-identical to the one the metrics crate collects
/// during the run.
pub fn jitter_series_ms(records: &[TelemetryRecord], flow: u64) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    let mut prev_at: Option<u64> = None;
    let mut count: u64 = 0;
    let mut mean: f64 = 0.0;
    for r in records {
        if r.flow != flow {
            continue;
        }
        if let TelemetryEvent::MsgDelivered { .. } = r.event {
            if let Some(prev) = prev_at {
                // `* 1e-9`, not `/ 1e9`: must stay bit-identical to
                // `FlowMetrics::record_gap`, which uses the multiply
                // form on its hot path.
                let gap_s = (r.at - prev) as f64 * 1e-9;
                count += 1;
                let delta = gap_s - mean;
                mean += delta / count as f64;
                out.push((r.at, (gap_s - mean).abs() * 1e3));
            }
            prev_at = Some(r.at);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CwndReason;

    fn delivered(at: u64, flow: u64, seq: u64) -> TelemetryRecord {
        TelemetryRecord {
            at,
            seq,
            flow,
            event: TelemetryEvent::MsgDelivered {
                msg_id: seq,
                size: 1000,
                marked: false,
                latency_ns: 2_000_000,
            },
        }
    }

    #[test]
    fn report_aggregates_counts_and_extremes() {
        let records = vec![
            TelemetryRecord {
                at: 10,
                seq: 0,
                flow: 1,
                event: TelemetryEvent::CwndUpdate {
                    cwnd: 4.0,
                    reason: CwndReason::Period,
                },
            },
            TelemetryRecord {
                at: 20,
                seq: 1,
                flow: 1,
                event: TelemetryEvent::CwndUpdate {
                    cwnd: 2.0,
                    reason: CwndReason::Timeout,
                },
            },
            TelemetryRecord {
                at: 30,
                seq: 2,
                flow: 1,
                event: TelemetryEvent::WindowReinflate {
                    rate_chg: 0.2,
                    factor: 1.25,
                    cwnd: 2.5,
                    srtt_ms: 30.0,
                },
            },
            delivered(40, 1, 3),
        ];
        let rep = TelemetryReport::from_records(&records);
        assert_eq!(rep.count("cwnd_update"), 2);
        assert_eq!(rep.count("window_reinflate"), 1);
        assert_eq!(rep.count("absent_kind"), 0);
        assert_eq!(rep.first_at, Some(10));
        assert_eq!(rep.last_at, Some(40));
        assert_eq!(rep.min_cwnd, Some(2.0));
        assert_eq!(rep.max_cwnd, Some(4.0));
        assert_eq!(rep.reinflations, 1);
        assert!((rep.reinflation_factor - 1.25).abs() < 1e-12);
        assert_eq!(rep.msgs_delivered, 1);
        assert!((rep.mean_delivery_ms - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let rep = TelemetryReport::from_records(&[]);
        assert_eq!(rep.first_at, None);
        assert_eq!(rep.msgs_delivered, 0);
        assert_eq!(rep.mean_delivery_ms, 0.0);
    }

    #[test]
    fn jitter_series_mirrors_welford_deviation() {
        // Gaps: 1s, 3s. Welford means after each push: 1.0, 2.0.
        // Deviations: |1-1| = 0 ms, |3-2| = 1000 ms.
        let records = vec![
            delivered(0, 1, 0),
            delivered(1_000_000_000, 1, 1),
            delivered(4_000_000_000, 1, 2),
            // Other flows and event types are ignored.
            delivered(4_500_000_000, 2, 3),
        ];
        let series = jitter_series_ms(&records, 1);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (1_000_000_000, 0.0));
        assert_eq!(series[1].0, 4_000_000_000);
        assert!((series[1].1 - 1000.0).abs() < 1e-9);
    }
}
