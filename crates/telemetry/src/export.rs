//! CSV export for quick spreadsheet inspection.
//!
//! The JSONL stream is the canonical format; CSV flattens each event's
//! fields into a single `k=v;k=v` detail column so heterogeneous event
//! types share one schema.

use crate::event::TelemetryRecord;

/// The 64-bit FNV-1a hasher behind the determinism fingerprints.
///
/// Both the parallel runner's bit-exact scenario fingerprint and the
/// model checker's visited-state table fold their observations through
/// this hasher, so "two states hash equal" and "two runs fingerprint
/// equal" mean the same thing: byte-identical serialized observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: Self::BASIS }
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds one `u8`.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Folds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write(&[u8::from(v)]);
    }

    /// Folds an `f64` by exact bit pattern (any difference, however
    /// small, is a distinct state — same rule as the runner's
    /// determinism check).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders records as CSV with header `at,seq,flow,type,detail`.
///
/// The detail column holds the event's JSON fields (everything after the
/// `type` tag) re-joined as `key=value` pairs separated by `;`, in the
/// same order [`TelemetryRecord::to_json`] writes them.
pub fn to_csv(records: &[TelemetryRecord]) -> String {
    let mut out = String::with_capacity(32 + records.len() * 64);
    out.push_str("at,seq,flow,type,detail\n");
    for r in records {
        let json = r.to_json();
        out.push_str(&r.at.to_string());
        out.push(',');
        out.push_str(&r.seq.to_string());
        out.push(',');
        out.push_str(&r.flow.to_string());
        out.push(',');
        out.push_str(r.event.kind());
        out.push(',');
        out.push_str(&detail_from_json(&json));
        out.push('\n');
    }
    out
}

/// Extracts the fields after `"type":"..."` from a record's JSON and
/// joins them as `k=v;k=v` (quotes stripped).
fn detail_from_json(json: &str) -> String {
    // The writer emits `..,"type":"<kind>",<fields>}`; everything after
    // the type value (if any) is the detail.
    let after = match json.find("\"type\":\"") {
        Some(i) => {
            let rest = &json[i + 8..];
            match rest.find('"') {
                Some(j) => &rest[j + 1..],
                None => return String::new(),
            }
        }
        None => return String::new(),
    };
    let body = after
        .strip_prefix(',')
        .unwrap_or(after)
        .strip_suffix('}')
        .unwrap_or(after);
    body.split(',')
        .filter(|p| !p.is_empty())
        .map(|pair| pair.replace('"', "").replacen(':', "=", 1))
        .collect::<Vec<_>>()
        .join(";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CwndReason, TelemetryEvent};

    #[test]
    fn csv_has_header_and_detail_pairs() {
        let records = vec![
            TelemetryRecord {
                at: 5,
                seq: 0,
                flow: 1,
                event: TelemetryEvent::CwndUpdate {
                    cwnd: 3.5,
                    reason: CwndReason::Period,
                },
            },
            TelemetryRecord {
                at: 9,
                seq: 1,
                flow: 1,
                event: TelemetryEvent::Unmarked { size: 972 },
            },
        ];
        let csv = to_csv(&records);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "at,seq,flow,type,detail");
        assert_eq!(lines[1], "5,0,1,cwnd_update,cwnd=3.5;reason=period");
        assert_eq!(lines[2], "9,1,1,unmarked,size=972");
    }
}
