//! The eight tables of the paper's evaluation, one builder each.
//!
//! Every function returns the scenarios (so tests and benches can scale
//! them down) plus a `run_*` entry point producing rendered rows. The
//! configurations mirror §3.1's setup: a 20 Mb bottleneck with 30 ms
//! path RTT, 1400 B maximum segments, MBone-trace application frames at
//! 3000 B/member, and iperf-style CBR or MBone-VBR cross traffic.
//! Absolute magnitudes differ from the paper's testbed; the comparisons
//! (who wins, direction, rough factor) are the reproduction target.

use iq_metrics::{fmt, Table};
use iq_rudp::CcAlgorithm;

use crate::runner::{
    render_conflict, render_overreaction, render_time_tp_ia_jitter, run_averaged,
};
use crate::scenario::{app_frame_sizes, PolicySpec, RunResult, Scenario, Scheme, VbrSpec};

/// Scale knob for tests: 1.0 = paper-sized runs, smaller = faster.
#[derive(Debug, Clone, Copy)]
pub struct Size(pub f64);

impl Size {
    /// Paper-scale runs (the default for benches and the harness).
    pub const FULL: Size = Size(1.0);
    /// Quick runs for unit tests.
    ///
    /// The smoke schedules must still outlast the transport's congestion
    /// ramp: the LDA window grows additively (+1 segment per 100 ms
    /// period) from 2 segments, so it takes ~5 s of simulated time to
    /// overshoot the ~26-segment bottleneck share and produce the first
    /// loss period. Below 0.25 the rate-based table-3 schedule (3000
    /// frames at 100 fps, scaled) ends before congestion onset and the
    /// conflict scenarios degenerate into loss-free runs.
    pub const SMOKE: Size = Size(0.25);

    fn frames(&self, full: usize) -> usize {
        ((full as f64 * self.0) as usize).max(40)
    }
}

// ---------------------------------------------------------------- Table 1

/// Table 1: basic performance comparison under 18 Mb CBR cross traffic.
pub fn table1_scenarios(size: Size) -> Vec<Scenario> {
    let frames = app_frame_sizes(size.frames(1000), 7);
    let base = |scheme, policy| {
        let mut sc = Scenario::new(scheme, policy, frames.clone());
        sc.cross.cbr_bps = Some(18e6);
        sc.thresholds = (Some(0.15), Some(0.01));
        sc.deadline_s = 900.0;
        sc
    };
    vec![
        base(Scheme::Tcp, PolicySpec::None),
        base(Scheme::RudpPlain, PolicySpec::None),
        base(Scheme::AppAdaptOnly, PolicySpec::Resolution),
        base(Scheme::Coordinated, PolicySpec::Resolution),
    ]
}

/// Runs Table 1 and returns its rows.
pub fn run_table1(size: Size) -> Vec<RunResult> {
    let mut rows = run_averaged(&table1_scenarios(size), 3);
    rows[2].label = "App adaptation only";
    rows[3].label = "IQ-RUDP w/ app adaptation";
    rows
}

/// Renders Table 1.
pub fn render_table1(rows: &[RunResult]) -> String {
    render_time_tp_ia_jitter("Table 1: Basic performance comparison", rows)
}

// ---------------------------------------------------------------- Table 2

/// Table 2: fairness against a competing TCP bulk flow.
pub fn table2_scenarios(size: Size) -> Vec<Scenario> {
    let frames = vec![1400u32; size.frames(4000)];
    let base = |scheme| {
        let mut sc = Scenario::new(scheme, PolicySpec::None, frames.clone());
        sc.cross.tcp_bulk = true;
        sc.deadline_s = 300.0;
        sc
    };
    vec![base(Scheme::Tcp), base(Scheme::RudpPlain)]
}

/// Runs Table 2.
pub fn run_table2(size: Size) -> Vec<RunResult> {
    run_averaged(&table2_scenarios(size), 3)
}

/// Renders Table 2.
pub fn render_table2(rows: &[RunResult]) -> String {
    render_time_tp_ia_jitter("Table 2: Fairness test (vs TCP cross flow)", rows)
}

// ------------------------------------------------------------ Tables 3/4

/// Table 3: coordination against conflict, changing application.
///
/// MBone-trace frames at a fixed frame rate, split into datagrams with
/// the §3.3 marking policy (thresholds 30 %/5 %, tolerance 40 %), over
/// 10 Mb CBR cross traffic.
pub fn table3_scenarios(size: Size) -> Vec<Scenario> {
    let frames = app_frame_sizes(size.frames(3000), 11);
    vec![
        conflict_scenario(&frames, Scheme::Coordinated),
        conflict_scenario(&frames, Scheme::Uncoordinated),
    ]
}

/// The Table-3 conflict workload under `scheme`: MBone frames at a
/// fixed rate, marking policy, 12 Mb CBR cross traffic. Shared by
/// Table 3 and the CC × scheme matrix (Table 9).
pub(crate) fn conflict_scenario(frames: &[u32], scheme: Scheme) -> Scenario {
    let mut sc = Scenario::new(scheme, PolicySpec::Marking, frames.to_vec());
    sc.fps = Some(100.0);
    sc.datagram_mode = true;
    sc.loss_tolerance = 0.40;
    // The paper's 30 %/5 % thresholds fit EMULAB's loss regime; our
    // drop-tail bottleneck produces smaller per-period ratios, so
    // the thresholds scale down with it (see DESIGN.md).
    sc.thresholds = (Some(0.10), Some(0.02));
    sc.min_lower_gap_s = 1.5;
    sc.cross.cbr_bps = Some(12e6);
    sc.deadline_s = 600.0;
    sc
}

/// Runs Table 3.
pub fn run_table3(size: Size) -> Vec<RunResult> {
    run_averaged(&table3_scenarios(size), 3)
}

/// Renders Table 3.
pub fn render_table3(rows: &[RunResult]) -> String {
    render_conflict(
        "Table 3: Coordination against conflict - changing application",
        rows,
    )
}

/// Table 4: coordination against conflict, changing network.
///
/// Fixed-size datagrams sent as fast as RUDP allows, marking policy,
/// VBR UDP cross traffic plus 10 Mb CBR.
pub fn table4_scenarios(size: Size) -> Vec<Scenario> {
    let frames = vec![1400u32; size.frames(5000)];
    let base = |scheme| {
        let mut sc = Scenario::new(scheme, PolicySpec::Marking, frames.clone());
        sc.datagram_mode = true;
        sc.loss_tolerance = 0.40;
        sc.thresholds = (Some(0.10), Some(0.02));
        sc.min_lower_gap_s = 1.5;
        sc.cross.cbr_bps = Some(12e6);
        sc.cross.vbr = Some(VbrSpec {
            fps: 500.0,
            mean_bps: 6e6,
            seed: 13,
        });
        sc.deadline_s = 600.0;
        sc
    };
    vec![base(Scheme::Coordinated), base(Scheme::Uncoordinated)]
}

/// Runs Table 4.
pub fn run_table4(size: Size) -> Vec<RunResult> {
    run_averaged(&table4_scenarios(size), 3)
}

/// Renders Table 4.
pub fn render_table4(rows: &[RunResult]) -> String {
    render_conflict(
        "Table 4: Coordination against conflict - changing network",
        rows,
    )
}

// ------------------------------------------------------------ Tables 5/6

/// Table 5: coordination against over-reaction, changing application.
///
/// MBone-trace frames as datagrams, §3.4 resolution policy (thresholds
/// 15 %/1 %), moderate CBR cross traffic.
pub fn table5_scenarios(size: Size) -> Vec<Scenario> {
    let frames = app_frame_sizes(size.frames(2000), 17);
    let base = |scheme| {
        let mut sc = Scenario::new(scheme, PolicySpec::Resolution, frames.clone());
        sc.fps = Some(60.0); // rate-based source (§3.1 setting 1)
        sc.datagram_mode = true;
        sc.thresholds = (Some(0.15), Some(0.01));
        sc.cross.cbr_bps = Some(14e6);
        sc.deadline_s = 600.0;
        sc
    };
    vec![base(Scheme::Coordinated), base(Scheme::Uncoordinated)]
}

/// Runs Table 5.
pub fn run_table5(size: Size) -> Vec<RunResult> {
    run_averaged(&table5_scenarios(size), 3)
}

/// Renders Table 5.
pub fn render_table5(rows: &[RunResult]) -> String {
    let labels: Vec<String> = rows.iter().map(|r| r.label.to_string()).collect();
    render_overreaction(
        "Table 5: Coordination against overreaction - changing app",
        &labels,
        rows,
    )
}

/// The iperf rates swept by Table 6, bits/second.
pub const TABLE6_IPERF_BPS: [f64; 3] = [12e6, 16e6, 18e6];

/// Table 6: over-reaction, changing network, at increasing congestion.
pub fn table6_scenarios(size: Size) -> Vec<Scenario> {
    let frames = vec![1400u32; size.frames(4000)];
    let mut scenarios = Vec::new();
    for &cbr in &TABLE6_IPERF_BPS {
        for scheme in [Scheme::Coordinated, Scheme::Uncoordinated] {
            let mut sc = Scenario::new(scheme, PolicySpec::Resolution, frames.clone());
            sc.datagram_mode = true;
            sc.thresholds = (Some(0.15), Some(0.01));
            sc.cross.cbr_bps = Some(cbr);
            sc.cross.vbr = Some(VbrSpec {
                fps: 500.0,
                mean_bps: 2.5e6,
                seed: 13,
            });
            sc.deadline_s = 900.0;
            scenarios.push(sc);
        }
    }
    scenarios
}

/// Runs Table 6; rows come in (IQ-RUDP, RUDP) pairs per iperf rate.
pub fn run_table6(size: Size) -> Vec<RunResult> {
    run_averaged(&table6_scenarios(size), 3)
}

/// Renders Table 6.
pub fn render_table6(rows: &[RunResult]) -> String {
    let labels: Vec<String> = TABLE6_IPERF_BPS
        .iter()
        .flat_map(|&bps| {
            let mb = bps / 1e6;
            [
                format!("{mb:.0}Mbps IQ-RUDP"),
                format!("{mb:.0}Mbps RUDP"),
            ]
        })
        .collect();
    render_overreaction(
        "Table 6: Coordination against overreaction - changing network",
        &labels,
        rows,
    )
}

// ------------------------------------------------------------ Tables 7/8

/// Table 7: limited adaptation granularity, changing application.
///
/// As Table 5 but the application may only adapt at frames divisible by
/// 20; RUDP vs IQ-RUDP (without `ADAPT_COND`).
pub fn table7_scenarios(size: Size) -> Vec<Scenario> {
    let frames = app_frame_sizes(size.frames(2000), 17);
    let base = |scheme| {
        let mut sc =
            Scenario::new(scheme, PolicySpec::Deferred { granularity: 20 }, frames.clone());
        sc.fps = Some(60.0);
        sc.datagram_mode = true;
        sc.thresholds = (Some(0.15), Some(0.01));
        sc.measure_period = Some(iq_netsim::time::millis(200));
        sc.cross.cbr_bps = Some(14e6);
        sc.deadline_s = 600.0;
        sc
    };
    vec![base(Scheme::Coordinated), base(Scheme::Uncoordinated)]
}

/// Runs Table 7.
pub fn run_table7(size: Size) -> Vec<RunResult> {
    let mut rows = run_averaged(&table7_scenarios(size), 3);
    rows[0].label = "IQ-RUDP w/o ADAPT_COND";
    rows
}

/// Renders Table 7.
pub fn render_table7(rows: &[RunResult]) -> String {
    let labels: Vec<String> = rows.iter().map(|r| r.label.to_string()).collect();
    render_overreaction(
        "Table 7: Limited adaptation granularity - changing app",
        &labels,
        rows,
    )
}

/// Table 8: limited granularity, changing network, on the 125 ms
/// one-way-delay path with a rate-based application and 14 Mb CBR cross
/// traffic; three schemes.
pub fn table8_scenarios(size: Size) -> Vec<Scenario> {
    // The deferral/obsolete-information dynamics play out in the first
    // ~30 s; longer schedules only dilute the scheme differences into a
    // long backlog drain, so the schedule is capped.
    let frames = vec![1400u32; size.frames(3000).min(1000)];
    let base = |scheme| {
        let mut sc =
            Scenario::new(scheme, PolicySpec::Deferred { granularity: 20 }, frames.clone());
        sc.dumbbell = iq_netsim::DumbbellSpec::long_rtt(3);
        sc.fps = Some(120.0);
        sc.datagram_mode = true;
        sc.thresholds = (Some(0.10), Some(0.02));
        sc.measure_period = Some(iq_netsim::time::millis(300));
        sc.cross.cbr_bps = Some(16e6);
        sc.cross.vbr = Some(VbrSpec {
            fps: 500.0,
            mean_bps: 3e6,
            seed: 29,
        });
        sc.deadline_s = 600.0;
        sc
    };
    vec![
        base(Scheme::CoordinatedWithCond),
        base(Scheme::Coordinated),
        base(Scheme::Uncoordinated),
    ]
}

/// Runs Table 8.
pub fn run_table8(size: Size) -> Vec<RunResult> {
    let mut rows = run_averaged(&table8_scenarios(size), 3);
    rows[1].label = "IQ-RUDP w/o ADAPT_COND";
    rows
}

/// Renders Table 8.
pub fn render_table8(rows: &[RunResult]) -> String {
    let labels: Vec<String> = rows.iter().map(|r| r.label.to_string()).collect();
    render_overreaction(
        "Table 8: Limited adaptation granularity - changing network",
        &labels,
        rows,
    )
}

// ---------------------------------------------------------------- Table 9

/// Table 9 (not in the paper): the coordination-benefit matrix across
/// congestion controllers — the Table-3 conflict workload run under
/// every [`CcAlgorithm`], coordinated and uncoordinated (ROADMAP item
/// 4: stress-test the coordination schemes beyond LDA).
pub fn table9_scenarios(size: Size) -> Vec<Scenario> {
    let frames = app_frame_sizes(size.frames(3000), 11);
    let mut out = Vec::new();
    for alg in CcAlgorithm::all_adaptive() {
        for scheme in [Scheme::Coordinated, Scheme::Uncoordinated] {
            let mut sc = conflict_scenario(&frames, scheme);
            sc.cc = alg.clone();
            out.push(sc);
        }
    }
    out
}

/// Row label for one CC × scheme cell (static so [`RunResult::label`]
/// stays a `&'static str`).
fn cc_row_label(alg: &CcAlgorithm, scheme: Scheme) -> &'static str {
    let coordinated = scheme == Scheme::Coordinated;
    match (alg.name(), coordinated) {
        ("lda", true) => "LDA / coordinated",
        ("lda", false) => "LDA / uncoordinated",
        ("cubic", true) => "CUBIC / coordinated",
        ("cubic", false) => "CUBIC / uncoordinated",
        ("bbr", true) => "BBR-like / coordinated",
        ("bbr", false) => "BBR-like / uncoordinated",
        ("rrr", true) => "RRR / coordinated",
        ("rrr", false) => "RRR / uncoordinated",
        (_, true) => "other / coordinated",
        (_, false) => "other / uncoordinated",
    }
}

/// Runs Table 9. Rows come out in [`CcAlgorithm::all_adaptive`] order,
/// coordinated before uncoordinated within each controller.
pub fn run_table9(size: Size) -> Vec<RunResult> {
    let scenarios = table9_scenarios(size);
    let mut rows = run_averaged(&scenarios, 3);
    for (row, sc) in rows.iter_mut().zip(&scenarios) {
        row.label = cc_row_label(&sc.cc, sc.scheme);
    }
    rows
}

/// Renders Table 9: the full matrix plus a per-controller benefit
/// summary (coordinated minus uncoordinated).
pub fn render_table9(rows: &[RunResult]) -> String {
    let mut out = render_conflict(
        "Table 9: Coordination benefit across congestion controllers",
        rows,
    );
    let mut t = Table::new(
        "Coordination benefit (coordinated - uncoordinated)",
        &[
            "Controller",
            "dRecvd(pp)",
            "dTaggedJitter(ms)",
            "dJitter(ms)",
        ],
    );
    for pair in rows.chunks_exact(2) {
        let (c, u) = (&pair[0], &pair[1]);
        let controller = c.label.split(" /").next().unwrap_or(c.label);
        t.row(&[
            controller.to_string(),
            fmt(c.delivered_pct - u.delivered_pct, 1),
            fmt(c.tagged_jitter_ms - u.tagged_jitter_ms, 2),
            fmt((c.jitter_s - u.jitter_s) * 1e3, 2),
        ]);
    }
    out.push('\n');
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_builders_have_expected_row_counts() {
        assert_eq!(table1_scenarios(Size::SMOKE).len(), 4);
        assert_eq!(table2_scenarios(Size::SMOKE).len(), 2);
        assert_eq!(table3_scenarios(Size::SMOKE).len(), 2);
        assert_eq!(table4_scenarios(Size::SMOKE).len(), 2);
        assert_eq!(table5_scenarios(Size::SMOKE).len(), 2);
        assert_eq!(table6_scenarios(Size::SMOKE).len(), 6);
        assert_eq!(table7_scenarios(Size::SMOKE).len(), 2);
        assert_eq!(table8_scenarios(Size::SMOKE).len(), 3);
        assert_eq!(table9_scenarios(Size::SMOKE).len(), 8);
    }

    #[test]
    fn table9_covers_every_adaptive_controller_twice() {
        let scenarios = table9_scenarios(Size::SMOKE);
        for (i, alg) in CcAlgorithm::all_adaptive().iter().enumerate() {
            assert_eq!(&scenarios[2 * i].cc, alg);
            assert_eq!(scenarios[2 * i].scheme, Scheme::Coordinated);
            assert_eq!(&scenarios[2 * i + 1].cc, alg);
            assert_eq!(scenarios[2 * i + 1].scheme, Scheme::Uncoordinated);
        }
        // Labels are distinct per cell.
        let labels: std::collections::BTreeSet<&str> = scenarios
            .iter()
            .map(|sc| cc_row_label(&sc.cc, sc.scheme))
            .collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn size_scaling_bounds() {
        assert_eq!(Size::FULL.frames(1000), 1000);
        assert_eq!(Size(0.5).frames(1000), 500);
        assert_eq!(Size(0.0001).frames(1000), 40);
    }
}
