//! # iq-experiments
//!
//! Reproductions of every table and figure in the IQ-RUDP paper's
//! evaluation (§3). Each module builds its scenario(s) on the shared
//! [`scenario`] runner and renders rows shaped like the paper's tables.
//!
//! * [`tables`] — Tables 1–8 (`run_table1` … `run_table8`).
//! * [`figures`] — Figures 1–4.
//! * [`runner`] — parallel execution and row rendering.
//! * [`benchmode`] — the `iqrudp bench` simulator-throughput sweep.

#![warn(missing_docs)]

pub mod ablations;
pub mod benchmode;
pub mod figures;
pub mod runner;
pub mod scenario;
pub mod tables;

pub use benchmode::{bench_main, BenchOptions, BenchRun};
pub use runner::{
    jobs, run_parallel, run_specs, set_jobs, set_metrics_dir, set_shards, tune_allocator,
    set_telemetry_capture, set_telemetry_dir, set_telemetry_ring, set_timing_report,
    set_verify_determinism, shards, Executor, ScenarioReport, ScenarioSpec,
};
pub use scenario::{
    app_frame_sizes, run_scenario, CrossTraffic, PolicySpec, RunResult, Scenario, Scheme,
    VbrSpec,
};
pub use tables::Size;
