//! Generic experiment scenarios: one adaptive application flow over the
//! paper's dumbbell, with configurable cross traffic and transport
//! scheme. Every table module builds on this runner.

use iq_core::{CoordinationLog, CoordinationMode};
use iq_echo::{
    AdaptiveSourceAgent, DeferredResolution, EchoSinkAgent, MarkingAdapter, Policy,
    ResolutionAdapter, SourceConfig,
};
use iq_metrics::TimeSeries;
use iq_netsim::{
    build_dumbbell, time, Addr, AgentId, Dumbbell, DumbbellSpec, FlowId, LinkSpec, ShardedSim,
    Simulator,
};
use iq_obs::{Phase, Plane, Registry};
use iq_rudp::{BbrParams, CcAlgorithm, CubicParams, RrrParams, RudpConfig};
use iq_tcp::{TcpBulkSenderAgent, TcpConfig, TcpSenderConn, TcpSinkAgent};
use iq_telemetry::{to_jsonl, TelemetrySink};
use iq_trace::{MembershipConfig, MembershipTrace};
use iq_workload::{CbrSource, VbrSource};

/// Which transport/adaptation scheme the application flow runs — the
/// row label of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// TCP Reno baseline.
    Tcp,
    /// RUDP with congestion control, no application adaptation, no
    /// coordination (the "IQ-RUDP" transport-only row of Table 1).
    RudpPlain,
    /// RUDP with application adaptation but congestion control disabled
    /// (Table 1 row 3, "App adaptation only").
    AppAdaptOnly,
    /// Application adaptation + transport adaptation, uncoordinated
    /// (the "RUDP" rows of Tables 3-8).
    Uncoordinated,
    /// Application adaptation + transport adaptation, coordinated
    /// ("IQ-RUDP" rows; "w/o ADAPT_COND" in Table 8's terms).
    Coordinated,
    /// Coordinated plus the Eq. (1) obsolete-information correction
    /// ("IQ-RUDP w/ ADAPT_COND").
    CoordinatedWithCond,
}

impl Scheme {
    /// The coordination mode a scheme maps to (RUDP-based schemes only).
    pub fn mode(self) -> CoordinationMode {
        match self {
            Scheme::Coordinated => CoordinationMode::Coordinated,
            Scheme::CoordinatedWithCond => CoordinationMode::CoordinatedWithCond,
            _ => CoordinationMode::Uncoordinated,
        }
    }

    /// Human-readable row label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Tcp => "TCP",
            Scheme::RudpPlain => "IQ-RUDP",
            Scheme::AppAdaptOnly => "App adaptation only",
            Scheme::Uncoordinated => "RUDP",
            Scheme::Coordinated => "IQ-RUDP",
            Scheme::CoordinatedWithCond => "IQ-RUDP w/ ADAPT_COND",
        }
    }
}

/// The application adaptation policy a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// No application adaptation.
    None,
    /// §3.3 marking (reliability) adaptation.
    Marking,
    /// §3.4 resolution (down-sampling) adaptation.
    Resolution,
    /// Frequency adaptation (send the same frames, less often).
    Frequency,
    /// §3.5 deferred resolution with the given frame granularity.
    Deferred {
        /// Frames between permissible adaptations (paper: 20).
        granularity: u64,
    },
}

impl PolicySpec {
    fn build(self, scheme: Scheme) -> Policy {
        match self {
            PolicySpec::None => Policy::None,
            PolicySpec::Marking => Policy::Marking(MarkingAdapter::default()),
            PolicySpec::Resolution => Policy::Resolution(ResolutionAdapter::default()),
            PolicySpec::Frequency => Policy::Frequency(iq_echo::FrequencyAdapter::default()),
            PolicySpec::Deferred { granularity } => Policy::Deferred(DeferredResolution::new(
                ResolutionAdapter::default(),
                granularity,
                scheme == Scheme::CoordinatedWithCond,
            )),
        }
    }
}

/// VBR cross-traffic specification.
#[derive(Debug, Clone)]
pub struct VbrSpec {
    /// Frames per second (paper: 500).
    pub fps: f64,
    /// Target mean offered rate in bits/second; the MBone trace is
    /// scaled to hit it.
    pub mean_bps: f64,
    /// Trace seed.
    pub seed: u64,
}

impl VbrSpec {
    /// Materializes the per-frame sizes.
    pub fn frame_sizes(&self) -> Vec<u32> {
        let trace = MembershipTrace::generate(&MembershipConfig {
            seed: self.seed,
            len: 4000,
            ..MembershipConfig::default()
        });
        let mean_group = trace.samples.iter().map(|&g| f64::from(g)).sum::<f64>()
            / trace.samples.len() as f64;
        let bytes_per_member = self.mean_bps / (8.0 * self.fps * mean_group);
        trace
            .samples
            .iter()
            .map(|&g| ((f64::from(g) * bytes_per_member) as u32).max(200))
            .collect()
    }
}

/// Cross traffic sharing the bottleneck with the application flow.
#[derive(Debug, Clone, Default)]
pub struct CrossTraffic {
    /// iperf-style CBR UDP rate in bits/second.
    pub cbr_bps: Option<f64>,
    /// VBR UDP (the changing-network workload).
    pub vbr: Option<VbrSpec>,
    /// A competing TCP bulk flow (the fairness test).
    pub tcp_bulk: bool,
}

/// A complete single-flow experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Simulation seed.
    pub seed: u64,
    /// Topology (defaults to the paper's 20 Mb / 30 ms dumbbell).
    pub dumbbell: DumbbellSpec,
    /// Row scheme.
    pub scheme: Scheme,
    /// Application adaptation policy.
    pub policy: PolicySpec,
    /// Frame schedule for the application flow.
    pub frame_sizes: Vec<u32>,
    /// `Some(fps)` = rate-based application, `None` = greedy.
    pub fps: Option<f64>,
    /// Split frames into individually markable datagrams.
    pub datagram_mode: bool,
    /// Receiver loss tolerance.
    pub loss_tolerance: f64,
    /// Error-ratio callback thresholds (upper, lower).
    pub thresholds: (Option<f64>, Option<f64>),
    /// Congestion-control algorithm for the transport schemes. Ignored
    /// by [`Scheme::AppAdaptOnly`], which always pins the window at
    /// [`Self::fixed_cwnd`], and by [`Scheme::Tcp`].
    pub cc: CcAlgorithm,
    /// Fixed window used when congestion control is disabled
    /// ([`Scheme::AppAdaptOnly`]).
    pub fixed_cwnd: f64,
    /// Override for the transport's measuring period (long-RTT paths
    /// need a period that spans at least one RTT).
    pub measure_period: Option<iq_netsim::TimeDelta>,
    /// Settle time between upper-threshold adaptations, seconds.
    pub min_adapt_gap_s: f64,
    /// Cadence limit for lower-threshold (recovery) adaptations, seconds.
    pub min_lower_gap_s: f64,
    /// Run the bottleneck queue under RED instead of drop-tail
    /// (queue-discipline ablation; the paper's testbed was drop-tail).
    pub red_bottleneck: bool,
    /// Cross traffic.
    pub cross: CrossTraffic,
    /// Simulated-time budget in seconds.
    pub deadline_s: f64,
    /// When non-zero, run a many-flow incast instead of the single-flow
    /// experiment: this many RUDP flows (a deterministic mix of marked,
    /// partially unmarked, coordinated-adaptive and sparse-ACK senders)
    /// share the bottleneck. `frame_sizes.len()` messages of
    /// `frame_sizes[0]` bytes are offered per flow.
    pub incast_flows: u32,
    /// When non-zero, run the sharded `mega_flows` population instead:
    /// this many independent dumbbell legs, each one left-side and one
    /// right-side shard of a [`ShardedSim`], carrying
    /// [`Self::incast_flows`] flows per leg (reused as flows-per-leg
    /// here). Flows cycle through the incast sender classes *and* the
    /// four congestion controllers. Executed with
    /// [`crate::runner::shards`] OS threads; results are identical for
    /// any thread count.
    pub mega_legs: u32,
}

impl Scenario {
    /// A scenario skeleton with the paper's defaults.
    pub fn new(scheme: Scheme, policy: PolicySpec, frame_sizes: Vec<u32>) -> Self {
        Self {
            seed: 42,
            dumbbell: DumbbellSpec::paper_default(3),
            scheme,
            policy,
            frame_sizes,
            fps: None,
            datagram_mode: false,
            loss_tolerance: 0.0,
            thresholds: (None, None),
            cc: CcAlgorithm::default(),
            fixed_cwnd: 32.0,
            measure_period: None,
            min_adapt_gap_s: 1.0,
            min_lower_gap_s: 0.4,
            red_bottleneck: false,
            cross: CrossTraffic::default(),
            deadline_s: 600.0,
            incast_flows: 0,
            mega_legs: 0,
        }
    }

    /// A many-flow incast: `flows` RUDP senders, each offering
    /// `msgs_per_flow` messages of `msg_size` bytes, converging on one
    /// widened bottleneck (the per-flow fair share stays small so the
    /// congestion machinery is exercised, not idled).
    pub fn incast(flows: u32, msgs_per_flow: usize, msg_size: u32) -> Self {
        let mut sc = Self::new(
            Scheme::Coordinated,
            PolicySpec::Marking,
            vec![msg_size; msgs_per_flow],
        );
        sc.incast_flows = flows;
        sc.dumbbell = DumbbellSpec::paper_default(8);
        sc.dumbbell.bottleneck_bps = 200e6;
        sc.dumbbell.queue_bytes = 1_500_000;
        sc.thresholds = (Some(0.10), Some(0.02));
        sc.loss_tolerance = 0.40;
        sc.deadline_s = 120.0;
        sc
    }

    /// The sharded many-leg population: `legs` independent dumbbell legs
    /// (each leg = one left shard + one right shard of a [`ShardedSim`],
    /// joined by its bottleneck boundary link), `flows_per_leg` RUDP
    /// flows per leg offering `msgs_per_flow` messages of `msg_size`
    /// bytes each. Flows cycle through the incast sender classes and the
    /// four congestion controllers (LDA / CUBIC / BBR / RRR), so the
    /// population is heterogeneous in both reliability handling and
    /// transport dynamics. `mega(8, 12_800, ..)` is the 102 400-flow
    /// `mega_flows` benchmark scenario.
    pub fn mega(legs: u32, flows_per_leg: u32, msgs_per_flow: usize, msg_size: u32) -> Self {
        let mut sc = Self::new(
            Scheme::Coordinated,
            PolicySpec::Marking,
            vec![msg_size; msgs_per_flow],
        );
        sc.mega_legs = legs;
        sc.incast_flows = flows_per_leg;
        // Per-leg bottleneck: wide enough that the population drains,
        // narrow enough that the fleet contends (incast-style).
        sc.dumbbell.bottleneck_bps = 200e6;
        sc.dumbbell.queue_bytes = 4_000_000;
        sc.thresholds = (Some(0.10), Some(0.02));
        sc.loss_tolerance = 0.40;
        sc.deadline_s = 120.0;
        sc
    }
}

/// What a run measured — the superset of every table's columns.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Row label.
    pub label: &'static str,
    /// Application-level transfer duration (first → last arrival), s.
    pub duration_s: f64,
    /// Receiver goodput, KB/s.
    pub throughput_kbps: f64,
    /// Mean message inter-arrival, s.
    pub inter_arrival_s: f64,
    /// Std-dev of message inter-arrival, s.
    pub jitter_s: f64,
    /// Mean inter-arrival of tagged messages, ms.
    pub tagged_delay_ms: f64,
    /// Std-dev of tagged inter-arrival, ms.
    pub tagged_jitter_ms: f64,
    /// Messages the application offered.
    pub msgs_offered: u64,
    /// Messages delivered to the receiving application.
    pub msgs_delivered: u64,
    /// Delivered percentage.
    pub delivered_pct: f64,
    /// Per-message jitter series (Figures 2/3).
    pub jitter_series: TimeSeries,
    /// Whether the transfer finished before the deadline.
    pub finished: bool,
    /// Coordination counters (RUDP schemes).
    pub coordination: Option<CoordinationLog>,
    /// Upper/lower callbacks fired at the application.
    pub callbacks: (u64, u64),
    /// Sender-side transport counters (RUDP schemes).
    pub sender_stats: Option<iq_rudp::SenderStats>,
    /// Simulator events processed during the run (for events/sec
    /// throughput reporting; not a paper metric).
    pub events_processed: u64,
    /// Structured telemetry captured during the run, serialized as
    /// JSONL (one record per line). Empty unless telemetry capture is
    /// enabled via [`crate::runner::set_telemetry_capture`] or
    /// [`crate::runner::set_telemetry_dir`].
    pub telemetry: String,
    /// OS threads used for intra-scenario sharded execution (1 for the
    /// serial scenarios). Informational: never part of the determinism
    /// fingerprint, because results are identical for any value.
    pub shards_used: u32,
    /// The run's metric registry. Sim-plane entries (simulator counters,
    /// delivery-latency histogram, transport counters, telemetry
    /// evictions) are deterministic sim-time facts whose canonical
    /// rendering is folded into the determinism fingerprint; engine-
    /// plane entries (scheduler placement, payload-pool hit rates,
    /// shard-loop stats, phase times) legitimately vary with thread
    /// scheduling and are never fingerprinted.
    pub obs: Registry,
    /// Wall-clock phase breakdown per shard (engine plane; a single
    /// entry for the serial scenarios, index = shard otherwise).
    pub phase_profile: Vec<iq_obs::PhaseSnapshot>,
    /// Shard-scheduler totals (engine plane; all zero for the serial
    /// scenarios, which have no scheduler).
    pub sched: iq_netsim::SchedTotals,
    /// Telemetry records lost to ring-buffer overflow during the run
    /// (0 when capture is off). Nonzero means the captured JSONL is
    /// incomplete; the runner warns on stderr.
    pub telemetry_evicted: u64,
}

/// Attaches the configured cross traffic to a dumbbell. Pair 1 carries
/// CBR, pair 2 carries VBR or the TCP bulk flow.
fn add_cross_traffic(sim: &mut Simulator, db: &Dumbbell, cross: &CrossTraffic, deadline_s: f64) {
    if let Some(bps) = cross.cbr_bps {
        sim.add_agent(
            db.left_hosts[1],
            10,
            Box::new(CbrSource::new(
                Addr::new(db.right_hosts[1], 10),
                FlowId(100),
                bps,
                972,
            )),
        );
        sim.add_agent(db.right_hosts[1], 10, Box::new(iq_workload::UdpSink::new()));
    }
    if let Some(vbr) = &cross.vbr {
        sim.add_agent(
            db.left_hosts[2],
            11,
            Box::new(VbrSource::new(
                Addr::new(db.right_hosts[2], 11),
                FlowId(101),
                vbr.fps,
                vbr.frame_sizes(),
            )),
        );
        sim.add_agent(db.right_hosts[2], 11, Box::new(iq_workload::UdpSink::new()));
    }
    if cross.tcp_bulk {
        // Enough volume to outlast the run.
        let msgs = (deadline_s * 2.5e6 / 1400.0) as u64;
        let cfg = TcpConfig::default();
        sim.add_agent(
            db.left_hosts[2],
            12,
            Box::new(TcpBulkSenderAgent::new(
                TcpSenderConn::new(900, cfg.clone()),
                Addr::new(db.right_hosts[2], 12),
                FlowId(102),
                msgs,
                1400,
            )),
        );
        sim.add_agent(
            db.right_hosts[2],
            12,
            Box::new(TcpSinkAgent::new(900, cfg, FlowId(102))),
        );
    }
}

/// Runs one scenario to completion (or its deadline) and reports.
pub fn run_scenario(sc: &Scenario) -> RunResult {
    if sc.mega_legs > 0 {
        return run_mega(sc);
    }
    if sc.incast_flows > 0 {
        return run_incast(sc);
    }
    match sc.scheme {
        Scheme::Tcp => run_tcp(sc),
        _ => run_rudp(sc),
    }
}

fn rudp_config(sc: &Scenario) -> RudpConfig {
    let mut cfg = RudpConfig {
        loss_tolerance: sc.loss_tolerance,
        upper_threshold: sc.thresholds.0,
        lower_threshold: sc.thresholds.1,
        ..RudpConfig::default()
    };
    if let Some(p) = sc.measure_period {
        cfg.measure_period = p;
    }
    cfg.cc.algorithm = if sc.scheme == Scheme::AppAdaptOnly {
        // "Application adaptation only": no transport adaptation, the
        // window stays pinned (the old `enabled: false` mode).
        CcAlgorithm::Fixed {
            cwnd: sc.fixed_cwnd,
        }
    } else {
        sc.cc.clone()
    };
    cfg
}

fn run_rudp(sc: &Scenario) -> RunResult {
    let pool_before = iq_netsim::pool_stats();
    let (tsink, bus) = if crate::runner::telemetry_enabled() {
        let (s, b) = TelemetrySink::new_bus(crate::runner::telemetry_ring());
        (s, Some(b))
    } else {
        (TelemetrySink::disabled(), None)
    };
    let mut sim = Simulator::new(sc.seed);
    let mut dspec = sc.dumbbell.clone();
    dspec.red_bottleneck = sc.red_bottleneck;
    let db = build_dumbbell(&mut sim, &dspec);
    add_cross_traffic(&mut sim, &db, &sc.cross, sc.deadline_s);
    sim.attach_telemetry(tsink.clone());

    let mut cfg = SourceConfig::new(1, sc.frame_sizes.clone());
    cfg.rudp = rudp_config(sc);
    cfg.mode = sc.scheme.mode();
    cfg.fps = sc.fps;
    cfg.datagram_mode = sc.datagram_mode;
    cfg.min_adapt_gap = time::secs(sc.min_adapt_gap_s);
    cfg.min_lower_gap = time::secs(sc.min_lower_gap_s);
    cfg.seed = sc.seed ^ 0x5eed;
    let sink_cfg = cfg.rudp.clone();
    let policy = sc.policy.build(sc.scheme);
    let src = AdaptiveSourceAgent::new(cfg, policy, Addr::new(db.right_hosts[0], 1), FlowId(1))
        .with_telemetry(tsink.clone());
    let tx = sim.add_agent(db.left_hosts[0], 1, Box::new(src));
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(EchoSinkAgent::from_driver(
            sink_cfg.builder(1, FlowId(1)).telemetry(tsink).build_receiver(),
        )),
    );
    sim.profiler().enter(Phase::Execute);
    run_until_quiet(&mut sim, sc.deadline_s, rx);
    sim.profiler().finish();

    let (telemetry, telemetry_evicted) = bus.map_or_else(
        || (String::new(), 0),
        |b| {
            let bus = b.lock().unwrap_or_else(|e| e.into_inner());
            (to_jsonl(&bus.records()), bus.total_evicted())
        },
    );
    let events_processed = sim.counters().events_processed;
    let src = sim.agent::<AdaptiveSourceAgent>(tx).expect("source");
    let sink = sim.agent::<EchoSinkAgent>(rx).expect("sink");
    let mut obs = Registry::new();
    sim.collect_obs(&mut obs, "0");
    collect_run_obs(
        &mut obs,
        Some(&src.conn().stats()),
        Some(&sink.conn().stats()),
        iq_netsim::pool_stats().since(pool_before),
        telemetry_evicted,
    );
    let m = &sink.metrics;
    RunResult {
        label: sc.scheme.label(),
        duration_s: m.duration_s(),
        throughput_kbps: m.throughput_kbps(),
        inter_arrival_s: m.inter_arrival_s(),
        jitter_s: m.jitter_s(),
        tagged_delay_ms: m.tagged_inter_arrival_s() * 1e3,
        tagged_jitter_ms: m.tagged_jitter_s() * 1e3,
        msgs_offered: src.offered_msgs,
        msgs_delivered: m.messages(),
        delivered_pct: m.delivered_pct(src.offered_msgs),
        jitter_series: m.jitter_series().clone(),
        finished: sink.is_finished(),
        coordination: Some(src.coordination_log()),
        callbacks: src.callbacks,
        sender_stats: Some(src.conn().stats()),
        events_processed,
        telemetry,
        shards_used: 1,
        phase_profile: vec![sim.phase_snapshot()],
        sched: iq_netsim::SchedTotals::default(),
        obs,
        telemetry_evicted,
    }
}

/// Runs the many-flow incast selected by [`Scenario::incast_flows`].
///
/// Flows cycle deterministically through four sender classes by
/// `flow % 4`: `0` fully marked reliable bulk, `1` a coordinated
/// adaptive source running the §3.3 marking policy, `2` bulk with every
/// 4th message unmarked against a loss-tolerant receiver and
/// `discard_unmarked` coordination, `3` fully marked bulk with 4:1 ACK
/// decimation. Flows spread round-robin over the dumbbell's host pairs;
/// each class shares one `RudpConfig` allocation across all its flows
/// (see [`iq_rudp::ConnBuilder::for_conn`]).
fn run_incast(sc: &Scenario) -> RunResult {
    let pool_before = iq_netsim::pool_stats();
    let (tsink, bus) = if crate::runner::telemetry_enabled() {
        let (s, b) = TelemetrySink::new_bus(crate::runner::telemetry_ring());
        (s, Some(b))
    } else {
        (TelemetrySink::disabled(), None)
    };
    let mut sim = Simulator::new(sc.seed);
    let mut dspec = sc.dumbbell.clone();
    dspec.red_bottleneck = sc.red_bottleneck;
    let db = build_dumbbell(&mut sim, &dspec);
    add_cross_traffic(&mut sim, &db, &sc.cross, sc.deadline_s);
    sim.attach_telemetry(tsink);

    let msgs_per_flow = sc.frame_sizes.len() as u64;
    let msg_size = sc.frame_sizes.first().copied().unwrap_or(1400);
    let pairs = db.left_hosts.len();

    // One config (and builder) per sender class: flows of a class share
    // the `Arc<RudpConfig>` instead of cloning the config per flow.
    let base = rudp_config(sc);
    let marked = RudpConfig {
        loss_tolerance: 0.0,
        ..base.clone()
    }
    .builder(0, FlowId(0));
    let adaptive = base.clone().builder(0, FlowId(0));
    let unmarked = RudpConfig {
        discard_unmarked: true,
        ..base.clone()
    }
    .builder(0, FlowId(0));
    let sparse_ack = RudpConfig {
        loss_tolerance: 0.0,
        ack_every: 4,
        ..base.clone()
    }
    .builder(0, FlowId(0));

    let mut bulk_txs = Vec::new();
    let mut adaptive_txs = Vec::new();
    let mut rxs = Vec::new();
    for i in 0..sc.incast_flows {
        let pair = i as usize % pairs;
        let port = 1000 + i as u16;
        let conn_id = 1000 + i;
        let flow = FlowId(1000 + i);
        let peer = Addr::new(db.right_hosts[pair], port);
        let class_builder = match i % 4 {
            0 => &marked,
            1 => &adaptive,
            2 => &unmarked,
            _ => &sparse_ack,
        };
        if i % 4 == 1 {
            let mut cfg = SourceConfig::new(conn_id, sc.frame_sizes.clone());
            cfg.rudp = base.clone();
            cfg.mode = CoordinationMode::Coordinated;
            cfg.min_adapt_gap = time::secs(sc.min_adapt_gap_s);
            cfg.min_lower_gap = time::secs(sc.min_lower_gap_s);
            cfg.seed = sc.seed ^ u64::from(i) ^ 0x5eed;
            let src = AdaptiveSourceAgent::new(
                cfg,
                Policy::Marking(MarkingAdapter::default()),
                peer,
                flow,
            );
            adaptive_txs.push(sim.add_agent(db.left_hosts[pair], port, Box::new(src)));
        } else {
            let unmark = if i % 4 == 2 { 4 } else { 0 };
            let driver = class_builder.for_conn(conn_id, flow).build_sender(peer);
            let agent = iq_rudp::BulkSenderAgent::from_driver(driver, msgs_per_flow, msg_size)
                .unmark_every(unmark);
            bulk_txs.push(sim.add_agent(db.left_hosts[pair], port, Box::new(agent)));
        }
        let sink = EchoSinkAgent::from_driver(
            class_builder.for_conn(conn_id, flow).build_receiver(),
        );
        rxs.push(sim.add_agent(db.right_hosts[pair], port, Box::new(sink)));
    }

    // Run in one-second slices until every flow finished or the
    // deadline elapses.
    let deadline = time::secs(sc.deadline_s);
    sim.profiler().enter(Phase::Execute);
    while sim.now() < deadline {
        sim.run_for(time::secs(1.0));
        let all_done = rxs
            .iter()
            .all(|&rx| sim.agent::<EchoSinkAgent>(rx).is_some_and(|s| s.is_finished()));
        if all_done {
            break;
        }
    }
    sim.profiler().finish();

    let (telemetry, telemetry_evicted) = bus.map_or_else(
        || (String::new(), 0),
        |b| {
            let bus = b.lock().unwrap_or_else(|e| e.into_inner());
            (to_jsonl(&bus.records()), bus.total_evicted())
        },
    );
    let events_processed = sim.counters().events_processed;

    // Aggregate across the fleet: sums for volume metrics, the max for
    // duration, flow 0's series for jitter shape.
    let mut offered = 0u64;
    let mut callbacks = (0u64, 0u64);
    let mut stats = iq_rudp::SenderStats::default();
    let mut coordination: Option<CoordinationLog> = None;
    for &tx in &bulk_txs {
        let a = sim.agent::<iq_rudp::BulkSenderAgent>(tx).expect("bulk sender");
        offered += a.offered_msgs();
        sum_sender_stats(&mut stats, &a.conn().stats());
    }
    for &tx in &adaptive_txs {
        let a = sim.agent::<AdaptiveSourceAgent>(tx).expect("adaptive source");
        offered += a.offered_msgs;
        callbacks.0 += a.callbacks.0;
        callbacks.1 += a.callbacks.1;
        sum_sender_stats(&mut stats, &a.conn().stats());
        let log = a.coordination_log();
        match &mut coordination {
            None => coordination = Some(log),
            Some(agg) => {
                agg.window_rescales += log.window_rescales;
                agg.cond_corrections += log.cond_corrections;
                agg.reliability_reports += log.reliability_reports;
                agg.deferred_announcements += log.deferred_announcements;
                agg.frequency_reports += log.frequency_reports;
                agg.cumulative_factor *= log.cumulative_factor;
            }
        }
    }
    let mut delivered = 0u64;
    let mut throughput = 0.0f64;
    let mut duration = 0.0f64;
    let mut finished = true;
    let mut rstats = iq_rudp::ReceiverStats::default();
    for &rx in &rxs {
        let s = sim.agent::<EchoSinkAgent>(rx).expect("sink");
        delivered += s.metrics.messages();
        throughput += s.metrics.throughput_kbps();
        duration = duration.max(s.metrics.duration_s());
        finished &= s.is_finished();
        sum_receiver_stats(&mut rstats, &s.conn().stats());
    }
    let mut obs = Registry::new();
    sim.collect_obs(&mut obs, "0");
    collect_run_obs(
        &mut obs,
        Some(&stats),
        Some(&rstats),
        iq_netsim::pool_stats().since(pool_before),
        telemetry_evicted,
    );
    let first = sim.agent::<EchoSinkAgent>(rxs[0]).expect("sink 0");
    RunResult {
        label: "many-flow incast",
        duration_s: duration,
        throughput_kbps: throughput,
        inter_arrival_s: first.metrics.inter_arrival_s(),
        jitter_s: first.metrics.jitter_s(),
        tagged_delay_ms: first.metrics.tagged_inter_arrival_s() * 1e3,
        tagged_jitter_ms: first.metrics.tagged_jitter_s() * 1e3,
        msgs_offered: offered,
        msgs_delivered: delivered,
        delivered_pct: if offered > 0 {
            100.0 * delivered as f64 / offered as f64
        } else {
            0.0
        },
        jitter_series: first.metrics.jitter_series().clone(),
        finished,
        coordination,
        callbacks,
        sender_stats: Some(stats),
        events_processed,
        telemetry,
        shards_used: 1,
        phase_profile: vec![sim.phase_snapshot()],
        sched: iq_netsim::SchedTotals::default(),
        obs,
        telemetry_evicted,
    }
}

/// Runs the sharded `mega_flows` population selected by
/// [`Scenario::mega_legs`].
///
/// Topology: `mega_legs` independent dumbbell legs, each split into a
/// left and a right shard of one [`ShardedSim`] joined by its duplex
/// bottleneck (the shard boundary; the bottleneck's propagation delay is
/// the conservative lookahead). Each leg spreads
/// [`Scenario::incast_flows`] flows round-robin over up to 32 host
/// pairs. Flows cycle by *global* index through the four incast sender
/// classes, each pinned to a different congestion controller — marked
/// bulk on CUBIC, the adaptive §3.3 marking source on LDA, unmarked-
/// discard bulk on BBR, sparse-ACK bulk on RRR — so every bottleneck
/// carries a heterogeneous mix. Executes with [`crate::runner::shards`]
/// OS threads over the fixed 2×`mega_legs`-shard partition; every
/// output is byte-identical for any thread count.
fn run_mega(sc: &Scenario) -> RunResult {
    let pool_before = iq_netsim::pool_stats();
    let threads = crate::runner::shards();
    let mut sim = ShardedSim::new(sc.seed);
    let legs: Vec<(usize, usize)> = (0..sc.mega_legs)
        .map(|_| (sim.add_shard(), sim.add_shard()))
        .collect();
    sim.set_threads(threads);

    let mut buses = Vec::new();
    if crate::runner::telemetry_enabled() {
        for shard in 0..sim.num_shards() {
            let (sink, bus) = TelemetrySink::new_bus(crate::runner::telemetry_ring());
            sim.attach_telemetry(shard, sink);
            buses.push(bus);
        }
    }

    // Same shape as `build_dumbbell`: 10 µs access hops, so the
    // bottleneck's propagation delay (= the shard lookahead) makes up
    // the rest of the one-way delay.
    const ACCESS_DELAY: u64 = 10_000;
    let dspec = &sc.dumbbell;
    let bottleneck = LinkSpec::new(
        dspec.bottleneck_bps,
        dspec.one_way_delay.saturating_sub(2 * ACCESS_DELAY),
        dspec.queue_bytes,
    );
    let access = LinkSpec::new(dspec.access_bps, ACCESS_DELAY, 16_000_000);

    let flows_per_leg = sc.incast_flows;
    let pairs_per_leg = (flows_per_leg as usize).clamp(1, 32);
    let msgs_per_flow = sc.frame_sizes.len() as u64;
    let msg_size = sc.frame_sizes.first().copied().unwrap_or(1400);

    // One config per sender class, shared across every leg: flows of a
    // class share the `Arc<RudpConfig>` (see `ConnBuilder::for_conn`).
    let base = rudp_config(sc);
    let mut marked_cfg = RudpConfig {
        loss_tolerance: 0.0,
        ..base.clone()
    };
    marked_cfg.cc.algorithm = CcAlgorithm::Cubic(CubicParams::default());
    let marked = marked_cfg.builder(0, FlowId(0));
    let adaptive = base.clone().builder(0, FlowId(0));
    let mut unmarked_cfg = RudpConfig {
        discard_unmarked: true,
        ..base.clone()
    };
    unmarked_cfg.cc.algorithm = CcAlgorithm::BbrLike(BbrParams::default());
    let unmarked = unmarked_cfg.builder(0, FlowId(0));
    let mut sparse_cfg = RudpConfig {
        loss_tolerance: 0.0,
        ack_every: 4,
        ..base.clone()
    };
    sparse_cfg.cc.algorithm = CcAlgorithm::Rrr(RrrParams::default());
    let sparse_ack = sparse_cfg.builder(0, FlowId(0));

    let mut bulk_txs = Vec::new();
    let mut adaptive_txs = Vec::new();
    let mut rxs = Vec::new();
    let mut global = 0u32;
    for &(left, right) in &legs {
        let lr = sim.add_node(left);
        let rr = sim.add_node(right);
        sim.add_duplex_link(lr, rr, bottleneck.clone());
        let mut left_hosts = Vec::with_capacity(pairs_per_leg);
        let mut right_hosts = Vec::with_capacity(pairs_per_leg);
        for _ in 0..pairs_per_leg {
            let sh = sim.add_node(left);
            let rh = sim.add_node(right);
            sim.add_duplex_link(sh, lr, access.clone());
            sim.add_duplex_link(rh, rr, access.clone());
            left_hosts.push(sh);
            right_hosts.push(rh);
        }
        for i in 0..flows_per_leg {
            let pair = i as usize % pairs_per_leg;
            let port = 1000 + (i as usize / pairs_per_leg) as u16;
            let conn_id = 1000 + global;
            let flow = FlowId(1000 + global);
            let peer = Addr::new(right_hosts[pair], port);
            let class_builder = match global % 4 {
                0 => &marked,
                1 => &adaptive,
                2 => &unmarked,
                _ => &sparse_ack,
            };
            if global % 4 == 1 {
                let mut cfg = SourceConfig::new(conn_id, sc.frame_sizes.clone());
                cfg.rudp = base.clone();
                cfg.mode = CoordinationMode::Coordinated;
                cfg.min_adapt_gap = time::secs(sc.min_adapt_gap_s);
                cfg.min_lower_gap = time::secs(sc.min_lower_gap_s);
                cfg.seed = sc.seed ^ u64::from(global) ^ 0x5eed;
                let src = AdaptiveSourceAgent::new(
                    cfg,
                    Policy::Marking(MarkingAdapter::default()),
                    peer,
                    flow,
                );
                adaptive_txs.push(sim.add_agent(left_hosts[pair], port, Box::new(src)));
            } else {
                let unmark = if global % 4 == 2 { 4 } else { 0 };
                let driver = class_builder.for_conn(conn_id, flow).build_sender(peer);
                let agent =
                    iq_rudp::BulkSenderAgent::from_driver(driver, msgs_per_flow, msg_size)
                        .unmark_every(unmark);
                bulk_txs.push(sim.add_agent(left_hosts[pair], port, Box::new(agent)));
            }
            let sink = EchoSinkAgent::from_driver(
                class_builder.for_conn(conn_id, flow).build_receiver(),
            );
            rxs.push(sim.add_agent(right_hosts[pair], port, Box::new(sink)));
            global += 1;
        }
    }

    // Run in one-second epochs on one persistent worker pool until
    // every flow finished or the deadline elapses.
    let deadline = time::secs(sc.deadline_s);
    sim.run_slices(deadline, time::secs(1.0), |view| {
        rxs.iter().all(|&rx| {
            view.with_agent::<EchoSinkAgent, _>(rx, |s| s.is_finished())
                .unwrap_or(false)
        })
    });

    // Merge per-shard telemetry in shard-index order — the same
    // declaration-order discipline the runner uses for `-j`, so the
    // JSONL is independent of the thread count.
    let mut telemetry = String::new();
    let mut telemetry_evicted = 0u64;
    for bus in &buses {
        let bus = bus.lock().unwrap_or_else(|e| e.into_inner());
        telemetry.push_str(&to_jsonl(&bus.records()));
        telemetry_evicted += bus.total_evicted();
    }
    let events_processed = sim.counters().events_processed;

    // Aggregate exactly as the incast does: sums for volume metrics,
    // the max for duration, flow 0's series for jitter shape.
    let mut offered = 0u64;
    let mut callbacks = (0u64, 0u64);
    let mut stats = iq_rudp::SenderStats::default();
    let mut coordination: Option<CoordinationLog> = None;
    for &tx in &bulk_txs {
        let a = sim.agent::<iq_rudp::BulkSenderAgent>(tx).expect("bulk sender");
        offered += a.offered_msgs();
        sum_sender_stats(&mut stats, &a.conn().stats());
    }
    for &tx in &adaptive_txs {
        let a = sim.agent::<AdaptiveSourceAgent>(tx).expect("adaptive source");
        offered += a.offered_msgs;
        callbacks.0 += a.callbacks.0;
        callbacks.1 += a.callbacks.1;
        sum_sender_stats(&mut stats, &a.conn().stats());
        let log = a.coordination_log();
        match &mut coordination {
            None => coordination = Some(log),
            Some(agg) => {
                agg.window_rescales += log.window_rescales;
                agg.cond_corrections += log.cond_corrections;
                agg.reliability_reports += log.reliability_reports;
                agg.deferred_announcements += log.deferred_announcements;
                agg.frequency_reports += log.frequency_reports;
                agg.cumulative_factor *= log.cumulative_factor;
            }
        }
    }
    let mut delivered = 0u64;
    let mut throughput = 0.0f64;
    let mut duration = 0.0f64;
    let mut finished = true;
    let mut rstats = iq_rudp::ReceiverStats::default();
    for &rx in &rxs {
        let s = sim.agent::<EchoSinkAgent>(rx).expect("sink");
        delivered += s.metrics.messages();
        throughput += s.metrics.throughput_kbps();
        duration = duration.max(s.metrics.duration_s());
        finished &= s.is_finished();
        sum_receiver_stats(&mut rstats, &s.conn().stats());
    }
    let mut obs = Registry::new();
    sim.collect_obs(&mut obs);
    collect_run_obs(
        &mut obs,
        Some(&stats),
        Some(&rstats),
        iq_netsim::pool_stats().since(pool_before),
        telemetry_evicted,
    );
    let first = sim.agent::<EchoSinkAgent>(rxs[0]).expect("sink 0");
    RunResult {
        label: "mega flows",
        duration_s: duration,
        throughput_kbps: throughput,
        inter_arrival_s: first.metrics.inter_arrival_s(),
        jitter_s: first.metrics.jitter_s(),
        tagged_delay_ms: first.metrics.tagged_inter_arrival_s() * 1e3,
        tagged_jitter_ms: first.metrics.tagged_jitter_s() * 1e3,
        msgs_offered: offered,
        msgs_delivered: delivered,
        delivered_pct: if offered > 0 {
            100.0 * delivered as f64 / offered as f64
        } else {
            0.0
        },
        jitter_series: first.metrics.jitter_series().clone(),
        finished,
        coordination,
        callbacks,
        sender_stats: Some(stats),
        events_processed,
        telemetry,
        shards_used: threads as u32,
        phase_profile: sim.phase_snapshots(),
        sched: sim.sched_totals(),
        obs,
        telemetry_evicted,
    }
}

fn sum_receiver_stats(acc: &mut iq_rudp::ReceiverStats, s: &iq_rudp::ReceiverStats) {
    acc.segments_received += s.segments_received;
    acc.duplicates += s.duplicates;
    acc.segments_skipped += s.segments_skipped;
    acc.msgs_delivered += s.msgs_delivered;
    acc.msgs_dropped_partial += s.msgs_dropped_partial;
    acc.sack_truncations += s.sack_truncations;
}

/// Reports run-level metrics into `reg`: aggregated RUDP endpoint
/// counters and telemetry evictions on the sim plane (deterministic,
/// fingerprinted), payload-pool deltas on the engine plane (the pool is
/// thread-local, so the delta depends on which worker executed what).
/// Sorts the registry into canonical order.
fn collect_run_obs(
    reg: &mut Registry,
    tx: Option<&iq_rudp::SenderStats>,
    rx: Option<&iq_rudp::ReceiverStats>,
    pool: iq_netsim::PoolStats,
    telemetry_evicted: u64,
) {
    if let Some(s) = tx {
        reg.counter(Plane::Sim, "iq_rudp_msgs_submitted_total", &[], s.msgs_submitted);
        reg.counter(Plane::Sim, "iq_rudp_msgs_discarded_total", &[], s.msgs_discarded);
        reg.counter(Plane::Sim, "iq_rudp_segments_sent_total", &[], s.segments_sent);
        reg.counter(Plane::Sim, "iq_rudp_retransmits_total", &[], s.retransmits);
        reg.counter(
            Plane::Sim,
            "iq_rudp_segments_abandoned_total",
            &[],
            s.segments_abandoned,
        );
        reg.counter(Plane::Sim, "iq_rudp_segments_acked_total", &[], s.segments_acked);
        reg.counter(Plane::Sim, "iq_rudp_rto_total", &[], s.timeouts);
        reg.counter(Plane::Sim, "iq_rudp_bytes_acked_total", &[], s.bytes_acked);
    }
    if let Some(s) = rx {
        reg.counter(
            Plane::Sim,
            "iq_rudp_segments_received_total",
            &[],
            s.segments_received,
        );
        reg.counter(Plane::Sim, "iq_rudp_duplicates_total", &[], s.duplicates);
        reg.counter(Plane::Sim, "iq_rudp_segments_skipped_total", &[], s.segments_skipped);
        reg.counter(Plane::Sim, "iq_rudp_msgs_delivered_total", &[], s.msgs_delivered);
        reg.counter(
            Plane::Sim,
            "iq_rudp_msgs_dropped_partial_total",
            &[],
            s.msgs_dropped_partial,
        );
        reg.counter(
            Plane::Sim,
            "iq_rudp_sack_truncations_total",
            &[],
            s.sack_truncations,
        );
    }
    reg.counter(Plane::Sim, "iq_telemetry_evicted_total", &[], telemetry_evicted);
    reg.counter(Plane::Engine, "iq_pool_hits_total", &[], pool.hits);
    reg.counter(Plane::Engine, "iq_pool_misses_total", &[], pool.misses);
    reg.counter(Plane::Engine, "iq_pool_returns_total", &[], pool.returns);
    reg.counter(Plane::Engine, "iq_pool_drops_total", &[], pool.drops);
    reg.sort();
}

fn sum_sender_stats(acc: &mut iq_rudp::SenderStats, s: &iq_rudp::SenderStats) {
    acc.msgs_submitted += s.msgs_submitted;
    acc.msgs_discarded += s.msgs_discarded;
    acc.segments_sent += s.segments_sent;
    acc.retransmits += s.retransmits;
    acc.segments_abandoned += s.segments_abandoned;
    acc.segments_acked += s.segments_acked;
    acc.timeouts += s.timeouts;
    acc.bytes_acked += s.bytes_acked;
}

fn run_tcp(sc: &Scenario) -> RunResult {
    let pool_before = iq_netsim::pool_stats();
    let mut sim = Simulator::new(sc.seed);
    let mut dspec = sc.dumbbell.clone();
    dspec.red_bottleneck = sc.red_bottleneck;
    let db = build_dumbbell(&mut sim, &dspec);
    add_cross_traffic(&mut sim, &db, &sc.cross, sc.deadline_s);

    // The TCP baseline sends the same frame schedule greedily (TCP has
    // no application adaptation path).
    let cfg = TcpConfig::default();
    let frames = sc.frame_sizes.clone();
    let total: u64 = frames.iter().map(|&s| u64::from(s)).sum();
    let msg_size = (total / frames.len().max(1) as u64).clamp(200, 64_000) as u32;
    let msgs = total / u64::from(msg_size);
    sim.add_agent(
        db.left_hosts[0],
        1,
        Box::new(TcpBulkSenderAgent::new(
            TcpSenderConn::new(1, cfg.clone()),
            Addr::new(db.right_hosts[0], 1),
            FlowId(1),
            msgs,
            msg_size,
        )),
    );
    let rx = sim.add_agent(
        db.right_hosts[0],
        1,
        Box::new(TcpSinkAgent::new(1, cfg, FlowId(1))),
    );
    sim.profiler().enter(Phase::Execute);
    run_until_quiet_tcp(&mut sim, sc.deadline_s, rx);
    sim.profiler().finish();

    let events_processed = sim.counters().events_processed;
    let mut obs = Registry::new();
    sim.collect_obs(&mut obs, "0");
    collect_run_obs(
        &mut obs,
        None,
        None,
        iq_netsim::pool_stats().since(pool_before),
        0,
    );
    let sink = sim.agent::<TcpSinkAgent>(rx).expect("sink");
    let m = &sink.metrics;
    RunResult {
        label: Scheme::Tcp.label(),
        duration_s: m.duration_s(),
        throughput_kbps: m.throughput_kbps(),
        inter_arrival_s: m.inter_arrival_s(),
        jitter_s: m.jitter_s(),
        tagged_delay_ms: 0.0,
        tagged_jitter_ms: 0.0,
        msgs_offered: msgs,
        msgs_delivered: m.messages(),
        delivered_pct: m.delivered_pct(msgs),
        jitter_series: m.jitter_series().clone(),
        finished: sink.is_finished(),
        coordination: None,
        callbacks: (0, 0),
        sender_stats: None,
        events_processed,
        telemetry: String::new(),
        shards_used: 1,
        phase_profile: vec![sim.phase_snapshot()],
        sched: iq_netsim::SchedTotals::default(),
        obs,
        telemetry_evicted: 0,
    }
}

/// Runs in one-second slices until the app flow finishes or `deadline_s`
/// elapses (cross traffic would otherwise keep the heap busy forever).
fn run_until_quiet(sim: &mut Simulator, deadline_s: f64, rx: AgentId) {
    let deadline = time::secs(deadline_s);
    while sim.now() < deadline {
        sim.run_for(time::secs(1.0));
        if sim
            .agent::<EchoSinkAgent>(rx)
            .is_some_and(|s| s.is_finished())
        {
            break;
        }
    }
}

fn run_until_quiet_tcp(sim: &mut Simulator, deadline_s: f64, rx: AgentId) {
    let deadline = time::secs(deadline_s);
    while sim.now() < deadline {
        sim.run_for(time::secs(1.0));
        if sim
            .agent::<TcpSinkAgent>(rx)
            .is_some_and(|s| s.is_finished())
        {
            break;
        }
    }
}

/// The paper's default application trace: MBone group dynamics at
/// 3000 bytes/member (§3.1).
pub fn app_frame_sizes(len: usize, seed: u64) -> Vec<u32> {
    let trace = MembershipTrace::generate(&MembershipConfig {
        seed,
        len,
        base: 3.0,
        burst_scale: 3.0,
        min: 1,
        max: 10,
        ..MembershipConfig::default()
    });
    trace.frame_sizes(3000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario(scheme: Scheme) -> Scenario {
        let mut sc = Scenario::new(scheme, PolicySpec::None, vec![1400; 150]);
        sc.cross.cbr_bps = Some(10e6);
        sc.deadline_s = 120.0;
        sc
    }

    #[test]
    fn rudp_scenario_completes_and_reports() {
        let r = run_scenario(&small_scenario(Scheme::RudpPlain));
        assert!(r.finished, "did not finish: {r:?}");
        assert_eq!(r.msgs_delivered, 150);
        assert!(r.throughput_kbps > 0.0);
        assert!(r.duration_s > 0.0);
    }

    #[test]
    fn tcp_scenario_completes_and_reports() {
        let r = run_scenario(&small_scenario(Scheme::Tcp));
        assert!(r.finished, "did not finish: {r:?}");
        assert!(r.msgs_delivered > 0);
        assert!(r.throughput_kbps > 0.0);
    }

    #[test]
    fn cc_disabled_scheme_uses_fixed_window() {
        let mut sc = small_scenario(Scheme::AppAdaptOnly);
        sc.fixed_cwnd = 8.0;
        let r = run_scenario(&sc);
        assert!(r.finished);
        assert_eq!(r.msgs_delivered, 150);
    }

    #[test]
    fn identical_seeds_reproduce_results() {
        let sc = small_scenario(Scheme::RudpPlain);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.msgs_delivered, b.msgs_delivered);
        assert_eq!(a.jitter_s, b.jitter_s);
    }

    #[test]
    fn vbr_spec_hits_target_rate() {
        let v = VbrSpec {
            fps: 500.0,
            mean_bps: 8e6,
            seed: 3,
        };
        let sizes = v.frame_sizes();
        let mean = sizes.iter().map(|&s| f64::from(s)).sum::<f64>() / sizes.len() as f64;
        let rate = mean * 8.0 * 500.0;
        assert!((rate - 8e6).abs() / 8e6 < 0.15, "rate = {rate}");
    }

    #[test]
    fn incast_runs_a_mixed_fleet_to_completion() {
        let mut sc = Scenario::incast(24, 40, 1400);
        sc.deadline_s = 60.0;
        let r = run_scenario(&sc);
        assert!(r.finished, "incast did not finish: {r:?}");
        assert_eq!(r.msgs_offered, 24 * 40);
        // Unmarked-discard flows lose some messages by design; most of
        // the fleet is reliable.
        assert!(r.msgs_delivered > 24 * 40 * 8 / 10, "{}", r.msgs_delivered);
        assert!(r.throughput_kbps > 0.0);
        let stats = r.sender_stats.expect("aggregated sender stats");
        assert!(stats.segments_acked > 0);
        assert!(r.coordination.is_some(), "adaptive flows report coordination");
    }

    #[test]
    fn incast_is_deterministic_across_runs() {
        let sc = Scenario::incast(12, 30, 1400);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.msgs_delivered, b.msgs_delivered);
        assert_eq!(a.jitter_s, b.jitter_s);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn mega_runs_a_sharded_fleet_to_completion() {
        let mut sc = Scenario::mega(2, 24, 3, 1400);
        sc.deadline_s = 60.0;
        let r = run_scenario(&sc);
        assert!(r.finished, "mega did not finish: {r:?}");
        assert_eq!(r.msgs_offered, 2 * 24 * 3);
        // Unmarked-discard flows lose some messages by design; most of
        // the fleet is reliable.
        assert!(r.msgs_delivered > 2 * 24 * 3 * 8 / 10, "{}", r.msgs_delivered);
        assert!(r.throughput_kbps > 0.0);
        let stats = r.sender_stats.expect("aggregated sender stats");
        assert!(stats.segments_acked > 0);
        assert!(r.coordination.is_some(), "adaptive flows report coordination");
        assert_eq!(r.shards_used, 1, "default shard thread count");
    }

    #[test]
    fn mega_is_identical_for_any_shard_thread_count() {
        // Serializes against sibling tests: both the telemetry-capture
        // switch and the shard thread count are process-globals.
        let _g = crate::runner::capture_lock_for_tests();
        crate::runner::set_telemetry_capture(true);
        let mut sc = Scenario::mega(3, 17, 3, 1400);
        sc.deadline_s = 60.0;
        let runs: Vec<RunResult> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                crate::runner::set_shards(threads);
                run_scenario(&sc)
            })
            .collect();
        crate::runner::set_shards(1);
        crate::runner::set_telemetry_capture(false);
        let a = &runs[0];
        assert!(!a.telemetry.is_empty(), "capture was on");
        for b in &runs[1..] {
            assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
            assert_eq!(a.jitter_s.to_bits(), b.jitter_s.to_bits());
            assert_eq!(a.msgs_delivered, b.msgs_delivered);
            assert_eq!(a.events_processed, b.events_processed);
            assert_eq!(a.telemetry, b.telemetry, "telemetry JSONL diverged");
        }
        assert_eq!(runs[1].shards_used, 2);
        assert_eq!(runs[2].shards_used, 4);
    }

    #[test]
    fn runs_report_observability_registries() {
        let r = run_scenario(&small_scenario(Scheme::RudpPlain));
        assert!(!r.obs.is_empty());
        assert_eq!(r.obs.counter_total("iq_sim_events_total"), r.events_processed);
        assert!(r.obs.counter_total("iq_rudp_segments_sent_total") > 0);
        assert!(r.obs.counter_total("iq_rudp_msgs_delivered_total") > 0);
        let mut sorted = r.obs.clone();
        sorted.sort();
        let text = iq_obs::expo::render_prom(&sorted, None);
        let samples = iq_obs::expo::validate_prom(&text).expect("exposition parses");
        assert!(samples > 20, "expected a rich exposition, got {samples} samples");
        assert!(text.contains("iq_sim_delivery_latency_ns{shard=\"0\",quantile=\"0.99\"}"));
        // The serial wrapper charges the whole run to the execute phase.
        assert_eq!(r.phase_profile.len(), 1);
        assert!(r.phase_profile[0].total_nanos() > 0);
        assert!(r.phase_profile[0].percent(Phase::Execute) > 99.0);

        // TCP runs carry simulator metrics but no transport counters.
        let t = run_scenario(&small_scenario(Scheme::Tcp));
        assert!(t.obs.counter_total("iq_sim_events_total") > 0);
        assert_eq!(t.obs.counter_total("iq_rudp_segments_sent_total"), 0);
    }

    #[test]
    fn app_frame_sizes_are_multiples_of_3000() {
        let sizes = app_frame_sizes(100, 1);
        assert_eq!(sizes.len(), 100);
        assert!(sizes.iter().all(|&s| s % 3000 == 0 && s >= 3000));
    }
}
