//! Ablation studies of the design choices behind IQ-RUDP, beyond the
//! paper's own tables:
//!
//! 1. **Measuring period** — the cadence of metrics/callbacks trades
//!    reaction speed against burst noise (§2.1's "measuring period" is
//!    never swept in the paper).
//! 2. **Adaptation policy** — the three application adaptations of
//!    §2.3.2 (frequency, resolution, reliability) on one workload.
//! 3. **Receiver loss tolerance** — how much reliability the §3.3
//!    scheme actually trades for timeliness.

use iq_metrics::{fmt, Table};
use iq_netsim::time;

use crate::runner::run_parallel;
use crate::scenario::{PolicySpec, RunResult, Scenario, Scheme};
use crate::tables::Size;

fn frames(size: Size, full: usize) -> usize {
    ((full as f64 * size.0) as usize).max(40)
}

/// Ablation 1: sweep the transport's measuring period on the §3.4
/// over-reaction workload. Returns `(period_ms, iq, rudp)` triples.
pub fn ablation_measure_period(size: Size) -> Vec<(u64, RunResult, RunResult)> {
    let periods_ms = [50u64, 100, 200, 400];
    let mut scenarios = Vec::new();
    for &p in &periods_ms {
        for scheme in [Scheme::Coordinated, Scheme::Uncoordinated] {
            let mut sc = Scenario::new(
                scheme,
                PolicySpec::Resolution,
                vec![1400; frames(size, 2000)],
            );
            sc.fps = Some(60.0);
            sc.datagram_mode = true;
            sc.thresholds = (Some(0.15), Some(0.01));
            sc.measure_period = Some(time::millis(p));
            sc.cross.cbr_bps = Some(14e6);
            sc.deadline_s = 600.0;
            scenarios.push(sc);
        }
    }
    let rows = run_parallel(&scenarios);
    periods_ms
        .iter()
        .zip(rows.chunks(2))
        .map(|(&p, pair)| (p, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// Renders ablation 1.
pub fn render_measure_period(rows: &[(u64, RunResult, RunResult)]) -> String {
    let mut t = Table::new(
        "Ablation: measuring period (over-reaction workload)",
        &[
            "Period(ms)",
            "IQ tp(KB/s)",
            "RUDP tp",
            "IQ jitter(ms)",
            "RUDP jitter",
        ],
    );
    for (p, iq, rudp) in rows {
        t.row(&[
            p.to_string(),
            fmt(iq.throughput_kbps, 1),
            fmt(rudp.throughput_kbps, 1),
            fmt(iq.jitter_s * 1e3, 2),
            fmt(rudp.jitter_s * 1e3, 2),
        ]);
    }
    t.render()
}

/// Ablation 2: the three application adaptation dimensions of §2.3.2 on
/// one congested rate-based workload, all coordinated. Returns
/// `(label, result)` pairs (plus a no-adaptation control).
pub fn ablation_policies(size: Size) -> Vec<(&'static str, RunResult)> {
    let specs: [(&'static str, PolicySpec); 4] = [
        ("none", PolicySpec::None),
        ("frequency", PolicySpec::Frequency),
        ("resolution", PolicySpec::Resolution),
        ("reliability (marking)", PolicySpec::Marking),
    ];
    let scenarios: Vec<Scenario> = specs
        .iter()
        .map(|&(_, policy)| {
            let mut sc = Scenario::new(
                Scheme::Coordinated,
                policy,
                vec![1400; frames(size, 2000)],
            );
            sc.fps = Some(80.0);
            sc.datagram_mode = true;
            sc.loss_tolerance = 0.40;
            sc.thresholds = (Some(0.10), Some(0.02));
            sc.cross.cbr_bps = Some(15e6);
            sc.deadline_s = 600.0;
            sc
        })
        .collect();
    let rows = run_parallel(&scenarios);
    specs
        .iter()
        .zip(rows)
        .map(|(&(label, _), r)| (label, r))
        .collect()
}

/// Renders ablation 2.
pub fn render_policies(rows: &[(&'static str, RunResult)]) -> String {
    let mut t = Table::new(
        "Ablation: adaptation dimension (coordinated, same workload)",
        &[
            "Policy",
            "Duration(s)",
            "Thpt(KB/s)",
            "Delivered(%)",
            "Jitter(ms)",
        ],
    );
    for (label, r) in rows {
        t.row(&[
            label.to_string(),
            fmt(r.duration_s, 1),
            fmt(r.throughput_kbps, 1),
            fmt(r.delivered_pct, 1),
            fmt(r.jitter_s * 1e3, 2),
        ]);
    }
    t.render()
}

/// Ablation 3: sweep the receiver's loss tolerance on the §3.3
/// reliability workload. Returns `(tolerance, result)` pairs.
pub fn ablation_tolerance(size: Size) -> Vec<(f64, RunResult)> {
    let tolerances = [0.0, 0.2, 0.4, 0.6];
    let scenarios: Vec<Scenario> = tolerances
        .iter()
        .map(|&tol| {
            let mut sc = Scenario::new(
                Scheme::Coordinated,
                PolicySpec::Marking,
                vec![1400; frames(size, 3000)],
            );
            sc.fps = Some(100.0);
            sc.datagram_mode = true;
            sc.loss_tolerance = tol;
            sc.thresholds = (Some(0.10), Some(0.02));
            sc.min_lower_gap_s = 1.5;
            sc.cross.cbr_bps = Some(12e6);
            sc.deadline_s = 600.0;
            sc
        })
        .collect();
    let rows = run_parallel(&scenarios);
    tolerances.iter().copied().zip(rows).collect()
}

/// Renders ablation 3.
pub fn render_tolerance(rows: &[(f64, RunResult)]) -> String {
    let mut t = Table::new(
        "Ablation: receiver loss tolerance (reliability workload)",
        &[
            "Tolerance",
            "Duration(s)",
            "Delivered(%)",
            "Tagged delay(ms)",
            "Tagged jitter(ms)",
        ],
    );
    for (tol, r) in rows {
        t.row(&[
            format!("{tol:.1}"),
            fmt(r.duration_s, 1),
            fmt(r.delivered_pct, 1),
            fmt(r.tagged_delay_ms, 2),
            fmt(r.tagged_jitter_ms, 2),
        ]);
    }
    t.render()
}

/// Ablation 4: drop-tail vs RED at the bottleneck, on the §3.4
/// over-reaction workload, for both schemes. RED's early signalling
/// spreads losses out, which interacts with the error-ratio thresholds
/// the whole coordination machinery keys off.
pub fn ablation_queue_discipline(size: Size) -> Vec<(&'static str, RunResult, RunResult)> {
    let mut out = Vec::new();
    for (label, red) in [("drop-tail", false), ("RED", true)] {
        let mut scenarios = Vec::new();
        for scheme in [Scheme::Coordinated, Scheme::Uncoordinated] {
            let mut sc = Scenario::new(
                scheme,
                PolicySpec::Resolution,
                vec![1400; frames(size, 2000)],
            );
            sc.fps = Some(60.0);
            sc.datagram_mode = true;
            sc.thresholds = (Some(0.15), Some(0.01));
            sc.red_bottleneck = red;
            sc.cross.cbr_bps = Some(14e6);
            sc.deadline_s = 600.0;
            scenarios.push(sc);
        }
        let rows = run_parallel(&scenarios);
        out.push((label, rows[0].clone(), rows[1].clone()));
    }
    out
}

/// Renders ablation 4.
pub fn render_queue_discipline(rows: &[(&'static str, RunResult, RunResult)]) -> String {
    let mut t = Table::new(
        "Ablation: bottleneck queue discipline (over-reaction workload)",
        &[
            "Queue",
            "IQ tp(KB/s)",
            "RUDP tp",
            "IQ jitter(ms)",
            "RUDP jitter",
        ],
    );
    for (label, iq, rudp) in rows {
        t.row(&[
            label.to_string(),
            fmt(iq.throughput_kbps, 1),
            fmt(rudp.throughput_kbps, 1),
            fmt(iq.jitter_s * 1e3, 2),
            fmt(rudp.jitter_s * 1e3, 2),
        ]);
    }
    t.render()
}

/// Runs all ablations and returns the rendered report.
pub fn run_all_ablations(size: Size) -> String {
    let mut out = String::new();
    out.push_str(&render_measure_period(&ablation_measure_period(size)));
    out.push('\n');
    out.push_str(&render_policies(&ablation_policies(size)));
    out.push('\n');
    out.push_str(&render_tolerance(&ablation_tolerance(size)));
    out.push('\n');
    out.push_str(&render_queue_discipline(&ablation_queue_discipline(size)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_period_sweep_shapes() {
        let rows = ablation_measure_period(Size(0.05));
        assert_eq!(rows.len(), 4);
        for (_, iq, rudp) in &rows {
            assert!(iq.finished && rudp.finished);
        }
        let s = render_measure_period(&rows);
        assert_eq!(s.lines().count(), 3 + 4);
    }

    #[test]
    fn policy_ablation_covers_all_dimensions() {
        let rows = ablation_policies(Size(0.05));
        assert_eq!(rows.len(), 4);
        // Reliability is the only policy allowed to drop messages.
        for (label, r) in &rows {
            assert!(r.finished, "{label} did not finish");
            if *label != "reliability (marking)" {
                assert!(
                    r.delivered_pct > 99.0,
                    "{label} dropped messages: {}",
                    r.delivered_pct
                );
            }
        }
    }

    #[test]
    fn queue_discipline_ablation_runs_both_disciplines() {
        let rows = ablation_queue_discipline(Size(0.05));
        assert_eq!(rows.len(), 2);
        for (label, iq, rudp) in &rows {
            assert!(iq.finished && rudp.finished, "{label} did not finish");
        }
    }

    #[test]
    fn tolerance_zero_delivers_everything() {
        let rows = ablation_tolerance(Size(0.05));
        assert_eq!(rows.len(), 4);
        let (tol0, r0) = &rows[0];
        assert_eq!(*tol0, 0.0);
        assert!(r0.finished);
        assert!(r0.delivered_pct > 99.9, "tolerance 0 lost data");
        // Delivered fraction is non-increasing in tolerance (weakly).
        for pair in rows.windows(2) {
            assert!(pair[1].1.delivered_pct <= pair[0].1.delivered_pct + 3.0);
        }
    }
}
