//! The four figures of the paper's evaluation.

use iq_metrics::TimeSeries;
use iq_trace::MembershipTrace;

use crate::scenario::RunResult;
use crate::tables::{run_table3, run_table6, Size, TABLE6_IPERF_BPS};

/// Figure 1: membership dynamics — the group-size trace driving the
/// changing-application workloads.
pub fn figure1() -> TimeSeries {
    let trace = MembershipTrace::paper_default();
    let mut s = TimeSeries::new();
    for (i, &g) in trace.samples.iter().enumerate() {
        s.record(i as u64, f64::from(g));
    }
    s
}

/// Figures 2 and 3: per-packet delay jitter at the receiver for the
/// conflict experiment, coordinated (Figure 2) vs uncoordinated
/// (Figure 3). Returns `(iq_rudp_series, rudp_series)`.
///
/// When telemetry capture is on, each series is rebuilt from the run's
/// `msg_delivered` bus records; [`jitter_series_from_telemetry`] makes
/// this bit-identical to the receiver-side accumulator, so the figure
/// does not depend on how it was derived.
pub fn figures_2_3(size: Size) -> (TimeSeries, TimeSeries) {
    let rows = run_table3(size);
    (jitter_series_for(&rows[0]), jitter_series_for(&rows[1]))
}

fn jitter_series_for(r: &RunResult) -> TimeSeries {
    jitter_series_from_telemetry(r, 1).unwrap_or_else(|| r.jitter_series.clone())
}

/// Rebuilds the Figures 2/3 jitter series for `flow` from a run's
/// captured telemetry (the `msg_delivered` records). Returns `None`
/// when the run carried no telemetry or the stream fails to parse.
pub fn jitter_series_from_telemetry(r: &RunResult, flow: u64) -> Option<TimeSeries> {
    if r.telemetry.is_empty() {
        return None;
    }
    let records = iq_telemetry::parse_jsonl(&r.telemetry).ok()?;
    let mut s = TimeSeries::new();
    for (at, dev_ms) in iq_telemetry::jitter_series_ms(&records, flow) {
        s.record(at, dev_ms);
    }
    Some(s)
}

/// One bar group of Figure 4.
#[derive(Debug, Clone, Copy)]
pub struct Figure4Point {
    /// Background iperf rate, bits/second.
    pub iperf_bps: f64,
    /// Throughput improvement of IQ-RUDP over RUDP, percent.
    pub throughput_gain_pct: f64,
    /// Jitter reduction of IQ-RUDP relative to RUDP, percent.
    pub jitter_reduction_pct: f64,
}

/// Figure 4: performance improvement from coordination against
/// over-reaction, as a function of congestion level (derived from the
/// Table 6 sweep; the paper reports +6→25 % throughput and −20→76 %
/// jitter as congestion grows).
pub fn figure4(size: Size) -> Vec<Figure4Point> {
    figure4_from_rows(&run_table6(size))
}

/// Computes Figure 4 from already-run Table 6 rows (pairs of
/// IQ-RUDP/RUDP per iperf rate).
pub fn figure4_from_rows(rows: &[RunResult]) -> Vec<Figure4Point> {
    assert_eq!(rows.len(), 2 * TABLE6_IPERF_BPS.len(), "expected table 6 rows");
    TABLE6_IPERF_BPS
        .iter()
        .enumerate()
        .map(|(i, &iperf_bps)| {
            let iq = &rows[2 * i];
            let rudp = &rows[2 * i + 1];
            let throughput_gain_pct = if rudp.throughput_kbps > 0.0 {
                100.0 * (iq.throughput_kbps / rudp.throughput_kbps - 1.0)
            } else {
                0.0
            };
            let jitter_reduction_pct = if rudp.jitter_s > 0.0 {
                100.0 * (1.0 - iq.jitter_s / rudp.jitter_s)
            } else {
                0.0
            };
            Figure4Point {
                iperf_bps,
                throughput_gain_pct,
                jitter_reduction_pct,
            }
        })
        .collect()
}

/// Renders Figure 4 as text rows.
pub fn render_figure4(points: &[Figure4Point]) -> String {
    use std::fmt::Write;
    let mut out = String::from("== Figure 4: Performance improvement - overreaction ==\n");
    let _ = writeln!(out, "iperf(Mbps)  throughput gain(%)  jitter reduction(%)");
    for p in points {
        let _ = writeln!(
            out,
            "{:<11}  {:<18.1}  {:.1}",
            p.iperf_bps / 1e6,
            p.throughput_gain_pct,
            p.jitter_reduction_pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_derived_jitter_series_matches_receiver_accumulator() {
        use crate::runner::{capture_lock_for_tests, set_telemetry_capture};
        use crate::scenario::{run_scenario, PolicySpec, Scenario, Scheme};
        let _g = capture_lock_for_tests();
        set_telemetry_capture(true);
        let mut sc = Scenario::new(Scheme::RudpPlain, PolicySpec::None, vec![1400; 80]);
        sc.cross.cbr_bps = Some(8e6);
        sc.deadline_s = 60.0;
        let r = run_scenario(&sc);
        set_telemetry_capture(false);
        let rebuilt = jitter_series_from_telemetry(&r, 1).expect("telemetry captured");
        assert_eq!(rebuilt.len(), r.jitter_series.len());
        for (a, b) in rebuilt.points.iter().zip(&r.jitter_series.points) {
            assert_eq!(a.0, b.0, "jitter sample timestamps diverge");
            assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "jitter sample values diverge at t={}",
                a.0
            );
        }
    }

    #[test]
    fn figure1_mirrors_the_trace() {
        let s = figure1();
        let trace = MembershipTrace::paper_default();
        assert_eq!(s.len(), trace.len());
        assert_eq!(s.points[0].1, f64::from(trace.samples[0]));
    }

    #[test]
    fn figure4_math() {
        use crate::scenario::RunResult;
        fn row(tp: f64, jit: f64) -> RunResult {
            RunResult {
                label: "x",
                duration_s: 1.0,
                throughput_kbps: tp,
                inter_arrival_s: 0.0,
                jitter_s: jit,
                tagged_delay_ms: 0.0,
                tagged_jitter_ms: 0.0,
                msgs_offered: 0,
                msgs_delivered: 0,
                delivered_pct: 0.0,
                jitter_series: TimeSeries::new(),
                finished: true,
                coordination: None,
                callbacks: (0, 0),
                sender_stats: None,
                events_processed: 0,
                telemetry: String::new(),
                shards_used: 1,
                obs: iq_obs::Registry::new(),
                phase_profile: Vec::new(),
                sched: iq_netsim::SchedTotals::default(),
                telemetry_evicted: 0,
            }
        }
        let rows = vec![
            row(110.0, 0.8),  // 12M IQ
            row(100.0, 1.0),  // 12M RUDP
            row(125.0, 0.5),  // 16M IQ
            row(100.0, 1.0),  // 16M RUDP
            row(150.0, 0.25), // 18M IQ
            row(100.0, 1.0),  // 18M RUDP
        ];
        let pts = figure4_from_rows(&rows);
        assert!((pts[0].throughput_gain_pct - 10.0).abs() < 1e-9);
        assert!((pts[0].jitter_reduction_pct - 20.0).abs() < 1e-9);
        assert!((pts[2].throughput_gain_pct - 50.0).abs() < 1e-9);
        assert!((pts[2].jitter_reduction_pct - 75.0).abs() < 1e-9);
        let rendered = render_figure4(&pts);
        assert_eq!(rendered.lines().count(), 5);
    }
}
