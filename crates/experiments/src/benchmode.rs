//! The end-to-end simulator benchmark behind `iqrudp bench`.
//!
//! Runs a fixed, deterministic scenario sweep chosen to exercise every
//! hot path of `iq-netsim` (event scheduling, timer churn, per-hop
//! routing, queueing, loss recovery) and writes the measurements to
//! `BENCH_netsim.json` so the performance trajectory of the simulator is
//! tracked in-repo from PR to PR.
//!
//! The JSON file holds two sections:
//!
//! * `baseline` — the floor laid down the first time the bench ran (the
//!   pre-overhaul `BinaryHeap`-scheduler simulator). It is carried
//!   forward verbatim on every subsequent run so before/after evidence
//!   never disappears.
//! * `current` — the most recent measurement.
//!
//! `--check FILE` compares a fresh run against the `current` section of
//! a committed file and fails (non-zero exit) when aggregate events/sec
//! regressed by more than `--max-regress` (default 20 %). CI uses this
//! as a smoke gate.

use std::time::Instant;

use crate::runner::{run_specs, ScenarioSpec};
use crate::scenario::{app_frame_sizes, PolicySpec, Scenario, Scheme, VbrSpec};
use crate::tables::{conflict_scenario, Size};
use iq_rudp::CcAlgorithm;

/// Options for one bench invocation (a parsed `iqrudp bench` command
/// line).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Workload scale (1.0 = the committed reference scale).
    pub size: Size,
    /// Where the measurement JSON is written.
    pub out_path: String,
    /// When set, compare against the `current` section of this file.
    pub check_path: Option<String>,
    /// Allowed fractional events/sec regression before `--check` fails.
    pub max_regress: f64,
    /// Free-form label recorded with the measurement (e.g. which
    /// scheduler implementation produced it).
    pub label: String,
    /// When set, run only the scenario with this name (plus, for
    /// `mega_flows`, its shard scaling curve).
    pub only: Option<String>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            size: Size::FULL,
            out_path: "BENCH_netsim.json".to_string(),
            check_path: None,
            max_regress: 0.20,
            label: "netsim".to_string(),
            only: None,
        }
    }
}

/// One scenario's measurement.
#[derive(Debug, Clone)]
pub struct BenchScenario {
    /// Scenario name (stable across runs).
    pub name: String,
    /// Simulator events processed.
    pub events: u64,
    /// Host wall-clock seconds.
    pub wall_s: f64,
    /// Events per second of host time.
    pub events_per_sec: f64,
    /// Resident-set growth across this scenario's run, bytes (see
    /// [`crate::runner::ScenarioReport::peak_rss_bytes`]).
    pub peak_rss_bytes: u64,
    /// OS threads used for intra-scenario sharded execution (1 for the
    /// serial scenarios).
    pub shards: u32,
    /// Order-sensitive hash of the scenario's full determinism
    /// fingerprint (metrics, jitter series, telemetry bytes, counter
    /// fingerprint). Two runs of the same workload — at any `--shards`
    /// value — must agree.
    pub fingerprint: u64,
    /// The counter fingerprint alone: FNV-1a over the canonical
    /// sim-plane metric exposition (see `iq_obs::Registry::sim_text`).
    /// Byte-identical across `-j` and `--shards`, gated by the shard
    /// curve check.
    pub counter_fingerprint: u64,
    /// Per-shard wall-clock phase breakdown (engine plane; one entry
    /// for serial scenarios). Rendered into the non-gated `profile`
    /// section of the JSON.
    pub profile: Vec<iq_obs::PhaseSnapshot>,
    /// Execute-to-wall utilization: sum of execute time over sum of
    /// total profiled time across shards (engine plane). 1.0 for a
    /// serial scenario with no idle/ingress/flush phases.
    pub utilization: f64,
    /// Shard-scheduler totals (engine plane; all zero for the serial
    /// scenarios — see [`iq_netsim::SchedTotals`]).
    pub sched: iq_netsim::SchedTotals,
}

/// Execute-to-wall utilization of a (possibly per-shard) phase profile:
/// total execute nanos over total profiled nanos. Empty or unprofiled
/// input reports 1.0 (a serial run executes the whole time).
pub(crate) fn utilization(profile: &[iq_obs::PhaseSnapshot]) -> f64 {
    let total: u64 = profile.iter().map(|s| s.total_nanos()).sum();
    if total == 0 {
        return 1.0;
    }
    let execute: u64 = profile
        .iter()
        .map(|s| s.nanos[iq_obs::Phase::Execute as usize])
        .sum();
    execute as f64 / total as f64
}

/// One full sweep measurement.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Label describing what was measured.
    pub label: String,
    /// Workload scale the sweep ran at.
    pub size: f64,
    /// Per-scenario measurements, in declaration order.
    pub scenarios: Vec<BenchScenario>,
    /// Total events across the sweep.
    pub total_events: u64,
    /// Total wall-clock seconds across the sweep (sum of per-scenario
    /// simulation time; excludes process startup).
    pub total_wall_s: f64,
    /// Aggregate events/sec (total events / total wall).
    pub total_events_per_sec: f64,
    /// Peak resident set size of the process, bytes (0 when the
    /// platform does not expose it).
    pub peak_rss_bytes: u64,
}

/// The fixed sweep: one scenario per hot-path profile.
///
/// Names are stable identifiers — CI and the trajectory tooling key off
/// them — so change them only with a deliberate baseline reset.
pub fn bench_specs(size: Size) -> Vec<ScenarioSpec> {
    let frames = |n: usize, seed: u64| app_frame_sizes(scaled(size, n), seed);
    let mut specs = Vec::new();

    // 1. Bulk RUDP transfer: data/ack event volume plus RTO timer churn.
    let mut sc = Scenario::new(
        Scheme::RudpPlain,
        PolicySpec::None,
        vec![1400u32; scaled(size, 60_000)],
    );
    sc.deadline_s = 900.0;
    specs.push(ScenarioSpec::new("bulk_rudp", sc));

    // 2. Coordinated adaptive flow against CBR cross traffic: the
    //    paper's core workload — congestion, loss recovery, callbacks.
    let mut sc = Scenario::new(
        Scheme::Coordinated,
        PolicySpec::Resolution,
        frames(8000, 7),
    );
    sc.cross.cbr_bps = Some(18e6);
    sc.thresholds = (Some(0.15), Some(0.01));
    sc.deadline_s = 900.0;
    specs.push(ScenarioSpec::new("coordinated_cbr", sc));

    // 3. Rate-based datagram flow with marking against VBR cross
    //    traffic: many small messages, abandonment, Fwd segments.
    let mut sc = Scenario::new(
        Scheme::CoordinatedWithCond,
        PolicySpec::Marking,
        frames(12_000, 11),
    );
    sc.fps = Some(100.0);
    sc.datagram_mode = true;
    sc.loss_tolerance = 0.40;
    sc.thresholds = (Some(0.10), Some(0.02));
    sc.cross.vbr = Some(VbrSpec {
        fps: 500.0,
        mean_bps: 10e6,
        seed: 13,
    });
    sc.deadline_s = 600.0;
    specs.push(ScenarioSpec::new("marking_vbr", sc));

    // 4. TCP bulk against a competing TCP flow: the second transport's
    //    state machine plus two full-speed flows through one queue.
    let mut sc = Scenario::new(Scheme::Tcp, PolicySpec::None, vec![1400u32; scaled(size, 40_000)]);
    sc.cross.tcp_bulk = true;
    sc.deadline_s = 600.0;
    specs.push(ScenarioSpec::new("tcp_fairness", sc));

    // 5. Lossy-link recovery: random loss drives retransmission and
    //    dup-ack machinery far harder than clean congestion does.
    let mut sc = Scenario::new(
        Scheme::RudpPlain,
        PolicySpec::None,
        vec![1400u32; scaled(size, 25_000)],
    );
    sc.dumbbell.pairs = 3;
    sc.red_bottleneck = true;
    sc.cross.cbr_bps = Some(14e6);
    sc.deadline_s = 900.0;
    specs.push(ScenarioSpec::new("red_lossy", sc));

    // 6. Many-flow incast: hundreds of concurrent connections sharing
    //    one bottleneck — per-connection state, ACK fan-in and timer
    //    load that the single-flow profiles never reach.
    let sc = Scenario::incast(200, scaled(size, 150), 1400);
    specs.push(ScenarioSpec::new("many_flows", sc));

    // 7. CUBIC under the Table-3 conflict workload: the cubic window
    //    curve (cbrt, per-ACK target steps) plus the coordinator's
    //    re-inflation seam on a non-LDA controller.
    let mut sc = conflict_scenario(&frames(9000, 17), Scheme::Coordinated);
    sc.cc = CcAlgorithm::from_name("cubic").expect("known name");
    specs.push(ScenarioSpec::new("cubic_conflict", sc));

    // 8. BBR-like model under many-flow incast: per-connection
    //    rate/min-RTT sampling and BDP recomputation across hundreds
    //    of concurrent flows.
    let mut sc = Scenario::incast(200, scaled(size, 150), 1400);
    sc.cc = CcAlgorithm::from_name("bbr").expect("known name");
    specs.push(ScenarioSpec::new("bbr_many_flows", sc));

    // 9. RRR on the same conflict workload without coordination:
    //    loss-proportional rate reduction reacting to raw loss ratios.
    let mut sc = conflict_scenario(&frames(9000, 19), Scheme::Uncoordinated);
    sc.cc = CcAlgorithm::from_name("rrr").expect("known name");
    specs.push(ScenarioSpec::new("rrr_table3", sc));

    // 10. The sharded 100k-flow population: 8 independent legs × 12 800
    //     flows, executed by the conservative-lookahead parallel engine
    //     with `--shards` OS threads. The flow count never scales down —
    //     the point is per-connection state pressure at fleet size — so
    //     `size` only scales the per-flow message count.
    let msgs = ((8.0 * size.0).ceil() as usize).max(2);
    specs.push(ScenarioSpec::new("mega_flows", Scenario::mega(8, 12_800, msgs, 1400)));

    specs
}

fn scaled(size: Size, full: usize) -> usize {
    ((full as f64 * size.0) as usize).max(40)
}

fn to_bench_scenario(name: String, r: &crate::runner::ScenarioReport) -> BenchScenario {
    BenchScenario {
        name,
        events: r.result.events_processed,
        wall_s: r.wall_s,
        events_per_sec: r.events_per_sec,
        peak_rss_bytes: r.peak_rss_bytes,
        shards: r.shards,
        fingerprint: crate::runner::result_fingerprint(&r.result),
        counter_fingerprint: r.result.obs.sim_fingerprint(),
        utilization: utilization(&r.result.phase_profile),
        sched: r.result.sched,
        profile: r.result.phase_profile.clone(),
    }
}

/// Runs the sweep and aggregates the measurement.
///
/// When the sweep includes `mega_flows`, the same workload is re-run
/// serially at 1, 2, 4 and 8 shard threads afterwards and recorded as
/// `mega_flows_shardsN` — the scaling curve of the parallel engine. The
/// curve entries carry the same determinism fingerprint as each other
/// (enforced by [`bench_main`]).
pub fn run_bench(opts: &BenchOptions) -> BenchRun {
    let mut specs = bench_specs(opts.size);
    if let Some(only) = &opts.only {
        specs.retain(|s| &s.name == only);
        assert!(!specs.is_empty(), "bench: no scenario named `{only}`");
    }
    let mega = specs.iter().find(|s| s.name == "mega_flows").cloned();
    let start = Instant::now();
    let reports = run_specs(&specs);
    let mut scenarios: Vec<BenchScenario> = reports
        .iter()
        .map(|r| to_bench_scenario(r.name.clone(), r))
        .collect();
    // The shard scaling curve: one worker thread per run so the curve
    // entries never contend with each other for cores.
    if let Some(mega) = mega {
        let before = crate::runner::shards();
        for n in [1usize, 2, 4, 8] {
            crate::runner::set_shards(n);
            let reports = crate::runner::Executor::new(1).run(std::slice::from_ref(&mega));
            scenarios.push(to_bench_scenario(format!("mega_flows_shards{n}"), &reports[0]));
        }
        crate::runner::set_shards(before);
    }
    let total_wall_s = start.elapsed().as_secs_f64();
    let total_events: u64 = scenarios.iter().map(|s| s.events).sum();
    let total_events_per_sec = if total_wall_s > 0.0 {
        total_events as f64 / total_wall_s
    } else {
        0.0
    };
    BenchRun {
        label: opts.label.clone(),
        size: opts.size.0,
        scenarios,
        total_events,
        total_wall_s,
        total_events_per_sec,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Reads a kB-denominated field from `/proc/self/status` as bytes; 0
/// where unavailable.
#[allow(unused_variables)]
fn proc_status_bytes(key: &str) -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix(key) {
                    let kb: u64 = rest
                        .trim_start_matches(':')
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where unavailable.
pub fn peak_rss_bytes() -> u64 {
    proc_status_bytes("VmHWM")
}

/// Current resident set size of this process in bytes (`VmRSS`); 0
/// where unavailable. The executor samples this before and after each
/// scenario to charge memory growth to the scenario that caused it.
pub(crate) fn current_rss_bytes() -> u64 {
    proc_status_bytes("VmRSS")
}

/// Whether this platform exposes process memory statistics
/// (`/proc/self/status` on Linux). When it does not, the bench records
/// `"mem_unavailable": true` and skips the RSS regression gate rather
/// than silently comparing zeros.
pub fn mem_stats_available() -> bool {
    current_rss_bytes() > 0
}

/// Background `VmRSS` sampler: records the process-wide peak resident
/// set between [`Self::start`] and [`Self::finish`], so a scenario is
/// charged for its *transient* peak. The plain after-minus-before delta
/// this replaces reported 0 for every scenario whose working set was
/// freed before the final sample (`tcp_fairness`, `many_flows`, and
/// `bbr_many_flows` all did).
pub(crate) struct RssSampler {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
    before: u64,
}

impl RssSampler {
    /// Starts the sampling thread and records the baseline.
    pub(crate) fn start() -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let before = current_rss_bytes();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut peak = 0u64;
            while !flag.load(Ordering::Acquire) {
                peak = peak.max(current_rss_bytes());
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            peak
        });
        Self {
            stop,
            handle: Some(handle),
            before,
        }
    }

    /// Stops sampling and returns the peak-over-baseline delta in bytes.
    /// The current RSS is folded in as a final sample, so the result is
    /// never smaller than the old after-minus-before delta.
    pub(crate) fn finish(mut self) -> u64 {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        let peak = self
            .handle
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or(0);
        peak.max(current_rss_bytes()).saturating_sub(self.before)
    }
}

fn render_run(run: &BenchRun, indent: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("{indent}  \"label\": \"{}\",\n", run.label));
    s.push_str(&format!("{indent}  \"size\": {},\n", fmt_f64(run.size)));
    s.push_str(&format!("{indent}  \"total_events\": {},\n", run.total_events));
    s.push_str(&format!(
        "{indent}  \"total_wall_s\": {},\n",
        fmt_f64(run.total_wall_s)
    ));
    s.push_str(&format!(
        "{indent}  \"total_events_per_sec\": {},\n",
        fmt_f64(run.total_events_per_sec)
    ));
    s.push_str(&format!(
        "{indent}  \"peak_rss_bytes\": {},\n",
        run.peak_rss_bytes
    ));
    s.push_str(&format!(
        "{indent}  \"mem_unavailable\": {},\n",
        !mem_stats_available()
    ));
    s.push_str(&format!("{indent}  \"scenarios\": [\n"));
    for (i, sc) in run.scenarios.iter().enumerate() {
        let comma = if i + 1 < run.scenarios.len() { "," } else { "" };
        s.push_str(&format!(
            "{indent}    {{\"name\": \"{}\", \"events\": {}, \"wall_s\": {}, \"events_per_sec\": {}, \"peak_rss_bytes\": {}, \"shards\": {}, \"utilization\": {}, \"fingerprint\": {}, \"counter_fingerprint\": {}}}{comma}\n",
            sc.name,
            sc.events,
            fmt_f64(sc.wall_s),
            fmt_f64(sc.events_per_sec),
            sc.peak_rss_bytes,
            sc.shards,
            fmt_f64(sc.utilization),
            sc.fingerprint,
            sc.counter_fingerprint
        ));
    }
    s.push_str(&format!("{indent}  ]\n"));
    s.push_str(&format!("{indent}}}"));
    s
}

fn fmt_f64(v: f64) -> String {
    // Enough digits to round-trip the magnitudes we store, without the
    // noise of full f64 precision in a committed file.
    if v == 0.0 {
        "0".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders the wall-clock phase breakdown of the sweep: one entry per
/// scenario, one object per shard. Engine-plane data — informational
/// only, never gated by `--check` (the timings vary run to run).
fn render_profile(run: &BenchRun, indent: &str) -> String {
    use iq_obs::Phase;
    let mut s = String::new();
    s.push_str("{\n");
    let with_profile: Vec<&BenchScenario> = run
        .scenarios
        .iter()
        .filter(|sc| sc.profile.iter().any(|p| p.total_nanos() > 0))
        .collect();
    for (i, sc) in with_profile.iter().enumerate() {
        let comma = if i + 1 < with_profile.len() { "," } else { "" };
        s.push_str(&format!(
            "{indent}  \"{}\": {{\"utilization\": {}, \"steals\": {}, \"parks\": {}, \"wakes\": {}, \"worker_parks\": {}, \"shards\": [",
            sc.name,
            fmt_f64(sc.utilization),
            sc.sched.steals,
            sc.sched.parks,
            sc.sched.wakes,
            sc.sched.worker_parks,
        ));
        for (shard, p) in sc.profile.iter().enumerate() {
            if shard > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"shard\": {shard}, \"idle_s\": {}, \"ingress_s\": {}, \"execute_s\": {}, \"flush_s\": {}}}",
                fmt_f64(p.seconds(Phase::Idle)),
                fmt_f64(p.seconds(Phase::Ingress)),
                fmt_f64(p.seconds(Phase::Execute)),
                fmt_f64(p.seconds(Phase::Flush)),
            ));
        }
        s.push_str(&format!("]}}{comma}\n"));
    }
    s.push_str(&format!("{indent}}}"));
    s
}

/// Renders the full `BENCH_netsim.json` document.
pub fn render_json(baseline: &str, current: &BenchRun) -> String {
    format!(
        "{{\n  \"schema\": \"iq-bench-netsim/v3\",\n  \"baseline\": {},\n  \"current\": {},\n  \"profile\": {}\n}}\n",
        baseline,
        render_run(current, "  "),
        render_profile(current, "  ")
    )
}

/// Extracts the raw JSON object following `"key":` (brace-matched), so
/// a previously committed `baseline` section can be carried forward
/// without a full JSON parser.
pub fn extract_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a named number from a JSON object fragment (first match).
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Runs the bench, writes the JSON (carrying an existing baseline
/// forward), and applies the optional regression check.
///
/// Returns `Err` with a human-readable message when the check fails or
/// the output cannot be written.
pub fn bench_main(opts: &BenchOptions) -> Result<BenchRun, String> {
    let run = run_bench(opts);

    // Determinism across thread counts is a hard property, not a
    // perf budget: every shard-curve entry must reproduce the exact
    // fingerprint of the 1-thread run.
    let curve: Vec<&BenchScenario> = run
        .scenarios
        .iter()
        .filter(|s| s.name.starts_with("mega_flows_shards"))
        .collect();
    if let Some((first, rest)) = curve.split_first() {
        for s in rest {
            if s.fingerprint != first.fingerprint {
                return Err(format!(
                    "shard determinism violation: `{}` fingerprint {:#x} != `{}` \
                     fingerprint {:#x}",
                    s.name, s.fingerprint, first.name, first.fingerprint,
                ));
            }
            if s.counter_fingerprint != first.counter_fingerprint {
                return Err(format!(
                    "counter fingerprint violation: `{}` sim-plane metrics hash {:#x} \
                     != `{}` hash {:#x} — a sim-plane counter is thread-count-dependent",
                    s.name, s.counter_fingerprint, first.name, first.counter_fingerprint,
                ));
            }
        }
        eprintln!(
            "bench check: {} shard-curve entries share fingerprint {:#x} \
             (counter fingerprint {:#x}) — ok",
            curve.len(),
            first.fingerprint,
            first.counter_fingerprint,
        );
    }

    // Carry an existing baseline forward; the first run lays the floor.
    let existing = std::fs::read_to_string(&opts.out_path).ok();
    let baseline = existing
        .as_deref()
        .and_then(|j| extract_object(j, "baseline"))
        .map(str::to_string)
        .unwrap_or_else(|| render_run(&run, "  "));

    let doc = render_json(&baseline, &run);
    std::fs::write(&opts.out_path, &doc)
        .map_err(|e| format!("cannot write {}: {e}", opts.out_path))?;

    if let Some(check_path) = &opts.check_path {
        let committed = std::fs::read_to_string(check_path)
            .map_err(|e| format!("cannot read {check_path}: {e}"))?;
        let section = extract_object(&committed, "current")
            .ok_or_else(|| format!("{check_path}: no `current` section"))?;
        let reference = extract_number(section, "total_events_per_sec")
            .ok_or_else(|| format!("{check_path}: no total_events_per_sec"))?;
        if reference > 0.0 {
            let ratio = run.total_events_per_sec / reference;
            if ratio < 1.0 - opts.max_regress {
                return Err(format!(
                    "events/sec regression: {:.0} now vs {:.0} committed ({:.1}% of \
                     reference, allowed floor {:.0}%)",
                    run.total_events_per_sec,
                    reference,
                    100.0 * ratio,
                    100.0 * (1.0 - opts.max_regress),
                ));
            }
            eprintln!(
                "bench check: {:.0} events/s vs committed {:.0} ({:+.1}%) — ok",
                run.total_events_per_sec,
                reference,
                100.0 * (ratio - 1.0),
            );
        }
        // Memory gate: peak RSS must not grow past the same tolerance.
        let reference_rss = extract_number(section, "peak_rss_bytes").unwrap_or(0.0);
        if !mem_stats_available() {
            eprintln!(
                "bench check: RSS gate skipped (mem_unavailable — this platform does \
                 not expose process memory statistics)"
            );
        }
        if reference_rss > 0.0 && run.peak_rss_bytes > 0 {
            let ratio = run.peak_rss_bytes as f64 / reference_rss;
            if ratio > 1.0 + opts.max_regress {
                return Err(format!(
                    "peak RSS regression: {} bytes now vs {:.0} committed ({:.1}% of \
                     reference, allowed ceiling {:.0}%)",
                    run.peak_rss_bytes,
                    reference_rss,
                    100.0 * ratio,
                    100.0 * (1.0 + opts.max_regress),
                ));
            }
            eprintln!(
                "bench check: {} peak RSS vs committed {:.0} ({:+.1}%) — ok",
                run.peak_rss_bytes,
                reference_rss,
                100.0 * (ratio - 1.0),
            );
        }
        // Shard scaling gate: with 4 cores to spend, 4 shard threads
        // must at least double the 1-thread event rate on the sharded
        // scenario. Meaningless on smaller hosts, where the threads
        // would just time-slice one core — skip there.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let find = |name: &str| run.scenarios.iter().find(|s| s.name == name);
        if let (Some(s1), Some(s4)) = (find("mega_flows_shards1"), find("mega_flows_shards4")) {
            if cores >= 4 && s1.events_per_sec > 0.0 {
                let speedup = s4.events_per_sec / s1.events_per_sec;
                if speedup < 2.0 {
                    return Err(format!(
                        "shard scaling regression: mega_flows at 4 shards is only \
                         {speedup:.2}x the 1-shard rate (expected >= 2x on {cores} cores)",
                    ));
                }
                eprintln!("bench check: mega_flows 4-shard speedup {speedup:.2}x — ok");
            } else {
                eprintln!(
                    "bench check: shard scaling gate skipped ({cores} core(s) available)"
                );
            }
        }
        // Scheduler overhead gate, valid on *any* host: two shard
        // threads must finish within 1.1x of one. Before the
        // park/wake scheduler, spin-yielding workers starved the only
        // runnable shard on a 1-core host and shards2 took 1.7x the
        // shards1 wall time.
        if let (Some(s1), Some(s2)) = (find("mega_flows_shards1"), find("mega_flows_shards2")) {
            if s1.wall_s > 0.0 {
                let ratio = s2.wall_s / s1.wall_s;
                if ratio > 1.1 {
                    return Err(format!(
                        "shard overhead regression: mega_flows_shards2 wall {:.2}s is \
                         {ratio:.2}x mega_flows_shards1 ({:.2}s); 2 shard threads must \
                         stay within 1.1x of 1 on any host",
                        s2.wall_s, s1.wall_s,
                    ));
                }
                eprintln!(
                    "bench check: mega_flows shards2/shards1 wall ratio {ratio:.2}x — ok"
                );
            }
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_sections_round_trip() {
        let run = BenchRun {
            label: "test".into(),
            size: 0.5,
            scenarios: vec![BenchScenario {
                name: "a".into(),
                events: 100,
                wall_s: 0.25,
                events_per_sec: 400.0,
                peak_rss_bytes: 512,
                shards: 1,
                fingerprint: 0xfeed,
                counter_fingerprint: 0xbeef,
                utilization: 0.75,
                sched: iq_netsim::SchedTotals::default(),
                profile: vec![iq_obs::PhaseSnapshot::default()],
            }],
            total_events: 100,
            total_wall_s: 0.25,
            total_events_per_sec: 400.0,
            peak_rss_bytes: 1024,
        };
        let doc = render_json(&render_run(&run, "  "), &run);
        assert!(doc.contains("\"schema\": \"iq-bench-netsim/v3\""));
        let cur = extract_object(&doc, "current").expect("current section");
        assert_eq!(extract_number(cur, "total_events_per_sec"), Some(400.0));
        assert_eq!(extract_number(cur, "total_events"), Some(100.0));
        assert_eq!(extract_number(cur, "utilization"), Some(0.75));
        let base = extract_object(&doc, "baseline").expect("baseline section");
        assert_eq!(extract_number(base, "peak_rss_bytes"), Some(1024.0));
    }

    #[test]
    fn utilization_is_execute_over_total() {
        assert_eq!(utilization(&[]), 1.0);
        assert_eq!(utilization(&[iq_obs::PhaseSnapshot::default()]), 1.0);
        let mut a = iq_obs::PhaseSnapshot::default();
        a.nanos[iq_obs::Phase::Execute as usize] = 300;
        a.nanos[iq_obs::Phase::Idle as usize] = 100;
        let mut b = iq_obs::PhaseSnapshot::default();
        b.nanos[iq_obs::Phase::Flush as usize] = 100;
        b.nanos[iq_obs::Phase::Execute as usize] = 100;
        assert!((utilization(&[a, b]) - 400.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn extract_number_handles_scientific_and_negative() {
        assert_eq!(extract_number("{\"x\": -2.5}", "x"), Some(-2.5));
        assert_eq!(extract_number("{\"x\": 1e3}", "x"), Some(1000.0));
        assert_eq!(extract_number("{\"y\": 1}", "x"), None);
    }

    #[test]
    fn bench_specs_are_stable_and_scaled() {
        let s = bench_specs(Size(0.01));
        let names: Vec<&str> = s.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "bulk_rudp",
                "coordinated_cbr",
                "marking_vbr",
                "tcp_fairness",
                "red_lossy",
                "many_flows",
                "cubic_conflict",
                "bbr_many_flows",
                "rrr_table3",
                "mega_flows"
            ]
        );
        // Scaling floors at 40 frames so tiny sizes still run.
        assert!(s[0].scenario.frame_sizes.len() >= 40);
        // The mega population never scales below 100k flows — only the
        // per-flow message count shrinks with size.
        let mega = s.last().unwrap();
        assert!(mega.scenario.mega_legs * mega.scenario.incast_flows >= 100_000);
        assert!(mega.scenario.frame_sizes.len() >= 2);
    }
}
