//! Parallel scenario execution and shared rendering helpers.

use iq_metrics::{fmt, Table};

use crate::scenario::{run_scenario, RunResult, Scenario};

/// Runs independent scenarios in parallel (one thread each; simulations
/// are single-threaded and deterministic, so results are order-stable).
pub fn run_parallel(scenarios: &[Scenario]) -> Vec<RunResult> {
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = scenarios
            .iter()
            .map(|sc| s.spawn(move |_| run_scenario(sc)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scenario thread panicked"))
            .collect()
    })
    .expect("scope")
}

/// Runs each scenario `n_seeds` times with distinct seeds and averages
/// the scalar metrics, stabilizing single-run variance. The jitter
/// series and counters of the first seed are kept.
pub fn run_averaged(scenarios: &[Scenario], n_seeds: u32) -> Vec<RunResult> {
    let n = n_seeds.max(1);
    let mut expanded = Vec::with_capacity(scenarios.len() * n as usize);
    for sc in scenarios {
        for i in 0..n {
            let mut s = sc.clone();
            s.seed = sc.seed.wrapping_add(u64::from(i) * 7919);
            expanded.push(s);
        }
    }
    let all = run_parallel(&expanded);
    all.chunks(n as usize)
        .map(|chunk| {
            let mut avg = chunk[0].clone();
            let k = chunk.len() as f64;
            avg.duration_s = chunk.iter().map(|r| r.duration_s).sum::<f64>() / k;
            avg.throughput_kbps = chunk.iter().map(|r| r.throughput_kbps).sum::<f64>() / k;
            avg.inter_arrival_s = chunk.iter().map(|r| r.inter_arrival_s).sum::<f64>() / k;
            avg.jitter_s = chunk.iter().map(|r| r.jitter_s).sum::<f64>() / k;
            avg.tagged_delay_ms = chunk.iter().map(|r| r.tagged_delay_ms).sum::<f64>() / k;
            avg.tagged_jitter_ms = chunk.iter().map(|r| r.tagged_jitter_ms).sum::<f64>() / k;
            avg.delivered_pct = chunk.iter().map(|r| r.delivered_pct).sum::<f64>() / k;
            avg.msgs_delivered =
                (chunk.iter().map(|r| r.msgs_delivered).sum::<u64>() as f64 / k) as u64;
            avg.finished = chunk.iter().all(|r| r.finished);
            avg
        })
        .collect()
}

/// Renders the four-column layout shared by Tables 1, 2, 5 and 7.
pub fn render_time_tp_ia_jitter(title: &str, rows: &[RunResult]) -> String {
    let mut t = Table::new(
        title,
        &[
            "Transport Tested",
            "Time(s)",
            "Throughput(KB/s)",
            "Inter-arrival(s)",
            "Jitter(s)",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.to_string(),
            fmt(r.duration_s, 1),
            fmt(r.throughput_kbps, 1),
            fmt(r.inter_arrival_s, 3),
            fmt(r.jitter_s, 3),
        ]);
    }
    t.render()
}

/// Renders the conflict-experiment layout (Tables 3 and 4).
pub fn render_conflict(title: &str, rows: &[RunResult]) -> String {
    let mut t = Table::new(
        title,
        &[
            "Scheme",
            "Duration(s)",
            "Mesgs Recvd(%)",
            "Tagged Delay(ms)",
            "Tagged Jitter(ms)",
            "Delay(ms)",
            "Jitter(ms)",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.to_string(),
            fmt(r.duration_s, 1),
            fmt(r.delivered_pct, 1),
            fmt(r.tagged_delay_ms, 1),
            fmt(r.tagged_jitter_ms, 2),
            fmt(r.inter_arrival_s * 1e3, 1),
            fmt(r.jitter_s * 1e3, 2),
        ]);
    }
    t.render()
}

/// Renders the over-reaction layout (Tables 5, 6, 8): throughput first.
pub fn render_overreaction(title: &str, labels: &[String], rows: &[RunResult]) -> String {
    let mut t = Table::new(
        title,
        &[
            "Scheme",
            "Throughput(KB/s)",
            "Duration(s)",
            "Delay(ms)",
            "Jitter(ms)",
        ],
    );
    for (label, r) in labels.iter().zip(rows) {
        t.row(&[
            label.clone(),
            fmt(r.throughput_kbps, 1),
            fmt(r.duration_s, 1),
            fmt(r.inter_arrival_s * 1e3, 2),
            fmt(r.jitter_s * 1e3, 2),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PolicySpec, Scheme};

    #[test]
    fn parallel_matches_sequential() {
        let mut sc = Scenario::new(Scheme::RudpPlain, PolicySpec::None, vec![1400; 80]);
        sc.cross.cbr_bps = Some(8e6);
        sc.deadline_s = 60.0;
        let seq = run_scenario(&sc);
        let par = run_parallel(&[sc.clone(), sc.clone()]);
        assert_eq!(par.len(), 2);
        assert_eq!(par[0].duration_s, seq.duration_s);
        assert_eq!(par[1].msgs_delivered, seq.msgs_delivered);
    }

    #[test]
    fn renderers_produce_one_line_per_row() {
        let mut sc = Scenario::new(Scheme::RudpPlain, PolicySpec::None, vec![1400; 30]);
        sc.deadline_s = 30.0;
        let r = run_scenario(&sc);
        let s = render_time_tp_ia_jitter("T", &[r.clone()]);
        assert_eq!(s.lines().count(), 4);
        let s = render_conflict("T", &[r.clone()]);
        assert!(s.contains("Mesgs Recvd"));
        let s = render_overreaction("T", &["X".into()], &[r]);
        assert!(s.contains("Throughput"));
    }
}
