//! Deterministic parallel scenario execution and shared rendering
//! helpers.
//!
//! Every experiment in this crate is an independent, fully deterministic
//! simulation, so the sweep is embarrassingly parallel across scenarios
//! and seeds. [`Executor`] fans [`ScenarioSpec`]s out over a worker
//! pool, collects results through a channel, and reassembles them in
//! declaration order — the rendered output is byte-identical to a
//! serial run regardless of worker count or completion order. Timing
//! and events/sec go to stderr so stdout (and `results_full.txt`)
//! never depend on `--jobs`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use iq_metrics::{fmt, Table};

use crate::scenario::{run_scenario, RunResult, Scenario};

/// Requested worker count: 0 means "one per available core".
static JOBS: AtomicUsize = AtomicUsize::new(0);
/// When set, every scenario runs twice and the runs are diffed.
static VERIFY_DETERMINISM: AtomicBool = AtomicBool::new(false);
/// When set, per-scenario wall-clock and events/sec go to stderr.
static TIMING: AtomicBool = AtomicBool::new(false);
/// When set, scenarios capture structured telemetry in memory
/// ([`RunResult::telemetry`](crate::scenario::RunResult)).
static TELEMETRY_CAPTURE: AtomicBool = AtomicBool::new(false);
/// Destination directory for per-scenario telemetry JSONL dumps.
static TELEMETRY_DIR: Mutex<Option<String>> = Mutex::new(None);
/// Process-wide dump counter so files keep declaration order across
/// successive executor invocations (tables run one after another).
static TELEMETRY_SEQ: AtomicUsize = AtomicUsize::new(0);
/// Worker threads for intra-scenario sharded simulation (`--shards N`).
static SHARDS: AtomicUsize = AtomicUsize::new(1);
/// Per-flow telemetry ring capacity override (0 = the bus default).
static TELEMETRY_RING: AtomicUsize = AtomicUsize::new(0);
/// Destination directory for per-scenario metric exposition dumps
/// (`--metrics DIR`).
static METRICS_DIR: Mutex<Option<String>> = Mutex::new(None);
/// Process-wide dump counter for metric files, mirroring
/// [`TELEMETRY_SEQ`].
static METRICS_SEQ: AtomicUsize = AtomicUsize::new(0);

/// One-time allocator tuning for multi-scenario sweeps. Call at the
/// top of `main`, before any worker thread exists.
///
/// The big scenarios allocate on the order of a gigabyte, and each
/// scenario runs on its own executor thread. Under glibc every thread
/// gets its own malloc arena backed by mmapped sub-heaps, so a
/// scenario's pages are unmapped when its sim drops and the arena
/// empties — and whether the *next* scenario's thread lands on the
/// same arena (reusing warm pages) or a different one (re-faulting the
/// whole working set from the kernel) is a scheduling race. On
/// memory-pressured hosts that race made sweep wall times bimodal and
/// ratcheted peak RSS up by one working set per scenario. Routing all
/// threads to the main (brk) arena and keeping the heap top instead of
/// trimming it makes page reuse deterministic: RSS plateaus at the
/// largest single scenario. No-op on non-glibc targets.
pub fn tune_allocator() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        // glibc malloc.h: M_TRIM_THRESHOLD = -1, M_MMAP_THRESHOLD = -3,
        // M_ARENA_MAX = -8. The trim threshold must exceed the largest
        // amount freed at once (a whole sim teardown), or the heap top
        // is released and re-faulted anyway; mallopt also pins the mmap
        // threshold past its 32 MiB dynamic cap so mid-size slabs stay
        // inside the reusable heap.
        unsafe {
            mallopt(-8, 1); // one shared arena for every thread
            mallopt(-1, i32::MAX); // never trim the heap top
            mallopt(-3, 1 << 30); // mmap only chunks >= 1 GiB
        }
    }
}

/// Sets the worker count used by [`run_parallel`] (0 = auto: one worker
/// per available core). Typically wired to a `--jobs N` CLI flag.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count after resolving 0 to the core count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Enables `--verify-determinism`: every scenario runs twice with the
/// same seed and the executor panics if any metric differs bit-for-bit.
pub fn set_verify_determinism(on: bool) {
    VERIFY_DETERMINISM.store(on, Ordering::Relaxed);
}

/// Enables per-scenario wall-clock / events-per-second reporting on
/// stderr (stdout stays clean so rendered tables are unaffected).
pub fn set_timing_report(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Enables in-memory telemetry capture: each scenario attaches a bus to
/// its simulator and transport stack and serializes the records into
/// [`RunResult::telemetry`](crate::scenario::RunResult). Off by default
/// (the disabled sink costs one branch per would-be event and the
/// rendered tables are byte-identical either way).
pub fn set_telemetry_capture(on: bool) {
    TELEMETRY_CAPTURE.store(on, Ordering::Relaxed);
}

/// Routes telemetry to disk: enables capture and makes the executor
/// write one `NNN_<scenario>.jsonl` file per scenario under `dir`.
/// Typically wired to a `--telemetry <dir>` CLI flag. `None` turns the
/// file dumps off again (capture stays as last set).
pub fn set_telemetry_dir(dir: Option<String>) {
    if dir.is_some() {
        set_telemetry_capture(true);
    }
    *TELEMETRY_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir;
}

/// Whether scenarios should capture telemetry.
pub fn telemetry_enabled() -> bool {
    TELEMETRY_CAPTURE.load(Ordering::Relaxed)
}

/// Sets how many OS threads a sharded scenario (`mega_flows`) uses to
/// execute its fixed shard partition. Typically wired to the `--shards
/// N` CLI flag. The value never affects simulation results — the
/// partition is fixed by the topology and outputs merge in shard-index
/// order — only wall-clock time. 0 resolves to one per available core.
pub fn set_shards(n: usize) {
    SHARDS.store(n, Ordering::Relaxed);
}

/// The effective shard worker count (default 1; 0 resolved like
/// [`jobs`]).
pub fn shards() -> usize {
    match SHARDS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Overrides the per-flow telemetry ring capacity (0 = the bus default,
/// [`iq_telemetry::bus::DEFAULT_RING_CAPACITY`]). Small values force
/// eviction, which the runner surfaces as a stderr warning and the
/// `iq_telemetry_evicted_total` counter.
pub fn set_telemetry_ring(n: usize) {
    TELEMETRY_RING.store(n, Ordering::Relaxed);
}

/// The configured per-flow telemetry ring capacity (0 = default).
pub fn telemetry_ring() -> usize {
    TELEMETRY_RING.load(Ordering::Relaxed)
}

/// Routes metric exposition to disk: the executor writes one
/// `NNN_<scenario>.prom` (Prometheus text, both planes) and one
/// `NNN_<scenario>.jsonl` snapshot per scenario under `dir`. Typically
/// wired to a `--metrics <dir>` CLI flag; `None` turns it off.
pub fn set_metrics_dir(dir: Option<String>) {
    *METRICS_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir;
}

fn metrics_dir() -> Option<String> {
    METRICS_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

fn telemetry_dir() -> Option<String> {
    TELEMETRY_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Serializes tests that toggle or observe the global telemetry-capture
/// state (fingerprints hash the telemetry bytes, so a mid-test toggle
/// from a sibling test would read as a false determinism diff).
#[cfg(test)]
pub(crate) fn capture_lock_for_tests() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A named, self-contained unit of work for the executor: everything a
/// worker needs (topology, transport config, seed) travels inside the
/// owned [`Scenario`] value.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Display name used in timing reports and determinism diffs.
    pub name: String,
    /// The full scenario description.
    pub scenario: Scenario,
}

impl ScenarioSpec {
    /// Creates a named spec.
    pub fn new(name: impl Into<String>, scenario: Scenario) -> Self {
        Self {
            name: name.into(),
            scenario,
        }
    }
}

impl From<Scenario> for ScenarioSpec {
    fn from(scenario: Scenario) -> Self {
        let name = format!("{}/seed{}", scenario.scheme.label(), scenario.seed);
        Self { name, scenario }
    }
}

/// One executed scenario: its metrics plus executor-side measurements.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Name copied from the spec.
    pub name: String,
    /// The scenario's measured metrics.
    pub result: RunResult,
    /// Host wall-clock spent running the simulation, seconds.
    pub wall_s: f64,
    /// Simulator event throughput (events processed / wall_s).
    pub events_per_sec: f64,
    /// Peak resident-set growth across this scenario's run, bytes:
    /// maximum `VmRSS` sampled during the run minus the value at its
    /// start (see `benchmode::RssSampler`). Sampling catches the
    /// *transient* peak — a plain after-minus-before delta reported 0
    /// for any scenario whose working set was freed before the final
    /// sample. Memory retained in the allocator's pools still counts
    /// toward the first scenario that grew the heap, and concurrent
    /// scenarios can bleed into each other's deltas, so treat it as an
    /// estimate.
    pub peak_rss_bytes: u64,
    /// OS threads used for intra-scenario sharded execution (1 for the
    /// serial scenarios).
    pub shards: u32,
}

/// Bit-exact fingerprint of everything a scenario reports, for the
/// determinism self-check. Floats are compared via `to_bits` — any
/// difference, however small, is a determinism bug.
fn fingerprint(r: &RunResult) -> Vec<u64> {
    let mut fp = vec![
        r.duration_s.to_bits(),
        r.throughput_kbps.to_bits(),
        r.inter_arrival_s.to_bits(),
        r.jitter_s.to_bits(),
        r.tagged_delay_ms.to_bits(),
        r.tagged_jitter_ms.to_bits(),
        r.msgs_offered,
        r.msgs_delivered,
        r.delivered_pct.to_bits(),
        u64::from(r.finished),
        r.callbacks.0,
        r.callbacks.1,
        r.events_processed,
    ];
    fp.extend(
        r.jitter_series
            .points
            .iter()
            .flat_map(|&(t, v)| [t, v.to_bits()]),
    );
    // FNV-1a over the serialized telemetry: any byte-level divergence
    // between runs is a determinism bug just like a metric mismatch.
    let mut h = iq_telemetry::Fnv64::new();
    h.write(r.telemetry.as_bytes());
    fp.push(h.finish());
    // The counter fingerprint: FNV-1a over the canonical sim-plane
    // exposition text, so per-shard simulator counters, transport
    // counters, and the delivery-latency histogram are all held to the
    // same byte-identical standard (engine-plane metrics excluded).
    fp.push(r.obs.sim_fingerprint());
    fp
}

/// Order-sensitive FNV-1a hash over the full determinism fingerprint,
/// compact enough to record per scenario in `BENCH_netsim.json`. Two
/// runs of the same workload — at any `--shards` value — must produce
/// the same hash; the bench uses this to prove the shard-curve entries
/// computed identical results.
pub(crate) fn result_fingerprint(r: &RunResult) -> u64 {
    let mut h = iq_telemetry::Fnv64::new();
    for word in fingerprint(r) {
        h.write(&word.to_le_bytes());
    }
    h.finish()
}

/// A fixed-size worker pool executing scenarios in parallel while
/// preserving declaration order in its output.
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Pool with `workers` threads (0 = one per available core).
    pub fn new(workers: usize) -> Self {
        let workers = match workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        Self { workers }
    }

    /// Pool sized by the process-wide [`set_jobs`] setting.
    pub fn from_global() -> Self {
        Self::new(jobs())
    }

    /// Runs every spec and returns reports in declaration order.
    ///
    /// Workers claim specs through a shared atomic cursor, so scheduling
    /// adapts to uneven scenario costs; results return through a channel
    /// tagged with their index and are reassembled in order, making the
    /// output independent of worker count and completion order.
    pub fn run(&self, specs: &[ScenarioSpec]) -> Vec<ScenarioReport> {
        let verify = VERIFY_DETERMINISM.load(Ordering::Relaxed);
        let timing = TIMING.load(Ordering::Relaxed);
        let workers = self.workers.min(specs.len()).max(1);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, ScenarioReport)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let rss = crate::benchmode::RssSampler::start();
                    let start = Instant::now();
                    let result = run_scenario(&spec.scenario);
                    let wall_s = start.elapsed().as_secs_f64();
                    let peak_rss_bytes = rss.finish();
                    if verify {
                        let again = run_scenario(&spec.scenario);
                        assert!(
                            fingerprint(&result) == fingerprint(&again),
                            "determinism violation: scenario `{}` (seed {}) \
                             produced different metrics on a re-run",
                            spec.name,
                            spec.scenario.seed,
                        );
                    }
                    let events_per_sec = if wall_s > 0.0 {
                        result.events_processed as f64 / wall_s
                    } else {
                        0.0
                    };
                    let shards = result.shards_used;
                    let report = ScenarioReport {
                        name: spec.name.clone(),
                        result,
                        wall_s,
                        events_per_sec,
                        peak_rss_bytes,
                        shards,
                    };
                    if tx.send((i, report)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut slots: Vec<Option<ScenarioReport>> = (0..specs.len()).map(|_| None).collect();
            for (i, report) in rx {
                if timing {
                    eprintln!(
                        "  [{}] {:<44} {:>8.3}s  {:>12.0} events/s  [shards {}]",
                        i, report.name, report.wall_s, report.events_per_sec, report.shards
                    );
                    // Per-shard wall-clock phase breakdown for the
                    // sharded scenarios (engine plane — informational,
                    // never part of any fingerprint).
                    if report.shards > 1 {
                        for (s, snap) in report.result.phase_profile.iter().enumerate() {
                            if snap.total_nanos() > 0 {
                                eprintln!("        shard {s}: {}", snap.brief());
                            }
                        }
                        let sched = report.result.sched;
                        eprintln!(
                            "        sched: {:.0}% utilization, {} steals, {} parks, \
                             {} wakes, {} worker parks",
                            100.0 * crate::benchmode::utilization(&report.result.phase_profile),
                            sched.steals,
                            sched.parks,
                            sched.wakes,
                            sched.worker_parks,
                        );
                    }
                }
                slots[i] = Some(report);
            }
            let reports: Vec<ScenarioReport> = slots
                .into_iter()
                .enumerate()
                .map(|(i, s)| s.unwrap_or_else(|| panic!("scenario {i} worker panicked")))
                .collect();
            for rep in &reports {
                if rep.result.telemetry_evicted > 0 {
                    eprintln!(
                        "warning: scenario `{}` lost {} telemetry record(s) to ring \
                         overflow — its JSONL capture is incomplete (raise the ring \
                         capacity or reduce capture volume)",
                        rep.name, rep.result.telemetry_evicted
                    );
                }
            }
            if let Some(dir) = telemetry_dir() {
                dump_telemetry(&dir, &reports);
            }
            if let Some(dir) = metrics_dir() {
                dump_metrics(&dir, &reports);
            }
            reports
        })
    }
}

/// Writes one JSONL file per telemetry-carrying report, in declaration
/// order (the sequence numbers come from a process-wide counter, so a
/// multi-table sweep keeps a stable global ordering too).
fn dump_telemetry(dir: &str, reports: &[ScenarioReport]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("telemetry: cannot create {dir}: {e}");
        return;
    }
    for rep in reports {
        if rep.result.telemetry.is_empty() {
            continue;
        }
        let n = TELEMETRY_SEQ.fetch_add(1, Ordering::Relaxed);
        let safe = safe_file_stem(&rep.name);
        let path = std::path::Path::new(dir).join(format!("{n:03}_{safe}.jsonl"));
        if let Err(e) = std::fs::write(&path, &rep.result.telemetry) {
            eprintln!("telemetry: cannot write {}: {e}", path.display());
        }
    }
}

fn safe_file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes one Prometheus text exposition (`.prom`, both planes) and one
/// JSONL snapshot per scenario, in declaration order with a process-wide
/// sequence prefix (same scheme as [`dump_telemetry`]).
fn dump_metrics(dir: &str, reports: &[ScenarioReport]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("metrics: cannot create {dir}: {e}");
        return;
    }
    for rep in reports {
        if rep.result.obs.is_empty() {
            continue;
        }
        let n = METRICS_SEQ.fetch_add(1, Ordering::Relaxed);
        let safe = safe_file_stem(&rep.name);
        let mut sorted = rep.result.obs.clone();
        sorted.sort();
        let base = std::path::Path::new(dir).join(format!("{n:03}_{safe}"));
        let prom = iq_obs::expo::render_prom(&sorted, None);
        if let Err(e) = std::fs::write(base.with_extension("prom"), prom) {
            eprintln!("metrics: cannot write {}.prom: {e}", base.display());
        }
        let jsonl = iq_obs::expo::render_jsonl(&sorted, &rep.name);
        if let Err(e) = std::fs::write(base.with_extension("jsonl"), jsonl) {
            eprintln!("metrics: cannot write {}.jsonl: {e}", base.display());
        }
    }
}

/// Runs independent scenarios on the global worker pool, returning
/// results in declaration order (simulations are single-threaded and
/// deterministic, so output is identical to a serial run).
pub fn run_parallel(scenarios: &[Scenario]) -> Vec<RunResult> {
    let specs: Vec<ScenarioSpec> = scenarios.iter().cloned().map(ScenarioSpec::from).collect();
    Executor::from_global()
        .run(&specs)
        .into_iter()
        .map(|r| r.result)
        .collect()
}

/// Runs named specs on the global worker pool, keeping the full
/// per-scenario reports (wall-clock, events/sec).
pub fn run_specs(specs: &[ScenarioSpec]) -> Vec<ScenarioReport> {
    Executor::from_global().run(specs)
}

/// Runs each scenario `n_seeds` times with distinct seeds and averages
/// the scalar metrics, stabilizing single-run variance. The jitter
/// series and counters of the first seed are kept.
pub fn run_averaged(scenarios: &[Scenario], n_seeds: u32) -> Vec<RunResult> {
    let n = n_seeds.max(1);
    let mut expanded = Vec::with_capacity(scenarios.len() * n as usize);
    for sc in scenarios {
        for i in 0..n {
            let mut s = sc.clone();
            s.seed = sc.seed.wrapping_add(u64::from(i) * 7919);
            expanded.push(s);
        }
    }
    let all = run_parallel(&expanded);
    all.chunks(n as usize)
        .map(|chunk| {
            let mut avg = chunk[0].clone();
            let k = chunk.len() as f64;
            avg.duration_s = chunk.iter().map(|r| r.duration_s).sum::<f64>() / k;
            avg.throughput_kbps = chunk.iter().map(|r| r.throughput_kbps).sum::<f64>() / k;
            avg.inter_arrival_s = chunk.iter().map(|r| r.inter_arrival_s).sum::<f64>() / k;
            avg.jitter_s = chunk.iter().map(|r| r.jitter_s).sum::<f64>() / k;
            avg.tagged_delay_ms = chunk.iter().map(|r| r.tagged_delay_ms).sum::<f64>() / k;
            avg.tagged_jitter_ms = chunk.iter().map(|r| r.tagged_jitter_ms).sum::<f64>() / k;
            avg.delivered_pct = chunk.iter().map(|r| r.delivered_pct).sum::<f64>() / k;
            avg.msgs_delivered =
                (chunk.iter().map(|r| r.msgs_delivered).sum::<u64>() as f64 / k) as u64;
            avg.finished = chunk.iter().all(|r| r.finished);
            avg
        })
        .collect()
}

/// Renders the four-column layout shared by Tables 1, 2, 5 and 7.
pub fn render_time_tp_ia_jitter(title: &str, rows: &[RunResult]) -> String {
    let mut t = Table::new(
        title,
        &[
            "Transport Tested",
            "Time(s)",
            "Throughput(KB/s)",
            "Inter-arrival(s)",
            "Jitter(s)",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.to_string(),
            fmt(r.duration_s, 1),
            fmt(r.throughput_kbps, 1),
            fmt(r.inter_arrival_s, 3),
            fmt(r.jitter_s, 3),
        ]);
    }
    t.render()
}

/// Renders the conflict-experiment layout (Tables 3 and 4).
pub fn render_conflict(title: &str, rows: &[RunResult]) -> String {
    let mut t = Table::new(
        title,
        &[
            "Scheme",
            "Duration(s)",
            "Mesgs Recvd(%)",
            "Tagged Delay(ms)",
            "Tagged Jitter(ms)",
            "Delay(ms)",
            "Jitter(ms)",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.to_string(),
            fmt(r.duration_s, 1),
            fmt(r.delivered_pct, 1),
            fmt(r.tagged_delay_ms, 1),
            fmt(r.tagged_jitter_ms, 2),
            fmt(r.inter_arrival_s * 1e3, 1),
            fmt(r.jitter_s * 1e3, 2),
        ]);
    }
    t.render()
}

/// Renders the over-reaction layout (Tables 5, 6, 8): throughput first.
pub fn render_overreaction(title: &str, labels: &[String], rows: &[RunResult]) -> String {
    let mut t = Table::new(
        title,
        &[
            "Scheme",
            "Throughput(KB/s)",
            "Duration(s)",
            "Delay(ms)",
            "Jitter(ms)",
        ],
    );
    for (label, r) in labels.iter().zip(rows) {
        t.row(&[
            label.clone(),
            fmt(r.throughput_kbps, 1),
            fmt(r.duration_s, 1),
            fmt(r.inter_arrival_s * 1e3, 2),
            fmt(r.jitter_s * 1e3, 2),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PolicySpec, Scheme};

    fn small_scenario(seed: u64) -> Scenario {
        let mut sc = Scenario::new(Scheme::RudpPlain, PolicySpec::None, vec![1400; 80]);
        sc.cross.cbr_bps = Some(8e6);
        sc.deadline_s = 60.0;
        sc.seed = seed;
        sc
    }

    use super::capture_lock_for_tests as capture_lock;

    #[test]
    fn parallel_matches_sequential() {
        let _g = capture_lock();
        let sc = small_scenario(1);
        let seq = run_scenario(&sc);
        let par = run_parallel(&[sc.clone(), sc.clone()]);
        assert_eq!(par.len(), 2);
        assert_eq!(par[0].duration_s, seq.duration_s);
        assert_eq!(par[1].msgs_delivered, seq.msgs_delivered);
    }

    #[test]
    fn executor_preserves_declaration_order() {
        let _g = capture_lock();
        let specs: Vec<ScenarioSpec> = (0..6)
            .map(|i| ScenarioSpec::new(format!("s{i}"), small_scenario(i)))
            .collect();
        let serial = Executor::new(1).run(&specs);
        let parallel = Executor::new(4).run(&specs);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.name, b.name);
            assert_eq!(fingerprint(&a.result), fingerprint(&b.result));
        }
    }

    #[test]
    fn reports_carry_wall_clock_and_event_rate() {
        let specs = [ScenarioSpec::new("one", small_scenario(7))];
        let reports = Executor::new(2).run(&specs);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].wall_s > 0.0);
        assert!(reports[0].result.events_processed > 0);
        assert!(reports[0].events_per_sec > 0.0);
    }

    #[test]
    fn telemetry_is_byte_identical_across_worker_counts_and_dumped() {
        let _g = capture_lock();
        let dir = std::env::temp_dir().join(format!("iq_telemetry_test_{}", std::process::id()));
        set_telemetry_dir(Some(dir.display().to_string()));
        let specs: Vec<ScenarioSpec> = (0..4)
            .map(|i| ScenarioSpec::new(format!("t{i}"), small_scenario(i)))
            .collect();
        let serial = Executor::new(1).run(&specs);
        let parallel = Executor::new(4).run(&specs);
        set_telemetry_dir(None);
        set_telemetry_capture(false);
        for (a, b) in serial.iter().zip(&parallel) {
            assert!(
                !a.result.telemetry.is_empty(),
                "capture enabled but no telemetry recorded"
            );
            assert_eq!(
                a.result.telemetry, b.result.telemetry,
                "telemetry diverged between -j 1 and -j 4 for `{}`",
                a.name
            );
        }
        let dumped = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(dumped, 2 * specs.len(), "one JSONL file per executed scenario");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_evictions_are_counted_and_reported() {
        let _g = capture_lock();
        set_telemetry_capture(true);
        set_telemetry_ring(4);
        let r = run_scenario(&small_scenario(2));
        set_telemetry_ring(0);
        set_telemetry_capture(false);
        assert!(
            r.telemetry_evicted > 0,
            "a 4-record ring must overflow on a full scenario"
        );
        assert_eq!(
            r.obs.counter_total("iq_telemetry_evicted_total"),
            r.telemetry_evicted,
            "registry counter must match the bus's eviction count"
        );
        // With the default ring nothing is evicted.
        set_telemetry_capture(true);
        let r = run_scenario(&small_scenario(2));
        set_telemetry_capture(false);
        assert_eq!(r.telemetry_evicted, 0);
    }

    #[test]
    fn mega_sim_metrics_identical_across_jobs_and_shards() {
        let _g = capture_lock();
        let mut sc = crate::scenario::Scenario::mega(2, 12, 2, 1400);
        sc.deadline_s = 60.0;
        let specs = [
            ScenarioSpec::new("mega_a", sc.clone()),
            ScenarioSpec::new("mega_b", sc),
        ];
        let mut texts: Vec<String> = Vec::new();
        for jobs in [1usize, 4] {
            for shard_threads in [1usize, 2, 4] {
                set_shards(shard_threads);
                let reports = Executor::new(jobs).run(&specs);
                texts.push(reports[0].result.obs.sim_text());
            }
        }
        set_shards(1);
        assert!(
            texts[0].contains("iq_sim_events_total"),
            "sim plane must carry simulator counters:\n{}",
            texts[0]
        );
        for (i, t) in texts.iter().enumerate().skip(1) {
            assert_eq!(
                t, &texts[0],
                "sim-plane exposition diverged at jobs/shards combination {i}"
            );
        }
    }

    #[test]
    fn verify_determinism_passes_on_deterministic_scenarios() {
        let _g = capture_lock();
        set_verify_determinism(true);
        let specs = [ScenarioSpec::new("det", small_scenario(3))];
        let reports = Executor::new(2).run(&specs);
        set_verify_determinism(false);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn renderers_produce_one_line_per_row() {
        let mut sc = Scenario::new(Scheme::RudpPlain, PolicySpec::None, vec![1400; 30]);
        sc.deadline_s = 30.0;
        let r = run_scenario(&sc);
        let s = render_time_tp_ia_jitter("T", std::slice::from_ref(&r));
        assert_eq!(s.lines().count(), 4);
        let s = render_conflict("T", std::slice::from_ref(&r));
        assert!(s.contains("Mesgs Recvd"));
        let s = render_overreaction("T", &["X".into()], &[r]);
        assert!(s.contains("Throughput"));
    }
}
