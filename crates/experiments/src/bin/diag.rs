//! Ad-hoc diagnostics for experiment calibration: prints one row per
//! scheme with the transport- and coordination-level counters that the
//! rendered tables hide. Usage:
//!
//! ```text
//! diag t5 0.3              # table 5 at 0.3 scale
//! diag avg7 0.3 8          # table 7 averaged over 8 seeds
//! diag -j 4 t5 0.3         # same, on 4 worker threads
//! ```
//!
//! `--verify-determinism` re-runs every scenario and aborts on any
//! bit-level metric difference.

use iq_experiments::runner::run_averaged;
use iq_experiments::tables::*;

fn main() {
    let mut args = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-j" | "--jobs" => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: {a} requires a positive integer argument");
                    std::process::exit(2);
                });
                iq_experiments::set_jobs(n);
            }
            "--verify-determinism" => iq_experiments::set_verify_determinism(true),
            "--timing" => iq_experiments::set_timing_report(true),
            _ => args.push(a),
        }
    }
    let which = args.first().cloned().unwrap_or_else(|| "t5".into());
    let size = Size(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.3));
    let rows = if let Some(n) = which.strip_prefix("avg") {
        let seeds: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
        let scens = match n {
            "5" => table5_scenarios(size),
            "6" => table6_scenarios(size),
            "7" => table7_scenarios(size),
            "8" => table8_scenarios(size),
            _ => panic!("unknown avg table"),
        };
        run_averaged(&scens, seeds)
    } else {
        match which.as_str() {
            "t1" => run_table1(size),
            "t2" => run_table2(size),
            "t3" => run_table3(size),
            "t4" => run_table4(size),
            "t5" => run_table5(size),
            "t6" => run_table6(size),
            "t7" => run_table7(size),
            "t8" => run_table8(size),
            _ => panic!("unknown table"),
        }
    };
    for r in &rows {
        println!(
            "{:<24} dur={:<6.1} tp={:<7.1} jit={:<7.2}ms tagD={:<6.1} tagJ={:<6.2} \
             cb=({}, {}) coord={:?} offered={} delivered={} finished={} stats={:?}",
            r.label,
            r.duration_s,
            r.throughput_kbps,
            r.jitter_s * 1e3,
            r.tagged_delay_ms,
            r.tagged_jitter_ms,
            r.callbacks.0,
            r.callbacks.1,
            r.coordination
                .map(|c| (c.window_rescales, format!("{:.2}", c.cumulative_factor))),
            r.msgs_offered,
            r.msgs_delivered,
            r.finished,
            r.sender_stats.map(|st| (
                st.segments_sent,
                st.retransmits,
                st.timeouts,
                st.segments_abandoned,
                st.msgs_discarded
            ))
        );
    }
}
