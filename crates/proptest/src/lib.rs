//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range/`any`/tuple/`collection::vec`/
//! `bool::weighted` strategies, `prop_assert*`, and `ProptestConfig`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this path crate under the `proptest` package name. Unlike
//! the real crate it does no shrinking: a failing case panics
//! immediately and prints the generated inputs. In exchange, case
//! generation is *fully deterministic* — the RNG is seeded from the
//! test's module path and name — so every run (locally and in CI)
//! replays exactly the same cases. Historical regression seeds in
//! `*.proptest-regressions` files are superseded by that determinism
//! but kept in-tree for when the real crate is swapped back in.
//!
//! Set `PROPTEST_CASES` to override the number of cases per property,
//! e.g. `PROPTEST_CASES=512 cargo test` for a deeper soak.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use rand::{Rng, SeedableRng, SmallRng};

/// Per-property configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test's full name.
pub fn runner_rng(test_name: &str) -> SmallRng {
    // FNV-1a over the name gives a stable, well-mixed seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// A value generator. No shrinking: `sample` draws one value.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        // Finite values only, spanning many magnitudes.
        let mag = rng.gen_range(-100i32..100) as f64;
        (rng.gen::<f64>() * 2.0 - 1.0) * mag.exp2()
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Vector of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::*;

        /// Weighted-coin strategy.
        pub struct Weighted(f64);

        impl Strategy for Weighted {
            type Value = bool;
            fn sample(&self, rng: &mut SmallRng) -> bool {
                rng.gen_bool(self.0)
            }
        }

        /// `true` with probability `p`.
        pub fn weighted(p: f64) -> Weighted {
            Weighted(p)
        }
    }
}

/// The glob-import surface used by tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a property-test invariant (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests. Mirrors `proptest::proptest!` for bodies of
/// the form `fn name(arg in strategy, ...) { ... }` with an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.resolved_cases() {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(e) = __outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.resolved_cases(),
                        __inputs
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::runner_rng("x::y");
        let mut b = crate::runner_rng("x::y");
        let mut c = crate::runner_rng("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Vec strategy respects element and length bounds.
        #[test]
        fn vec_strategy_bounds(
            xs in prop::collection::vec(1u32..10, 2..8),
            flag in any::<bool>(),
            w in prop::bool::weighted(1.0),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| (1..10).contains(&x)));
            // `flag` only checks that bool strategies plumb through.
            let _ = flag;
            prop_assert_eq!(w, true);
        }

        /// Tuple strategies compose.
        #[test]
        fn tuple_strategy_composes(
            pairs in prop::collection::vec((1u32..100, any::<bool>()), 1..20),
            f in 0.25f64..0.75,
        ) {
            prop_assert!(!pairs.is_empty());
            prop_assert!(pairs.iter().all(|&(v, _)| (1..100).contains(&v)));
            prop_assert!((0.25..0.75).contains(&f));
        }
    }
}
