//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this path crate under the `rand` package name instead of the
//! real dependency. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same algorithm family `rand 0.8` uses for
//! `SmallRng` on 64-bit targets — so quality and determinism are
//! equivalent; the exact streams are not guaranteed to match the
//! upstream crate and nothing in this workspace relies on them doing
//! so, only on seed-stable reproducibility.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit multiply.
#[inline]
fn mul_shift(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + mul_shift(rng, span + 1) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + mul_shift(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + ((u128::from(rng.next_u64()) * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as StandardSample>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Small, fast, deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding procedure.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_determines_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(5u64..10);
            assert!((5..10).contains(&x));
            let y = r.gen_range(0u64..=3);
            assert!(y <= 3);
            let z = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&z));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn bool_draws_are_balanced() {
        let mut r = SmallRng::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4700..5300).contains(&trues), "trues = {trues}");
    }
}
