//! Cross-shard determinism: a randomized multi-leg topology must produce
//! byte-identical results — delivery logs, counters, flow stats, and the
//! merged telemetry JSONL — no matter how many OS threads execute the
//! fixed shard partition. This mirrors the runner's `-j` determinism
//! test one level down, at the engine itself.

use iq_netsim::agent::{Agent, Ctx};
use iq_netsim::{
    payload, Addr, FlowId, LinkSpec, Packet, ShardedSim, Time,
};
use iq_telemetry::{to_jsonl, TelemetrySink};
use proptest::{proptest, ProptestConfig};

const MS: u64 = 1_000_000;

/// Sends `count` packets, one per `gap` ns, and logs every echo.
struct Pinger {
    dst: Addr,
    flow: FlowId,
    count: u32,
    gap: u64,
    sent: u32,
    echoes: Vec<(Time, u32)>,
}
impl Agent for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(0, 0);
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let v = *pkt.payload_as::<u32>().unwrap();
        self.echoes.push((ctx.now(), v));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent < self.count {
            ctx.send(self.dst, 300, self.flow, payload(self.sent));
            self.sent += 1;
            ctx.set_timer(self.gap, 0);
        }
    }
}

/// Echoes every packet back to its source on the same flow.
struct Echoer {
    flow: FlowId,
}
impl Agent for Echoer {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let v = *pkt.payload_as::<u32>().unwrap();
        ctx.send(pkt.src, 300, self.flow, payload(v));
    }
}

/// Topology knobs drawn by the proptest.
#[derive(Clone, Debug)]
struct Params {
    seed: u64,
    legs: usize,
    pairs_per_leg: usize,
    pings: u32,
    delay_ms: u64,
    loss_pct: u64,
    jitter_us: u64,
}

/// Everything a run exposes: per-pinger echo logs, counter/flow-stat
/// scalars, and the merged telemetry JSONL.
type Observed = (Vec<Vec<(Time, u32)>>, Vec<u64>, String);

/// Builds `legs` independent dumbbell legs — each leg a left shard and a
/// right shard joined by one duplex boundary bottleneck — runs the echo
/// workload with `threads` OS threads, and returns every observable
/// surface as one comparable bundle.
fn run(p: &Params, threads: usize, perturb: Option<u64>) -> Observed {
    let mut sim = ShardedSim::new(p.seed);
    let mut legs = Vec::new();
    for _ in 0..p.legs {
        let left = sim.add_shard();
        let right = sim.add_shard();
        legs.push((left, right));
    }
    sim.set_threads(threads);
    sim.set_perturbation(perturb);

    let mut telemetry = Vec::new();
    for shard in 0..sim.num_shards() {
        let (sink, bus) = TelemetrySink::new_bus(0);
        sim.attach_telemetry(shard, sink);
        telemetry.push(bus);
    }

    // jitter knob: 0 → none, 1 → 200 µs, 2 → 1.5 ms.
    let jitter = [0, 200_000, 1_500_000][p.jitter_us as usize % 3];
    let bottleneck = LinkSpec::new(20e6, p.delay_ms * MS, 50_000)
        .with_random_loss(p.loss_pct as f64 / 100.0)
        .with_jitter(jitter);
    let access = LinkSpec::new(100e6, MS / 2, 256_000);

    let mut pingers = Vec::new();
    let mut flow = 0u32;
    for &(left, right) in &legs {
        let lr = sim.add_node(left);
        let rr = sim.add_node(right);
        sim.add_duplex_link(lr, rr, bottleneck.clone());
        for pair in 0..p.pairs_per_leg {
            let src = sim.add_node(left);
            let dst = sim.add_node(right);
            sim.add_duplex_link(src, lr, access.clone());
            sim.add_duplex_link(dst, rr, access.clone());
            let port = 1 + pair as u16;
            let id = sim.add_agent(
                src,
                port,
                Box::new(Pinger {
                    dst: Addr::new(dst, port),
                    flow: FlowId(flow),
                    count: p.pings,
                    gap: 2 * MS,
                    sent: 0,
                    echoes: Vec::new(),
                }),
            );
            sim.add_agent(dst, port, Box::new(Echoer { flow: FlowId(flow + 1) }));
            pingers.push(id);
            flow += 2;
        }
    }

    sim.run_until(500 * MS);

    let logs = pingers
        .iter()
        .map(|&id| sim.agent::<Pinger>(id).unwrap().echoes.clone())
        .collect();
    let c = sim.counters();
    let mut scalars = vec![
        c.packets_sent,
        c.packets_delivered,
        c.packets_unroutable,
        c.events_processed,
        c.timers_fired,
    ];
    for f in 0..flow {
        let fs = sim.flow_stats(FlowId(f));
        scalars.extend([
            fs.sent_packets,
            fs.delivered_packets,
            fs.dropped_packets,
            fs.random_losses,
        ]);
    }
    // Merge telemetry in shard-index order — the declaration-order merge
    // discipline the runner uses for `-j`.
    let mut jsonl = String::new();
    for bus in &telemetry {
        jsonl.push_str(&to_jsonl(&bus.lock().unwrap().records()));
    }
    (logs, scalars, jsonl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn outputs_are_byte_identical_across_thread_counts(
        seed in proptest::any::<u64>(),
        legs in 1usize..3,
        pairs_per_leg in 1usize..4,
        pings in 5u32..40,
        delay_ms in 1u64..20,
        loss_pct in 0u64..10,
        jitter_us in 0u64..3,
    ) {
        let p = Params { seed, legs, pairs_per_leg, pings, delay_ms, loss_pct, jitter_us };
        let base = run(&p, 1, None);
        for threads in [2, 4] {
            let got = run(&p, threads, None);
            assert_eq!(got.0, base.0, "echo logs differ at {threads} threads ({p:?})");
            assert_eq!(got.1, base.1, "counters differ at {threads} threads ({p:?})");
            assert_eq!(got.2, base.2, "telemetry differs at {threads} threads ({p:?})");
        }
        // Sanity: the workload actually crossed shards.
        assert!(base.1[1] > 0, "nothing was delivered ({p:?})");
    }

    /// Same byte-equality bar, but against an adversarial scheduler:
    /// random worker counts *and* injected scheduling perturbations
    /// (shuffled claim order, forced preemptions — see
    /// `ShardedSim::set_perturbation`), so steal orders and parks the
    /// normal schedule would rarely produce still change nothing.
    #[test]
    fn outputs_survive_scheduling_perturbations(
        seed in proptest::any::<u64>(),
        legs in 1usize..3,
        pairs_per_leg in 1usize..4,
        pings in 5u32..40,
        delay_ms in 1u64..20,
        loss_pct in 0u64..10,
        jitter_us in 0u64..3,
        threads in 1usize..6,
        perturb_seed in proptest::any::<u64>(),
    ) {
        let p = Params { seed, legs, pairs_per_leg, pings, delay_ms, loss_pct, jitter_us };
        let base = run(&p, 1, None);
        let got = run(&p, threads, Some(perturb_seed));
        assert_eq!(
            got.0, base.0,
            "echo logs differ at {threads} threads, perturbation {perturb_seed} ({p:?})"
        );
        assert_eq!(
            got.1, base.1,
            "counters differ at {threads} threads, perturbation {perturb_seed} ({p:?})"
        );
        assert_eq!(
            got.2, base.2,
            "telemetry differs at {threads} threads, perturbation {perturb_seed} ({p:?})"
        );
        assert!(base.1[1] > 0, "nothing was delivered ({p:?})");
    }
}
