//! Differential test of the timer-wheel scheduler against the old
//! scheduler design: a single `BinaryHeap<Event>`.
//!
//! The simulator's determinism guarantee rests on [`EventQueue`] popping
//! in exactly ascending `(time, seq)` order — the order the old heap
//! produced. This drives both structures with identical randomized op
//! streams (pushes at near/mid/far offsets, interleaved pops) and
//! requires bit-identical pop sequences, including the final drain.

use std::collections::BinaryHeap;

use iq_netsim::event::{Event, EventKind};
use iq_netsim::{AgentId, EventQueue, EventSource, ShardEventSource};
use proptest::{prop, prop_assert_eq, proptest, ProptestConfig};

fn ev(at: u64, seq: u64) -> Event {
    Event {
        at,
        seq,
        kind: EventKind::Start { agent: AgentId(0) },
    }
}

/// Conformance harness shared by every [`EventSource`] implementation:
/// drives the source and a model `BinaryHeap` with one randomized op
/// stream (pushes at near/mid/far offsets, pops, deadline-bounded pops)
/// and requires bit-identical behavior, including the final drain. New
/// source implementations get differentially pinned to the old heap
/// order just by adding one `proptest!` wrapper below.
fn source_matches_model<S: EventSource>(src: &mut S, ops: &[(u32, u64)]) {
    let mut model: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64; // last popped time: pushes never go to the past

    for &(kind, raw) in ops {
        match kind {
            // Pop from both, compare, and advance the clock.
            4 => {
                let got = src.next_event().map(|e| (e.at, e.seq));
                let want = model.pop().map(|e| (e.at, e.seq));
                assert_eq!(got, want);
                if let Some((at, _)) = want {
                    now = at;
                }
            }
            // Deadline-bounded pop at a random horizon past the clock.
            5 => {
                let deadline = now.saturating_add(raw % 2_000_000_000);
                let got = src.next_event_before(deadline).map(|e| (e.at, e.seq));
                let want = match model.peek() {
                    Some(e) if e.at <= deadline => model.pop().map(|e| (e.at, e.seq)),
                    _ => None,
                };
                assert_eq!(got, want);
                if let Some((at, _)) = want {
                    now = at;
                }
            }
            // Push at a near / mid / far offset from the clock.
            k => {
                let dt = match k {
                    0 => raw % 1_000_000,     // ≤ 1 ms: level 0
                    1 => raw % 2_000_000_000, // ≤ 2 s: levels 1–2
                    _ => raw,                 // anything, incl. far heap
                };
                let at = now.saturating_add(dt);
                src.push_event(ev(at, seq));
                model.push(ev(at, seq));
                seq += 1;
            }
        }
        assert_eq!(src.pending(), model.len());
        assert_eq!(src.next_time(), model.peek().map(|e| e.at));
    }

    // Drain both completely: the tails must match too.
    loop {
        let got = src.next_event().map(|e| (e.at, e.seq));
        let want = model.pop().map(|e| (e.at, e.seq));
        assert_eq!(got, want);
        if want.is_none() {
            break;
        }
    }
    assert_eq!(src.pending(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wheel_pops_in_exactly_the_old_heap_order(
        ops in prop::collection::vec((0u32..4, proptest::any::<u64>()), 1..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut model: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64; // last popped time: pushes never go to the past

        for &(kind, raw) in &ops {
            match kind {
                // Pop from both, compare, and advance the clock.
                3 => {
                    let got = wheel.pop().map(|e| (e.at, e.seq));
                    let want = model.pop().map(|e| (e.at, e.seq));
                    prop_assert_eq!(got, want);
                    if let Some((at, _)) = want {
                        now = at;
                    }
                }
                // Push at a near / mid / far offset from the clock.
                k => {
                    let dt = match k {
                        0 => raw % 1_000_000,         // ≤ 1 ms: level 0
                        1 => raw % 2_000_000_000,     // ≤ 2 s: levels 1–2
                        _ => raw,                     // anything, incl. far heap
                    };
                    let at = now.saturating_add(dt);
                    wheel.push(ev(at, seq));
                    model.push(ev(at, seq));
                    seq += 1;
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
            prop_assert_eq!(wheel.peek_time(), model.peek().map(|e| e.at));
        }

        // Drain both completely: the tails must match too.
        loop {
            let got = wheel.pop().map(|e| (e.at, e.seq));
            let want = model.pop().map(|e| (e.at, e.seq));
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn burst_of_simultaneous_events_pops_in_schedule_order(
        times in prop::collection::vec(0u64..50_000, 2..64),
    ) {
        // Many events on few distinct timestamps: tie-breaking by seq is
        // where an unordered bucket drain would betray itself.
        let mut wheel = EventQueue::new();
        let mut model: BinaryHeap<Event> = BinaryHeap::new();
        for (seq, &t) in times.iter().enumerate() {
            let at = (t / 10_000) * 10_000; // collapse onto ~5 timestamps
            wheel.push(ev(at, seq as u64));
            model.push(ev(at, seq as u64));
        }
        while let Some(want) = model.pop() {
            let got = wheel.pop().expect("wheel drained early");
            prop_assert_eq!((got.at, got.seq), (want.at, want.seq));
        }
        prop_assert_eq!(wheel.pop().map(|e| e.at), None);
    }

    #[test]
    fn event_queue_conforms_to_the_source_contract(
        ops in prop::collection::vec((0u32..6, proptest::any::<u64>()), 1..400),
    ) {
        source_matches_model(&mut EventQueue::new(), &ops);
    }

    #[test]
    fn shard_source_conforms_to_the_source_contract(
        ops in prop::collection::vec((0u32..6, proptest::any::<u64>()), 1..400),
    ) {
        // With the horizon at its default (unbounded) the per-shard
        // source must be indistinguishable from the bare queue.
        source_matches_model(&mut ShardEventSource::new(), &ops);
    }

    #[test]
    fn shard_source_horizon_withholds_events(
        times in prop::collection::vec(0u64..100_000, 1..64),
        horizon in 1u64..100_000,
    ) {
        let mut src = ShardEventSource::new();
        for (seq, &t) in times.iter().enumerate() {
            src.push_event(ev(t, seq as u64));
        }
        src.set_horizon(horizon);
        let mut below = 0;
        while let Some(e) = src.next_event() {
            assert!(e.at < horizon, "horizon must be exclusive");
            below += 1;
        }
        prop_assert_eq!(below, times.iter().filter(|&&t| t < horizon).count());
        // Everything at/after the horizon is withheld, not lost.
        prop_assert_eq!(src.next_time(), None);
        src.set_horizon(u64::MAX);
        prop_assert_eq!(src.pending(), times.len() - below);
    }
}
