//! Unidirectional links with rate, propagation delay, and drop-tail queues.
//!
//! A link models the classic store-and-forward pipeline: packets wait in a
//! bounded FIFO queue, are serialized one at a time at the link rate, then
//! propagate for a fixed delay before arriving at the far end. When the
//! queue is full an arriving packet is dropped (drop-tail), which is the
//! loss model of the paper's EMULAB bottleneck.
//!
//! An optional random-loss and reordering model supports failure-injection
//! tests that exercise retransmission paths independently of congestion.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::packet::NodeId;
use crate::slab::PacketKey;
use crate::time::{Time, TimeDelta};

/// Active queue management discipline for a link's output queue.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueDiscipline {
    /// Drop arriving packets only when the queue is full (the paper's
    /// EMULAB router behaviour and the default everywhere).
    DropTail,
    /// Random Early Detection: probabilistic drops ramp up between the
    /// thresholds of the *averaged* queue size, signalling congestion
    /// before the buffer overflows.
    Red(RedParams),
}

/// RED tunables (Floyd & Jacobson defaults scaled to byte queues).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedParams {
    /// Averaged queue size below which nothing is dropped, bytes.
    pub min_th_bytes: u32,
    /// Averaged queue size above which everything is dropped, bytes.
    pub max_th_bytes: u32,
    /// Drop probability as the average reaches `max_th_bytes`.
    pub max_p: f64,
    /// EWMA weight for the averaged queue size.
    pub weight: f64,
}

impl RedParams {
    /// Conventional parameters for a queue of `capacity` bytes:
    /// thresholds at 25 % / 75 %, `max_p` 0.1, weight 0.002.
    pub fn for_capacity(capacity: u32) -> Self {
        Self {
            min_th_bytes: capacity / 4,
            max_th_bytes: capacity * 3 / 4,
            max_p: 0.1,
            weight: 0.002,
        }
    }
}

/// Immutable link configuration.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Transmission rate in bits per second. `<= 0` means infinitely fast.
    pub rate_bps: f64,
    /// One-way propagation delay.
    pub delay: TimeDelta,
    /// Queue capacity in bytes. Packets that would overflow are dropped.
    pub queue_bytes: u32,
    /// Independent probability of losing each packet after transmission
    /// (failure injection; `0.0` for a clean link).
    pub random_loss: f64,
    /// Extra jitter bound added uniformly to propagation (failure
    /// injection; can reorder packets when non-zero).
    pub jitter: TimeDelta,
    /// Queue management discipline.
    pub discipline: QueueDiscipline,
}

impl LinkSpec {
    /// A clean link with the given rate, delay, and queue size.
    pub fn new(rate_bps: f64, delay: TimeDelta, queue_bytes: u32) -> Self {
        Self {
            rate_bps,
            delay,
            queue_bytes,
            random_loss: 0.0,
            jitter: 0,
            discipline: QueueDiscipline::DropTail,
        }
    }

    /// Switches the queue to RED with the given parameters.
    pub fn with_red(mut self, params: RedParams) -> Self {
        self.discipline = QueueDiscipline::Red(params);
        self
    }

    /// Adds an independent per-packet loss probability.
    pub fn with_random_loss(mut self, p: f64) -> Self {
        self.random_loss = p.clamp(0.0, 1.0);
        self
    }

    /// Adds uniform propagation jitter in `[0, jitter]`.
    pub fn with_jitter(mut self, jitter: TimeDelta) -> Self {
        self.jitter = jitter;
        self
    }

    /// Queue capacity sized to one bandwidth-delay product of `rtt`,
    /// the conventional router buffer rule used for the experiments.
    pub fn with_bdp_queue(mut self, rtt: TimeDelta) -> Self {
        let bdp = self.rate_bps * (rtt as f64 / crate::time::SECOND as f64) / 8.0;
        self.queue_bytes = bdp.max(3000.0) as u32;
        self
    }
}

/// Per-link counters exposed for experiment reporting and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued_packets: u64,
    /// Bytes accepted into the queue.
    pub enqueued_bytes: u64,
    /// Packets lost to drop-tail (queue-full) drops.
    pub dropped_packets: u64,
    /// Bytes lost to drop-tail.
    pub dropped_bytes: u64,
    /// Packets lost to the random-loss failure model.
    pub random_losses: u64,
    /// Packets dropped early by RED (before the queue was full).
    pub red_drops: u64,
    /// Packets fully serialized onto the wire.
    pub transmitted_packets: u64,
    /// Bytes fully serialized onto the wire.
    pub transmitted_bytes: u64,
    /// Maximum queue occupancy observed, in bytes.
    pub peak_queue_bytes: u32,
}

/// A queue entry: just the slab key and the wire size. The packet itself
/// stays parked in the simulator's slab, so queue churn moves 8 bytes.
#[derive(Debug, Clone, Copy)]
pub struct QueuedPacket {
    /// Slab key of the queued packet.
    pub key: PacketKey,
    /// Wire size in bytes (cached here: it drives serialization time and
    /// queue accounting, and is needed after the slab entry is dropped).
    pub size: u32,
}

/// Mutable state of a link inside the simulator.
#[derive(Debug)]
pub struct LinkState {
    /// Immutable configuration.
    pub spec: LinkSpec,
    /// Transmitting end.
    pub from: NodeId,
    /// Receiving end.
    pub to: NodeId,
    queue: VecDeque<QueuedPacket>,
    queued_bytes: u32,
    /// RED's exponentially averaged queue size, bytes.
    avg_queue: f64,
    /// Whether the transmitter is currently serializing a packet.
    busy: bool,
    /// One-entry `tx_time` memo. Traffic on a link is dominated by one
    /// or two packet sizes, so this skips the float division on almost
    /// every transmission while producing bit-identical times.
    tx_memo: (u32, TimeDelta),
    /// Running counters.
    pub stats: LinkStats,
}

/// Result of offering a packet to a link queue.
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Queued; transmitter already busy, nothing to schedule.
    Queued,
    /// Queued and the transmitter was idle: caller must start transmission.
    StartTx,
    /// Dropped by drop-tail.
    Dropped,
}

impl LinkState {
    /// Creates an idle link with empty queue.
    pub fn new(spec: LinkSpec, from: NodeId, to: NodeId) -> Self {
        Self {
            spec,
            from,
            to,
            queue: VecDeque::new(),
            queued_bytes: 0,
            avg_queue: 0.0,
            busy: false,
            tx_memo: (u32::MAX, 0),
            stats: LinkStats::default(),
        }
    }

    /// Current queue occupancy in bytes (excluding the packet in
    /// serialization).
    pub fn queued_bytes(&self) -> u32 {
        self.queued_bytes
    }

    /// Number of packets waiting (excluding the packet in serialization).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the transmitter is serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Offers a packet (by slab key and wire size) to the queue, applying
    /// the configured discipline. On [`Enqueue::Dropped`] the caller still
    /// owns the key and must release the slab entry.
    pub fn enqueue(&mut self, key: PacketKey, sz: u32, rng: &mut SmallRng) -> Enqueue {
        // RED early drop, evaluated on the averaged queue size.
        if let QueueDiscipline::Red(red) = self.spec.discipline {
            self.avg_queue =
                (1.0 - red.weight) * self.avg_queue + red.weight * f64::from(self.queued_bytes);
            let drop_p = if self.avg_queue < f64::from(red.min_th_bytes) {
                0.0
            } else if self.avg_queue >= f64::from(red.max_th_bytes) {
                1.0
            } else {
                red.max_p * (self.avg_queue - f64::from(red.min_th_bytes))
                    / f64::from(red.max_th_bytes - red.min_th_bytes)
            };
            if drop_p > 0.0 && rng.gen::<f64>() < drop_p {
                self.stats.red_drops += 1;
                self.stats.dropped_packets += 1;
                self.stats.dropped_bytes += u64::from(sz);
                return Enqueue::Dropped;
            }
        }
        if self.queued_bytes.saturating_add(sz) > self.spec.queue_bytes {
            self.stats.dropped_packets += 1;
            self.stats.dropped_bytes += u64::from(sz);
            return Enqueue::Dropped;
        }
        self.queued_bytes += sz;
        self.stats.enqueued_packets += 1;
        self.stats.enqueued_bytes += u64::from(sz);
        self.stats.peak_queue_bytes = self.stats.peak_queue_bytes.max(self.queued_bytes);
        self.queue.push_back(QueuedPacket { key, size: sz });
        if self.busy {
            Enqueue::Queued
        } else {
            self.busy = true;
            Enqueue::StartTx
        }
    }

    /// Takes the next packet for serialization. Caller must have been told
    /// to start (via [`Enqueue::StartTx`]) or have just finished a
    /// transmission. Returns `None` when the queue drained, in which case
    /// the transmitter goes idle.
    pub fn begin_tx(&mut self) -> Option<QueuedPacket> {
        match self.queue.pop_front() {
            Some(q) => {
                self.queued_bytes -= q.size;
                self.stats.transmitted_packets += 1;
                self.stats.transmitted_bytes += u64::from(q.size);
                Some(q)
            }
            None => {
                self.busy = false;
                None
            }
        }
    }

    /// Serialization time for a packet of `size` wire bytes on this link.
    pub fn tx_time(&self, size: u32) -> TimeDelta {
        crate::time::transmission_time(size, self.spec.rate_bps)
    }

    /// [`Self::tx_time`] through the one-entry memo (hot path).
    pub fn tx_time_cached(&mut self, size: u32) -> TimeDelta {
        if self.tx_memo.0 != size {
            self.tx_memo = (size, self.tx_time(size));
        }
        self.tx_memo.1
    }

    /// Arrival time at the far end for a transmission finishing at
    /// `tx_done`, before jitter.
    pub fn arrival_time(&self, tx_done: Time) -> Time {
        tx_done + self.spec.delay
    }

    /// Average utilization given total bytes pushed over `elapsed`.
    pub fn utilization(&self, elapsed: TimeDelta) -> f64 {
        if elapsed == 0 || self.spec.rate_bps <= 0.0 {
            return 0.0;
        }
        let secs = elapsed as f64 / crate::time::SECOND as f64;
        (self.stats.transmitted_bytes as f64 * 8.0) / (self.spec.rate_bps * secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn link(queue_bytes: u32) -> LinkState {
        LinkState::new(
            LinkSpec::new(8e6, crate::time::millis(1), queue_bytes),
            NodeId(0),
            NodeId(1),
        )
    }

    #[test]
    fn first_enqueue_starts_transmitter() {
        let mut l = link(10_000);
        assert_eq!(l.enqueue(PacketKey(0), 1000, &mut rng()), Enqueue::StartTx);
        assert_eq!(l.enqueue(PacketKey(1), 1000, &mut rng()), Enqueue::Queued);
        assert!(l.is_busy());
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn drop_tail_on_overflow() {
        let mut l = link(2500);
        assert_eq!(l.enqueue(PacketKey(0), 1000, &mut rng()), Enqueue::StartTx);
        assert_eq!(l.enqueue(PacketKey(1), 1000, &mut rng()), Enqueue::Queued);
        assert_eq!(l.enqueue(PacketKey(2), 1000, &mut rng()), Enqueue::Dropped);
        assert_eq!(l.stats.dropped_packets, 1);
        assert_eq!(l.stats.dropped_bytes, 1000);
        // A smaller packet that fits is still accepted after a drop.
        assert_eq!(l.enqueue(PacketKey(3), 500, &mut rng()), Enqueue::Queued);
    }

    #[test]
    fn begin_tx_drains_in_fifo_order_and_idles() {
        let mut l = link(10_000);
        l.enqueue(PacketKey(1), 100, &mut rng());
        l.enqueue(PacketKey(2), 200, &mut rng());
        assert_eq!(l.begin_tx().unwrap().key, PacketKey(1));
        assert_eq!(l.begin_tx().unwrap().key, PacketKey(2));
        assert!(l.begin_tx().is_none());
        assert!(!l.is_busy());
        assert_eq!(l.queued_bytes(), 0);
    }

    #[test]
    fn tx_time_uses_link_rate() {
        let l = link(10_000);
        // 1000 bytes at 8 Mb/s = 1 ms.
        assert_eq!(l.tx_time(1000), crate::time::millis(1));
    }

    #[test]
    fn peak_queue_tracked() {
        let mut l = link(10_000);
        l.enqueue(PacketKey(0), 4000, &mut rng());
        l.enqueue(PacketKey(1), 4000, &mut rng());
        assert_eq!(l.stats.peak_queue_bytes, 8000);
        l.begin_tx();
        l.begin_tx();
        assert_eq!(l.stats.peak_queue_bytes, 8000);
    }

    #[test]
    fn red_drops_early_when_average_queue_high() {
        let params = RedParams::for_capacity(10_000);
        let mut l = LinkState::new(
            LinkSpec::new(8e6, crate::time::millis(1), 10_000).with_red(RedParams {
                weight: 0.5, // fast-moving average for the test
                ..params
            }),
            NodeId(0),
            NodeId(1),
        );
        let mut r = rng();
        // Fill the queue to drive the average well above max_th.
        let mut dropped = 0;
        for i in 0..60 {
            if l.enqueue(PacketKey(i), 500, &mut r) == Enqueue::Dropped {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "RED never dropped");
        assert!(l.stats.red_drops > 0, "drops were not early drops");
        // Early drops happen before the buffer is exhausted.
        assert!(l.queued_bytes() <= l.spec.queue_bytes);
    }

    #[test]
    fn red_is_quiet_below_min_threshold() {
        let mut l = LinkState::new(
            LinkSpec::new(8e6, crate::time::millis(1), 100_000)
                .with_red(RedParams::for_capacity(100_000)),
            NodeId(0),
            NodeId(1),
        );
        let mut r = rng();
        for i in 0..10 {
            assert_ne!(l.enqueue(PacketKey(i), 500, &mut r), Enqueue::Dropped);
            l.begin_tx();
        }
        assert_eq!(l.stats.red_drops, 0);
    }

    #[test]
    fn red_params_for_capacity() {
        let p = RedParams::for_capacity(100_000);
        assert_eq!(p.min_th_bytes, 25_000);
        assert_eq!(p.max_th_bytes, 75_000);
        assert!(p.max_p > 0.0 && p.max_p < 1.0);
    }

    #[test]
    fn bdp_queue_sizing() {
        let spec = LinkSpec::new(20e6, crate::time::millis(15), 0)
            .with_bdp_queue(crate::time::millis(30));
        // 20 Mb/s * 30 ms / 8 = 75,000 bytes.
        assert_eq!(spec.queue_bytes, 75_000);
    }
}
