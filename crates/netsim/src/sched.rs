//! The two-tier event scheduler: a hierarchical timer wheel backed by an
//! overflow heap.
//!
//! The old scheduler was a single `BinaryHeap<Event>`: every push and pop
//! paid `O(log n)` comparisons and moved events up and down a deep heap.
//! Discrete-event simulations schedule overwhelmingly into the *near*
//! future (per-hop serialization, propagation, RTO and measuring-period
//! timers), which a timer wheel turns into `O(1)` bucket pushes.
//!
//! ## Structure
//!
//! * **near** — a small sorted vector holding every event below
//!   `near_end`. This is the only structure events are
//!   popped from, so pop order is exactly the sort order: `(time, seq)`.
//! * **wheel** — [`LEVELS`] rings of [`SLOTS`] buckets each. Level 0
//!   buckets span 2^16 ns (≈ 65 µs), each higher level is [`SLOTS`] times
//!   coarser (≈ 16.8 ms, ≈ 4.3 s). A bucket is a plain `Vec<Event>`
//!   whose capacity is retained across drains, so steady-state
//!   scheduling never allocates.
//! * **far** — a binary heap for events beyond the top level's horizon
//!   (≈ 18 min ahead). Rare in practice; migrated into the wheel as the
//!   horizon advances.
//!
//! ## Determinism
//!
//! Pop order is bit-for-bit identical to the old `BinaryHeap`: ascending
//! `(time, seq)`. The argument: every event is *popped* from `near`,
//! which orders by `(time, seq)`; an event enters `near` no later than
//! the moment `near_end` passes its timestamp; and `near_end` only
//! advances to the start of the earliest non-empty bucket (or the far
//! heap's minimum), so no event still sitting in a bucket can precede
//! anything already poppable. Wheel buckets are unordered, but a bucket
//! is drained *whole* into `near` before any of its events pop, where
//! the sort restores `(time, seq)` order. `tests/scheduler_diff.rs`
//! pins this equivalence against a model `BinaryHeap` under vendored
//! proptest op streams.

use std::collections::BinaryHeap;

use iq_obs::counter_inc;

use crate::event::Event;
use crate::time::Time;

/// Engine-plane scheduler counters: where pushes landed (near vector,
/// wheel level, far heap) and how often buckets drained or cascaded.
///
/// These count *placements*, so an event cascading from level 2 through
/// level 1 into `near` is counted once per placement. Under the sharded
/// engine the placement of a push depends on how far `near_end` has
/// advanced, which depends on the lookahead-window interleaving — so
/// these are engine-plane metrics (never fingerprinted), unlike the
/// sim-plane `SimCounters`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Pushes appended straight onto the `near` vector (the fast path).
    pub near_hits: u64,
    /// Pushes that binary-inserted mid-`near` (rare same-window earlier
    /// arrivals, e.g. cross-shard injections).
    pub near_inserts: u64,
    /// Pushes landing in each wheel level's buckets.
    pub wheel_pushes: [u64; LEVELS],
    /// Pushes spilling past the wheel horizon into the far heap.
    pub far_spills: u64,
    /// Level-0 buckets drained whole into `near`.
    pub bucket_drains: u64,
    /// Drains taken via the coarse-floor fast path (no multi-level scan).
    pub fast_drains: u64,
    /// Higher-level buckets cascaded down into finer structures.
    pub cascades: u64,
    /// Events migrated out of the far heap as the horizon advanced.
    pub far_adoptions: u64,
}

impl SchedStats {
    /// Total pushes across all placement classes.
    pub fn pushes(&self) -> u64 {
        self.near_hits
            + self.near_inserts
            + self.wheel_pushes.iter().sum::<u64>()
            + self.far_spills
    }
}

/// log2 of the number of buckets per wheel level.
const SLOT_BITS: u32 = 8;
/// Buckets per wheel level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; beyond the top level events overflow into the far heap.
pub const LEVELS: usize = 3;
/// log2 of the level-0 bucket width in nanoseconds (2^20 ns ≈ 1.05 ms).
const G0_BITS: u32 = 20;

/// Bit shift converting a time to an absolute bucket number at `level`.
#[inline]
const fn shift(level: usize) -> u32 {
    G0_BITS + SLOT_BITS * level as u32
}

/// Absolute bucket number of `t` at `level`.
#[inline]
const fn bucket_of(t: Time, level: usize) -> u64 {
    t >> shift(level)
}

/// Exclusive end time of absolute bucket `b` at `level` (saturating).
#[inline]
fn bucket_end(b: u64, level: usize) -> Time {
    ((b as u128 + 1) << shift(level)).min(u64::MAX as u128) as u64
}

/// One wheel level: a ring of buckets, an occupancy bitmap so empty
/// stretches are skipped word-at-a-time, and an event count so an empty
/// level costs one branch during refill.
struct Level {
    buckets: Vec<Vec<Event>>,
    occupied: [u64; SLOTS / 64],
    events: usize,
}

const WORDS: usize = SLOTS / 64;

impl Level {
    fn new() -> Self {
        Self {
            buckets: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            events: 0,
        }
    }

    #[inline]
    fn push(&mut self, abs_bucket: u64, ev: Event) {
        let i = (abs_bucket as usize) & (SLOTS - 1);
        self.buckets[i].push(ev);
        self.occupied[i / 64] |= 1u64 << (i % 64);
        self.events += 1;
    }

    #[inline]
    fn clear_bit(&mut self, i: usize) {
        self.occupied[i / 64] &= !(1u64 << (i % 64));
    }

    #[inline]
    fn is_occupied(&self, i: usize) -> bool {
        self.occupied[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// First occupied absolute bucket in `[from, from + SLOTS)` — the
    /// level's whole ring window — via word-wise bitmap scan (at most
    /// `WORDS + 1` word tests).
    fn next_occupied(&self, from: u64) -> Option<u64> {
        if self.events == 0 {
            return None;
        }
        let start = (from as usize) & (SLOTS - 1);
        let first_word = start / 64;
        let first_bit = start % 64;
        let w = self.occupied[first_word] >> first_bit;
        if w != 0 {
            return Some(from + u64::from(w.trailing_zeros()));
        }
        let mut offset = (64 - first_bit) as u64;
        for k in 1..=WORDS {
            let idx = (first_word + k) % WORDS;
            let mut w = self.occupied[idx];
            if k == WORDS {
                // Wrapped back to the first word: only the ring slots
                // before `start` remain unscanned.
                w &= (1u64 << first_bit).wrapping_sub(1);
            }
            if w != 0 {
                return Some(from + offset + u64::from(w.trailing_zeros()));
            }
            offset += 64;
        }
        None
    }
}

/// The pluggable seam between the simulator's run loop and its supply
/// of events.
///
/// The run loop needs exactly four capabilities — schedule, inspect the
/// next timestamp, consume the next event, and count what is pending —
/// and this trait names them. [`EventQueue`] is the production
/// implementation; an explicit-state model checker (or a replay/record
/// harness) can stand in its own source that enumerates or scripts
/// event orderings instead of always yielding the earliest one.
///
/// The contract mirrors the queue's determinism guarantee: for a given
/// push history, `next_event` must return events in a reproducible
/// order, and `next_time` must name the timestamp `next_event` would
/// yield next. Implementations are free to *choose* that order (that is
/// the model checker's whole point) but not to change it between
/// identical runs.
pub trait EventSource {
    /// Schedules an event.
    fn push_event(&mut self, ev: Event);

    /// Timestamp of the event [`Self::next_event`] would yield, if any.
    /// May migrate events internally, hence `&mut`.
    fn next_time(&mut self) -> Option<Time>;

    /// Removes and yields the next event.
    fn next_event(&mut self) -> Option<Event>;

    /// Number of pending events.
    fn pending(&self) -> usize;

    /// Yields the next event only if it is due at or before `deadline`.
    /// Implementations with a cheaper fused peek-then-pop (the wheel's
    /// [`EventQueue::pop_before`]) should override this.
    fn next_event_before(&mut self, deadline: Time) -> Option<Event> {
        match self.next_time() {
            Some(t) if t <= deadline => self.next_event(),
            _ => None,
        }
    }
}

/// The simulator's pending-event set: push events in any order, pop them
/// in ascending `(time, seq)` order.
pub struct EventQueue {
    /// Events below `near_end`, sorted descending by `(time, seq)` so the
    /// next event pops from the end. A drained bucket holds a handful of
    /// events, so one `sort_unstable` beats per-event heap sifts.
    /// `Event`'s `Ord` is reversed (min-queue through a max-heap), so an
    /// ascending sort by that `Ord` *is* descending `(time, seq)`.
    near: Vec<Event>,
    /// Overflow for pushes below `near_end` that can't take `near`'s
    /// append fast path. A `Vec::insert` into the middle of a deep `near`
    /// is `O(len)` memmove per event — ruinous when a dense bucket (a
    /// timer burst, a window's worth of cross-shard arrivals) is resident
    /// while handlers keep scheduling into its span. Parking those events
    /// here is `O(log n)`, and `pop` takes the earlier of `near`'s tail
    /// and this heap's top, which preserves the exact global `(time, seq)`
    /// pop order. Reversed `Ord` makes the max-heap top the earliest.
    near_over: BinaryHeap<Event>,
    /// Exclusive upper bound of the times fully migrated into `near`.
    near_end: Time,
    levels: Vec<Level>,
    /// Events at or beyond the top level's horizon.
    far: BinaryHeap<Event>,
    len: usize,
    /// Proven lower bound on the earliest event held above level 0
    /// (levels 1+, far heap). Level-0 buckets ending at or before this
    /// can drain without scanning the coarser levels — the refill fast
    /// path. Conservative: pushes lower it, only a full scan raises it.
    coarse_floor: Time,
    stats: SchedStats,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue starting at time zero.
    pub fn new() -> Self {
        Self {
            near: Vec::new(),
            near_over: BinaryHeap::new(),
            near_end: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            far: BinaryHeap::new(),
            len: 0,
            coarse_floor: 0,
            stats: SchedStats::default(),
        }
    }

    /// Engine-plane placement/drain counters accumulated so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Current structure occupancy: events resident in each wheel
    /// level, the far heap, and the near vector (gauges, sampled at
    /// collection time).
    pub fn occupancy(&self) -> ([usize; LEVELS], usize, usize) {
        let mut levels = [0usize; LEVELS];
        for (i, l) in self.levels.iter().enumerate() {
            levels[i] = l.events;
        }
        (levels, self.far.len(), self.near.len() + self.near_over.len())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current drain cursor (absolute bucket number) at `level`.
    #[inline]
    fn cursor(&self, level: usize) -> u64 {
        bucket_of(self.near_end, level)
    }

    /// Schedules an event. `O(1)` for the common (near-future) case.
    pub fn push(&mut self, ev: Event) {
        self.len += 1;
        if ev.at < self.near_end {
            // Appending beats the binary insert for the dominant case: an
            // event earlier than everything pending (same-timestamp local
            // deliveries scheduled from the event being executed land
            // here, since `seq` grows monotonically).
            match self.near.last() {
                Some(last) if ev.cmp(last) != std::cmp::Ordering::Greater => {
                    counter_inc!(self.stats.near_inserts);
                    self.near_over.push(ev);
                }
                _ => {
                    counter_inc!(self.stats.near_hits);
                    self.near.push(ev);
                }
            }
            return;
        }
        for level in 0..LEVELS {
            let b = bucket_of(ev.at, level);
            if b - self.cursor(level) < SLOTS as u64 {
                if level > 0 {
                    let start = ((b as u128) << shift(level)).min(u64::MAX as u128) as u64;
                    self.coarse_floor = self.coarse_floor.min(start);
                }
                counter_inc!(self.stats.wheel_pushes[level]);
                self.levels[level].push(b, ev);
                return;
            }
        }
        counter_inc!(self.stats.far_spills);
        self.coarse_floor = self.coarse_floor.min(ev.at);
        self.far.push(ev);
    }

    /// Whether the overlay heap (not `near`) holds the earliest pending
    /// event. Reversed `Ord`: `Greater` means earlier `(time, seq)`.
    #[inline]
    fn overlay_first(&self) -> bool {
        match (self.near.last(), self.near_over.peek()) {
            (Some(n), Some(o)) => o.cmp(n) == std::cmp::Ordering::Greater,
            (None, Some(_)) => true,
            _ => false,
        }
    }

    /// Earliest pending `(time)`; `None` when empty. May migrate events
    /// internally, hence `&mut`.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.refill();
        match (self.near.last(), self.near_over.peek()) {
            (Some(n), Some(o)) => Some(n.at.min(o.at)),
            (Some(n), None) => Some(n.at),
            (None, Some(o)) => Some(o.at),
            (None, None) => None,
        }
    }

    /// Removes and returns the earliest event (ties broken by `seq`).
    pub fn pop(&mut self) -> Option<Event> {
        self.refill();
        let ev = if self.overlay_first() {
            self.near_over.pop()
        } else {
            self.near.pop()
        };
        if ev.is_some() {
            self.len -= 1;
        }
        ev
    }

    /// Removes and returns the earliest event if its time is at or before
    /// `deadline` — the simulator's run-loop primitive, saving a separate
    /// peek-then-pop round trip per event.
    pub fn pop_before(&mut self, deadline: Time) -> Option<Event> {
        self.refill();
        if self.overlay_first() {
            match self.near_over.peek() {
                Some(ev) if ev.at <= deadline => {
                    self.len -= 1;
                    self.near_over.pop()
                }
                _ => None,
            }
        } else {
            match self.near.last() {
                Some(ev) if ev.at <= deadline => {
                    self.len -= 1;
                    self.near.pop()
                }
                _ => None,
            }
        }
    }

    /// Advances `near_end` to `t`, cascading any higher-level bucket the
    /// cursor just entered down into finer levels (or `near`).
    ///
    /// Buckets *skipped* by a multi-bucket cursor jump are empty by
    /// construction: `refill` only jumps to the earliest occupied
    /// bucket's start (or the far minimum), so an occupied skipped
    /// bucket would have been the jump target instead.
    fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.near_end, "cursor moved backwards");
        let old: [u64; LEVELS] = [self.cursor(0), self.cursor(1), self.cursor(2)];
        self.near_end = t;
        // Top-down so a level-2 bucket cascades through level 1 before
        // the level-1 cursor's own entry-cascade runs.
        if self.cursor(LEVELS - 1) != old[LEVELS - 1] {
            // Entering a new top-level bucket also widens the horizon:
            // adopt far events that now fit in the wheel.
            self.cascade(LEVELS - 1, self.cursor(LEVELS - 1));
            self.adopt_far();
        }
        for level in (1..LEVELS - 1).rev() {
            if self.cursor(level) != old[level] {
                self.cascade(level, self.cursor(level));
            }
        }
    }

    /// Re-distributes bucket `abs` of `level` into finer structures.
    fn cascade(&mut self, level: usize, abs: u64) {
        let i = (abs as usize) & (SLOTS - 1);
        if !self.levels[level].is_occupied(i) {
            return;
        }
        counter_inc!(self.stats.cascades);
        let mut events = std::mem::take(&mut self.levels[level].buckets[i]);
        self.levels[level].clear_bit(i);
        self.levels[level].events -= events.len();
        for ev in events.drain(..) {
            debug_assert_eq!(bucket_of(ev.at, level), abs, "bucket collision");
            self.len -= 1; // push re-counts
            self.push(ev);
        }
        // Put the emptied Vec back so its capacity is reused.
        self.levels[level].buckets[i] = events;
    }

    /// Moves far-heap events that now fall inside the wheel horizon.
    fn adopt_far(&mut self) {
        let horizon = self.cursor(LEVELS - 1) + SLOTS as u64;
        while let Some(ev) = self.far.peek() {
            if bucket_of(ev.at, LEVELS - 1) >= horizon {
                break;
            }
            let ev = self.far.pop().expect("peeked");
            counter_inc!(self.stats.far_adoptions);
            self.len -= 1; // push re-counts
            self.push(ev);
        }
    }

    /// Ensures `near` holds the earliest pending event (if any exist).
    ///
    /// Each iteration finds the bucket with the minimum start time
    /// across all levels (each level scans its full ring window). A
    /// level-0 minimum is drained into `near`; a coarser minimum is
    /// entered via [`Self::advance_to`], which cascades it down for the
    /// next iteration. Ties prefer the coarser level: a level-k bucket
    /// sharing a start with a level-0 bucket may hold events *inside*
    /// that level-0 bucket's span, so it must cascade before the
    /// level-0 bucket is drained.
    /// Migrates level-0 bucket `b` wholly into `near` and advances the
    /// cursor past it. Only sound when nothing above level 0 can hold an
    /// event before the bucket's end (the callers' invariant).
    fn drain_level0(&mut self, b: u64) {
        counter_inc!(self.stats.bucket_drains);
        let i = (b as usize) & (SLOTS - 1);
        let mut events = std::mem::take(&mut self.levels[0].buckets[i]);
        self.levels[0].clear_bit(i);
        self.levels[0].events -= events.len();
        debug_assert!(
            events.iter().all(|ev| bucket_of(ev.at, 0) == b),
            "bucket collision"
        );
        self.near.append(&mut events);
        self.near.sort_unstable(); // `near` was empty: sorts the bucket
        self.levels[0].buckets[i] = events; // keep capacity
        let end = bucket_end(b, 0).max(self.near_end);
        self.advance_to(end); // may cross a coarser boundary
    }

    fn refill(&mut self) {
        // An overlay event (always below `near_end`) precedes everything
        // still in the wheels or far heap, so no migration is needed to
        // pop it — and skipping refill keeps `drain_level0`'s "`near` was
        // empty" sorting invariant intact.
        while self.near.is_empty() && self.near_over.is_empty() && self.len > 0 {
            // Fast path: a level-0 bucket ending at or before the coarse
            // floor drains without touching the coarser levels at all.
            if let Some(b) = self.levels[0].next_occupied(self.cursor(0)) {
                if bucket_end(b, 0) <= self.coarse_floor {
                    counter_inc!(self.stats.fast_drains);
                    self.drain_level0(b);
                    continue;
                }
            }
            // Slow path: minimum-start scan across every level, which
            // also re-proves the coarse floor for future fast drains.
            let mut best: Option<(Time, usize, u64)> = None;
            let mut coarse_min = self.far.peek().map_or(Time::MAX, |ev| ev.at);
            for level in 0..LEVELS {
                let cur = self.cursor(level);
                if let Some(b) = self.levels[level].next_occupied(cur) {
                    let start = ((b as u128) << shift(level)).min(u64::MAX as u128) as u64;
                    if level > 0 {
                        coarse_min = coarse_min.min(start);
                    }
                    // `<=`: later (coarser) levels win ties.
                    if best.is_none_or(|(s, _, _)| start <= s) {
                        best = Some((start, level, b));
                    }
                }
            }
            self.coarse_floor = coarse_min;
            match best {
                Some((_, 0, b)) => {
                    // Nothing anywhere starts before this bucket ends
                    // (coarser bucket starts are aligned to level-0
                    // boundaries, and the far heap lies beyond the wheel
                    // horizon), so the whole bucket is safe to migrate.
                    self.drain_level0(b);
                }
                Some((start, _, _)) => {
                    // Entering the coarser bucket cascades its events
                    // down; the next iteration re-evaluates.
                    self.advance_to(start.max(self.near_end));
                }
                None => match self.far.peek().map(|ev| ev.at) {
                    // The far minimum is beyond every wheel horizon, so
                    // jumping there cascades/adopts everything relevant.
                    Some(t) => self.advance_to(t.max(self.near_end)),
                    None => return, // only `near` had events, and it's empty
                },
            }
        }
    }
}

impl EventSource for EventQueue {
    fn push_event(&mut self, ev: Event) {
        self.push(ev);
    }

    fn next_time(&mut self) -> Option<Time> {
        self.peek_time()
    }

    fn next_event(&mut self) -> Option<Event> {
        self.pop()
    }

    fn pending(&self) -> usize {
        self.len()
    }

    fn next_event_before(&mut self, deadline: Time) -> Option<Event> {
        self.pop_before(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::packet::AgentId;

    fn ev(at: Time, seq: u64) -> Event {
        Event {
            at,
            seq,
            kind: EventKind::Start { agent: AgentId(0) },
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        for (at, seq) in [(30, 0), (10, 1), (20, 2), (10, 3), (10, 0)] {
            q.push(ev(at, seq));
        }
        let order: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop().map(|e| (e.at, e.seq))).collect();
        assert_eq!(order, [(10, 0), (10, 1), (10, 3), (20, 2), (30, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn spans_all_tiers() {
        let mut q = EventQueue::new();
        // near/level-0, level-1, level-2, and far-heap territory.
        let times = [
            0,
            50_000,                  // level 0
            5_000_000,               // level 1 (5 ms)
            1_000_000_000,           // level 2 (1 s)
            100_000_000_000,         // level 2 outer
            5_000_000_000_000,       // far heap (5000 s)
            u64::MAX,                // saturated timer
        ];
        for (seq, &at) in times.iter().enumerate() {
            q.push(ev(at, seq as u64));
        }
        let popped: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.at)).collect();
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        let mut push = |q: &mut EventQueue, at: Time| {
            q.push(ev(at, seq));
            seq += 1;
        };
        push(&mut q, 1_000_000);
        push(&mut q, 2_000_000);
        assert_eq!(q.pop().unwrap().at, 1_000_000);
        // Schedule at the *popped* time (the simulator does this for
        // local deliveries) and earlier than already-pending events.
        push(&mut q, 1_000_000);
        push(&mut q, 1_500_000);
        assert_eq!(q.pop().unwrap().at, 1_000_000);
        assert_eq!(q.pop().unwrap().at, 1_500_000);
        assert_eq!(q.pop().unwrap().at, 2_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(ev(7_777_777, 0));
        q.push(ev(3_333, 1));
        assert_eq!(q.peek_time(), Some(3_333));
        assert_eq!(q.pop().unwrap().at, 3_333);
        assert_eq!(q.peek_time(), Some(7_777_777));
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_tracks_across_migrations() {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(ev(i * 7_919_113, i)); // spread across tiers
        }
        assert_eq!(q.len(), 1000);
        for _ in 0..500 {
            q.pop();
        }
        assert_eq!(q.len(), 500);
        for i in 0..100u64 {
            let t = q.peek_time().unwrap() + i;
            q.push(ev(t, 10_000 + i));
        }
        assert_eq!(q.len(), 600);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 600);
        assert_eq!(q.len(), 0);
    }

    /// The queue is usable through `dyn EventSource` — the seam the
    /// model checker plugs into — and the default `next_event_before`
    /// agrees with the specialized override.
    #[test]
    fn event_source_trait_object_drives_the_queue() {
        let mut q = EventQueue::new();
        let src: &mut dyn EventSource = &mut q;
        for (at, seq) in [(20, 0), (10, 1), (30, 2)] {
            src.push_event(ev(at, seq));
        }
        assert_eq!(src.pending(), 3);
        assert_eq!(src.next_time(), Some(10));
        assert!(src.next_event_before(5).is_none());
        assert_eq!(src.next_event_before(10).unwrap().at, 10);
        assert_eq!(src.next_event().unwrap().at, 20);
        // Default impl (through a shim that hides the override) matches.
        struct Shim(EventQueue);
        impl EventSource for Shim {
            fn push_event(&mut self, ev: Event) {
                self.0.push(ev);
            }
            fn next_time(&mut self) -> Option<Time> {
                self.0.peek_time()
            }
            fn next_event(&mut self) -> Option<Event> {
                self.0.pop()
            }
            fn pending(&self) -> usize {
                self.0.len()
            }
        }
        let mut s = Shim(EventQueue::new());
        s.push_event(ev(40, 0));
        assert!(s.next_event_before(39).is_none());
        assert_eq!(s.next_event_before(40).unwrap().at, 40);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn long_idle_gap_jumps_without_spinning() {
        let mut q = EventQueue::new();
        q.push(ev(0, 0));
        q.push(ev(3_600_000_000_000, 1)); // one hour later, far territory
        assert_eq!(q.pop().unwrap().at, 0);
        assert_eq!(q.pop().unwrap().at, 3_600_000_000_000);
    }
}
