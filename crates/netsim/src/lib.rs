//! # iq-netsim
//!
//! A deterministic, discrete-event, packet-level network simulator — the
//! substrate on which the IQ-RUDP reproduction runs its transports and
//! experiments (standing in for the paper's EMULAB testbed).
//!
//! ## Model
//!
//! * **Nodes** are hosts or routers; **links** are unidirectional with a
//!   rate, a propagation delay, and a bounded drop-tail FIFO queue
//!   (optionally with random loss / jitter for failure injection).
//! * **Agents** — protocol endpoints and traffic generators — attach to
//!   `(node, port)` addresses and react to packet deliveries and timers.
//! * **Routing** is static shortest-path, recomputed when topology
//!   changes.
//! * Time is integer nanoseconds; runs with equal seeds are bit-for-bit
//!   reproducible.
//!
//! ## Quick example
//!
//! ```
//! use iq_netsim::{
//!     Addr, Agent, Ctx, FlowId, LinkSpec, Packet, Simulator, payload, time,
//! };
//!
//! struct Hello { dst: Addr }
//! impl Agent for Hello {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(self.dst, 100, FlowId(1), payload("hi"));
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
//! }
//!
//! #[derive(Default)]
//! struct Count(u32);
//! impl Agent for Count {
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) { self.0 += 1; }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let a = sim.add_node();
//! let b = sim.add_node();
//! sim.add_duplex_link(a, b, LinkSpec::new(10e6, time::millis(5), 64_000));
//! sim.add_agent(a, 1, Box::new(Hello { dst: Addr::new(b, 2) }));
//! let rx = sim.add_agent(b, 2, Box::new(Count::default()));
//! sim.run_until(time::secs(1.0));
//! assert_eq!(sim.agent::<Count>(rx).unwrap().0, 1);
//! ```

#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

pub mod agent;
pub mod event;
pub mod link;
pub mod packet;
pub mod routing;
pub mod sched;
pub mod shard;
pub mod sim;
pub mod slab;
pub mod time;
pub mod trace;
pub mod topology;

pub use agent::{Agent, Ctx, TimerId};
pub use link::{LinkSpec, LinkStats, QueueDiscipline, RedParams};
pub use packet::{payload, pool_stats, Addr, AgentId, FlowId, LinkId, NodeId, Packet, Payload, PoolStats};
pub use routing::RoutingTable;
pub use sched::{EventQueue, EventSource, SchedStats};
pub use shard::{SchedTotals, ShardAgentId, ShardEventSource, ShardStats, ShardView, ShardedSim};
pub use sim::{SimCounters, Simulator};
pub use slab::{PacketKey, TimerKey};
pub use time::{Time, TimeDelta};
pub use trace::{FlowStats, PacketEvent, PacketEventKind, TraceCollector};
pub use topology::{build_dumbbell, Dumbbell, DumbbellSpec};

