//! Scheduled events and their ordering.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing tiebreaker, so simultaneous events execute in the order they
//! were scheduled. This makes runs bit-for-bit deterministic.
//!
//! An [`Event`] is deliberately small (32 bytes): packets travel as
//! 4-byte [`PacketKey`]s into the simulator's packet slab and timers as
//! 8-byte generation-checked [`TimerKey`]s, so moving an event through
//! the scheduler never copies packet contents.

use std::cmp::Ordering;

use crate::packet::{AgentId, LinkId};
use crate::slab::{PacketKey, TimerKey};
use crate::time::Time;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// Deliver a packet to the agent bound to its destination address.
    Deliver {
        /// Receiving agent.
        agent: AgentId,
        /// Slab key of the packet being delivered.
        packet: PacketKey,
    },
    /// A link finished serializing a packet: the packet starts
    /// propagating and the transmitter may pick up the next one.
    LinkTxDone {
        /// The link whose transmitter finished.
        link: LinkId,
    },
    /// A packet reaches the far end of a link and must be routed onward
    /// or delivered.
    LinkArrival {
        /// Link whose far end was reached.
        link: LinkId,
        /// Slab key of the arriving packet.
        packet: PacketKey,
    },
    /// A timer set by an agent. The key resolves to `(agent, token)` in
    /// the timer slab — or to nothing, if the timer was cancelled.
    Timer {
        /// Generation-checked timer slot key.
        key: TimerKey,
    },
    /// First activation of an agent.
    Start {
        /// Agent being activated.
        agent: AgentId,
    },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// Firing time.
    pub at: Time,
    /// Scheduling-order tiebreaker.
    pub seq: u64,
    /// What to do when the event fires.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(at: Time, seq: u64) -> Event {
        Event {
            at,
            seq,
            kind: EventKind::Start {
                agent: AgentId(0),
            },
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut h = BinaryHeap::new();
        h.push(ev(30, 0));
        h.push(ev(10, 1));
        h.push(ev(20, 2));
        assert_eq!(h.pop().unwrap().at, 10);
        assert_eq!(h.pop().unwrap().at, 20);
        assert_eq!(h.pop().unwrap().at, 30);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut h = BinaryHeap::new();
        h.push(ev(10, 5));
        h.push(ev(10, 2));
        h.push(ev(10, 9));
        assert_eq!(h.pop().unwrap().seq, 2);
        assert_eq!(h.pop().unwrap().seq, 5);
        assert_eq!(h.pop().unwrap().seq, 9);
    }

    #[test]
    fn event_is_compact() {
        // The point of slab keys: scheduler moves stay cheap. Guard the
        // size so a future field doesn't silently fatten every event.
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }
}
