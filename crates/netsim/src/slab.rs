//! Slab storage for in-flight packets and armed timers.
//!
//! Events used to carry their ~100-byte [`Packet`] inline, so every heap
//! sift moved the whole thing; and cancelled timers accumulated forever
//! in a `HashSet<u64>`. Both are replaced by slabs with free lists:
//!
//! * `PacketSlab` parks a packet once at send time and hands the event
//!   a 4-byte [`PacketKey`]. Steady-state traffic recycles slots, so
//!   sends stop hitting the allocator.
//! * `TimerSlab` gives each armed timer a generation-checked slot.
//!   Cancelling (or firing) frees the slot immediately and bumps its
//!   generation, so the stale wheel event turns into a cheap no-op when
//!   it pops — nothing is ever remembered about dead timers.

use crate::packet::{AgentId, Packet};

/// Key of a packet parked in the simulator's `PacketSlab`.
///
/// Only valid inside the simulator that issued it; each key is consumed
/// exactly once (delivery, drop, or loss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketKey(pub(crate) u32);

struct PacketSlot {
    pkt: Option<Packet>,
    /// Destination agent resolved once at send time.
    dst_agent: Option<AgentId>,
}

/// Owns every packet currently in flight (queued, serializing,
/// propagating, or awaiting delivery).
#[derive(Default)]
pub(crate) struct PacketSlab {
    slots: Vec<PacketSlot>,
    free: Vec<u32>,
}

impl PacketSlab {
    /// Parks a packet, returning its key. `dst_agent` is the delivery
    /// target resolved at send time (re-resolved at arrival only if the
    /// agent did not exist yet).
    pub(crate) fn insert(&mut self, pkt: Packet, dst_agent: Option<AgentId>) -> PacketKey {
        match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                debug_assert!(slot.pkt.is_none(), "free list slot occupied");
                slot.pkt = Some(pkt);
                slot.dst_agent = dst_agent;
                PacketKey(i)
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(PacketSlot {
                    pkt: Some(pkt),
                    dst_agent,
                });
                PacketKey(i)
            }
        }
    }

    /// The packet behind `key`.
    pub(crate) fn get(&self, key: PacketKey) -> &Packet {
        self.slots[key.0 as usize]
            .pkt
            .as_ref()
            .expect("packet key used after free")
    }

    /// The send-time-resolved destination agent.
    pub(crate) fn dst_agent(&self, key: PacketKey) -> Option<AgentId> {
        self.slots[key.0 as usize].dst_agent
    }

    /// Removes the packet, freeing the slot for reuse.
    pub(crate) fn take(&mut self, key: PacketKey) -> Packet {
        let slot = &mut self.slots[key.0 as usize];
        let pkt = slot.pkt.take().expect("packet key used after free");
        slot.dst_agent = None;
        self.free.push(key.0);
        pkt
    }

    /// Total slots ever allocated (bounded by peak in-flight packets).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Currently occupied slots.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// Key of an armed timer: slot index in the low 32 bits, slot generation
/// in the high 32. A key is live only while the generations match, so a
/// fire-after-cancel (or cancel-after-fire) is detected in O(1) with no
/// auxiliary set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerKey(pub(crate) u64);

impl TimerKey {
    #[inline]
    fn parts(self) -> (u32, u32) {
        ((self.0 & 0xFFFF_FFFF) as u32, (self.0 >> 32) as u32)
    }
}

struct TimerSlot {
    gen: u32,
    armed: bool,
    agent: AgentId,
    token: u64,
}

/// Slab of armed timers. Memory is bounded by the peak number of
/// *concurrently armed* timers — cancelled and fired slots are recycled
/// immediately (this replaces the old ever-growing `cancelled_timers`
/// set).
#[derive(Default)]
pub(crate) struct TimerSlab {
    slots: Vec<TimerSlot>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Arms a timer for `agent` carrying `token`.
    pub(crate) fn insert(&mut self, agent: AgentId, token: u64) -> TimerKey {
        let idx = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                debug_assert!(!slot.armed, "free list slot armed");
                slot.armed = true;
                slot.agent = agent;
                slot.token = token;
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(TimerSlot {
                    gen: 0,
                    armed: true,
                    agent,
                    token,
                });
                i
            }
        };
        let gen = self.slots[idx as usize].gen;
        TimerKey(u64::from(idx) | (u64::from(gen) << 32))
    }

    /// Fires the timer if it is still armed under this key's generation,
    /// returning its target; stale keys (cancelled timers) return `None`.
    /// Either way the slot ends up free.
    pub(crate) fn fire(&mut self, key: TimerKey) -> Option<(AgentId, u64)> {
        let (idx, gen) = key.parts();
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.gen != gen || !slot.armed {
            return None; // cancelled; its slot was already recycled
        }
        let out = (slot.agent, slot.token);
        slot.armed = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        Some(out)
    }

    /// Cancels an armed timer; stale or already-fired keys are a no-op.
    /// The scheduled wheel event becomes a ghost that [`Self::fire`]
    /// ignores when it pops.
    pub(crate) fn cancel(&mut self, key: TimerKey) {
        let (idx, gen) = key.parts();
        let Some(slot) = self.slots.get_mut(idx as usize) else {
            return;
        };
        if slot.gen == gen && slot.armed {
            slot.armed = false;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(idx);
        }
    }

    /// Total slots ever allocated (bounded by peak concurrently armed).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{payload, Addr, FlowId, NodeId};

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            src: Addr::new(NodeId(0), 1),
            dst: Addr::new(NodeId(1), 2),
            size: 100,
            flow: FlowId(1),
            sent_at: 0,
            payload: payload(id),
        }
    }

    #[test]
    fn packet_slots_recycle() {
        let mut s = PacketSlab::default();
        let a = s.insert(pkt(1), Some(AgentId(0)));
        let b = s.insert(pkt(2), None);
        assert_eq!(s.get(a).id, 1);
        assert_eq!(s.dst_agent(a), Some(AgentId(0)));
        assert_eq!(s.take(a).id, 1);
        let c = s.insert(pkt(3), None);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(s.get(c).id, 3, "reused slot holds the new packet");
        assert_eq!(s.dst_agent(c), None, "stale dst_agent cleared");
        assert_eq!(s.get(b).id, 2);
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.live(), 2);
    }

    #[test]
    #[should_panic(expected = "packet key used after free")]
    fn double_take_is_caught() {
        let mut s = PacketSlab::default();
        let k = s.insert(pkt(1), None);
        s.take(k);
        s.take(k);
    }

    #[test]
    fn stale_timer_keys_are_inert() {
        let mut t = TimerSlab::default();
        let k1 = t.insert(AgentId(7), 42);
        t.cancel(k1);
        assert_eq!(t.fire(k1), None, "cancelled timer must not fire");
        // Slot is recycled under a new generation...
        let k2 = t.insert(AgentId(8), 43);
        assert_ne!(k1, k2, "generation distinguishes reuses of a slot");
        // ...and the old key still cannot touch it.
        t.cancel(k1);
        assert_eq!(t.fire(k2), Some((AgentId(8), 43)));
        assert_eq!(t.fire(k2), None, "double fire is inert");
        assert_eq!(t.capacity(), 1, "one slot served every cycle");
    }

    #[test]
    fn timer_slab_stays_bounded_across_cycles() {
        let mut t = TimerSlab::default();
        for i in 0..10_000u64 {
            let a = t.insert(AgentId(0), i);
            let b = t.insert(AgentId(1), i);
            t.cancel(a); // cancelled before firing
            assert!(t.fire(b).is_some());
            assert!(t.fire(a).is_none());
        }
        assert!(
            t.capacity() <= 2,
            "slab grew to {} slots for 2 concurrent timers",
            t.capacity()
        );
    }
}
