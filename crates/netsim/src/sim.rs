//! The simulator: topology construction, event loop, and dispatch.
//!
//! ## Hot-path layout
//!
//! The event loop is built around three structures chosen for per-event
//! cost (see `DESIGN.md` § "Scheduler internals"):
//!
//! * a two-tier [`EventQueue`](crate::sched::EventQueue) (timer wheel +
//!   overflow heap) instead of one big binary heap, wrapped in a
//!   [`ShardEventSource`] whose horizon stays unbounded in serial runs;
//! * a `PacketSlab` that owns every in-flight packet, so events and
//!   link queues move 4-byte keys, not ~100-byte packets;
//! * a `TimerSlab` with generation-checked slots, so cancellation is
//!   O(1) and leaves no residue (the old `cancelled_timers: HashSet`
//!   grew forever);
//! * per-node dense port tables: the destination agent is resolved once
//!   at send time and carried with the packet, instead of a
//!   `HashMap<Addr, AgentId>` probe on every hop.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::agent::{Agent, Ctx, TimerId};
use crate::event::{Event, EventKind};
use crate::link::{Enqueue, LinkSpec, LinkState, LinkStats};
use crate::packet::{Addr, AgentId, FlowId, LinkId, NodeId, Packet, Payload};
use crate::routing::RoutingTable;
use crate::sched::EventSource;
use crate::shard::{boundary_seq, ShardEventSource, WireMsg};
use crate::slab::{PacketKey, PacketSlab, TimerKey, TimerSlab};
use crate::time::{Time, TimeDelta};
use crate::trace::{PacketEvent, PacketEventKind, TraceCollector};

/// Simulation-wide counters, mostly for tests and sanity checks.
///
/// These are *sim-plane* counters: they are functions of the logical
/// event execution only, so they must come out byte-identical across
/// `-j` worker counts and `--shards N` (per shard, the executed event
/// set is fixed by the partition). They feed the counter fingerprint.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimCounters {
    /// Packets injected by agents.
    pub packets_sent: u64,
    /// Packets handed to a destination agent.
    pub packets_delivered: u64,
    /// Packets that arrived at a node with no agent on the destination port.
    pub packets_unroutable: u64,
    /// Total events executed.
    pub events_processed: u64,
    /// Timer events that fired (cancelled ones excluded).
    pub timers_fired: u64,
    /// Timers cancelled by agents before firing.
    pub timers_cancelled: u64,
}

/// Everything the simulator owns except the agent table. Split out so a
/// [`Ctx`] can borrow the world mutably while one agent is being invoked.
pub struct SimCore {
    pub(crate) now: Time,
    queue: ShardEventSource,
    next_seq: u64,
    next_packet_id: u64,
    timers: TimerSlab,
    packets: PacketSlab,
    pub(crate) links: Vec<LinkState>,
    num_nodes: u32,
    routes: RoutingTable,
    routes_dirty: bool,
    /// Per-node port tables, sorted by port for binary search. Indexed by
    /// `NodeId`; replaces the old global `HashMap<Addr, AgentId>`.
    ports: Vec<Vec<(u16, AgentId)>>,
    pub(crate) rng: SmallRng,
    /// Running counters.
    pub counters: SimCounters,
    /// Per-flow accounting and optional packet log.
    pub trace: TraceCollector,
    pub(crate) stopped: bool,
    /// Per-link flag: `true` when the link's far end lives on another
    /// shard, so arrivals must cross via the outbox instead of the local
    /// event queue. All-false in a serial simulation.
    egress: Vec<bool>,
    /// Per-link counter of messages sent across an egress link; feeds
    /// the content-derived boundary sequence numbers.
    egress_seq: Vec<u64>,
    /// Boundary arrivals produced since the last flush.
    outbox: Vec<WireMsg>,
    /// Sim-plane delivery-latency histogram (send to agent hand-off,
    /// in sim nanoseconds). Deterministic: recorded per executed
    /// Deliver event from sim timestamps only.
    pub(crate) delivery_latency: iq_obs::Hist,
    /// Wall-clock phase profiler for this simulator's slice of the run
    /// (engine plane; driven by the shard worker loop, or wrapped
    /// around the serial run loop).
    pub(crate) profiler: iq_obs::PhaseProfiler,
    /// Engine-plane counters maintained by the shard worker loop (all
    /// zero in serial runs).
    pub(crate) shard_stats: crate::shard::ShardStats,
}

impl SimCore {
    fn schedule(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        EventSource::push_event(&mut self.queue, Event { at, seq, kind });
    }

    /// Agent registered at `addr`, via the dense per-node port table.
    fn resolve_port(&self, addr: Addr) -> Option<AgentId> {
        let table = self.ports.get(addr.node.0 as usize)?;
        table
            .binary_search_by_key(&addr.port, |&(p, _)| p)
            .ok()
            .map(|i| table[i].1)
    }

    pub(crate) fn set_timer(&mut self, agent: AgentId, delay: TimeDelta, token: u64) -> TimerId {
        let key = self.timers.insert(agent, token);
        self.schedule(self.now.saturating_add(delay), EventKind::Timer { key });
        TimerId(key.0)
    }

    pub(crate) fn cancel_timer(&mut self, id: TimerId) {
        self.counters.timers_cancelled += 1;
        self.timers.cancel(TimerKey(id.0));
    }

    /// Injects a packet from `src` toward `dst`, routing it over the
    /// topology (or looping back locally when both are on the same node).
    pub(crate) fn send_from(
        &mut self,
        src: Addr,
        dst: Addr,
        size: u32,
        flow: FlowId,
        payload: Payload,
    ) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        self.counters.packets_sent += 1;
        self.trace.record(PacketEvent {
            at: self.now,
            packet_id: id,
            flow,
            size,
            kind: PacketEventKind::Sent,
        });
        // Resolve the destination agent once, here; every hop after this
        // is pure index arithmetic.
        let dst_agent = self.resolve_port(dst);
        let key = self.packets.insert(
            Packet {
                id,
                src,
                dst,
                size,
                flow,
                sent_at: self.now,
                payload,
            },
            dst_agent,
        );
        self.route_packet(src.node, key);
        id
    }

    /// Routes the packet behind `key`, sitting at `node`: local delivery
    /// or next-hop enqueue. Consumes the key on drop/loss paths.
    fn route_packet(&mut self, node: NodeId, key: PacketKey) {
        let (dst, id, flow, size) = {
            let pkt = self.packets.get(key);
            (pkt.dst, pkt.id, pkt.flow, pkt.size)
        };
        if dst.node == node {
            // Send-time resolution, with a lookup fallback so an agent
            // registered while the packet was in flight still receives it
            // (matching the old resolve-at-arrival semantics).
            match self.packets.dst_agent(key).or_else(|| self.resolve_port(dst)) {
                Some(agent) => {
                    self.trace.record(PacketEvent {
                        at: self.now,
                        packet_id: id,
                        flow,
                        size,
                        kind: PacketEventKind::Delivered,
                    });
                    self.schedule(self.now, EventKind::Deliver { agent, packet: key })
                }
                None => {
                    self.counters.packets_unroutable += 1;
                    self.packets.take(key);
                }
            }
            return;
        }
        match self.routes.next_hop(node, dst.node) {
            Some(link_id) => {
                let link = &mut self.links[link_id.0 as usize];
                let outcome = link.enqueue(key, size, &mut self.rng);
                if self.trace.telemetry.is_enabled() {
                    // Fast exit: with the bus detached this block (and its
                    // queue-depth math) costs one branch.
                    let link = &self.links[link_id.0 as usize];
                    let (queued_bytes, queue_len) = (link.queued_bytes(), link.queue_len());
                    self.trace.telemetry.emit_with(self.now, u64::from(flow.0), || {
                        iq_telemetry::TelemetryEvent::QueueDepth {
                            link: u64::from(link_id.0),
                            queued_bytes: u64::from(queued_bytes),
                            queue_len: queue_len as u64,
                            dropped: matches!(outcome, Enqueue::Dropped),
                        }
                    });
                }
                match outcome {
                    Enqueue::StartTx => self.start_next_tx(link_id),
                    Enqueue::Queued => {}
                    Enqueue::Dropped => {
                        self.trace.record(PacketEvent {
                            at: self.now,
                            packet_id: id,
                            flow,
                            size,
                            kind: PacketEventKind::DroppedAtQueue(link_id),
                        });
                        self.packets.take(key);
                    }
                }
            }
            None => {
                self.counters.packets_unroutable += 1;
                self.packets.take(key);
            }
        }
    }

    /// Pops the head of `link`'s queue and schedules its serialization
    /// and far-end arrival, applying the link's loss/jitter model.
    fn start_next_tx(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id.0 as usize];
        let Some(q) = link.begin_tx() else {
            return; // transmitter went idle
        };
        let tx_done = self.now + link.tx_time_cached(q.size);
        let mut arrival = link.arrival_time(tx_done);
        let lost = link.spec.random_loss > 0.0 && self.rng.gen::<f64>() < link.spec.random_loss;
        if link.spec.jitter > 0 {
            arrival += self.rng.gen_range(0..=link.spec.jitter);
        }
        if lost {
            self.links[link_id.0 as usize].stats.random_losses += 1;
            let pkt = self.packets.take(q.key);
            self.trace.record(PacketEvent {
                at: self.now,
                packet_id: pkt.id,
                flow: pkt.flow,
                size: pkt.size,
                kind: PacketEventKind::LostRandom(link_id),
            });
        } else if self.egress[link_id.0 as usize] {
            // The far end lives on another shard: the arrival leaves via
            // the outbox with a content-derived sequence number instead
            // of the local queue (see `crate::shard`).
            let counter = self.egress_seq[link_id.0 as usize];
            self.egress_seq[link_id.0 as usize] = counter + 1;
            let pkt = self.packets.take(q.key);
            self.outbox.push(WireMsg {
                link: link_id,
                at: arrival,
                seq: boundary_seq(link_id, counter),
                pkt,
            });
        } else {
            self.schedule(
                arrival,
                EventKind::LinkArrival {
                    link: link_id,
                    packet: q.key,
                },
            );
        }
        self.schedule(tx_done, EventKind::LinkTxDone { link: link_id });
    }
}

/// A discrete-event network simulation: topology + agents + event loop.
pub struct Simulator {
    core: SimCore,
    /// Agent table; entries are `None` only while the agent is being
    /// invoked (its `Box` is temporarily moved out to satisfy borrowck).
    agents: Vec<Option<Box<dyn Agent>>>,
    agent_addrs: Vec<Addr>,
}

impl Simulator {
    /// Creates an empty simulation with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            core: SimCore {
                now: 0,
                queue: ShardEventSource::new(),
                next_seq: 0,
                next_packet_id: 0,
                timers: TimerSlab::default(),
                packets: PacketSlab::default(),
                links: Vec::new(),
                num_nodes: 0,
                routes: RoutingTable::default(),
                routes_dirty: false,
                ports: Vec::new(),
                rng: SmallRng::seed_from_u64(seed),
                counters: SimCounters::default(),
                trace: TraceCollector::default(),
                stopped: false,
                egress: Vec::new(),
                egress_seq: Vec::new(),
                outbox: Vec::new(),
                delivery_latency: iq_obs::Hist::new(),
                profiler: iq_obs::PhaseProfiler::new(),
                shard_stats: crate::shard::ShardStats::default(),
            },
            agents: Vec::new(),
            agent_addrs: Vec::new(),
        }
    }

    /// Adds a node (host or router) and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.core.num_nodes);
        self.core.num_nodes += 1;
        self.core.ports.push(Vec::new());
        self.core.routes_dirty = true;
        id
    }

    /// Adds a unidirectional link.
    ///
    /// # Panics
    /// Panics if either endpoint was not created with [`Self::add_node`];
    /// a dangling endpoint would otherwise surface later as an opaque
    /// index error inside route computation.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.core.links.len() as u32);
        for end in [from, to] {
            assert!(
                end.0 < self.core.num_nodes,
                "link L{} references unknown node {end} (only {} nodes exist; \
                 create nodes with add_node first)",
                id.0,
                self.core.num_nodes
            );
        }
        self.core.links.push(LinkState::new(spec, from, to));
        self.core.egress.push(false);
        self.core.egress_seq.push(0);
        self.core.routes_dirty = true;
        id
    }

    /// Adds a pair of unidirectional links with identical characteristics.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, spec.clone());
        let ba = self.add_link(b, a, spec);
        (ab, ba)
    }

    /// Registers an agent at `(node, port)` and schedules its start.
    ///
    /// # Panics
    /// Panics if `node` does not exist or the address is already taken.
    pub fn add_agent(&mut self, node: NodeId, port: u16, agent: Box<dyn Agent>) -> AgentId {
        let addr = Addr::new(node, port);
        assert!(
            node.0 < self.core.num_nodes,
            "agent registered at {addr}, but node {node} does not exist \
             (only {} nodes; create it with add_node first)",
            self.core.num_nodes
        );
        let id = AgentId(self.agents.len() as u32);
        let table = &mut self.core.ports[node.0 as usize];
        match table.binary_search_by_key(&port, |&(p, _)| p) {
            Ok(_) => panic!("address {addr} already has an agent"),
            Err(pos) => table.insert(pos, (port, id)),
        }
        self.agents.push(Some(agent));
        self.agent_addrs.push(addr);
        self.core.schedule(self.core.now, EventKind::Start { agent: id });
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Simulation-wide counters.
    pub fn counters(&self) -> SimCounters {
        self.core.counters
    }

    /// Engine-plane scheduler counters (placement/drain behavior).
    pub fn sched_stats(&self) -> crate::sched::SchedStats {
        self.core.queue.stats()
    }

    /// Wall-clock phase breakdown accumulated so far (engine plane).
    pub fn phase_snapshot(&self) -> iq_obs::PhaseSnapshot {
        self.core.profiler.snapshot()
    }

    /// Sim-plane delivery-latency histogram.
    pub fn delivery_latency(&self) -> &iq_obs::Hist {
        &self.core.delivery_latency
    }

    /// Mutable profiler handle for the driving loop (shard worker or a
    /// serial wrapper).
    pub fn profiler(&mut self) -> &mut iq_obs::PhaseProfiler {
        &mut self.core.profiler
    }

    /// Mutable shard-loop counters (maintained by `crate::shard`).
    pub(crate) fn shard_stats_mut(&mut self) -> &mut crate::shard::ShardStats {
        &mut self.core.shard_stats
    }

    /// Shard-loop counter snapshot (engine plane).
    pub(crate) fn shard_stats(&self) -> crate::shard::ShardStats {
        self.core.shard_stats
    }

    /// Reports this simulator's metrics into `reg`, labelled with
    /// `shard`. Sim-plane counters and the delivery-latency histogram
    /// are deterministic; scheduler placement stats, occupancy gauges,
    /// and shard-loop counters go on the engine plane.
    pub fn collect_obs(&self, reg: &mut iq_obs::Registry, shard: &str) {
        use iq_obs::Plane;
        let c = self.core.counters;
        let l = [("shard", shard)];
        reg.counter(Plane::Sim, "iq_sim_events_total", &l, c.events_processed);
        reg.counter(Plane::Sim, "iq_sim_packets_sent_total", &l, c.packets_sent);
        reg.counter(
            Plane::Sim,
            "iq_sim_packets_delivered_total",
            &l,
            c.packets_delivered,
        );
        reg.counter(
            Plane::Sim,
            "iq_sim_packets_unroutable_total",
            &l,
            c.packets_unroutable,
        );
        reg.counter(Plane::Sim, "iq_sim_timers_fired_total", &l, c.timers_fired);
        reg.counter(
            Plane::Sim,
            "iq_sim_timers_cancelled_total",
            &l,
            c.timers_cancelled,
        );
        reg.hist(
            Plane::Sim,
            "iq_sim_delivery_latency_ns",
            &l,
            &self.core.delivery_latency,
        );

        let s = self.core.queue.stats();
        reg.counter(Plane::Engine, "iq_sched_near_hits_total", &l, s.near_hits);
        reg.counter(
            Plane::Engine,
            "iq_sched_near_inserts_total",
            &l,
            s.near_inserts,
        );
        for (level, &n) in s.wheel_pushes.iter().enumerate() {
            let lvl = level.to_string();
            reg.counter(
                Plane::Engine,
                "iq_sched_wheel_pushes_total",
                &[("shard", shard), ("level", &lvl)],
                n,
            );
        }
        reg.counter(Plane::Engine, "iq_sched_far_spills_total", &l, s.far_spills);
        reg.counter(
            Plane::Engine,
            "iq_sched_bucket_drains_total",
            &l,
            s.bucket_drains,
        );
        reg.counter(Plane::Engine, "iq_sched_fast_drains_total", &l, s.fast_drains);
        reg.counter(Plane::Engine, "iq_sched_cascades_total", &l, s.cascades);
        reg.counter(
            Plane::Engine,
            "iq_sched_far_adoptions_total",
            &l,
            s.far_adoptions,
        );
        let (levels, far, near) = self.core.queue.occupancy();
        for (level, &n) in levels.iter().enumerate() {
            let lvl = level.to_string();
            reg.gauge(
                Plane::Engine,
                "iq_sched_wheel_events",
                &[("shard", shard), ("level", &lvl)],
                n as f64,
            );
        }
        reg.gauge(Plane::Engine, "iq_sched_far_events", &l, far as f64);
        reg.gauge(Plane::Engine, "iq_sched_near_events", &l, near as f64);

        let sh = self.core.shard_stats;
        reg.counter(Plane::Engine, "iq_shard_windows_total", &l, sh.windows);
        reg.counter(Plane::Engine, "iq_shard_stalls_total", &l, sh.stalls);
        reg.counter(
            Plane::Engine,
            "iq_shard_ingress_msgs_total",
            &l,
            sh.ingress_msgs,
        );
        reg.counter(Plane::Engine, "iq_shard_steals_total", &l, sh.steals);
        reg.counter(Plane::Engine, "iq_shard_parks_total", &l, sh.parks);
        reg.counter(Plane::Engine, "iq_shard_wakes_total", &l, sh.wakes);
        let phases = self.core.profiler.snapshot();
        for (i, name) in iq_obs::profile::PHASE_NAMES.iter().enumerate() {
            reg.gauge(
                Plane::Engine,
                "iq_shard_phase_seconds",
                &[("shard", shard), ("phase", name)],
                phases.nanos[i] as f64 / 1e9,
            );
        }
    }

    /// Stats for one link.
    ///
    /// # Panics
    /// Panics (naming the link) if `id` was not returned by
    /// [`Self::add_link`] on this simulator.
    pub fn link_stats(&self, id: LinkId) -> LinkStats {
        self.core
            .links
            .get(id.0 as usize)
            .unwrap_or_else(|| {
                panic!(
                    "no such link L{} (only {} links exist)",
                    id.0,
                    self.core.links.len()
                )
            })
            .stats
    }

    /// Ground-truth counters for one flow.
    pub fn flow_stats(&self, flow: FlowId) -> crate::trace::FlowStats {
        self.core.trace.flow(flow)
    }

    /// Enables the bounded packet event log.
    pub fn enable_packet_log(&mut self, capacity: usize) {
        self.core.trace.enable_log(capacity);
    }

    /// The recorded packet events (empty unless enabled).
    pub fn packet_log(&self) -> &[crate::trace::PacketEvent] {
        self.core.trace.log()
    }

    /// Attaches a telemetry sink: packet lifecycle events and queue
    /// depth snapshots are mirrored onto the bus from here on. A
    /// disabled sink detaches.
    pub fn attach_telemetry(&mut self, sink: iq_telemetry::TelemetrySink) {
        self.core.trace.telemetry = sink;
    }

    /// Immutable access to a concrete agent type (post-run inspection).
    ///
    /// Returns `None` when the agent is not of type `T`. Panics (naming
    /// the id) when `id` was never returned by [`Self::add_agent`], which
    /// indicates a handle from a different simulator instance.
    pub fn agent<T: Agent>(&self, id: AgentId) -> Option<&T> {
        let slot = self.agents.get(id.0 as usize).unwrap_or_else(|| {
            panic!(
                "no such agent A{} (only {} agents registered)",
                id.0,
                self.agents.len()
            )
        });
        let boxed = slot.as_ref()?;
        (boxed.as_ref() as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable access to a concrete agent type.
    ///
    /// Same lookup contract as [`Self::agent`].
    pub fn agent_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        let len = self.agents.len();
        let slot = self.agents.get_mut(id.0 as usize).unwrap_or_else(|| {
            panic!("no such agent A{} (only {len} agents registered)", id.0)
        });
        let boxed = slot.as_mut()?;
        (boxed.as_mut() as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    fn ensure_routes(&mut self) {
        if self.core.routes_dirty {
            let endpoints: Vec<_> = self.core.links.iter().map(|l| (l.from, l.to)).collect();
            self.core.routes = RoutingTable::compute(self.core.num_nodes as usize, &endpoints);
            self.core.routes_dirty = false;
        }
    }

    fn dispatch(&mut self, agent: AgentId, f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>)) {
        // Split borrow: the agent box and `self.core` are disjoint
        // fields, and a handler only sees `Ctx` (built from `core`), so
        // it can never reach its own slot. A `None` slot means the agent
        // was removed.
        let Some(boxed) = &mut self.agents[agent.0 as usize] else {
            return;
        };
        let mut ctx = Ctx {
            core: &mut self.core,
            addr: self.agent_addrs[agent.0 as usize],
            agent,
        };
        f(boxed.as_mut(), &mut ctx);
    }

    /// Executes a single event. Returns `false` when the queue is empty.
    fn step(&mut self) -> bool {
        match EventSource::next_event(&mut self.core.queue) {
            Some(ev) => {
                self.exec_event(ev);
                true
            }
            None => false,
        }
    }

    /// Advances the clock to `ev.at` and runs its handler.
    fn exec_event(&mut self, ev: Event) {
        debug_assert!(ev.at >= self.core.now, "time went backwards");
        self.core.now = ev.at;
        self.core.counters.events_processed += 1;
        match ev.kind {
            EventKind::Start { agent } => {
                self.dispatch(agent, |a, ctx| a.on_start(ctx));
            }
            EventKind::Deliver { agent, packet } => {
                self.core.counters.packets_delivered += 1;
                let pkt = self.core.packets.take(packet);
                iq_obs::hist_record!(
                    self.core.delivery_latency,
                    self.core.now.saturating_sub(pkt.sent_at)
                );
                self.dispatch(agent, |a, ctx| a.on_packet(ctx, pkt));
            }
            EventKind::Timer { key } => {
                // Ghost events from cancelled timers resolve to None.
                if let Some((agent, token)) = self.core.timers.fire(key) {
                    self.core.counters.timers_fired += 1;
                    self.dispatch(agent, |a, ctx| a.on_timer(ctx, token));
                }
            }
            EventKind::LinkTxDone { link } => {
                self.core.start_next_tx(link);
            }
            EventKind::LinkArrival { link, packet } => {
                let node = self.core.links[link.0 as usize].to;
                self.core.route_packet(node, packet);
            }
        }
    }

    /// Runs until the event queue drains, `deadline` passes, or an agent
    /// stops the simulation. Returns the time the loop stopped at.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        self.ensure_routes();
        self.core.stopped = false;
        while !self.core.stopped {
            match EventSource::next_event_before(&mut self.core.queue, deadline) {
                Some(ev) => self.exec_event(ev),
                None => break,
            }
        }
        if !self.core.stopped {
            // All remaining events lie beyond the deadline, so the clock
            // can jump straight to it.
            self.core.now = self.core.now.max(deadline);
        }
        self.core.now
    }

    /// Runs for an additional `delta` of simulated time.
    pub fn run_for(&mut self, delta: TimeDelta) -> Time {
        let deadline = self.core.now.saturating_add(delta);
        self.run_until(deadline)
    }

    /// Runs until the event queue is exhausted or an agent stops the
    /// simulation (useful for closed workloads that terminate).
    pub fn run_to_completion(&mut self) -> Time {
        self.ensure_routes();
        self.core.stopped = false;
        while !self.core.stopped && self.step() {}
        self.core.now
    }

    // ---- shard-engine hooks (see `crate::shard`) -----------------------

    /// Marks `link` as crossing out of this shard: its arrivals go to
    /// the outbox instead of the local event queue.
    pub(crate) fn mark_egress(&mut self, link: LinkId) {
        self.core.egress[link.0 as usize] = true;
    }

    /// Offsets this shard's packet-id space so ids stay globally unique
    /// across shards (ids surface in traces and telemetry).
    pub(crate) fn set_packet_id_base(&mut self, base: u64) {
        debug_assert_eq!(self.core.next_packet_id, 0);
        self.core.next_packet_id = base;
    }

    /// The sending endpoint of `link` (shards mirror the full topology,
    /// so any shard can answer this).
    pub(crate) fn link_from(&self, link: LinkId) -> NodeId {
        self.core.links[link.0 as usize].from
    }

    /// Accepts a boundary arrival from another shard: the packet enters
    /// this shard's slab and its `LinkArrival` is queued under the
    /// message's content-derived sequence number (never touching
    /// `next_seq`, so local sequencing stays independent of drain
    /// timing).
    pub(crate) fn inject_arrival(&mut self, msg: WireMsg) {
        let dst_agent = self.core.resolve_port(msg.pkt.dst);
        let key = self.core.packets.insert(msg.pkt, dst_agent);
        EventSource::push_event(
            &mut self.core.queue,
            Event {
                at: msg.at,
                seq: msg.seq,
                kind: EventKind::LinkArrival {
                    link: msg.link,
                    packet: key,
                },
            },
        );
    }

    /// Executes every pending event with timestamp strictly below
    /// `limit_excl` (one conservative-lookahead window). The horizon is
    /// enforced at the event source itself.
    pub(crate) fn run_window(&mut self, limit_excl: Time) {
        self.ensure_routes();
        self.core.queue.set_horizon(limit_excl);
        while let Some(ev) = EventSource::next_event(&mut self.core.queue) {
            self.exec_event(ev);
        }
        assert!(
            !self.core.stopped,
            "stop_simulation() is not supported under sharded execution \
             (a shard stopping early would break the lookahead contract)"
        );
        self.core.queue.set_horizon(Time::MAX);
    }

    /// Drains the boundary arrivals produced since the last flush.
    pub(crate) fn flush_outbox(&mut self, mut f: impl FnMut(WireMsg)) {
        for m in self.core.outbox.drain(..) {
            f(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::packet::payload;
    use crate::time::{millis, MILLISECOND};

    /// Sends `count` packets to a destination at start, one per ms.
    struct Blaster {
        dst: Addr,
        count: u32,
        size: u32,
        sent: u32,
    }
    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(0, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent < self.count {
                ctx.send(self.dst, self.size, FlowId(1), payload(self.sent));
                self.sent += 1;
                ctx.set_timer(MILLISECOND, 0);
            }
        }
    }

    /// Records arrival times and payload order.
    #[derive(Default)]
    struct Recorder {
        arrivals: Vec<(Time, u32)>,
    }
    impl Agent for Recorder {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            let v = *pkt.payload_as::<u32>().unwrap();
            self.arrivals.push((ctx.now(), v));
        }
    }

    fn two_node_sim(spec: LinkSpec) -> (Simulator, AgentId, AgentId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, spec);
        let tx = sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                dst: Addr::new(b, 2),
                count: 10,
                size: 1000,
                sent: 0,
            }),
        );
        let rx = sim.add_agent(b, 2, Box::new(Recorder::default()));
        (sim, tx, rx)
    }

    #[test]
    fn packets_arrive_in_order_with_correct_latency() {
        // 8 Mb/s, 5 ms delay: 1000 B takes 1 ms to serialize, arrives 6 ms
        // after send.
        let (mut sim, _tx, rx) = two_node_sim(LinkSpec::new(8e6, millis(5), 100_000));
        sim.run_until(millis(100));
        let rec = sim.agent::<Recorder>(rx).unwrap();
        assert_eq!(rec.arrivals.len(), 10);
        assert_eq!(rec.arrivals[0].0, millis(6));
        // Sent 1 ms apart, serialization is exactly 1 ms: no queueing.
        assert_eq!(rec.arrivals[1].0, millis(7));
        let order: Vec<u32> = rec.arrivals.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn queueing_delay_accumulates_when_oversubscribed() {
        // 4 Mb/s: 1000 B takes 2 ms to serialize but packets arrive every
        // 1 ms, so queueing builds up linearly.
        let (mut sim, _tx, rx) = two_node_sim(LinkSpec::new(4e6, millis(5), 100_000));
        sim.run_until(millis(200));
        let rec = sim.agent::<Recorder>(rx).unwrap();
        assert_eq!(rec.arrivals.len(), 10);
        // Packet i departs the sender at i ms, but serialization slots are
        // back-to-back every 2 ms: arrival_i = (i+1)*2 + 5.
        for (i, &(t, _)) in rec.arrivals.iter().enumerate() {
            assert_eq!(t, millis((i as u64 + 1) * 2 + 5));
        }
    }

    #[test]
    fn drop_tail_loses_excess_packets() {
        // Queue fits only 2 packets; 10 arrive nearly back-to-back.
        let (mut sim, _tx, rx) = two_node_sim(LinkSpec::new(1e6, millis(5), 2000));
        sim.run_until(millis(500));
        let rec = sim.agent::<Recorder>(rx).unwrap();
        assert!(rec.arrivals.len() < 10, "expected drops");
        let stats = sim.link_stats(LinkId(0));
        assert_eq!(
            stats.dropped_packets + rec.arrivals.len() as u64,
            10,
            "dropped + delivered = sent"
        );
    }

    #[test]
    fn random_loss_drops_roughly_the_configured_fraction() {
        let mut sim = Simulator::new(42);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(100e6, millis(1), 1_000_000).with_random_loss(0.3));
        let _tx = sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                dst: Addr::new(b, 2),
                count: 1000,
                size: 100,
                sent: 0,
            }),
        );
        let rx = sim.add_agent(b, 2, Box::new(Recorder::default()));
        sim.run_until(crate::time::secs(5.0));
        let got = sim.agent::<Recorder>(rx).unwrap().arrivals.len();
        assert!((600..=800).contains(&got), "got {got}, expected ~700");
    }

    #[test]
    fn local_delivery_loops_back_without_links() {
        struct SelfSender;
        impl Agent for SelfSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.addr();
                ctx.send(Addr::new(me.node, 99), 10, FlowId::ANON, payload(7u32));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        }
        let mut sim = Simulator::new(0);
        let n = sim.add_node();
        sim.add_agent(n, 1, Box::new(SelfSender));
        let rx = sim.add_agent(n, 99, Box::new(Recorder::default()));
        sim.run_until(millis(1));
        assert_eq!(sim.agent::<Recorder>(rx).unwrap().arrivals.len(), 1);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        struct Canceller {
            fired: u32,
        }
        impl Agent for Canceller {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let t = ctx.set_timer(millis(10), 1);
                ctx.set_timer(millis(20), 2);
                ctx.cancel_timer(t);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                assert_eq!(token, 2, "cancelled timer fired");
                self.fired += 1;
            }
        }
        let mut sim = Simulator::new(0);
        let n = sim.add_node();
        let a = sim.add_agent(n, 1, Box::new(Canceller { fired: 0 }));
        sim.run_until(millis(100));
        assert_eq!(sim.agent::<Canceller>(a).unwrap().fired, 1);
    }

    #[test]
    fn timer_state_stays_bounded_across_set_cancel_fire_cycles() {
        // Regression test for the old `cancelled_timers: HashSet<u64>`
        // leak: ids of cancelled (or never-firing) timers accumulated
        // forever. The slab recycles slots, so memory tracks *concurrent*
        // timers, not total ever armed.
        struct Churner {
            cycles: u32,
            pending: Option<TimerId>,
        }
        impl Agent for Churner {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(MILLISECOND, 0);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                if token == 0 && self.cycles > 0 {
                    self.cycles -= 1;
                    // One timer that fires, one that is always cancelled.
                    if let Some(t) = self.pending.take() {
                        ctx.cancel_timer(t);
                    }
                    self.pending = Some(ctx.set_timer(millis(500), 1));
                    ctx.set_timer(MILLISECOND, 0);
                }
            }
        }
        let mut sim = Simulator::new(0);
        let n = sim.add_node();
        sim.add_agent(
            n,
            1,
            Box::new(Churner {
                cycles: 5_000,
                pending: None,
            }),
        );
        sim.run_to_completion();
        assert!(
            sim.core.timers.capacity() <= 4,
            "timer slab grew to {} slots over 10k set/cancel/fire cycles",
            sim.core.timers.capacity()
        );
    }

    #[test]
    fn packet_slab_recycles_and_ids_stay_unique() {
        // 50 sequential packets through a 2-node link: the slab should
        // reuse a handful of slots while packet ids keep incrementing.
        let mut sim = Simulator::new(3);
        sim.enable_packet_log(10_000);
        let (mut sim, _tx, rx) = {
            let a = sim.add_node();
            let b = sim.add_node();
            sim.add_duplex_link(a, b, LinkSpec::new(8e6, millis(1), 100_000));
            let tx = sim.add_agent(
                a,
                1,
                Box::new(Blaster {
                    dst: Addr::new(b, 2),
                    count: 50,
                    size: 1000,
                    sent: 0,
                }),
            );
            let rx = sim.add_agent(b, 2, Box::new(Recorder::default()));
            (sim, tx, rx)
        };
        sim.run_to_completion();
        assert_eq!(sim.agent::<Recorder>(rx).unwrap().arrivals.len(), 50);
        // Slab bounded by peak in-flight, not total sent.
        assert!(
            sim.core.packets.capacity() < 10,
            "packet slab grew to {} slots for 50 sequential sends",
            sim.core.packets.capacity()
        );
        assert_eq!(sim.core.packets.live(), 0, "all slots released");
        // Ids remain unique across slot reuse, and the packet log saw
        // every send exactly once.
        use crate::trace::PacketEventKind as K;
        let mut sent_ids: Vec<u64> = sim
            .packet_log()
            .iter()
            .filter(|e| matches!(e.kind, K::Sent))
            .map(|e| e.packet_id)
            .collect();
        assert_eq!(sent_ids.len(), 50);
        sent_ids.sort_unstable();
        sent_ids.dedup();
        assert_eq!(sent_ids.len(), 50, "packet ids reused");
    }

    #[test]
    fn delivered_payload_is_shared_not_copied() {
        // The slab parks packets by value; delivery must hand back the
        // same Arc the sender supplied (and clones keep sharing it).
        use std::sync::Arc;

        struct ArcSender {
            dst: Addr,
            sent: Option<Payload>,
        }
        impl Agent for ArcSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let p = Payload::from_arc(Arc::new(String::from("shared")));
                self.sent = Some(p.clone());
                ctx.send(self.dst, 500, FlowId(1), p);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        }
        #[derive(Default)]
        struct Keeper {
            got: Option<Packet>,
        }
        impl Agent for Keeper {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
                let dup = pkt.clone();
                assert!(Payload::ptr_eq(&pkt.payload, &dup.payload));
                self.got = Some(pkt);
            }
        }
        let mut sim = Simulator::new(0);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(8e6, millis(1), 100_000));
        let tx = sim.add_agent(
            a,
            1,
            Box::new(ArcSender {
                dst: Addr::new(b, 2),
                sent: None,
            }),
        );
        let rx = sim.add_agent(b, 2, Box::new(Keeper::default()));
        sim.run_to_completion();
        let sent = sim.agent::<ArcSender>(tx).unwrap().sent.clone().unwrap();
        let got = sim.agent::<Keeper>(rx).unwrap().got.as_ref().unwrap();
        assert!(
            Payload::ptr_eq(&sent, &got.payload),
            "payload was copied somewhere between send and delivery"
        );
        assert_eq!(got.payload_as::<String>().unwrap(), "shared");
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node();
            let b = sim.add_node();
            sim.add_duplex_link(
                a,
                b,
                LinkSpec::new(10e6, millis(3), 20_000).with_random_loss(0.1),
            );
            sim.add_agent(
                a,
                1,
                Box::new(Blaster {
                    dst: Addr::new(b, 2),
                    count: 200,
                    size: 500,
                    sent: 0,
                }),
            );
            let rx = sim.add_agent(b, 2, Box::new(Recorder::default()));
            sim.run_until(crate::time::secs(2.0));
            sim.agent::<Recorder>(rx).unwrap().arrivals.clone()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn run_for_advances_clock_even_when_idle() {
        let mut sim = Simulator::new(0);
        sim.add_node();
        sim.run_for(millis(50));
        assert_eq!(sim.now(), millis(50));
    }

    #[test]
    #[should_panic(expected = "already has an agent")]
    fn duplicate_address_panics() {
        let mut sim = Simulator::new(0);
        let n = sim.add_node();
        sim.add_agent(n, 1, Box::new(Recorder::default()));
        sim.add_agent(n, 1, Box::new(Recorder::default()));
    }

    #[test]
    fn multi_hop_chain_forwards_with_summed_latency() {
        // a - r1 - r2 - b : three store-and-forward hops.
        let mut sim = Simulator::new(2);
        let a = sim.add_node();
        let r1 = sim.add_node();
        let r2 = sim.add_node();
        let b = sim.add_node();
        for (x, y) in [(a, r1), (r1, r2), (r2, b)] {
            sim.add_duplex_link(x, y, LinkSpec::new(8e6, millis(4), 64_000));
        }
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                dst: Addr::new(b, 2),
                count: 3,
                size: 1000,
                sent: 0,
            }),
        );
        let rx = sim.add_agent(b, 2, Box::new(Recorder::default()));
        sim.run_until(crate::time::secs(1.0));
        let rec = sim.agent::<Recorder>(rx).unwrap();
        assert_eq!(rec.arrivals.len(), 3);
        // Each hop: 1 ms serialization + 4 ms propagation = 5 ms; three
        // hops = 15 ms for the first packet.
        assert_eq!(rec.arrivals[0].0, millis(15));
    }

    #[test]
    fn flow_stats_and_packet_log_track_ground_truth() {
        let mut sim = Simulator::new(8);
        sim.enable_packet_log(10_000);
        let a = sim.add_node();
        let b = sim.add_node();
        // Tight queue: some drops guaranteed.
        sim.add_duplex_link(a, b, LinkSpec::new(1e6, millis(2), 2500));
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                dst: Addr::new(b, 2),
                count: 50,
                size: 1000,
                sent: 0,
            }),
        );
        let rx = sim.add_agent(b, 2, Box::new(Recorder::default()));
        sim.run_until(crate::time::secs(5.0));
        let fs = sim.flow_stats(FlowId(1));
        let delivered = sim.agent::<Recorder>(rx).unwrap().arrivals.len() as u64;
        assert_eq!(fs.sent_packets, 50);
        assert_eq!(fs.delivered_packets, delivered);
        assert_eq!(fs.delivered_packets + fs.dropped_packets, 50);
        assert!(fs.loss_ratio() > 0.0);
        // The log saw every event class.
        use crate::trace::PacketEventKind as K;
        let log = sim.packet_log();
        assert!(log.iter().any(|e| matches!(e.kind, K::Sent)));
        assert!(log.iter().any(|e| matches!(e.kind, K::Delivered)));
        assert!(log.iter().any(|e| matches!(e.kind, K::DroppedAtQueue(_))));
        // Sent events equal the counter.
        let sent = log.iter().filter(|e| matches!(e.kind, K::Sent)).count() as u64;
        assert_eq!(sent, 50);
    }

    #[test]
    fn unroutable_packets_are_counted() {
        struct SendToNowhere;
        impl Agent for SendToNowhere {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.addr();
                // Port with no listener.
                ctx.send(Addr::new(me.node, 77), 10, FlowId::ANON, payload(()));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        }
        let mut sim = Simulator::new(0);
        let n = sim.add_node();
        sim.add_agent(n, 1, Box::new(SendToNowhere));
        sim.run_until(millis(1));
        assert_eq!(sim.counters().packets_unroutable, 1);
        assert_eq!(sim.core.packets.live(), 0, "unroutable packet leaked");
    }

    #[test]
    #[should_panic(expected = "link L0 references unknown node n7")]
    fn link_to_unknown_node_names_the_offender() {
        let mut sim = Simulator::new(0);
        let a = sim.add_node();
        sim.add_link(a, crate::packet::NodeId(7), LinkSpec::new(1e6, 0, 1000));
    }

    #[test]
    #[should_panic(expected = "node n3 does not exist")]
    fn agent_on_unknown_node_names_the_offender() {
        let mut sim = Simulator::new(0);
        sim.add_node();
        sim.add_agent(crate::packet::NodeId(3), 1, Box::new(SinkOnly));
    }

    #[test]
    #[should_panic(expected = "no such link L9")]
    fn link_stats_for_unknown_link_names_the_offender() {
        let sim = Simulator::new(0);
        sim.link_stats(LinkId(9));
    }

    #[test]
    #[should_panic(expected = "no such agent A5")]
    fn agent_lookup_with_foreign_handle_names_the_offender() {
        let sim = Simulator::new(0);
        sim.agent::<Recorder>(crate::packet::AgentId(5));
    }

    struct SinkOnly;
    impl Agent for SinkOnly {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
    }
}
