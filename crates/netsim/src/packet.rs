//! Packets and addressing.
//!
//! A [`Packet`] is the unit of transfer across links. The simulator never
//! serializes protocol headers to bytes: the wire footprint is modelled by
//! an explicit [`Packet::size`] while the semantic content travels as a
//! shared, dynamically-typed [`Payload`]. Protocol crates downcast the
//! payload to their own segment types on receipt.

use std::any::{Any, TypeId};
use std::fmt;
use std::sync::Arc;

use crate::time::Time;

/// Identifies a node (host or router) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifies an agent registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub u32);

/// A transport-level address: a node plus a local port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Node this address lives on.
    pub node: NodeId,
    /// Local port distinguishing agents on the same node.
    pub port: u16,
}

impl Addr {
    /// Creates an address from its parts.
    pub const fn new(node: NodeId, port: u16) -> Self {
        Self { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.node.0, self.port)
    }
}

/// Distinguishes traffic belonging to different flows for per-flow
/// accounting in link traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Catch-all flow for traffic that does not care about accounting.
    pub const ANON: FlowId = FlowId(u32::MAX);
}

/// Upper bound on values stored inline in a [`Payload`].
const INLINE_BYTES: usize = 16;

/// Size in `u64` words of a pooled payload buffer: fits the largest
/// protocol segment wrapper (`RudpPacket` with a full inline SACK block
/// is 192 bytes).
const POOL_WORDS: usize = 24;

/// Pooled buffers retained per thread; beyond this, freed buffers go
/// back to the allocator. Sized well above the peak in-flight packet
/// count of the experiment topologies.
const POOL_MAX: usize = 8192;

std::thread_local! {
    /// Free list of pooled payload buffers. Payload drops push here and
    /// sends pop, so steady-state segment traffic recycles a bounded set
    /// of buffers instead of hitting the allocator per packet. The
    /// element boxing is the point: entries keep their heap identity so
    /// recycling never reallocates.
    #[allow(clippy::vec_box)]
    static PAYLOAD_POOL: std::cell::RefCell<Vec<Box<[u64; POOL_WORDS]>>> =
        const { std::cell::RefCell::new(Vec::new()) };

    /// Engine-plane pool counters for the current thread. The pool is
    /// shared by every simulation a worker thread runs, so these are
    /// per-thread lifetime totals; callers interested in one scenario
    /// take a delta around the run (`pool_stats` before and after).
    static POOL_STATS: std::cell::Cell<PoolStats> = const { std::cell::Cell::new(PoolStats::zero()) };
}

/// Hit/miss/recycle counters for the current thread's payload pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `pool_get` served from the free list.
    pub hits: u64,
    /// `pool_get` fell through to the allocator.
    pub misses: u64,
    /// Buffers returned to the free list on drop.
    pub returns: u64,
    /// Buffers dropped because the free list was at capacity.
    pub drops: u64,
}

impl PoolStats {
    const fn zero() -> Self {
        PoolStats {
            hits: 0,
            misses: 0,
            returns: 0,
            drops: 0,
        }
    }

    /// Counters accumulated since `earlier` (for per-scenario deltas).
    pub fn since(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            returns: self.returns - earlier.returns,
            drops: self.drops - earlier.drops,
        }
    }
}

/// This thread's payload-pool counters so far.
pub fn pool_stats() -> PoolStats {
    POOL_STATS.with(|s| s.get())
}

#[inline]
fn pool_count(f: impl FnOnce(&mut PoolStats)) {
    if iq_obs::ENABLED {
        POOL_STATS.with(|s| {
            let mut v = s.get();
            f(&mut v);
            s.set(v);
        });
    }
}

/// A pooled buffer: fresh from the free list, or newly allocated
/// (zeroing is unnecessary — the caller overwrites the value bytes and
/// only those are ever read back).
fn pool_get() -> Box<[u64; POOL_WORDS]> {
    match PAYLOAD_POOL.with(|p| p.borrow_mut().pop()) {
        Some(buf) => {
            pool_count(|s| s.hits += 1);
            buf
        }
        None => {
            pool_count(|s| s.misses += 1);
            Box::new([0u64; POOL_WORDS])
        }
    }
}

/// Returns a buffer to the thread's free list (or drops it when full).
fn pool_put(buf: Box<[u64; POOL_WORDS]>) {
    PAYLOAD_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_MAX {
            pool_count(|s| s.returns += 1);
            p.push(buf);
        } else {
            pool_count(|s| s.drops += 1);
        }
    });
}

/// Dynamically-typed packet content.
///
/// Three storage tiers, picked at construction by compile-time type
/// properties:
///
/// * **inline** — plain-data values of at most `INLINE_BYTES` bytes
///   (e.g. a datagram sequence number) live in the `Payload` itself;
/// * **pooled** — larger destructor-free plain data up to
///   `8 * POOL_WORDS` bytes (transport segments: `RudpPacket`,
///   `TcpPacket`) lives in a fixed-size buffer drawn from a per-thread
///   free list and returned to it on drop, so steady-state segment
///   traffic never touches the allocator;
/// * **shared** — everything else goes behind an `Arc`, so a packet can
///   be duplicated (e.g. by a lossy-duplication link model) without
///   copying the content.
pub struct Payload(Repr);

enum Repr {
    /// Type-tagged raw bytes of a small destructor-free value.
    Inline {
        type_id: TypeId,
        data: [u64; INLINE_BYTES / 8],
    },
    /// Type-tagged raw bytes of a mid-size destructor-free value in a
    /// recycled buffer. `ManuallyDrop` so `Payload::drop` can reclaim
    /// the box for the pool instead of freeing it.
    Pooled {
        type_id: TypeId,
        buf: std::mem::ManuallyDrop<Box<[u64; POOL_WORDS]>>,
    },
    /// Shared heap content.
    Shared(Arc<dyn Any + Send + Sync>),
}

impl Drop for Payload {
    fn drop(&mut self) {
        if let Repr::Pooled { buf, .. } = &mut self.0 {
            // SAFETY: `drop` runs at most once, and no other path takes
            // the box out of a live `Pooled` payload.
            pool_put(unsafe { std::mem::ManuallyDrop::take(buf) });
        }
    }
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload(match &self.0 {
            Repr::Inline { type_id, data } => Repr::Inline {
                type_id: *type_id,
                data: *data,
            },
            Repr::Pooled { type_id, buf } => {
                let mut copy = pool_get();
                *copy = ***buf;
                Repr::Pooled {
                    type_id: *type_id,
                    buf: std::mem::ManuallyDrop::new(copy),
                }
            }
            Repr::Shared(arc) => Repr::Shared(Arc::clone(arc)),
        })
    }
}

impl Payload {
    /// Wraps an existing shared value without re-boxing it.
    pub fn from_arc(value: Arc<dyn Any + Send + Sync>) -> Self {
        Payload(Repr::Shared(value))
    }

    /// Attempts to view the content as a `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match &self.0 {
            Repr::Inline { type_id, data } => {
                if *type_id == TypeId::of::<T>() {
                    // SAFETY: the type id matches the `T` this payload was
                    // built from, so `data` holds a valid `T` (size and
                    // alignment were checked at construction).
                    Some(unsafe { &*data.as_ptr().cast::<T>() })
                } else {
                    None
                }
            }
            Repr::Pooled { type_id, buf } => {
                if *type_id == TypeId::of::<T>() {
                    // SAFETY: as above — the buffer was filled with a `T`
                    // whose size, alignment, and drop-freeness were
                    // checked at construction.
                    Some(unsafe { &*buf.as_ptr().cast::<T>() })
                } else {
                    None
                }
            }
            Repr::Shared(arc) => arc.downcast_ref::<T>(),
        }
    }

    /// Whether two payloads share the same heap allocation. Inline
    /// payloads are value copies and never "shared".
    pub fn ptr_eq(a: &Payload, b: &Payload) -> bool {
        match (&a.0, &b.0) {
            (Repr::Shared(x), Repr::Shared(y)) => Arc::ptr_eq(x, y),
            _ => false,
        }
    }
}

impl From<Arc<dyn Any + Send + Sync>> for Payload {
    fn from(value: Arc<dyn Any + Send + Sync>) -> Self {
        Payload::from_arc(value)
    }
}

/// Builds a payload from any sendable value, storing it inline or in a
/// pooled buffer when it is plain data (see [`Payload`]).
pub fn payload<T: Any + Send + Sync>(value: T) -> Payload {
    // All conditions are compile-time constants per `T`, so each
    // instantiation collapses to a single storage path.
    let plain = std::mem::align_of::<T>() <= std::mem::align_of::<u64>()
        && !std::mem::needs_drop::<T>();
    if plain && std::mem::size_of::<T>() <= INLINE_BYTES {
        let mut data = [0u64; INLINE_BYTES / 8];
        // SAFETY: `T` fits in `data`, requires at most `u64` alignment,
        // and has no drop glue; the original is forgotten after the byte
        // copy, so the value is moved, not duplicated.
        unsafe {
            std::ptr::copy_nonoverlapping(
                (&value as *const T).cast::<u8>(),
                data.as_mut_ptr().cast::<u8>(),
                std::mem::size_of::<T>(),
            );
        }
        std::mem::forget(value);
        Payload(Repr::Inline {
            type_id: TypeId::of::<T>(),
            data,
        })
    } else if plain && std::mem::size_of::<T>() <= 8 * POOL_WORDS {
        let mut buf = pool_get();
        // SAFETY: same argument as the inline arm, against the pooled
        // buffer (whose size and `u64` alignment were just checked).
        unsafe {
            std::ptr::copy_nonoverlapping(
                (&value as *const T).cast::<u8>(),
                buf.as_mut_ptr().cast::<u8>(),
                std::mem::size_of::<T>(),
            );
        }
        std::mem::forget(value);
        Payload(Repr::Pooled {
            type_id: TypeId::of::<T>(),
            buf: std::mem::ManuallyDrop::new(buf),
        })
    } else {
        Payload(Repr::Shared(Arc::new(value)))
    }
}

/// A packet in flight.
#[derive(Clone)]
pub struct Packet {
    /// Unique id assigned at send time; stable across hops.
    pub id: u64,
    /// Sender address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Wire size in bytes, including all modelled headers. This is what
    /// occupies queue space and serialization time.
    pub size: u32,
    /// Flow this packet is accounted to.
    pub flow: FlowId,
    /// Simulation time at which the original sender emitted the packet.
    pub sent_at: Time,
    /// Semantic content (protocol segment, app frame, ...).
    pub payload: Payload,
}

impl Packet {
    /// Attempts to view the payload as a `T`.
    pub fn payload_as<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("id", &self.id)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("size", &self.size)
            .field("flow", &self.flow)
            .field("sent_at", &self.sent_at)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_downcast_works() {
        let p = Packet {
            id: 1,
            src: Addr::new(NodeId(0), 1),
            dst: Addr::new(NodeId(1), 2),
            size: 100,
            flow: FlowId(7),
            sent_at: 0,
            payload: payload(42u64),
        };
        assert_eq!(p.payload_as::<u64>(), Some(&42));
        assert_eq!(p.payload_as::<u32>(), None);
    }

    #[test]
    fn small_plain_values_are_stored_inline() {
        #[derive(Debug, PartialEq)]
        struct Dg {
            seq: u64,
            tag: u32,
        }
        let p = payload(Dg { seq: 9, tag: 3 });
        assert!(matches!(p.0, Repr::Inline { .. }));
        assert_eq!(p.downcast_ref::<Dg>(), Some(&Dg { seq: 9, tag: 3 }));
        assert_eq!(p.downcast_ref::<u64>(), None);
        // Inline payloads are value copies, never aliased.
        let q = p.clone();
        assert!(!Payload::ptr_eq(&p, &q));
    }

    #[test]
    fn droppy_or_large_values_go_to_the_arc_path() {
        // Needs drop glue: must not be inlined or pooled.
        let s = payload(String::from("heap"));
        assert!(matches!(s.0, Repr::Shared(_)));
        assert_eq!(s.downcast_ref::<String>().map(String::as_str), Some("heap"));
        // Too large even for a pooled buffer.
        let big = payload([0u64; POOL_WORDS + 1]);
        assert!(matches!(big.0, Repr::Shared(_)));
        assert!(big.downcast_ref::<[u64; POOL_WORDS + 1]>().is_some());
    }

    #[test]
    fn mid_size_plain_values_use_the_pool() {
        let mk = || {
            let mut v = [0u64; 8]; // 64 bytes: past inline, within pooled
            v[0] = 11;
            v[7] = 77;
            payload(v)
        };
        let p = mk();
        assert!(matches!(p.0, Repr::Pooled { .. }));
        assert_eq!(p.downcast_ref::<[u64; 8]>().unwrap()[7], 77);
        assert_eq!(p.downcast_ref::<u64>(), None);
        // Clones are independent copies, never aliased.
        let q = p.clone();
        assert!(!Payload::ptr_eq(&p, &q));
        assert_eq!(q.downcast_ref::<[u64; 8]>().unwrap()[0], 11);
        // Dropping recycles the buffer: the next pooled payload reuses
        // the same allocation.
        let addr_of = |pl: &Payload| match &pl.0 {
            Repr::Pooled { buf, .. } => buf.as_ptr() as usize,
            _ => unreachable!(),
        };
        let first = addr_of(&q);
        drop(q);
        let r = mk();
        assert_eq!(addr_of(&r), first, "pooled buffer was not recycled");
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr::new(NodeId(3), 9).to_string(), "n3:9");
    }

    #[test]
    fn clone_shares_payload() {
        let p = Packet {
            id: 1,
            src: Addr::new(NodeId(0), 1),
            dst: Addr::new(NodeId(1), 2),
            size: 100,
            flow: FlowId::ANON,
            sent_at: 5,
            payload: payload(String::from("hello")),
        };
        let q = p.clone();
        assert!(Payload::ptr_eq(&p.payload, &q.payload));
        assert_eq!(q.payload_as::<String>().unwrap(), "hello");
    }
}
