//! Packets and addressing.
//!
//! A [`Packet`] is the unit of transfer across links. The simulator never
//! serializes protocol headers to bytes: the wire footprint is modelled by
//! an explicit [`Packet::size`] while the semantic content travels as a
//! shared, dynamically-typed [`Payload`]. Protocol crates downcast the
//! payload to their own segment types on receipt.

use std::any::{Any, TypeId};
use std::fmt;
use std::sync::Arc;

use crate::time::Time;

/// Identifies a node (host or router) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifies an agent registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub u32);

/// A transport-level address: a node plus a local port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Node this address lives on.
    pub node: NodeId,
    /// Local port distinguishing agents on the same node.
    pub port: u16,
}

impl Addr {
    /// Creates an address from its parts.
    pub const fn new(node: NodeId, port: u16) -> Self {
        Self { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.node.0, self.port)
    }
}

/// Distinguishes traffic belonging to different flows for per-flow
/// accounting in link traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Catch-all flow for traffic that does not care about accounting.
    pub const ANON: FlowId = FlowId(u32::MAX);
}

/// Upper bound on values stored inline in a [`Payload`].
const INLINE_BYTES: usize = 16;

/// Dynamically-typed packet content.
///
/// Small plain-data values (at most `INLINE_BYTES` bytes, `u64`-or-less
/// alignment, no destructor — e.g. a datagram sequence number) are stored
/// inline, so steady-state datagram sends never allocate. Everything else
/// is shared behind an `Arc`, so a packet can be duplicated (e.g. by a
/// lossy-duplication link model) without copying the content.
pub struct Payload(Repr);

#[derive(Clone)]
enum Repr {
    /// Type-tagged raw bytes of a destructor-free value.
    Inline {
        type_id: TypeId,
        data: [u64; INLINE_BYTES / 8],
    },
    /// Shared heap content.
    Shared(Arc<dyn Any + Send + Sync>),
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload(self.0.clone())
    }
}

impl Payload {
    /// Wraps an existing shared value without re-boxing it.
    pub fn from_arc(value: Arc<dyn Any + Send + Sync>) -> Self {
        Payload(Repr::Shared(value))
    }

    /// Attempts to view the content as a `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match &self.0 {
            Repr::Inline { type_id, data } => {
                if *type_id == TypeId::of::<T>() {
                    // SAFETY: the type id matches the `T` this payload was
                    // built from, so `data` holds a valid `T` (size and
                    // alignment were checked at construction).
                    Some(unsafe { &*data.as_ptr().cast::<T>() })
                } else {
                    None
                }
            }
            Repr::Shared(arc) => arc.downcast_ref::<T>(),
        }
    }

    /// Whether two payloads share the same heap allocation. Inline
    /// payloads are value copies and never "shared".
    pub fn ptr_eq(a: &Payload, b: &Payload) -> bool {
        match (&a.0, &b.0) {
            (Repr::Shared(x), Repr::Shared(y)) => Arc::ptr_eq(x, y),
            _ => false,
        }
    }
}

impl From<Arc<dyn Any + Send + Sync>> for Payload {
    fn from(value: Arc<dyn Any + Send + Sync>) -> Self {
        Payload::from_arc(value)
    }
}

/// Builds a payload from any sendable value, storing it inline when it is
/// small plain data (see [`Payload`]).
pub fn payload<T: Any + Send + Sync>(value: T) -> Payload {
    // All three conditions are compile-time constants per `T`, so each
    // instantiation collapses to a single branch-free path.
    if std::mem::size_of::<T>() <= INLINE_BYTES
        && std::mem::align_of::<T>() <= std::mem::align_of::<u64>()
        && !std::mem::needs_drop::<T>()
    {
        let mut data = [0u64; INLINE_BYTES / 8];
        // SAFETY: `T` fits in `data`, requires at most `u64` alignment,
        // and has no drop glue; the original is forgotten after the byte
        // copy, so the value is moved, not duplicated.
        unsafe {
            std::ptr::copy_nonoverlapping(
                (&value as *const T).cast::<u8>(),
                data.as_mut_ptr().cast::<u8>(),
                std::mem::size_of::<T>(),
            );
        }
        std::mem::forget(value);
        Payload(Repr::Inline {
            type_id: TypeId::of::<T>(),
            data,
        })
    } else {
        Payload(Repr::Shared(Arc::new(value)))
    }
}

/// A packet in flight.
#[derive(Clone)]
pub struct Packet {
    /// Unique id assigned at send time; stable across hops.
    pub id: u64,
    /// Sender address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Wire size in bytes, including all modelled headers. This is what
    /// occupies queue space and serialization time.
    pub size: u32,
    /// Flow this packet is accounted to.
    pub flow: FlowId,
    /// Simulation time at which the original sender emitted the packet.
    pub sent_at: Time,
    /// Semantic content (protocol segment, app frame, ...).
    pub payload: Payload,
}

impl Packet {
    /// Attempts to view the payload as a `T`.
    pub fn payload_as<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("id", &self.id)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("size", &self.size)
            .field("flow", &self.flow)
            .field("sent_at", &self.sent_at)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_downcast_works() {
        let p = Packet {
            id: 1,
            src: Addr::new(NodeId(0), 1),
            dst: Addr::new(NodeId(1), 2),
            size: 100,
            flow: FlowId(7),
            sent_at: 0,
            payload: payload(42u64),
        };
        assert_eq!(p.payload_as::<u64>(), Some(&42));
        assert_eq!(p.payload_as::<u32>(), None);
    }

    #[test]
    fn small_plain_values_are_stored_inline() {
        #[derive(Debug, PartialEq)]
        struct Dg {
            seq: u64,
            tag: u32,
        }
        let p = payload(Dg { seq: 9, tag: 3 });
        assert!(matches!(p.0, Repr::Inline { .. }));
        assert_eq!(p.downcast_ref::<Dg>(), Some(&Dg { seq: 9, tag: 3 }));
        assert_eq!(p.downcast_ref::<u64>(), None);
        // Inline payloads are value copies, never aliased.
        let q = p.clone();
        assert!(!Payload::ptr_eq(&p, &q));
    }

    #[test]
    fn droppy_or_large_values_go_to_the_arc_path() {
        // Needs drop glue: must not be inlined.
        let s = payload(String::from("heap"));
        assert!(matches!(s.0, Repr::Shared(_)));
        assert_eq!(s.downcast_ref::<String>().map(String::as_str), Some("heap"));
        // Too large for the inline slot.
        let big = payload([0u64; 4]);
        assert!(matches!(big.0, Repr::Shared(_)));
        assert!(big.downcast_ref::<[u64; 4]>().is_some());
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr::new(NodeId(3), 9).to_string(), "n3:9");
    }

    #[test]
    fn clone_shares_payload() {
        let p = Packet {
            id: 1,
            src: Addr::new(NodeId(0), 1),
            dst: Addr::new(NodeId(1), 2),
            size: 100,
            flow: FlowId::ANON,
            sent_at: 5,
            payload: payload(String::from("hello")),
        };
        let q = p.clone();
        assert!(Payload::ptr_eq(&p.payload, &q.payload));
        assert_eq!(q.payload_as::<String>().unwrap(), "hello");
    }
}
