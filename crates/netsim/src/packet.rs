//! Packets and addressing.
//!
//! A [`Packet`] is the unit of transfer across links. The simulator never
//! serializes protocol headers to bytes: the wire footprint is modelled by
//! an explicit [`Packet::size`] while the semantic content travels as a
//! shared, dynamically-typed [`Payload`]. Protocol crates downcast the
//! payload to their own segment types on receipt.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::time::Time;

/// Identifies a node (host or router) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifies an agent registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub u32);

/// A transport-level address: a node plus a local port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Node this address lives on.
    pub node: NodeId,
    /// Local port distinguishing agents on the same node.
    pub port: u16,
}

impl Addr {
    /// Creates an address from its parts.
    pub const fn new(node: NodeId, port: u16) -> Self {
        Self { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.node.0, self.port)
    }
}

/// Distinguishes traffic belonging to different flows for per-flow
/// accounting in link traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Catch-all flow for traffic that does not care about accounting.
    pub const ANON: FlowId = FlowId(u32::MAX);
}

/// Dynamically-typed packet content, shared so that a packet can be
/// duplicated (e.g. by a lossy-duplication link model) without copying.
pub type Payload = Arc<dyn Any + Send + Sync>;

/// Builds a payload from any sendable value.
pub fn payload<T: Any + Send + Sync>(value: T) -> Payload {
    Arc::new(value)
}

/// A packet in flight.
#[derive(Clone)]
pub struct Packet {
    /// Unique id assigned at send time; stable across hops.
    pub id: u64,
    /// Sender address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Wire size in bytes, including all modelled headers. This is what
    /// occupies queue space and serialization time.
    pub size: u32,
    /// Flow this packet is accounted to.
    pub flow: FlowId,
    /// Simulation time at which the original sender emitted the packet.
    pub sent_at: Time,
    /// Semantic content (protocol segment, app frame, ...).
    pub payload: Payload,
}

impl Packet {
    /// Attempts to view the payload as a `T`.
    pub fn payload_as<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("id", &self.id)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("size", &self.size)
            .field("flow", &self.flow)
            .field("sent_at", &self.sent_at)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_downcast_works() {
        let p = Packet {
            id: 1,
            src: Addr::new(NodeId(0), 1),
            dst: Addr::new(NodeId(1), 2),
            size: 100,
            flow: FlowId(7),
            sent_at: 0,
            payload: payload(42u64),
        };
        assert_eq!(p.payload_as::<u64>(), Some(&42));
        assert_eq!(p.payload_as::<u32>(), None);
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr::new(NodeId(3), 9).to_string(), "n3:9");
    }

    #[test]
    fn clone_shares_payload() {
        let p = Packet {
            id: 1,
            src: Addr::new(NodeId(0), 1),
            dst: Addr::new(NodeId(1), 2),
            size: 100,
            flow: FlowId::ANON,
            sent_at: 5,
            payload: payload(String::from("hello")),
        };
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.payload, &q.payload));
        assert_eq!(q.payload_as::<String>().unwrap(), "hello");
    }
}
