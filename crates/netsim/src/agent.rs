//! The [`Agent`] trait and its execution context.
//!
//! Agents are the active entities of a simulation: protocol endpoints,
//! traffic sources, sinks. Each agent is bound to a `(node, port)` address
//! and reacts to packet deliveries and timers through a [`Ctx`] that lets
//! it read the clock, send packets, and (re)arm timers.

use std::any::Any;

use crate::packet::{Addr, AgentId, FlowId, Packet, Payload};
use crate::sim::SimCore;
use crate::time::{Time, TimeDelta};
use rand::rngs::SmallRng;

/// Handle to a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

/// Behaviour attached to a `(node, port)` address.
///
/// The `Any` supertrait lets callers recover concrete agent types after a
/// run (e.g. to read collected metrics) via [`crate::Simulator::agent`].
/// The `Send` supertrait lets whole simulations move across threads, so
/// independent scenarios can run on a worker pool.
pub trait Agent: Any + Send {
    /// Called once when the simulation starts (or when the agent is added
    /// to an already-running simulation).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a packet addressed to this agent arrives.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// Called when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

/// Execution context handed to agent callbacks.
///
/// Borrows the simulator core (everything except the agent table), so an
/// agent can interact with the world while the simulator retains unique
/// ownership of all other agents.
pub struct Ctx<'a> {
    pub(crate) core: &'a mut SimCore,
    pub(crate) addr: Addr,
    pub(crate) agent: AgentId,
}

impl Ctx<'_> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// This agent's own address.
    #[inline]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Deterministic simulation-wide random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.core.rng
    }

    /// Sends a packet of `size` wire bytes to `dst`. Returns the packet id
    /// assigned by the simulator.
    pub fn send(&mut self, dst: Addr, size: u32, flow: FlowId, payload: Payload) -> u64 {
        self.core.send_from(self.addr, dst, size, flow, payload)
    }

    /// Arms a timer to fire after `delay`; `token` is echoed back to
    /// [`Agent::on_timer`] so one agent can multiplex timers.
    pub fn set_timer(&mut self, delay: TimeDelta, token: u64) -> TimerId {
        self.core.set_timer(self.agent, delay, token)
    }

    /// Cancels a timer if it has not fired yet. Cancelling an already
    /// fired or unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.cancel_timer(id);
    }

    /// Requests the simulation loop to stop after the current event.
    pub fn stop_simulation(&mut self) {
        self.core.stopped = true;
    }
}
