//! Simulation observability: per-flow accounting and a bounded packet
//! event log.
//!
//! Per-flow counters are always on (they are how experiments compute
//! ground-truth loss ratios per traffic class); the packet log is
//! opt-in via [`crate::Simulator::enable_packet_log`] because a long run
//! can produce millions of events.

use iq_telemetry::{PacketKind, TelemetryEvent, TelemetrySink};

use crate::packet::{FlowId, LinkId};
use crate::time::Time;

/// Ground-truth counters for one flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets injected by agents.
    pub sent_packets: u64,
    /// Bytes injected.
    pub sent_bytes: u64,
    /// Packets handed to their destination agent.
    pub delivered_packets: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Packets dropped at queues (drop-tail or RED).
    pub dropped_packets: u64,
    /// Packets lost to the random-loss failure model.
    pub random_losses: u64,
}

impl FlowStats {
    /// Ground-truth network loss ratio for this flow.
    pub fn loss_ratio(&self) -> f64 {
        if self.sent_packets == 0 {
            return 0.0;
        }
        (self.dropped_packets + self.random_losses) as f64 / self.sent_packets as f64
    }
}

/// What happened to a packet at one point of its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketEventKind {
    /// Injected by an agent.
    Sent,
    /// Handed to the destination agent.
    Delivered,
    /// Dropped by a queue (drop-tail or RED early drop).
    DroppedAtQueue(LinkId),
    /// Lost by the random-loss model on a link.
    LostRandom(LinkId),
}

/// One entry of the packet event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketEvent {
    /// When it happened.
    pub at: Time,
    /// The packet's simulator-assigned id.
    pub packet_id: u64,
    /// The packet's flow.
    pub flow: FlowId,
    /// Wire size in bytes.
    pub size: u32,
    /// What happened.
    pub kind: PacketEventKind,
}

/// Flow ids below this threshold use the O(1) dense lookup table
/// (512 KiB at worst — the table is grown lazily to the highest id
/// actually seen); higher ids fall back to a linear scan. Sized to
/// cover the 100k-flow `mega_flows` population, where a linear scan
/// would cost O(flows) on every packet event.
const DENSE_IDS: u32 = 1 << 17;

/// Collects flow counters and (optionally) packet events.
#[derive(Debug, Default)]
pub struct TraceCollector {
    /// Per-flow counters in first-seen order. Iteration (and therefore
    /// table output) follows this vector, so insertion order is part of
    /// the deterministic surface.
    flows: Vec<(FlowId, FlowStats)>,
    /// Direct-index lookup for small flow ids: `dense[flow.0]` holds
    /// `index into flows + 1` (0 = unseen). Incast workloads run
    /// hundreds of interleaved flows, where the old linear scan cost
    /// O(flows) on every packet event; this is O(1) for the ids real
    /// scenarios use. Ids ≥ [`DENSE_IDS`] (notably [`FlowId::ANON`])
    /// fall back to a scan.
    dense: Vec<u32>,
    log: Vec<PacketEvent>,
    log_capacity: usize,
    /// Events that arrived after the log filled.
    pub log_overflow: u64,
    /// Structured telemetry bus; packet events are mirrored onto it
    /// when a sink is attached (the bus-based successor of the log).
    pub(crate) telemetry: TelemetrySink,
}

impl TraceCollector {
    /// Enables the packet log with the given capacity.
    pub fn enable_log(&mut self, capacity: usize) {
        self.log_capacity = capacity;
        self.log.reserve(capacity.min(1 << 20));
    }

    /// Counters slot for `flow`, creating it on first sight.
    #[inline]
    fn flow_mut(&mut self, flow: FlowId) -> &mut FlowStats {
        if flow.0 < DENSE_IDS {
            let fi = flow.0 as usize;
            if fi >= self.dense.len() {
                self.dense.resize(fi + 1, 0);
            }
            let slot = self.dense[fi];
            if slot != 0 {
                return &mut self.flows[(slot - 1) as usize].1;
            }
            self.flows.push((flow, FlowStats::default()));
            self.dense[fi] = self.flows.len() as u32;
            return &mut self.flows.last_mut().expect("just pushed").1;
        }
        let idx = match self.flows.iter().position(|&(f, _)| f == flow) {
            Some(i) => i,
            None => {
                self.flows.push((flow, FlowStats::default()));
                self.flows.len() - 1
            }
        };
        &mut self.flows[idx].1
    }

    #[inline]
    pub(crate) fn record(&mut self, ev: PacketEvent) {
        let f = self.flow_mut(ev.flow);
        match ev.kind {
            PacketEventKind::Sent => {
                f.sent_packets += 1;
                f.sent_bytes += u64::from(ev.size);
            }
            PacketEventKind::Delivered => {
                f.delivered_packets += 1;
                f.delivered_bytes += u64::from(ev.size);
            }
            PacketEventKind::DroppedAtQueue(_) => f.dropped_packets += 1,
            PacketEventKind::LostRandom(_) => f.random_losses += 1,
        }
        if self.log_capacity > 0 {
            if self.log.len() < self.log_capacity {
                self.log.push(ev);
            } else {
                self.log_overflow += 1;
            }
        }
        self.telemetry.emit_with(ev.at, u64::from(ev.flow.0), || {
            let (kind, link) = match ev.kind {
                PacketEventKind::Sent => (PacketKind::Sent, -1),
                PacketEventKind::Delivered => (PacketKind::Delivered, -1),
                PacketEventKind::DroppedAtQueue(l) => (PacketKind::DroppedQueue, i64::from(l.0)),
                PacketEventKind::LostRandom(l) => (PacketKind::LostRandom, i64::from(l.0)),
            };
            TelemetryEvent::Packet {
                packet_id: ev.packet_id,
                size: ev.size,
                kind,
                link,
            }
        });
    }

    /// Counters for one flow (zeroes if never seen).
    pub fn flow(&self, flow: FlowId) -> FlowStats {
        self.flows
            .iter()
            .find(|&&(f, _)| f == flow)
            .map(|&(_, s)| s)
            .unwrap_or_default()
    }

    /// All flows seen so far, in first-seen (deterministic) order.
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, &FlowStats)> {
        self.flows.iter().map(|(k, v)| (*k, v))
    }

    /// The recorded events (empty unless enabled).
    pub fn log(&self) -> &[PacketEvent] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: PacketEventKind) -> PacketEvent {
        PacketEvent {
            at: 0,
            packet_id: 1,
            flow: FlowId(7),
            size: 100,
            kind,
        }
    }

    #[test]
    fn counters_accumulate_per_flow() {
        let mut t = TraceCollector::default();
        t.record(ev(PacketEventKind::Sent));
        t.record(ev(PacketEventKind::Sent));
        t.record(ev(PacketEventKind::Delivered));
        t.record(ev(PacketEventKind::DroppedAtQueue(LinkId(0))));
        let f = t.flow(FlowId(7));
        assert_eq!(f.sent_packets, 2);
        assert_eq!(f.sent_bytes, 200);
        assert_eq!(f.delivered_packets, 1);
        assert_eq!(f.dropped_packets, 1);
        assert!((f.loss_ratio() - 0.5).abs() < 1e-12);
        // Unknown flow: zeroes.
        assert_eq!(t.flow(FlowId(9)).sent_packets, 0);
    }

    #[test]
    fn log_is_off_by_default_and_bounded_when_on() {
        let mut t = TraceCollector::default();
        t.record(ev(PacketEventKind::Sent));
        assert!(t.log().is_empty());

        t.enable_log(2);
        t.record(ev(PacketEventKind::Sent));
        t.record(ev(PacketEventKind::Delivered));
        t.record(ev(PacketEventKind::Sent));
        assert_eq!(t.log().len(), 2);
        assert_eq!(t.log_overflow, 1);
    }

    #[test]
    fn zero_sent_flow_has_zero_loss() {
        let t = TraceCollector::default();
        assert_eq!(t.flow(FlowId(1)).loss_ratio(), 0.0);
    }
}
