//! Canonical topologies used by the IQ-RUDP experiments.
//!
//! All of the paper's EMULAB scenarios reduce to a dumbbell: a number of
//! sender hosts on the left, a number of receiver hosts on the right, and
//! a single shared bottleneck between two routers. Access links are fast
//! enough never to be the constraint; the bottleneck carries the paper's
//! "emulated 20 Mb physical links with a path RTT of 30 ms".

use crate::link::LinkSpec;
use crate::packet::{LinkId, NodeId};
use crate::sim::Simulator;
use crate::time::{millis, TimeDelta};

/// Handles to the pieces of a dumbbell topology.
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// Hosts on the sending side, index-aligned with `right_hosts`.
    pub left_hosts: Vec<NodeId>,
    /// Hosts on the receiving side.
    pub right_hosts: Vec<NodeId>,
    /// Router aggregating the sending side.
    pub left_router: NodeId,
    /// Router aggregating the receiving side.
    pub right_router: NodeId,
    /// Left-to-right direction of the shared bottleneck.
    pub bottleneck: LinkId,
    /// Right-to-left direction (carries ACKs).
    pub bottleneck_back: LinkId,
}

/// Configuration for [`build_dumbbell`].
#[derive(Debug, Clone)]
pub struct DumbbellSpec {
    /// Number of host pairs (flows that can traverse the bottleneck).
    pub pairs: usize,
    /// Bottleneck rate in bits/second (paper: 20 Mb/s).
    pub bottleneck_bps: f64,
    /// One-way propagation of the bottleneck. The paper's 30 ms *path
    /// RTT* means 15 ms one way here (access links add negligible delay).
    pub one_way_delay: TimeDelta,
    /// Bottleneck queue size in bytes; by convention one RTT worth of the
    /// bottleneck rate.
    pub queue_bytes: u32,
    /// Access link rate (fast; default 1 Gb/s).
    pub access_bps: f64,
    /// Run the bottleneck queue under RED instead of drop-tail.
    pub red_bottleneck: bool,
}

impl DumbbellSpec {
    /// The paper's default: 20 Mb bottleneck, 30 ms RTT, BDP queue.
    pub fn paper_default(pairs: usize) -> Self {
        let bottleneck_bps = 20e6;
        let rtt = millis(30);
        let bdp = (bottleneck_bps * (rtt as f64 / 1e9) / 8.0) as u32;
        Self {
            pairs,
            bottleneck_bps,
            one_way_delay: millis(15),
            queue_bytes: bdp,
            access_bps: 1e9,
            red_bottleneck: false,
        }
    }

    /// The §3.5 changing-network variant: 125 ms one-way delay.
    pub fn long_rtt(pairs: usize) -> Self {
        let mut s = Self::paper_default(pairs);
        s.one_way_delay = millis(125);
        // Queue still sized to the paper-default RTT; EMULAB used the
        // same router buffers when the path delay changed.
        s
    }
}

/// Builds the dumbbell into `sim` and returns the handles.
///
/// # Panics
/// Panics on a degenerate spec: zero host pairs (the returned host lists
/// would be empty and every caller indexes them) or a non-positive /
/// non-finite bottleneck rate (the bottleneck would silently become
/// infinitely fast, which is never what an experiment means).
pub fn build_dumbbell(sim: &mut Simulator, spec: &DumbbellSpec) -> Dumbbell {
    assert!(
        spec.pairs > 0,
        "dumbbell spec has 0 host pairs; at least one sender/receiver pair is required"
    );
    assert!(
        spec.bottleneck_bps.is_finite() && spec.bottleneck_bps > 0.0,
        "dumbbell bottleneck rate must be a positive finite bit rate, got {} b/s",
        spec.bottleneck_bps
    );
    let left_router = sim.add_node();
    let right_router = sim.add_node();

    // Nearly all of the one-way delay lives on the bottleneck; access
    // links contribute a symbolic 10 us so serialization ordering at the
    // routers stays realistic.
    let access_delay = crate::time::micros(10);
    let bottleneck_delay = spec.one_way_delay.saturating_sub(2 * access_delay);

    let mut bn_spec = LinkSpec::new(spec.bottleneck_bps, bottleneck_delay, spec.queue_bytes);
    if spec.red_bottleneck {
        bn_spec = bn_spec.with_red(crate::link::RedParams::for_capacity(spec.queue_bytes));
    }
    let (bottleneck, bottleneck_back) = sim.add_duplex_link(left_router, right_router, bn_spec);

    let mut left_hosts = Vec::with_capacity(spec.pairs);
    let mut right_hosts = Vec::with_capacity(spec.pairs);
    // Access queues are generous: the bottleneck is the only loss point.
    let access_spec = LinkSpec::new(spec.access_bps, access_delay, 16 * 1024 * 1024);
    for _ in 0..spec.pairs {
        let l = sim.add_node();
        let r = sim.add_node();
        sim.add_duplex_link(l, left_router, access_spec.clone());
        sim.add_duplex_link(r, right_router, access_spec.clone());
        left_hosts.push(l);
        right_hosts.push(r);
    }

    Dumbbell {
        left_hosts,
        right_hosts,
        left_router,
        right_router,
        bottleneck,
        bottleneck_back,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, Ctx};
    use crate::packet::{payload, Addr, FlowId, Packet};
    use crate::time::{as_millis, millis, secs};

    struct Ping {
        dst: Addr,
    }
    impl Agent for Ping {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.dst, 100, FlowId(1), payload(0u32));
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            // Echo once: reply to a ping, ignore the reply to our reply.
            if *pkt.payload_as::<u32>().unwrap() == 0 {
                ctx.send(pkt.src, 100, FlowId(1), payload(1u32));
            }
        }
    }

    struct PongTimer {
        rtt_ms: Option<f64>,
        sent_at: u64,
        dst: Addr,
    }
    impl Agent for PongTimer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.sent_at = ctx.now();
            ctx.send(self.dst, 100, FlowId(1), payload(0u32));
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.rtt_ms = Some(as_millis(ctx.now() - self.sent_at));
        }
    }

    #[test]
    fn paper_dumbbell_rtt_is_about_30ms() {
        let mut sim = Simulator::new(1);
        let spec = DumbbellSpec::paper_default(1);
        let db = build_dumbbell(&mut sim, &spec);
        let ponger = PongTimer {
            rtt_ms: None,
            sent_at: 0,
            dst: Addr::new(db.right_hosts[0], 5),
        };
        let p = sim.add_agent(db.left_hosts[0], 5, Box::new(ponger));
        sim.add_agent(
            db.right_hosts[0],
            5,
            Box::new(Ping {
                // unused as responder
                dst: Addr::new(db.left_hosts[0], 5),
            }),
        );
        sim.run_until(secs(1.0));
        let rtt = sim.agent::<PongTimer>(p).unwrap().rtt_ms.expect("no pong");
        // 30 ms propagation plus small serialization; must be close.
        assert!((29.0..32.0).contains(&rtt), "rtt = {rtt} ms");
    }

    #[test]
    fn queue_defaults_to_bdp() {
        let spec = DumbbellSpec::paper_default(2);
        assert_eq!(spec.queue_bytes, 75_000);
        assert_eq!(spec.pairs, 2);
    }

    #[test]
    fn long_rtt_variant_has_125ms_one_way() {
        let spec = DumbbellSpec::long_rtt(1);
        assert_eq!(spec.one_way_delay, millis(125));
    }

    #[test]
    #[should_panic(expected = "0 host pairs")]
    fn zero_pair_dumbbell_is_rejected() {
        let mut sim = Simulator::new(0);
        build_dumbbell(&mut sim, &DumbbellSpec::paper_default(0));
    }

    #[test]
    #[should_panic(expected = "positive finite bit rate")]
    fn non_finite_bottleneck_rate_is_rejected() {
        let mut sim = Simulator::new(0);
        let mut spec = DumbbellSpec::paper_default(1);
        spec.bottleneck_bps = f64::NAN;
        build_dumbbell(&mut sim, &spec);
    }
}
