//! Simulation time.
//!
//! The simulator uses a discrete clock counted in integer **nanoseconds**
//! from the start of the run. Integer time keeps event ordering exact and
//! runs reproducible across platforms; all rate/latency arithmetic converts
//! through `f64` only at the edges.

/// A point in simulated time, in nanoseconds since simulation start.
pub type Time = u64;

/// A span of simulated time, in nanoseconds.
pub type TimeDelta = u64;

/// One microsecond in [`Time`] units.
pub const MICROSECOND: TimeDelta = 1_000;
/// One millisecond in [`Time`] units.
pub const MILLISECOND: TimeDelta = 1_000_000;
/// One second in [`Time`] units.
pub const SECOND: TimeDelta = 1_000_000_000;

/// Converts a floating-point number of seconds to [`Time`] units.
///
/// Negative and non-finite inputs saturate to zero; values beyond the
/// representable range saturate to `Time::MAX`.
#[inline]
pub fn secs(s: f64) -> TimeDelta {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    let ns = s * SECOND as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Converts an integer number of milliseconds to [`Time`] units.
#[inline]
pub const fn millis(ms: u64) -> TimeDelta {
    ms * MILLISECOND
}

/// Converts an integer number of microseconds to [`Time`] units.
#[inline]
pub const fn micros(us: u64) -> TimeDelta {
    us * MICROSECOND
}

/// Converts a [`Time`] value to floating-point seconds.
#[inline]
pub fn as_secs(t: Time) -> f64 {
    t as f64 / SECOND as f64
}

/// Converts a [`Time`] value to floating-point milliseconds.
#[inline]
pub fn as_millis(t: Time) -> f64 {
    t as f64 / MILLISECOND as f64
}

/// Time needed to serialize `bytes` onto a link of `rate_bps` bits/second.
///
/// A zero or negative rate is treated as infinitely fast (zero time), which
/// models an ideal link in tests.
#[inline]
pub fn transmission_time(bytes: u32, rate_bps: f64) -> TimeDelta {
    if rate_bps <= 0.0 {
        return 0;
    }
    secs(bytes as f64 * 8.0 / rate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_round_trips_millisecond_values() {
        assert_eq!(secs(0.001), MILLISECOND);
        assert_eq!(secs(1.0), SECOND);
        assert_eq!(secs(0.5), 500 * MILLISECOND);
    }

    #[test]
    fn secs_saturates_on_bad_input() {
        assert_eq!(secs(-1.0), 0);
        assert_eq!(secs(f64::NAN), 0);
        assert_eq!(secs(f64::INFINITY), u64::MAX);
        assert_eq!(secs(1e30), u64::MAX);
    }

    #[test]
    fn const_conversions() {
        assert_eq!(millis(30), 30_000_000);
        assert_eq!(micros(7), 7_000);
    }

    #[test]
    fn as_secs_inverts_secs() {
        let t = secs(12.25);
        assert!((as_secs(t) - 12.25).abs() < 1e-9);
        assert!((as_millis(millis(42)) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn transmission_time_matches_hand_calculation() {
        // 1400 bytes at 20 Mb/s = 11200 bits / 20e6 = 560 microseconds.
        assert_eq!(transmission_time(1400, 20e6), 560 * MICROSECOND);
    }

    #[test]
    fn transmission_time_zero_rate_is_instant() {
        assert_eq!(transmission_time(1400, 0.0), 0);
        assert_eq!(transmission_time(1400, -5.0), 0);
    }
}
