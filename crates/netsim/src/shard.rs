//! Conservative-lookahead parallel simulation: one logical simulation
//! sharded into topology domains that execute on multiple cores.
//!
//! ## Model
//!
//! A [`ShardedSim`] is built like a [`Simulator`], except every node is
//! assigned to a *shard* (a topology domain — e.g. one side of a
//! dumbbell leg). Each shard owns a complete serial [`Simulator`]: its
//! own event queue, timer and packet slabs, RNG, trace collector, and
//! telemetry sink. Links whose endpoints live on different shards are
//! *boundary links*; everything else runs exactly as in the serial
//! engine.
//!
//! ## Lookahead rule (null-message-free conservative PDES)
//!
//! A packet crossing a boundary link is queued, serialized, and subjected
//! to loss/jitter on the *sending* shard; only the final far-end arrival
//! crosses shards. Since an event executing at time `t` can produce an
//! arrival no earlier than `t + delay(link)`, the link's propagation
//! delay is free lookahead. Each shard `i` publishes an *exclusive*
//! clock `C[i]` ("all events with timestamp `< C[i]` have executed and
//! their boundary output is visible"), and may safely execute every
//! event with timestamp
//!
//! ```text
//! t < min(deadline + 1, min over ingress boundary links L of
//!                          (C[src(L)] + delay(L)))
//! ```
//!
//! Boundary delays must be strictly positive (asserted at build time),
//! which also guarantees livelock-free progress: the globally slowest
//! shard can always advance by at least the minimum boundary delay.
//!
//! ## Determinism
//!
//! The shard *partition* is fixed by the topology; `threads` only
//! chooses how many OS threads execute the fixed set of shards
//! (pair-blocked round robin, see [`static_assignment`]). Cross-shard
//! arrivals carry a content-derived sequence number — built from the
//! boundary link id and a per-link message counter, both of which depend
//! only on the sending shard's (deterministic) execution order — so the
//! receiving shard's event order never depends on *when* a message was
//! drained. Merged outputs (counters, flow stats, telemetry) are
//! combined in shard-index order, so every run is byte-identical for any
//! thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use iq_obs::{counter_add, counter_inc, Phase};

use crate::agent::Agent;
use crate::event::Event;
use crate::link::{LinkSpec, LinkStats};
use crate::packet::{AgentId, FlowId, LinkId, NodeId, Packet};
use crate::sched::{EventQueue, EventSource};
use crate::sim::{SimCounters, Simulator};
use crate::time::{Time, TimeDelta};
use crate::trace::FlowStats;

/// Boundary-arrival sequence numbers live above every locally assigned
/// sequence number, so same-timestamp local events always execute before
/// same-timestamp cross-shard arrivals — an ordering that is stable by
/// construction instead of depending on drain timing.
const BOUNDARY_SEQ_BASE: u64 = 1 << 63;

/// Bits reserved for the per-link message counter inside a boundary
/// sequence number (the link id occupies the bits above).
const BOUNDARY_COUNTER_BITS: u32 = 40;

/// Content-derived sequence number for the `counter`-th arrival crossing
/// boundary link `link`. Both inputs are functions of the sending
/// shard's deterministic execution, so the value is independent of
/// thread interleaving.
pub fn boundary_seq(link: LinkId, counter: u64) -> u64 {
    debug_assert!(u64::from(link.0) < 1 << (63 - BOUNDARY_COUNTER_BITS));
    debug_assert!(counter < 1 << BOUNDARY_COUNTER_BITS);
    BOUNDARY_SEQ_BASE | (u64::from(link.0) << BOUNDARY_COUNTER_BITS) | counter
}

/// Engine-plane counters for one shard's worker-loop behavior: how many
/// lookahead windows it ran, how often it was lookahead-limited
/// (stalled waiting on a neighbor's clock), and how many cross-shard
/// messages it drained. Thread-schedule dependent by nature — two runs
/// with different `threads` values produce different window patterns —
/// so these never enter the counter fingerprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookahead windows executed (`run_window` calls that made progress).
    pub windows: u64,
    /// Iterations where the ingress lookahead bound forbade progress.
    pub stalls: u64,
    /// Cross-shard arrivals drained from ingress mailboxes.
    pub ingress_msgs: u64,
}

/// A packet in flight between shards: the far-end arrival of a boundary
/// link, carrying its content-derived sequence number.
pub(crate) struct WireMsg {
    /// The boundary link the packet crossed.
    pub(crate) link: LinkId,
    /// Arrival time at the link's `to` node (serialization, propagation
    /// and jitter already applied on the sending shard).
    pub(crate) at: Time,
    /// [`boundary_seq`] value for this arrival.
    pub(crate) seq: u64,
    /// The packet itself (moved out of the sender's slab).
    pub(crate) pkt: Packet,
}

/// The per-shard event source: the serial [`EventQueue`] plus an
/// exclusive execution *horizon*.
///
/// Inside a [`ShardedSim`], a shard may only execute events strictly
/// below its current lookahead limit; the horizon enforces that bound at
/// the source itself, so no call path can accidentally pop an event the
/// conservative protocol has not yet cleared. With the horizon at its
/// default (`Time::MAX`, meaning "unbounded") the source behaves
/// bit-for-bit like the bare [`EventQueue`] — which is how the serial
/// [`Simulator`] runs it.
pub struct ShardEventSource {
    queue: EventQueue,
    /// Exclusive bound: events at or beyond this time are withheld.
    horizon: Time,
}

impl ShardEventSource {
    /// An empty source with an unbounded horizon.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            horizon: Time::MAX,
        }
    }

    /// Sets the exclusive execution horizon (`Time::MAX` = unbounded).
    pub fn set_horizon(&mut self, horizon: Time) {
        self.horizon = horizon;
    }

    /// The current exclusive horizon.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Engine-plane placement/drain counters of the wrapped queue.
    pub fn stats(&self) -> crate::sched::SchedStats {
        self.queue.stats()
    }

    /// Occupancy of the wrapped queue's structures (wheel levels, far
    /// heap, near vector).
    pub fn occupancy(&self) -> ([usize; crate::sched::LEVELS], usize, usize) {
        self.queue.occupancy()
    }

    /// Deadline actually usable given `deadline` and the horizon; `None`
    /// when the horizon alone already forbids any pop.
    fn effective_deadline(&self, deadline: Time) -> Option<Time> {
        if self.horizon == Time::MAX {
            Some(deadline)
        } else if self.horizon == 0 {
            None
        } else {
            Some(deadline.min(self.horizon - 1))
        }
    }
}

impl EventSource for ShardEventSource {
    fn push_event(&mut self, ev: Event) {
        self.queue.push(ev);
    }

    fn next_time(&mut self) -> Option<Time> {
        let t = self.queue.peek_time()?;
        // `Time::MAX` means "unbounded", so an event sitting exactly at
        // `Time::MAX` is still visible there.
        (self.horizon == Time::MAX || t < self.horizon).then_some(t)
    }

    fn next_event(&mut self) -> Option<Event> {
        match self.effective_deadline(Time::MAX) {
            Some(Time::MAX) => self.queue.pop(),
            Some(d) => self.queue.pop_before(d),
            None => None,
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn next_event_before(&mut self, deadline: Time) -> Option<Event> {
        self.queue.pop_before(self.effective_deadline(deadline)?)
    }
}

/// Handle to an agent registered on a [`ShardedSim`]: the shard index
/// plus the agent id inside that shard's serial simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAgentId {
    /// Index of the shard the agent lives on.
    pub shard: usize,
    /// The agent's id within that shard.
    pub agent: AgentId,
}

/// One inter-shard link: where it crosses and how much lookahead it buys.
struct Boundary {
    src_shard: usize,
    /// Lookahead contributed to the destination shard (= the link's
    /// propagation delay; serialization and jitter only add on top).
    lookahead: u64,
}

/// A simulation partitioned into topology shards that execute in
/// parallel under the conservative-lookahead protocol (module docs).
///
/// Construction mirrors [`Simulator`], with two differences: shards are
/// declared first ([`Self::add_shard`]), and every node names its owning
/// shard. Boundary links are detected automatically and must have a
/// strictly positive propagation delay.
pub struct ShardedSim {
    shards: Vec<Simulator>,
    /// Owning shard of each node, indexed by `NodeId`.
    owner: Vec<usize>,
    boundaries: Vec<Boundary>,
    /// Boundary index per link id (`u32::MAX` = intra-shard link).
    boundary_of_link: Vec<u32>,
    /// Inbound boundary indices per shard.
    ingress: Vec<Vec<usize>>,
    /// Exclusive per-shard clocks (see module docs); persist across
    /// successive `run_until` calls.
    clocks: Vec<AtomicU64>,
    /// One mailbox per boundary link (single producer, single consumer;
    /// the mutex only arbitrates flush vs. drain).
    channels: Vec<Mutex<Vec<WireMsg>>>,
    threads: usize,
    now: Time,
    seed: u64,
}

impl ShardedSim {
    /// Creates an empty sharded simulation. Shard RNG streams and packet
    /// id spaces are derived from `seed` and the shard index, so results
    /// depend only on `seed` and the topology — never on thread count.
    pub fn new(seed: u64) -> Self {
        Self {
            shards: Vec::new(),
            owner: Vec::new(),
            boundaries: Vec::new(),
            boundary_of_link: Vec::new(),
            ingress: Vec::new(),
            clocks: Vec::new(),
            channels: Vec::new(),
            threads: 1,
            now: 0,
            seed,
        }
    }

    /// Declares a new shard and returns its index. All shards must be
    /// declared before the first node.
    pub fn add_shard(&mut self) -> usize {
        assert!(
            self.owner.is_empty(),
            "declare all shards before adding nodes (shards fix the \
             partition; nodes are mirrored into every shard)"
        );
        let idx = self.shards.len();
        let mut sim = Simulator::new(mix_seed(self.seed, idx));
        sim.set_packet_id_base((idx as u64) << 48);
        self.shards.push(sim);
        self.ingress.push(Vec::new());
        self.clocks.push(AtomicU64::new(0));
        idx
    }

    /// Number of declared shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sets how many OS threads execute the shards (default 1). The
    /// value never affects results, only wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Adds a node owned by `shard`. The node id is global: it is
    /// mirrored into every shard so routing tables cover the full
    /// topology, but only the owning shard hosts its agents and events.
    pub fn add_node(&mut self, shard: usize) -> NodeId {
        assert!(shard < self.shards.len(), "no such shard {shard}");
        let mut id = None;
        for sim in &mut self.shards {
            let nid = sim.add_node();
            debug_assert!(id.is_none() || id == Some(nid));
            id = Some(nid);
        }
        self.owner.push(shard);
        id.expect("add_shard must be called before add_node")
    }

    /// Adds a unidirectional link. Links with endpoints on different
    /// shards become boundary links and must have `spec.delay > 0` — the
    /// delay is the lookahead that lets the two shards run concurrently.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let (src, dst) = (self.owner[from.0 as usize], self.owner[to.0 as usize]);
        if src != dst {
            assert!(
                spec.delay > 0,
                "boundary link {from}->{to} (shard {src} -> {dst}) needs a \
                 positive propagation delay: the delay is the conservative \
                 lookahead, and zero would deadlock the shard protocol"
            );
        }
        let mut id = None;
        for sim in &mut self.shards {
            let lid = sim.add_link(from, to, spec.clone());
            debug_assert!(id.is_none() || id == Some(lid));
            id = Some(lid);
        }
        let id = id.expect("add_shard must be called before add_link");
        debug_assert_eq!(self.boundary_of_link.len(), id.0 as usize);
        if src != dst {
            self.shards[src].mark_egress(id);
            self.boundary_of_link.push(self.boundaries.len() as u32);
            self.ingress[dst].push(self.boundaries.len());
            self.boundaries.push(Boundary {
                src_shard: src,
                lookahead: spec.delay,
            });
            self.channels.push(Mutex::new(Vec::new()));
        } else {
            self.boundary_of_link.push(u32::MAX);
        }
        id
    }

    /// Adds a pair of unidirectional links with identical characteristics.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, spec.clone());
        let ba = self.add_link(b, a, spec);
        (ab, ba)
    }

    /// Registers an agent at `(node, port)` on the node's owning shard.
    pub fn add_agent(&mut self, node: NodeId, port: u16, agent: Box<dyn Agent>) -> ShardAgentId {
        let shard = self.owner[node.0 as usize];
        let agent = self.shards[shard].add_agent(node, port, agent);
        ShardAgentId { shard, agent }
    }

    /// Attaches a telemetry sink to one shard (see
    /// [`Simulator::attach_telemetry`]). Per-shard sinks keep telemetry
    /// lock-free across threads; merge the buses in shard-index order
    /// for a deterministic combined stream.
    pub fn attach_telemetry(&mut self, shard: usize, sink: iq_telemetry::TelemetrySink) {
        self.shards[shard].attach_telemetry(sink);
    }

    /// Current simulation time (the last `run_until` deadline reached).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read access to one shard's serial simulator (post-run inspection).
    pub fn shard(&self, idx: usize) -> &Simulator {
        &self.shards[idx]
    }

    /// Immutable access to a concrete agent type (see [`Simulator::agent`]).
    pub fn agent<T: Agent>(&self, id: ShardAgentId) -> Option<&T> {
        self.shards[id.shard].agent(id.agent)
    }

    /// Mutable access to a concrete agent type.
    pub fn agent_mut<T: Agent>(&mut self, id: ShardAgentId) -> Option<&mut T> {
        self.shards[id.shard].agent_mut(id.agent)
    }

    /// Simulation-wide counters, summed over shards in index order.
    pub fn counters(&self) -> SimCounters {
        let mut total = SimCounters::default();
        for s in &self.shards {
            let c = s.counters();
            total.packets_sent += c.packets_sent;
            total.packets_delivered += c.packets_delivered;
            total.packets_unroutable += c.packets_unroutable;
            total.events_processed += c.events_processed;
            total.timers_fired += c.timers_fired;
            total.timers_cancelled += c.timers_cancelled;
        }
        total
    }

    /// Reports every shard's metrics into `reg` in shard-index order
    /// (labels `shard="0"`, `shard="1"`, …). The resulting sim-plane
    /// text is byte-identical for any `threads` value because the shard
    /// partition — not the thread mapping — determines each shard's
    /// executed event set.
    pub fn collect_obs(&self, reg: &mut iq_obs::Registry) {
        for (i, s) in self.shards.iter().enumerate() {
            s.collect_obs(reg, &i.to_string());
        }
    }

    /// Per-shard wall-clock phase breakdowns, in shard-index order.
    pub fn phase_snapshots(&self) -> Vec<iq_obs::PhaseSnapshot> {
        self.shards.iter().map(|s| s.phase_snapshot()).collect()
    }

    /// Ground-truth counters for one flow, summed over shards (a flow's
    /// sends are accounted where its source lives, deliveries where its
    /// sink lives).
    pub fn flow_stats(&self, flow: FlowId) -> FlowStats {
        let mut total = FlowStats::default();
        for s in &self.shards {
            let f = s.flow_stats(flow);
            total.sent_packets += f.sent_packets;
            total.sent_bytes += f.sent_bytes;
            total.delivered_packets += f.delivered_packets;
            total.delivered_bytes += f.delivered_bytes;
            total.dropped_packets += f.dropped_packets;
            total.random_losses += f.random_losses;
        }
        total
    }

    /// Stats for one link, read from the shard that owns its sending
    /// side (queueing, serialization, and loss all happen there).
    pub fn link_stats(&self, id: LinkId) -> LinkStats {
        let from = self.shards[0].link_from(id);
        self.shards[self.owner[from.0 as usize]].link_stats(id)
    }

    /// Runs every shard up to and including `deadline` under the
    /// conservative-lookahead protocol, then returns the new time.
    /// Callable repeatedly with increasing deadlines (the usual
    /// slice-and-poll pattern).
    pub fn run_until(&mut self, deadline: Time) -> Time {
        assert!(!self.shards.is_empty(), "no shards declared");
        let target = deadline
            .checked_add(1)
            .expect("deadline too close to Time::MAX");
        let threads = self.threads.clamp(1, self.shards.len());

        let clocks = &self.clocks;
        let channels = &self.channels;
        let ingress = &self.ingress;
        let boundaries = &self.boundaries;
        let boundary_of_link = &self.boundary_of_link;

        // Fixed shard-to-thread assignment (see [`static_assignment`]).
        // The partition is what determines results; this mapping only
        // balances work.
        let assignment = static_assignment(self.shards.len(), threads);
        let mut groups: Vec<Vec<(usize, &mut Simulator)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, sim) in self.shards.iter_mut().enumerate() {
            groups[assignment[i]].push((i, sim));
        }

        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|mut group| {
                    scope.spawn(move || {
                        // Start every shard's wall clock in the idle
                        // phase so lookahead-limited time before the
                        // first window is attributed, not lost.
                        for (_, sim) in &mut group {
                            sim.profiler().enter(Phase::Idle);
                        }
                        loop {
                            let mut all_done = true;
                            let mut progressed = false;
                            for (i, sim) in &mut group {
                                let i = *i;
                                // Only this thread stores clocks[i].
                                let clock = clocks[i].load(Ordering::Relaxed);
                                if clock >= target {
                                    continue;
                                }
                                all_done = false;
                                let mut limit = target;
                                for &b in &ingress[i] {
                                    let src = clocks[boundaries[b].src_shard]
                                        .load(Ordering::Acquire);
                                    limit =
                                        limit.min(src.saturating_add(boundaries[b].lookahead));
                                }
                                if limit <= clock {
                                    // Lookahead-limited: a neighbor's
                                    // clock is too far behind. Time keeps
                                    // accruing to the idle phase.
                                    counter_inc!(sim.shard_stats_mut().stalls);
                                    continue;
                                }
                                // Drain mailboxes first: everything below
                                // `limit` is guaranteed to be present by
                                // the neighbors' flush-before-publish.
                                sim.profiler().enter(Phase::Ingress);
                                for &b in &ingress[i] {
                                    let msgs =
                                        std::mem::take(&mut *channels[b].lock().unwrap());
                                    counter_add!(
                                        sim.shard_stats_mut().ingress_msgs,
                                        msgs.len() as u64
                                    );
                                    for m in msgs {
                                        sim.inject_arrival(m);
                                    }
                                }
                                sim.profiler().enter(Phase::Execute);
                                sim.run_window(limit);
                                // Flush boundary output *before*
                                // publishing the clock, so a neighbor
                                // that observes the new clock also
                                // observes every message it implies.
                                sim.profiler().enter(Phase::Flush);
                                sim.flush_outbox(|m| {
                                    let b = boundary_of_link[m.link.0 as usize] as usize;
                                    channels[b].lock().unwrap().push(m);
                                });
                                clocks[i].store(limit, Ordering::Release);
                                sim.profiler().enter(Phase::Idle);
                                counter_inc!(sim.shard_stats_mut().windows);
                                progressed = true;
                            }
                            if all_done {
                                break;
                            }
                            if !progressed {
                                std::thread::yield_now();
                            }
                        }
                        // Close each profiler so the idle tail between
                        // a shard finishing and the slowest shard
                        // finishing is attributed.
                        for (_, sim) in &mut group {
                            sim.profiler().finish();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("shard worker panicked");
            }
        });

        self.now = self.now.max(deadline);
        self.now
    }

    /// Runs for an additional `delta` of simulated time.
    pub fn run_for(&mut self, delta: TimeDelta) -> Time {
        let deadline = self.now.saturating_add(delta);
        self.run_until(deadline)
    }
}

/// Per-shard RNG/id-space salt: splitmix64-style odd-constant mix so
/// shard streams are decorrelated but fully determined by (seed, index).
fn mix_seed(seed: u64, shard: usize) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1)
}

/// Static shard→thread assignment: pair-blocked round robin, shard `i`
/// runs on thread `(i / 2) % threads`.
///
/// Paired topologies (the mega-flow dumbbell legs) declare shards in
/// left/right order, so even indices carry the sender-side work — with
/// plain `i % threads` at `threads = 2` every heavy even shard landed on
/// worker 0 and every light odd shard on worker 1 (a ~6× execute-time
/// imbalance in the committed bench profile). Assigning *pairs* round
/// robin keeps each leg's heavy and light halves together, so every
/// worker receives the same even/odd mix for any thread count. The
/// mapping never affects results, only wall-clock balance.
pub(crate) fn static_assignment(shards: usize, threads: usize) -> Vec<usize> {
    let threads = threads.max(1);
    (0..shards).map(|i| (i / 2) % threads).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Ctx;
    use crate::packet::{payload, Addr};
    use crate::time::{millis, secs, MILLISECOND};

    /// Sends `count` packets to `dst`, one per millisecond, then records
    /// the arrival time of every echo.
    struct Pinger {
        dst: Addr,
        count: u32,
        sent: u32,
        echoes: Vec<(Time, u32)>,
    }
    impl Agent for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(0, 0);
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            let v = *pkt.payload_as::<u32>().unwrap();
            self.echoes.push((ctx.now(), v));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent < self.count {
                ctx.send(self.dst, 400, FlowId(1), payload(self.sent));
                self.sent += 1;
                ctx.set_timer(MILLISECOND, 0);
            }
        }
    }

    /// Echoes every packet straight back to its source.
    #[derive(Default)]
    struct Echoer {
        got: u32,
    }
    impl Agent for Echoer {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.got += 1;
            let v = *pkt.payload_as::<u32>().unwrap();
            ctx.send(pkt.src, 400, FlowId(2), payload(v));
        }
    }

    /// Two shards joined by one duplex boundary link, echo traffic both
    /// ways. Returns the pinger's echo log and the global counters.
    fn echo_run(threads: usize) -> (Vec<(Time, u32)>, SimCounters) {
        let mut sim = ShardedSim::new(7);
        let (s0, s1) = (sim.add_shard(), sim.add_shard());
        sim.set_threads(threads);
        let a = sim.add_node(s0);
        let b = sim.add_node(s1);
        sim.add_duplex_link(a, b, LinkSpec::new(10e6, millis(5), 64_000));
        let ping = sim.add_agent(a, 1, Box::new(Pinger {
            dst: Addr::new(b, 2),
            count: 50,
            sent: 0,
            echoes: Vec::new(),
        }));
        sim.add_agent(b, 2, Box::new(Echoer::default()));
        sim.run_until(secs(2.0));
        let log = sim.agent::<Pinger>(ping).unwrap().echoes.clone();
        (log, sim.counters())
    }

    #[test]
    fn echoes_cross_the_boundary_both_ways() {
        let (log, counters) = echo_run(1);
        assert_eq!(log.len(), 50, "every ping must be echoed back");
        assert_eq!(counters.packets_sent, 100);
        assert_eq!(counters.packets_delivered, 100);
        // One-way: ~5 ms propagation + serialization each direction.
        assert!(log[0].0 >= millis(10));
        // Payloads come back in send order.
        assert!(log.windows(2).all(|w| w[0].1 + 1 == w[1].1));
    }

    #[test]
    fn results_are_identical_for_any_thread_count() {
        let base = echo_run(1);
        for threads in [2, 3, 8] {
            let got = echo_run(threads);
            assert_eq!(got.0, base.0, "echo log differs at {threads} threads");
            assert_eq!(
                got.1.events_processed, base.1.events_processed,
                "event count differs at {threads} threads"
            );
        }
    }

    #[test]
    fn packets_forward_across_intermediate_shards() {
        // Three shards in a line: a -> r -> b. The middle shard only
        // forwards, so the packet crosses two boundaries.
        let mut sim = ShardedSim::new(3);
        let (s0, s1, s2) = (sim.add_shard(), sim.add_shard(), sim.add_shard());
        sim.set_threads(3);
        let a = sim.add_node(s0);
        let r = sim.add_node(s1);
        let b = sim.add_node(s2);
        sim.add_duplex_link(a, r, LinkSpec::new(10e6, millis(2), 64_000));
        sim.add_duplex_link(r, b, LinkSpec::new(10e6, millis(2), 64_000));
        let ping = sim.add_agent(a, 1, Box::new(Pinger {
            dst: Addr::new(b, 2),
            count: 10,
            sent: 0,
            echoes: Vec::new(),
        }));
        let echo = sim.add_agent(b, 2, Box::new(Echoer::default()));
        sim.run_until(secs(1.0));
        assert_eq!(sim.agent::<Echoer>(echo).unwrap().got, 10);
        assert_eq!(sim.agent::<Pinger>(ping).unwrap().echoes.len(), 10);
        assert_eq!(sim.flow_stats(FlowId(1)).delivered_packets, 10);
        assert_eq!(sim.flow_stats(FlowId(2)).delivered_packets, 10);
    }

    #[test]
    #[should_panic(expected = "positive propagation delay")]
    fn zero_delay_boundary_link_is_rejected() {
        let mut sim = ShardedSim::new(1);
        let (s0, s1) = (sim.add_shard(), sim.add_shard());
        let a = sim.add_node(s0);
        let b = sim.add_node(s1);
        sim.add_link(a, b, LinkSpec::new(10e6, 0, 64_000));
    }

    #[test]
    #[should_panic(expected = "declare all shards before adding nodes")]
    fn late_shard_declaration_is_rejected() {
        let mut sim = ShardedSim::new(1);
        let s0 = sim.add_shard();
        sim.add_node(s0);
        sim.add_shard();
    }

    #[test]
    fn static_assignment_mixes_parities_on_every_thread() {
        // 8 dumbbell legs declared left/right: evens are the heavy
        // sender side. Every worker must receive the same number of
        // even and odd shards, for any thread count that divides the
        // pair count.
        for threads in [1usize, 2, 4, 8] {
            let a = static_assignment(16, threads);
            for t in 0..threads {
                let evens = (0..16).filter(|&i| a[i] == t && i % 2 == 0).count();
                let odds = (0..16).filter(|&i| a[i] == t && i % 2 == 1).count();
                assert_eq!(
                    evens, odds,
                    "thread {t} of {threads}: {evens} even vs {odds} odd shards"
                );
                assert_eq!(evens + odds, 16 / threads);
            }
        }
        // Ragged cases still cover every thread and every shard.
        let a = static_assignment(5, 2);
        assert_eq!(a, vec![0, 0, 1, 1, 0]);
    }

    #[test]
    fn boundary_seqs_sort_after_local_seqs_and_by_content() {
        let a = boundary_seq(LinkId(3), 0);
        let b = boundary_seq(LinkId(3), 1);
        let c = boundary_seq(LinkId(4), 0);
        assert!(a < b && b < c, "ordered by (link, counter)");
        assert!(a > u64::MAX / 2, "always above realistic local seqs");
    }

    #[test]
    fn successive_run_until_slices_match_one_big_run() {
        let sliced = {
            let mut log = Vec::new();
            let mut sim = ShardedSim::new(9);
            let (s0, s1) = (sim.add_shard(), sim.add_shard());
            let a = sim.add_node(s0);
            let b = sim.add_node(s1);
            sim.add_duplex_link(a, b, LinkSpec::new(10e6, millis(5), 64_000));
            let ping = sim.add_agent(a, 1, Box::new(Pinger {
                dst: Addr::new(b, 2),
                count: 30,
                sent: 0,
                echoes: Vec::new(),
            }));
            sim.add_agent(b, 2, Box::new(Echoer::default()));
            for slice in 1..=8 {
                sim.run_until(millis(250) * slice);
            }
            log.extend(sim.agent::<Pinger>(ping).unwrap().echoes.clone());
            log
        };
        let whole = {
            let mut sim = ShardedSim::new(9);
            let (s0, s1) = (sim.add_shard(), sim.add_shard());
            let a = sim.add_node(s0);
            let b = sim.add_node(s1);
            sim.add_duplex_link(a, b, LinkSpec::new(10e6, millis(5), 64_000));
            let ping = sim.add_agent(a, 1, Box::new(Pinger {
                dst: Addr::new(b, 2),
                count: 30,
                sent: 0,
                echoes: Vec::new(),
            }));
            sim.add_agent(b, 2, Box::new(Echoer::default()));
            sim.run_until(millis(2000));
            sim.agent::<Pinger>(ping).unwrap().echoes.clone()
        };
        assert_eq!(sliced, whole);
    }
}
