//! Conservative-lookahead parallel simulation: one logical simulation
//! sharded into topology domains that execute on multiple cores.
//!
//! ## Model
//!
//! A [`ShardedSim`] is built like a [`Simulator`], except every node is
//! assigned to a *shard* (a topology domain — e.g. one side of a
//! dumbbell leg). Each shard owns a complete serial [`Simulator`]: its
//! own event queue, timer and packet slabs, RNG, trace collector, and
//! telemetry sink. Links whose endpoints live on different shards are
//! *boundary links*; everything else runs exactly as in the serial
//! engine.
//!
//! ## Lookahead rule (null-message-free conservative PDES)
//!
//! A packet crossing a boundary link is queued, serialized, and subjected
//! to loss/jitter on the *sending* shard; only the final far-end arrival
//! crosses shards. Since an event executing at time `t` can produce an
//! arrival no earlier than `t + delay(link)`, the link's propagation
//! delay is free lookahead. Each shard `i` publishes an *exclusive*
//! clock `C[i]` ("all events with timestamp `< C[i]` have executed and
//! their boundary output is visible"), and may safely execute every
//! event with timestamp
//!
//! ```text
//! t < min(deadline + 1, min over ingress boundary links L of
//!                          (C[src(L)] + delay(L)))
//! ```
//!
//! Boundary delays must be strictly positive (asserted at build time),
//! which also guarantees livelock-free progress: the globally slowest
//! shard can always advance by at least the minimum boundary delay.
//!
//! ## Scheduling
//!
//! Shards are *work items*, not thread-owned property. A persistent pool
//! of workers (spawned once per [`ShardedSim::run_slices`] call, spanning
//! every slice) pulls runnable shards from a shared ready queue ordered
//! by shard clock, so the globally furthest-behind shard — the one
//! gating everyone else's lookahead — runs first and any worker can
//! execute any shard. Runnability is tracked with a tiny per-shard state
//! machine (`IDLE`/`QUEUED`/`RUNNING` plus "signal arrived while
//! queued/running" variants): when a shard publishes a new clock it
//! bumps a per-shard *version counter* and signals exactly its
//! downstream shards, so lookahead bounds are recomputed only when a
//! predecessor clock actually advanced. A shard whose bound forbids
//! progress parks (leaves the queue entirely) until the next upstream
//! signal re-queues it, and workers with nothing to claim spin briefly
//! and then block on a condvar — no busy-wait, no `yield_now` loop.
//! Boundary output is staged per egress link during the window and
//! handed off with one mailbox lock per boundary, not one per message.
//! The pool is capped at the host's available parallelism (surplus
//! workers would only time-slice the same cores and evict each other's
//! shard working sets), except under [`ShardedSim::set_perturbation`],
//! which deliberately oversubscribes to widen determinism-test coverage.
//!
//! ## Determinism
//!
//! The shard *partition* is fixed by the topology; `threads` only sizes
//! the worker pool that executes the fixed set of shards, and the
//! scheduler only decides *when* a shard runs, never *what* it runs:
//! each shard executes its (deterministic) event sequence in windows
//! whose boundaries cannot reorder events, and the conservative bound
//! guarantees every cross-shard arrival below a window's limit is
//! present before the window runs. Cross-shard arrivals carry a
//! content-derived sequence number — built from the boundary link id and
//! a per-link message counter, both of which depend only on the sending
//! shard's execution order — so the receiving shard's event order never
//! depends on *when* a message was drained. Merged outputs (counters,
//! flow stats, telemetry) are combined in shard-index order, so every
//! run is byte-identical for any worker count or schedule.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use iq_obs::{counter_add, counter_inc, Phase};

use crate::agent::Agent;
use crate::event::Event;
use crate::link::{LinkSpec, LinkStats};
use crate::packet::{AgentId, FlowId, LinkId, NodeId, Packet};
use crate::sched::{EventQueue, EventSource};
use crate::sim::{SimCounters, Simulator};
use crate::time::{Time, TimeDelta};
use crate::trace::FlowStats;

/// Boundary-arrival sequence numbers live above every locally assigned
/// sequence number, so same-timestamp local events always execute before
/// same-timestamp cross-shard arrivals — an ordering that is stable by
/// construction instead of depending on drain timing.
const BOUNDARY_SEQ_BASE: u64 = 1 << 63;

/// Bits reserved for the per-link message counter inside a boundary
/// sequence number (the link id occupies the bits above).
const BOUNDARY_COUNTER_BITS: u32 = 40;

/// Content-derived sequence number for the `counter`-th arrival crossing
/// boundary link `link`. Both inputs are functions of the sending
/// shard's deterministic execution, so the value is independent of
/// thread interleaving.
pub fn boundary_seq(link: LinkId, counter: u64) -> u64 {
    debug_assert!(u64::from(link.0) < 1 << (63 - BOUNDARY_COUNTER_BITS));
    debug_assert!(counter < 1 << BOUNDARY_COUNTER_BITS);
    BOUNDARY_SEQ_BASE | (u64::from(link.0) << BOUNDARY_COUNTER_BITS) | counter
}

/// Engine-plane counters for one shard's scheduling behavior: how many
/// lookahead windows it ran, how often it was lookahead-limited, how
/// many cross-shard messages it drained, and how the scheduler moved it
/// around (steals, parks, wakes it issued). Schedule-dependent by nature
/// — two runs with different `threads` values produce different values —
/// so these never enter the counter fingerprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookahead windows executed (`run_window` calls that made progress).
    pub windows: u64,
    /// Claims where the ingress lookahead bound forbade progress.
    pub stalls: u64,
    /// Cross-shard arrivals drained from ingress mailboxes.
    pub ingress_msgs: u64,
    /// Times this shard was claimed by a different worker than last time.
    pub steals: u64,
    /// Times this shard left the ready queue to wait for an upstream
    /// clock (it re-enters only when a predecessor signals it).
    pub parks: u64,
    /// Downstream shards this shard re-queued by publishing its clock.
    pub wakes: u64,
}

/// A packet in flight between shards: the far-end arrival of a boundary
/// link, carrying its content-derived sequence number.
pub(crate) struct WireMsg {
    /// The boundary link the packet crossed.
    pub(crate) link: LinkId,
    /// Arrival time at the link's `to` node (serialization, propagation
    /// and jitter already applied on the sending shard).
    pub(crate) at: Time,
    /// [`boundary_seq`] value for this arrival.
    pub(crate) seq: u64,
    /// The packet itself (moved out of the sender's slab).
    pub(crate) pkt: Packet,
}

/// The per-shard event source: the serial [`EventQueue`] plus an
/// exclusive execution *horizon*.
///
/// Inside a [`ShardedSim`], a shard may only execute events strictly
/// below its current lookahead limit; the horizon enforces that bound at
/// the source itself, so no call path can accidentally pop an event the
/// conservative protocol has not yet cleared. With the horizon at its
/// default (`Time::MAX`, meaning "unbounded") the source behaves
/// bit-for-bit like the bare [`EventQueue`] — which is how the serial
/// [`Simulator`] runs it.
pub struct ShardEventSource {
    queue: EventQueue,
    /// Exclusive bound: events at or beyond this time are withheld.
    horizon: Time,
}

impl ShardEventSource {
    /// An empty source with an unbounded horizon.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            horizon: Time::MAX,
        }
    }

    /// Sets the exclusive execution horizon (`Time::MAX` = unbounded).
    pub fn set_horizon(&mut self, horizon: Time) {
        self.horizon = horizon;
    }

    /// The current exclusive horizon.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Engine-plane placement/drain counters of the wrapped queue.
    pub fn stats(&self) -> crate::sched::SchedStats {
        self.queue.stats()
    }

    /// Occupancy of the wrapped queue's structures (wheel levels, far
    /// heap, near vector).
    pub fn occupancy(&self) -> ([usize; crate::sched::LEVELS], usize, usize) {
        self.queue.occupancy()
    }

    /// Deadline actually usable given `deadline` and the horizon; `None`
    /// when the horizon alone already forbids any pop.
    fn effective_deadline(&self, deadline: Time) -> Option<Time> {
        if self.horizon == Time::MAX {
            Some(deadline)
        } else if self.horizon == 0 {
            None
        } else {
            Some(deadline.min(self.horizon - 1))
        }
    }
}

impl EventSource for ShardEventSource {
    fn push_event(&mut self, ev: Event) {
        self.queue.push(ev);
    }

    fn next_time(&mut self) -> Option<Time> {
        let t = self.queue.peek_time()?;
        // `Time::MAX` means "unbounded", so an event sitting exactly at
        // `Time::MAX` is still visible there.
        (self.horizon == Time::MAX || t < self.horizon).then_some(t)
    }

    fn next_event(&mut self) -> Option<Event> {
        match self.effective_deadline(Time::MAX) {
            Some(Time::MAX) => self.queue.pop(),
            Some(d) => self.queue.pop_before(d),
            None => None,
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn next_event_before(&mut self, deadline: Time) -> Option<Event> {
        self.queue.pop_before(self.effective_deadline(deadline)?)
    }
}

/// Handle to an agent registered on a [`ShardedSim`]: the shard index
/// plus the agent id inside that shard's serial simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAgentId {
    /// Index of the shard the agent lives on.
    pub shard: usize,
    /// The agent's id within that shard.
    pub agent: AgentId,
}

/// One inter-shard link: where it crosses and how much lookahead it buys.
struct Boundary {
    src_shard: usize,
    /// Lookahead contributed to the destination shard (= the link's
    /// propagation delay; serialization and jitter only add on top).
    lookahead: u64,
}

/// Scheduler totals summed over every shard (plus the pool-level park
/// count), for `--timing` reports and the bench `profile` section.
/// Engine-plane: schedule-dependent, never fingerprinted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedTotals {
    /// Shard claims by a different worker than the previous claim.
    pub steals: u64,
    /// Shards leaving the ready queue to wait for an upstream clock.
    pub parks: u64,
    /// Downstream re-queues caused by clock publishes.
    pub wakes: u64,
    /// Workers blocking on the pool condvar for lack of runnable shards.
    pub worker_parks: u64,
}

/// One shard as the scheduler sees it: the serial simulator plus the
/// claiming worker's private scratch state. Guarded by a `Mutex` during
/// `run_slices` — uncontended in steady state, since the state machine
/// guarantees at most one claimer; the lock's job is to carry memory
/// visibility between *successive* claims from different workers.
struct ShardSlot {
    sim: Simulator,
    /// Cached `min over ingress of (C[src] + lookahead)` — recomputed
    /// only when `seen_version` trails the shard's signal version.
    cached_bound: Time,
    /// Signal version the cached bound was computed at (`u64::MAX`
    /// forces the first recompute).
    seen_version: u64,
    /// Worker that ran this shard last (`usize::MAX` = never) — steal
    /// accounting only.
    last_worker: usize,
    /// Per-egress-boundary staging for lock-amortized flush (parallel to
    /// the shard's egress list).
    staging: Vec<Vec<WireMsg>>,
    /// Swap target for mailbox drains, so a drain is one `Vec` swap
    /// under the channel lock instead of an allocation.
    ingress_buf: Vec<WireMsg>,
}

// Per-shard scheduling states. The *_SIGNALED variants record "a
// predecessor published a clock while this shard was queued/running";
// claiming or exiting a signaled shard recomputes its bound from fresh
// clock loads (the CAS that observed the signal gives the happens-before
// edge to the publisher's store), which is what makes the park/wake
// protocol lose no wakeups.
const S_IDLE: u8 = 0;
const S_QUEUED: u8 = 1;
const S_RUNNING: u8 = 2;
const S_RUNNING_SIGNALED: u8 = 3;
const S_QUEUED_SIGNALED: u8 = 4;

/// Spin iterations a worker burns on an empty ready queue before
/// blocking on the pool condvar.
const SPIN_LIMIT: u32 = 64;

/// Retained-capacity cap (in messages) for the boundary mailbox
/// buffers. A synchronized burst — 102,400 flows opening at once — can
/// spike one window's boundary traffic to megabytes, and a message
/// passes through three reused buffers (staging batch, channel,
/// ingress swap buffer) per link; without a cap every one of them
/// would keep that burst's high-water capacity for the rest of the
/// process. Steady-state windows stay well under the cap, so the
/// shrink almost never reallocates in the hot path.
const MAILBOX_KEEP: usize = 16 * 1024;

/// Ready-queue and epoch bookkeeping behind the scheduler mutex.
struct SchedInner {
    /// Runnable shards as `(clock at enqueue, shard)`; claimed min-clock
    /// first so the shard gating everyone's lookahead runs next.
    ready: Vec<(Time, usize)>,
    /// Shards that have not yet crossed the current epoch target.
    remaining: usize,
    /// Workers exit once set (and the queue has drained).
    shutdown: bool,
}

/// The shared scheduler: ready queue, per-shard claim states, and the
/// epoch rendezvous between the pool and the main thread.
struct Sched {
    m: Mutex<SchedInner>,
    /// Workers wait here when no shard is claimable.
    worker_cv: Condvar,
    /// The main thread waits here for `remaining == 0`.
    main_cv: Condvar,
    state: Vec<AtomicU8>,
    /// Mirror of `ready.len()` so workers can spin without the lock.
    ready_len: AtomicUsize,
    /// Exclusive epoch target (shards run events strictly below it).
    target: AtomicU64,
    /// A worker panicked; unblock everyone and surface it.
    panicked: AtomicBool,
}

impl Sched {
    fn new(shards: usize) -> Self {
        Self {
            m: Mutex::new(SchedInner {
                ready: Vec::with_capacity(shards),
                remaining: 0,
                shutdown: false,
            }),
            worker_cv: Condvar::new(),
            main_cv: Condvar::new(),
            state: (0..shards).map(|_| AtomicU8::new(S_IDLE)).collect(),
            ready_len: AtomicUsize::new(0),
            target: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
        }
    }
}

/// Everything a worker needs, borrowed from the [`ShardedSim`] for the
/// duration of one `run_slices` call.
struct Engine<'a> {
    slots: &'a [Mutex<ShardSlot>],
    clocks: &'a [AtomicU64],
    signal_version: &'a [AtomicU64],
    boundaries: &'a [Boundary],
    boundary_of_link: &'a [u32],
    ingress: &'a [Vec<usize>],
    egress: &'a [Vec<usize>],
    staging_pos: &'a [u32],
    successors: &'a [Vec<usize>],
    channels: &'a [Mutex<Vec<WireMsg>>],
    worker_parks: &'a AtomicU64,
    perturb: Option<u64>,
    /// No worker pool: the thread calling `run_epoch` executes every
    /// shard itself. Chosen when only one worker would exist anyway
    /// (single shard, `--shards N` on a 1-core host), where a pool
    /// thread adds condvar/futex round trips per epoch but no
    /// parallelism.
    inline: bool,
    sched: Sched,
}

/// Unblocks the scheduler if a worker unwinds (e.g. an agent panic
/// inside `run_window`), so the main thread and sibling workers don't
/// deadlock waiting for an epoch that will never finish. The panic
/// itself still propagates through `thread::scope`.
struct PanicGuard<'e, 'a>(&'e Engine<'a>);

impl Drop for PanicGuard<'_, '_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let sched = &self.0.sched;
            sched.panicked.store(true, Ordering::Release);
            let mut g = sched.m.lock().unwrap_or_else(|e| e.into_inner());
            g.shutdown = true;
            g.remaining = 0;
            drop(g);
            sched.worker_cv.notify_all();
            sched.main_cv.notify_all();
        }
    }
}

/// Deterministic per-worker perturbation stream (xorshift64): only used
/// when a perturbation seed is set, to exercise steal orders and forced
/// parks in tests. Never consulted in normal runs.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

impl Engine<'_> {
    /// Worker main loop: claim, run, repeat until shutdown.
    fn worker(&self, w: usize) {
        let _guard = PanicGuard(self);
        let mut rng = self.perturb.map(|seed| Xorshift::new(mix_seed(seed, w + 1)));
        while let Some(s) = self.next_job(&mut rng) {
            self.run_shard(s, w, &mut rng);
        }
    }

    /// Blocks until a shard is claimable (bounded spin, then condvar) or
    /// shutdown is flagged.
    fn next_job(&self, rng: &mut Option<Xorshift>) -> Option<usize> {
        let mut spins = 0;
        while self.sched.ready_len.load(Ordering::Acquire) == 0 && spins < SPIN_LIMIT {
            std::hint::spin_loop();
            spins += 1;
        }
        let mut g = self.sched.m.lock().unwrap();
        loop {
            if g.shutdown {
                return None;
            }
            if let Some(s) = self.take_ready(&mut g, rng) {
                return Some(s);
            }
            self.worker_parks.fetch_add(1, Ordering::Relaxed);
            g = self.sched.worker_cv.wait(g).unwrap();
        }
    }

    /// Pops and claims the min-clock ready shard (under perturbation,
    /// occasionally the max-clock one, to prove order doesn't matter).
    /// Stale entries — shards whose state moved on since enqueue — are
    /// discarded.
    fn take_ready(&self, g: &mut SchedInner, rng: &mut Option<Xorshift>) -> Option<usize> {
        loop {
            if g.ready.is_empty() {
                self.sched.ready_len.store(0, Ordering::Release);
                return None;
            }
            let pick_max = rng.as_mut().is_some_and(|r| r.next() % 4 == 0);
            let mut best = 0;
            for i in 1..g.ready.len() {
                let better = if pick_max {
                    g.ready[i].0 > g.ready[best].0
                } else {
                    g.ready[i].0 < g.ready[best].0
                };
                if better {
                    best = i;
                }
            }
            let (_, s) = g.ready.swap_remove(best);
            self.sched.ready_len.store(g.ready.len(), Ordering::Release);
            let st = &self.sched.state[s];
            match st.compare_exchange(S_QUEUED, S_RUNNING, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return Some(s),
                Err(S_QUEUED_SIGNALED) => {
                    if st
                        .compare_exchange(
                            S_QUEUED_SIGNALED,
                            S_RUNNING_SIGNALED,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        return Some(s);
                    }
                }
                Err(_) => {}
            }
        }
    }

    /// Fresh lookahead bound for shard `s` from current predecessor
    /// clocks (Acquire-paired with their Release publishes).
    fn bound(&self, s: usize) -> Time {
        let mut limit = Time::MAX;
        for &b in &self.ingress[s] {
            let src = self.clocks[self.boundaries[b].src_shard].load(Ordering::Acquire);
            limit = limit.min(src.saturating_add(self.boundaries[b].lookahead));
        }
        limit
    }

    /// Marks shard `d` runnable, returning `true` if this enqueued it
    /// (vs. only flagging an already-queued/running shard as signaled).
    fn signal(&self, d: usize) -> bool {
        let st = &self.sched.state[d];
        let mut cur = st.load(Ordering::Relaxed);
        loop {
            let next = match cur {
                S_IDLE => S_QUEUED,
                S_QUEUED => S_QUEUED_SIGNALED,
                S_RUNNING => S_RUNNING_SIGNALED,
                _ => return false,
            };
            match st.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => {
                    if cur == S_IDLE {
                        let clock = self.clocks[d].load(Ordering::Relaxed);
                        let mut g = self.sched.m.lock().unwrap();
                        g.ready.push((clock, d));
                        self.sched.ready_len.store(g.ready.len(), Ordering::Release);
                        drop(g);
                        self.sched.worker_cv.notify_one();
                        return true;
                    }
                    return false;
                }
                Err(c) => cur = c,
            }
        }
    }

    /// Bumps `s`'s downstream version counters and re-queues any
    /// downstream shard that is parked below the epoch target. The
    /// version bump is ordered *before* the state CAS inside
    /// [`Self::signal`], so whoever observes the signaled state also
    /// observes a version that forces a fresh bound.
    fn wake_successors(&self, s: usize, slot: &mut ShardSlot, target: Time) {
        for &d in &self.successors[s] {
            self.signal_version[d].fetch_add(1, Ordering::Release);
            if self.clocks[d].load(Ordering::Relaxed) < target && self.signal(d) {
                counter_inc!(slot.sim.shard_stats_mut().wakes);
            }
        }
    }

    /// Runs claimed shard `s` for as many windows as its lookahead
    /// allows, then releases the claim: re-queue if still runnable, park
    /// if lookahead-limited, report epoch completion if it crossed.
    fn run_shard(&self, s: usize, worker: usize, rng: &mut Option<Xorshift>) {
        let target = self.sched.target.load(Ordering::Acquire);
        let mut slot = self.slots[s].lock().unwrap();
        let slot = &mut *slot;
        if slot.last_worker != worker {
            if slot.last_worker != usize::MAX {
                counter_inc!(slot.sim.shard_stats_mut().steals);
            }
            slot.last_worker = worker;
        }
        // If we claimed the shard already-signaled, the claim CAS is our
        // happens-before edge to the publisher — recompute regardless of
        // the version we read.
        let mut force = self.sched.state[s].load(Ordering::Relaxed) == S_RUNNING_SIGNALED;
        let mut crossed = false;
        loop {
            let clock = self.clocks[s].load(Ordering::Relaxed);
            if clock >= target {
                // Stale entry for a shard that already crossed; it was
                // counted out of `remaining` when it crossed.
                break;
            }
            let v = self.signal_version[s].load(Ordering::Acquire);
            if force || v != slot.seen_version {
                slot.cached_bound = self.bound(s);
                slot.seen_version = v;
                force = false;
            }
            let limit = target.min(slot.cached_bound);
            if limit <= clock {
                counter_inc!(slot.sim.shard_stats_mut().stalls);
                break;
            }
            if let Some(r) = rng.as_mut() {
                // Perturbation: pretend the scheduler preempted us here.
                if r.next() % 8 == 0 {
                    std::thread::yield_now();
                }
            }
            self.window(s, slot, limit);
            self.wake_successors(s, slot, target);
            if limit >= target {
                crossed = true;
                break;
            }
            // Fairness: if other shards are waiting to run, release this
            // one (it re-queues below) so claims keep following the
            // min-clock order instead of one worker tunnelling ahead.
            if self.sched.ready_len.load(Ordering::Relaxed) > 0 {
                break;
            }
        }
        // Release the claim. The swap is AcqRel: if a publisher flagged
        // us signaled while we ran, we observe its clock store here.
        let prev = self.sched.state[s].swap(S_IDLE, Ordering::AcqRel);
        let clock = self.clocks[s].load(Ordering::Relaxed);
        if clock < target {
            if prev == S_RUNNING_SIGNALED {
                slot.seen_version = self.signal_version[s].load(Ordering::Acquire);
                slot.cached_bound = self.bound(s);
            }
            if target.min(slot.cached_bound) > clock {
                // Still runnable: put it back (the CAS in `signal`
                // dedupes against concurrent publishers).
                self.signal(s);
            } else {
                // Parked: only an upstream signal re-queues it. Safe
                // because any publisher that advances our bound runs
                // `signal` *after* its version bump, and will find
                // S_IDLE (or a later state) — never a lost wakeup.
                counter_inc!(slot.sim.shard_stats_mut().parks);
            }
        }
        if crossed {
            let mut g = self.sched.m.lock().unwrap();
            g.remaining -= 1;
            let done = g.remaining == 0;
            drop(g);
            if done {
                self.sched.main_cv.notify_all();
            }
        }
    }

    /// One lookahead window: drain ingress mailboxes (everything below
    /// `limit` is present by flush-before-publish), execute, stage and
    /// flush boundary output, publish the clock.
    fn window(&self, s: usize, slot: &mut ShardSlot, limit: Time) {
        let ShardSlot {
            sim,
            staging,
            ingress_buf,
            ..
        } = slot;
        sim.profiler().enter(Phase::Ingress);
        for &b in &self.ingress[s] {
            {
                let mut ch = self.channels[b].lock().unwrap();
                std::mem::swap(&mut *ch, ingress_buf);
            }
            counter_add!(sim.shard_stats_mut().ingress_msgs, ingress_buf.len() as u64);
            for m in ingress_buf.drain(..) {
                sim.inject_arrival(m);
            }
            // The swap hands this (now empty) buffer to the next
            // channel, so bounding it here bounds the channels too.
            if ingress_buf.capacity() > MAILBOX_KEEP {
                ingress_buf.shrink_to(MAILBOX_KEEP);
            }
        }
        sim.profiler().enter(Phase::Execute);
        sim.run_window(limit);
        // Flush boundary output *before* publishing the clock, so a
        // neighbor that observes the new clock also observes every
        // message it implies. Staged per boundary: one mailbox lock per
        // boundary per window, not one per message.
        sim.profiler().enter(Phase::Flush);
        sim.flush_outbox(|m| {
            let b = self.boundary_of_link[m.link.0 as usize] as usize;
            staging[self.staging_pos[b] as usize].push(m);
        });
        for (pos, &b) in self.egress[s].iter().enumerate() {
            let batch = &mut staging[pos];
            if !batch.is_empty() {
                self.channels[b].lock().unwrap().append(batch);
                if batch.capacity() > MAILBOX_KEEP {
                    batch.shrink_to(MAILBOX_KEEP);
                }
            }
        }
        self.clocks[s].store(limit, Ordering::Release);
        sim.profiler().enter(Phase::Idle);
        counter_inc!(sim.shard_stats_mut().windows);
    }

    /// Runs one epoch: every shard advances to the exclusive `target`.
    /// Returns once all shards have crossed (or a worker panicked).
    fn run_epoch(&self, target: Time) {
        self.sched.target.store(target, Ordering::Release);
        let pending: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.clocks[i].load(Ordering::Relaxed) < target)
            .collect();
        if pending.is_empty() {
            return;
        }
        self.sched.m.lock().unwrap().remaining = pending.len();
        // Epoch-start enqueues go through the same `signal` path as
        // wakes, so leftover queue entries from the previous epoch (a
        // late cross-epoch signal can leave one) are never duplicated.
        for &s in &pending {
            self.signal(s);
        }
        if self.inline {
            // Sole executor: drain the ready queue here. The queue cannot
            // go empty while shards remain — the min-clock uncrossed
            // shard's bound always exceeds its clock (positive lookahead,
            // no predecessor behind it), so `run_shard` re-queues it
            // rather than parking it.
            let mut rng = None;
            loop {
                let job = {
                    let mut g = self.sched.m.lock().unwrap();
                    if g.remaining == 0 {
                        return;
                    }
                    self.take_ready(&mut g, &mut rng)
                };
                let s = job.expect("ready queue empty with shards remaining");
                self.run_shard(s, 0, &mut rng);
            }
        }
        self.sched.worker_cv.notify_all();
        let mut g = self.sched.m.lock().unwrap();
        while g.remaining > 0 && !self.sched.panicked.load(Ordering::Relaxed) {
            g = self.sched.main_cv.wait(g).unwrap();
        }
    }

    /// Tells the pool to exit once the queue drains.
    fn shutdown(&self) {
        self.sched.m.lock().unwrap().shutdown = true;
        self.sched.worker_cv.notify_all();
    }
}

/// Read-only view of the shards between slices, for `run_slices` stop
/// callbacks. Locks the shard's slot per call — workers are quiescent
/// between epochs, so the lock is uncontended.
pub struct ShardView<'a> {
    slots: &'a [Mutex<ShardSlot>],
}

impl ShardView<'_> {
    /// Calls `f` with the concrete agent at `id`, if it exists and has
    /// that type (see [`Simulator::agent`]).
    pub fn with_agent<T: Agent, R>(&self, id: ShardAgentId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let slot = self.slots[id.shard].lock().unwrap();
        slot.sim.agent::<T>(id.agent).map(f)
    }
}

/// A simulation partitioned into topology shards that execute in
/// parallel under the conservative-lookahead protocol (module docs).
///
/// Construction mirrors [`Simulator`], with two differences: shards are
/// declared first ([`Self::add_shard`]), and every node names its owning
/// shard. Boundary links are detected automatically and must have a
/// strictly positive propagation delay.
pub struct ShardedSim {
    shards: Vec<ShardSlot>,
    /// Owning shard of each node, indexed by `NodeId`.
    owner: Vec<usize>,
    boundaries: Vec<Boundary>,
    /// Boundary index per link id (`u32::MAX` = intra-shard link).
    boundary_of_link: Vec<u32>,
    /// Inbound boundary indices per shard.
    ingress: Vec<Vec<usize>>,
    /// Outbound boundary indices per shard (staging order).
    egress: Vec<Vec<usize>>,
    /// Position of each boundary in its source shard's egress list.
    staging_pos: Vec<u32>,
    /// Distinct downstream shards per shard (wake targets).
    successors: Vec<Vec<usize>>,
    /// Exclusive per-shard clocks (see module docs); persist across
    /// successive `run_until` calls.
    clocks: Vec<AtomicU64>,
    /// Bumped whenever a predecessor of the shard publishes a clock;
    /// lets claimers skip bound recomputation when nothing advanced.
    signal_version: Vec<AtomicU64>,
    /// One mailbox per boundary link (single producer, single consumer;
    /// the mutex only arbitrates flush vs. drain).
    channels: Vec<Mutex<Vec<WireMsg>>>,
    /// Pool-level condvar blocks (see [`SchedTotals::worker_parks`]).
    worker_parks: AtomicU64,
    /// Scheduling-perturbation seed for determinism tests.
    perturb: Option<u64>,
    threads: usize,
    now: Time,
    seed: u64,
}

impl ShardedSim {
    /// Creates an empty sharded simulation. Shard RNG streams and packet
    /// id spaces are derived from `seed` and the shard index, so results
    /// depend only on `seed` and the topology — never on thread count.
    pub fn new(seed: u64) -> Self {
        Self {
            shards: Vec::new(),
            owner: Vec::new(),
            boundaries: Vec::new(),
            boundary_of_link: Vec::new(),
            ingress: Vec::new(),
            egress: Vec::new(),
            staging_pos: Vec::new(),
            successors: Vec::new(),
            clocks: Vec::new(),
            signal_version: Vec::new(),
            channels: Vec::new(),
            worker_parks: AtomicU64::new(0),
            perturb: None,
            threads: 1,
            now: 0,
            seed,
        }
    }

    /// Declares a new shard and returns its index. All shards must be
    /// declared before the first node.
    pub fn add_shard(&mut self) -> usize {
        assert!(
            self.owner.is_empty(),
            "declare all shards before adding nodes (shards fix the \
             partition; nodes are mirrored into every shard)"
        );
        let idx = self.shards.len();
        let mut sim = Simulator::new(mix_seed(self.seed, idx));
        sim.set_packet_id_base((idx as u64) << 48);
        self.shards.push(ShardSlot {
            sim,
            cached_bound: 0,
            seen_version: u64::MAX,
            last_worker: usize::MAX,
            staging: Vec::new(),
            ingress_buf: Vec::new(),
        });
        self.ingress.push(Vec::new());
        self.egress.push(Vec::new());
        self.successors.push(Vec::new());
        self.clocks.push(AtomicU64::new(0));
        self.signal_version.push(AtomicU64::new(0));
        idx
    }

    /// Number of declared shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sets the requested worker-pool size (default 1). The pool that
    /// actually runs is capped at the shard count and — because extra
    /// workers on a saturated host only time-slice the same cores and
    /// thrash the shards' working sets against each other — at the
    /// host's available parallelism. The value never affects results,
    /// only wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Sets (or clears) a scheduling-perturbation seed. When set,
    /// workers deterministically shuffle claim order and inject fake
    /// preemptions — a determinism-test aid that exercises steal orders
    /// and parks the normal schedule would rarely produce — and the
    /// worker pool is deliberately *not* capped at the core count, so
    /// oversubscribed schedules get exercised even on small hosts.
    /// Results must be byte-identical either way; only engine-plane
    /// stats move.
    pub fn set_perturbation(&mut self, seed: Option<u64>) {
        self.perturb = seed;
    }

    /// Adds a node owned by `shard`. The node id is global: it is
    /// mirrored into every shard so routing tables cover the full
    /// topology, but only the owning shard hosts its agents and events.
    pub fn add_node(&mut self, shard: usize) -> NodeId {
        assert!(shard < self.shards.len(), "no such shard {shard}");
        let mut id = None;
        for slot in &mut self.shards {
            let nid = slot.sim.add_node();
            debug_assert!(id.is_none() || id == Some(nid));
            id = Some(nid);
        }
        self.owner.push(shard);
        id.expect("add_shard must be called before add_node")
    }

    /// Adds a unidirectional link. Links with endpoints on different
    /// shards become boundary links and must have `spec.delay > 0` — the
    /// delay is the lookahead that lets the two shards run concurrently.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let (src, dst) = (self.owner[from.0 as usize], self.owner[to.0 as usize]);
        if src != dst {
            assert!(
                spec.delay > 0,
                "boundary link {from}->{to} (shard {src} -> {dst}) needs a \
                 positive propagation delay: the delay is the conservative \
                 lookahead, and zero would deadlock the shard protocol"
            );
        }
        let mut id = None;
        for slot in &mut self.shards {
            let lid = slot.sim.add_link(from, to, spec.clone());
            debug_assert!(id.is_none() || id == Some(lid));
            id = Some(lid);
        }
        let id = id.expect("add_shard must be called before add_link");
        debug_assert_eq!(self.boundary_of_link.len(), id.0 as usize);
        if src != dst {
            self.shards[src].sim.mark_egress(id);
            let b = self.boundaries.len();
            self.boundary_of_link.push(b as u32);
            self.ingress[dst].push(b);
            self.staging_pos.push(self.egress[src].len() as u32);
            self.egress[src].push(b);
            if !self.successors[src].contains(&dst) {
                self.successors[src].push(dst);
            }
            self.boundaries.push(Boundary {
                src_shard: src,
                lookahead: spec.delay,
            });
            self.channels.push(Mutex::new(Vec::new()));
        } else {
            self.boundary_of_link.push(u32::MAX);
        }
        id
    }

    /// Adds a pair of unidirectional links with identical characteristics.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, spec.clone());
        let ba = self.add_link(b, a, spec);
        (ab, ba)
    }

    /// Registers an agent at `(node, port)` on the node's owning shard.
    pub fn add_agent(&mut self, node: NodeId, port: u16, agent: Box<dyn Agent>) -> ShardAgentId {
        let shard = self.owner[node.0 as usize];
        let agent = self.shards[shard].sim.add_agent(node, port, agent);
        ShardAgentId { shard, agent }
    }

    /// Attaches a telemetry sink to one shard (see
    /// [`Simulator::attach_telemetry`]). Per-shard sinks keep telemetry
    /// lock-free across threads; merge the buses in shard-index order
    /// for a deterministic combined stream.
    pub fn attach_telemetry(&mut self, shard: usize, sink: iq_telemetry::TelemetrySink) {
        self.shards[shard].sim.attach_telemetry(sink);
    }

    /// Current simulation time (the last `run_until` deadline reached).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read access to one shard's serial simulator (post-run inspection).
    pub fn shard(&self, idx: usize) -> &Simulator {
        &self.shards[idx].sim
    }

    /// Immutable access to a concrete agent type (see [`Simulator::agent`]).
    pub fn agent<T: Agent>(&self, id: ShardAgentId) -> Option<&T> {
        self.shards[id.shard].sim.agent(id.agent)
    }

    /// Mutable access to a concrete agent type.
    pub fn agent_mut<T: Agent>(&mut self, id: ShardAgentId) -> Option<&mut T> {
        self.shards[id.shard].sim.agent_mut(id.agent)
    }

    /// Simulation-wide counters, summed over shards in index order.
    pub fn counters(&self) -> SimCounters {
        let mut total = SimCounters::default();
        for s in &self.shards {
            let c = s.sim.counters();
            total.packets_sent += c.packets_sent;
            total.packets_delivered += c.packets_delivered;
            total.packets_unroutable += c.packets_unroutable;
            total.events_processed += c.events_processed;
            total.timers_fired += c.timers_fired;
            total.timers_cancelled += c.timers_cancelled;
        }
        total
    }

    /// Reports every shard's metrics into `reg` in shard-index order
    /// (labels `shard="0"`, `shard="1"`, …). The resulting sim-plane
    /// text is byte-identical for any `threads` value because the shard
    /// partition — not the schedule — determines each shard's executed
    /// event set. Engine-plane scheduler totals ride along unlabelled.
    pub fn collect_obs(&self, reg: &mut iq_obs::Registry) {
        for (i, s) in self.shards.iter().enumerate() {
            s.sim.collect_obs(reg, &i.to_string());
        }
        reg.counter(
            iq_obs::Plane::Engine,
            "iq_shard_worker_parks_total",
            &[],
            self.worker_parks.load(Ordering::Relaxed),
        );
    }

    /// Per-shard wall-clock phase breakdowns, in shard-index order.
    pub fn phase_snapshots(&self) -> Vec<iq_obs::PhaseSnapshot> {
        self.shards.iter().map(|s| s.sim.phase_snapshot()).collect()
    }

    /// Scheduler totals summed over shards, plus the pool-level park
    /// count. Engine-plane: schedule-dependent, never fingerprinted.
    pub fn sched_totals(&self) -> SchedTotals {
        let mut t = SchedTotals::default();
        for s in &self.shards {
            let st = s.sim.shard_stats();
            t.steals += st.steals;
            t.parks += st.parks;
            t.wakes += st.wakes;
        }
        t.worker_parks = self.worker_parks.load(Ordering::Relaxed);
        t
    }

    /// Ground-truth counters for one flow, summed over shards (a flow's
    /// sends are accounted where its source lives, deliveries where its
    /// sink lives).
    pub fn flow_stats(&self, flow: FlowId) -> FlowStats {
        let mut total = FlowStats::default();
        for s in &self.shards {
            let f = s.sim.flow_stats(flow);
            total.sent_packets += f.sent_packets;
            total.sent_bytes += f.sent_bytes;
            total.delivered_packets += f.delivered_packets;
            total.delivered_bytes += f.delivered_bytes;
            total.dropped_packets += f.dropped_packets;
            total.random_losses += f.random_losses;
        }
        total
    }

    /// Stats for one link, read from the shard that owns its sending
    /// side (queueing, serialization, and loss all happen there).
    pub fn link_stats(&self, id: LinkId) -> LinkStats {
        let from = self.shards[0].sim.link_from(id);
        self.shards[self.owner[from.0 as usize]].sim.link_stats(id)
    }

    /// Runs every shard up to and including `deadline` under the
    /// conservative-lookahead protocol, then returns the new time.
    /// Callable repeatedly with increasing deadlines.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        self.run_slices(deadline, Time::MAX, |_| false)
    }

    /// Runs to `deadline` in epochs of `slice` simulated time on one
    /// persistent worker pool, calling `stop` between epochs; a `true`
    /// return ends the run early. This replaces the serial
    /// slice-and-poll pattern (`run_for(slice)` in a loop), which paid
    /// thread spawn/join per slice — here the pool spans all slices and
    /// only the cheap epoch rendezvous separates them.
    pub fn run_slices(
        &mut self,
        deadline: Time,
        slice: TimeDelta,
        mut stop: impl FnMut(&ShardView<'_>) -> bool,
    ) -> Time {
        assert!(!self.shards.is_empty(), "no shards declared");
        deadline
            .checked_add(1)
            .expect("deadline too close to Time::MAX");
        // Pool sizing: never more workers than shards, and — unless a
        // perturbation seed asks for adversarial oversubscription —
        // never more workers than the host has cores. `--shards 8` on a
        // 1-core box must cost nothing over `--shards 1`: the surplus
        // workers would only time-slice the same core and evict each
        // other's shard working sets. The schedule never affects
        // results, so the cap is invisible outside wall-clock time.
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let threads = self.threads.clamp(1, self.shards.len());
        let threads = if self.perturb.is_some() {
            threads
        } else {
            threads.min(cores)
        };
        let slice = slice.max(1);
        for (i, slot) in self.shards.iter_mut().enumerate() {
            slot.staging.resize_with(self.egress[i].len(), Vec::new);
            // Start every shard's wall clock in the idle phase so
            // lookahead-limited time before the first window is
            // attributed, not lost.
            slot.sim.profiler().enter(Phase::Idle);
        }
        // Move the shards into lockable slots for the pool's lifetime;
        // they are restored (in index order) before returning, so every
        // `&self` accessor keeps working between calls.
        let slots: Vec<Mutex<ShardSlot>> = self.shards.drain(..).map(Mutex::new).collect();
        let engine = Engine {
            slots: &slots,
            clocks: &self.clocks,
            signal_version: &self.signal_version,
            boundaries: &self.boundaries,
            boundary_of_link: &self.boundary_of_link,
            ingress: &self.ingress,
            egress: &self.egress,
            staging_pos: &self.staging_pos,
            successors: &self.successors,
            channels: &self.channels,
            worker_parks: &self.worker_parks,
            perturb: self.perturb,
            // One effective worker means the pool would only trade futex
            // round trips with this thread; run the epochs inline instead.
            // (Perturbation keeps the pool so cross-thread schedules stay
            // exercised.)
            inline: threads == 1 && self.perturb.is_none(),
            sched: Sched::new(slots.len()),
        };
        let mut now = self.now;
        std::thread::scope(|scope| {
            if !engine.inline {
                for w in 0..threads {
                    let engine = &engine;
                    scope.spawn(move || engine.worker(w));
                }
            }
            loop {
                let slice_end = now.saturating_add(slice).min(deadline);
                engine.run_epoch(slice_end + 1);
                now = slice_end;
                if engine.sched.panicked.load(Ordering::Relaxed) || now >= deadline {
                    break;
                }
                if stop(&ShardView { slots: &slots }) {
                    break;
                }
            }
            engine.shutdown();
        });
        for slot in slots {
            let mut slot = slot.into_inner().expect("shard slot poisoned");
            // Close the profiler so the idle tail between a shard
            // finishing and the slowest shard finishing is attributed.
            slot.sim.profiler().finish();
            self.shards.push(slot);
        }
        self.now = self.now.max(now);
        self.now
    }

    /// Runs for an additional `delta` of simulated time.
    pub fn run_for(&mut self, delta: TimeDelta) -> Time {
        let deadline = self.now.saturating_add(delta);
        self.run_until(deadline)
    }
}

/// Per-shard RNG/id-space salt: splitmix64-style odd-constant mix so
/// shard streams are decorrelated but fully determined by (seed, index).
fn mix_seed(seed: u64, shard: usize) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Ctx;
    use crate::packet::{payload, Addr};
    use crate::time::{millis, secs, MILLISECOND};

    /// Sends `count` packets to `dst`, one per millisecond, then records
    /// the arrival time of every echo.
    struct Pinger {
        dst: Addr,
        count: u32,
        sent: u32,
        echoes: Vec<(Time, u32)>,
    }
    impl Agent for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(0, 0);
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            let v = *pkt.payload_as::<u32>().unwrap();
            self.echoes.push((ctx.now(), v));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent < self.count {
                ctx.send(self.dst, 400, FlowId(1), payload(self.sent));
                self.sent += 1;
                ctx.set_timer(MILLISECOND, 0);
            }
        }
    }

    /// Echoes every packet straight back to its source.
    #[derive(Default)]
    struct Echoer {
        got: u32,
    }
    impl Agent for Echoer {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.got += 1;
            let v = *pkt.payload_as::<u32>().unwrap();
            ctx.send(pkt.src, 400, FlowId(2), payload(v));
        }
    }

    /// Two shards joined by one duplex boundary link, echo traffic both
    /// ways. Returns the pinger's echo log and the global counters.
    fn echo_run(threads: usize, perturb: Option<u64>) -> (Vec<(Time, u32)>, SimCounters) {
        let mut sim = ShardedSim::new(7);
        let (s0, s1) = (sim.add_shard(), sim.add_shard());
        sim.set_threads(threads);
        sim.set_perturbation(perturb);
        let a = sim.add_node(s0);
        let b = sim.add_node(s1);
        sim.add_duplex_link(a, b, LinkSpec::new(10e6, millis(5), 64_000));
        let ping = sim.add_agent(a, 1, Box::new(Pinger {
            dst: Addr::new(b, 2),
            count: 50,
            sent: 0,
            echoes: Vec::new(),
        }));
        sim.add_agent(b, 2, Box::new(Echoer::default()));
        sim.run_until(secs(2.0));
        let log = sim.agent::<Pinger>(ping).unwrap().echoes.clone();
        (log, sim.counters())
    }

    #[test]
    fn echoes_cross_the_boundary_both_ways() {
        let (log, counters) = echo_run(1, None);
        assert_eq!(log.len(), 50, "every ping must be echoed back");
        assert_eq!(counters.packets_sent, 100);
        assert_eq!(counters.packets_delivered, 100);
        // One-way: ~5 ms propagation + serialization each direction.
        assert!(log[0].0 >= millis(10));
        // Payloads come back in send order.
        assert!(log.windows(2).all(|w| w[0].1 + 1 == w[1].1));
    }

    #[test]
    fn results_are_identical_for_any_thread_count() {
        let base = echo_run(1, None);
        for threads in [2, 3, 8] {
            let got = echo_run(threads, None);
            assert_eq!(got.0, base.0, "echo log differs at {threads} threads");
            assert_eq!(
                got.1.events_processed, base.1.events_processed,
                "event count differs at {threads} threads"
            );
        }
    }

    #[test]
    fn results_are_identical_under_scheduling_perturbation() {
        let base = echo_run(1, None);
        for (threads, seed) in [(1, 11), (2, 12), (4, 13)] {
            let got = echo_run(threads, Some(seed));
            assert_eq!(
                got.0, base.0,
                "echo log differs at {threads} threads, perturbation {seed}"
            );
            assert_eq!(got.1.events_processed, base.1.events_processed);
        }
    }

    #[test]
    fn packets_forward_across_intermediate_shards() {
        // Three shards in a line: a -> r -> b. The middle shard only
        // forwards, so the packet crosses two boundaries.
        let mut sim = ShardedSim::new(3);
        let (s0, s1, s2) = (sim.add_shard(), sim.add_shard(), sim.add_shard());
        sim.set_threads(3);
        let a = sim.add_node(s0);
        let r = sim.add_node(s1);
        let b = sim.add_node(s2);
        sim.add_duplex_link(a, r, LinkSpec::new(10e6, millis(2), 64_000));
        sim.add_duplex_link(r, b, LinkSpec::new(10e6, millis(2), 64_000));
        let ping = sim.add_agent(a, 1, Box::new(Pinger {
            dst: Addr::new(b, 2),
            count: 10,
            sent: 0,
            echoes: Vec::new(),
        }));
        let echo = sim.add_agent(b, 2, Box::new(Echoer::default()));
        sim.run_until(secs(1.0));
        assert_eq!(sim.agent::<Echoer>(echo).unwrap().got, 10);
        assert_eq!(sim.agent::<Pinger>(ping).unwrap().echoes.len(), 10);
        assert_eq!(sim.flow_stats(FlowId(1)).delivered_packets, 10);
        assert_eq!(sim.flow_stats(FlowId(2)).delivered_packets, 10);
    }

    #[test]
    #[should_panic(expected = "positive propagation delay")]
    fn zero_delay_boundary_link_is_rejected() {
        let mut sim = ShardedSim::new(1);
        let (s0, s1) = (sim.add_shard(), sim.add_shard());
        let a = sim.add_node(s0);
        let b = sim.add_node(s1);
        sim.add_link(a, b, LinkSpec::new(10e6, 0, 64_000));
    }

    #[test]
    #[should_panic(expected = "declare all shards before adding nodes")]
    fn late_shard_declaration_is_rejected() {
        let mut sim = ShardedSim::new(1);
        let s0 = sim.add_shard();
        sim.add_node(s0);
        sim.add_shard();
    }

    #[test]
    fn boundary_seqs_sort_after_local_seqs_and_by_content() {
        let a = boundary_seq(LinkId(3), 0);
        let b = boundary_seq(LinkId(3), 1);
        let c = boundary_seq(LinkId(4), 0);
        assert!(a < b && b < c, "ordered by (link, counter)");
        assert!(a > u64::MAX / 2, "always above realistic local seqs");
    }

    #[test]
    fn run_slices_stop_callback_sees_agents_and_ends_early() {
        let mut sim = ShardedSim::new(21);
        let (s0, s1) = (sim.add_shard(), sim.add_shard());
        sim.set_threads(2);
        let a = sim.add_node(s0);
        let b = sim.add_node(s1);
        sim.add_duplex_link(a, b, LinkSpec::new(10e6, millis(5), 64_000));
        let ping = sim.add_agent(a, 1, Box::new(Pinger {
            dst: Addr::new(b, 2),
            count: 5,
            sent: 0,
            echoes: Vec::new(),
        }));
        sim.add_agent(b, 2, Box::new(Echoer::default()));
        let end = sim.run_slices(secs(60.0), millis(100), |view| {
            view.with_agent::<Pinger, _>(ping, |p| p.echoes.len() >= 5)
                .unwrap()
        });
        assert_eq!(sim.agent::<Pinger>(ping).unwrap().echoes.len(), 5);
        assert!(
            end < secs(1.0),
            "five 1ms-spaced pings echo within the first few 100ms slices"
        );
        assert_eq!(end, sim.now());
    }

    #[test]
    fn successive_run_until_slices_match_one_big_run() {
        let sliced = {
            let mut log = Vec::new();
            let mut sim = ShardedSim::new(9);
            let (s0, s1) = (sim.add_shard(), sim.add_shard());
            let a = sim.add_node(s0);
            let b = sim.add_node(s1);
            sim.add_duplex_link(a, b, LinkSpec::new(10e6, millis(5), 64_000));
            let ping = sim.add_agent(a, 1, Box::new(Pinger {
                dst: Addr::new(b, 2),
                count: 30,
                sent: 0,
                echoes: Vec::new(),
            }));
            sim.add_agent(b, 2, Box::new(Echoer::default()));
            for slice in 1..=8 {
                sim.run_until(millis(250) * slice);
            }
            log.extend(sim.agent::<Pinger>(ping).unwrap().echoes.clone());
            log
        };
        let whole = {
            let mut sim = ShardedSim::new(9);
            let (s0, s1) = (sim.add_shard(), sim.add_shard());
            let a = sim.add_node(s0);
            let b = sim.add_node(s1);
            sim.add_duplex_link(a, b, LinkSpec::new(10e6, millis(5), 64_000));
            let ping = sim.add_agent(a, 1, Box::new(Pinger {
                dst: Addr::new(b, 2),
                count: 30,
                sent: 0,
                echoes: Vec::new(),
            }));
            sim.add_agent(b, 2, Box::new(Echoer::default()));
            sim.run_until(millis(2000));
            sim.agent::<Pinger>(ping).unwrap().echoes.clone()
        };
        assert_eq!(sliced, whole);
    }
}
