//! Static shortest-path routing.
//!
//! Routes are computed once from the link graph with a breadth-first
//! search (hop-count metric), which is sufficient for the dumbbell and
//! chain topologies used by the experiments. The table maps
//! `(from_node, dst_node)` to the outgoing [`LinkId`] of the first hop.

use std::collections::VecDeque;

use crate::packet::{LinkId, NodeId};

/// Next-hop table: `table[from][dst]` is the outgoing link, if reachable.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    num_nodes: usize,
    /// Flattened `num_nodes x num_nodes` matrix.
    next_hop: Vec<Option<LinkId>>,
}

impl RoutingTable {
    /// Computes shortest-hop routes given each link's `(from, to)`.
    ///
    /// # Panics
    /// Panics (naming the link and node) if a link endpoint lies outside
    /// `0..num_nodes`; such a topology cannot have been built through
    /// `Simulator::add_node`/`add_link` and routing over it would index
    /// out of bounds deep inside the search.
    pub fn compute(num_nodes: usize, links: &[(NodeId, NodeId)]) -> Self {
        // Adjacency: per node, outgoing (link, neighbour).
        let mut adj: Vec<Vec<(LinkId, NodeId)>> = vec![Vec::new(); num_nodes];
        for (i, &(from, to)) in links.iter().enumerate() {
            for end in [from, to] {
                assert!(
                    (end.0 as usize) < num_nodes,
                    "link L{i} references unknown node {end} \
                     (topology has {num_nodes} nodes)"
                );
            }
            adj[from.0 as usize].push((LinkId(i as u32), to));
        }

        let mut next_hop = vec![None; num_nodes * num_nodes];
        // BFS from every destination is O(N * (N + E)); topologies here
        // have a handful of nodes so simplicity wins.
        for src in 0..num_nodes {
            let mut dist = vec![u32::MAX; num_nodes];
            let mut first_link = vec![None; num_nodes];
            dist[src] = 0;
            let mut q = VecDeque::new();
            q.push_back(NodeId(src as u32));
            while let Some(u) = q.pop_front() {
                for &(link, v) in &adj[u.0 as usize] {
                    if dist[v.0 as usize] == u32::MAX {
                        dist[v.0 as usize] = dist[u.0 as usize] + 1;
                        first_link[v.0 as usize] = if u.0 as usize == src {
                            Some(link)
                        } else {
                            first_link[u.0 as usize]
                        };
                        q.push_back(v);
                    }
                }
            }
            for dst in 0..num_nodes {
                next_hop[src * num_nodes + dst] = first_link[dst];
            }
        }
        Self { num_nodes, next_hop }
    }

    /// First-hop link from `from` toward `dst`. `None` when unreachable or
    /// when `from == dst` (local delivery needs no link).
    pub fn next_hop(&self, from: NodeId, dst: NodeId) -> Option<LinkId> {
        if from == dst {
            return None;
        }
        self.next_hop
            .get(from.0 as usize * self.num_nodes + dst.0 as usize)
            .copied()
            .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_routes_forward_and_backward() {
        // 0 <-> 1 <-> 2 as two unidirectional links each way.
        let links = vec![
            (NodeId(0), NodeId(1)), // L0
            (NodeId(1), NodeId(0)), // L1
            (NodeId(1), NodeId(2)), // L2
            (NodeId(2), NodeId(1)), // L3
        ];
        let t = RoutingTable::compute(3, &links);
        assert_eq!(t.next_hop(NodeId(0), NodeId(2)), Some(LinkId(0)));
        assert_eq!(t.next_hop(NodeId(1), NodeId(2)), Some(LinkId(2)));
        assert_eq!(t.next_hop(NodeId(2), NodeId(0)), Some(LinkId(3)));
        assert_eq!(t.next_hop(NodeId(1), NodeId(0)), Some(LinkId(1)));
    }

    #[test]
    fn local_delivery_has_no_hop() {
        let t = RoutingTable::compute(2, &[(NodeId(0), NodeId(1))]);
        assert_eq!(t.next_hop(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn unreachable_is_none() {
        let t = RoutingTable::compute(3, &[(NodeId(0), NodeId(1))]);
        assert_eq!(t.next_hop(NodeId(1), NodeId(0)), None);
        assert_eq!(t.next_hop(NodeId(0), NodeId(2)), None);
    }

    #[test]
    #[should_panic(expected = "link L1 references unknown node n5")]
    fn out_of_range_endpoint_names_the_link_and_node() {
        RoutingTable::compute(
            2,
            &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(5))],
        );
    }

    #[test]
    fn dumbbell_routes_through_bottleneck() {
        // Hosts 0,1 -> router 2 == router 3 -> hosts 4,5.
        let mut links = Vec::new();
        for (a, b) in [(0u32, 2u32), (1, 2), (2, 3), (3, 4), (3, 5)] {
            links.push((NodeId(a), NodeId(b)));
            links.push((NodeId(b), NodeId(a)));
        }
        let t = RoutingTable::compute(6, &links);
        // 0 -> 4 goes via its access link (index 0).
        assert_eq!(t.next_hop(NodeId(0), NodeId(4)), Some(LinkId(0)));
        // Router 2 forwards to router 3 over the bottleneck (index 4).
        assert_eq!(t.next_hop(NodeId(2), NodeId(4)), Some(LinkId(4)));
        // Reverse path exists.
        assert!(t.next_hop(NodeId(4), NodeId(0)).is_some());
    }
}
