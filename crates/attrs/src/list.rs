//! Attribute lists: the parameter bundles passed along `CMwritev_attr`
//! calls and callback returns.

use std::borrow::Cow;


use crate::value::AttrValue;

/// An attribute name; usually one of the constants in [`crate::names`].
pub type AttrName = Cow<'static, str>;

/// An ordered list of `<name, value>` tuples.
///
/// Lists are small (a handful of entries), so lookups are linear; the
/// last write to a name wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttrList {
    entries: Vec<(AttrName, AttrValue)>,
}

impl AttrList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, name: &'static str, value: impl Into<AttrValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Inserts or replaces `name`.
    pub fn set(&mut self, name: impl Into<AttrName>, value: impl Into<AttrValue>) {
        let name = name.into();
        let value = value.into();
        for (n, v) in &mut self.entries {
            if *n == name {
                *v = value;
                return;
            }
        }
        self.entries.push((name, value));
    }

    /// Looks up `name`.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.entries
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }

    /// Float view of `name`, if present and numeric.
    pub fn get_float(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(AttrValue::as_float)
    }

    /// Integer view of `name`, if present and numeric.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(AttrValue::as_int)
    }

    /// Boolean view of `name`.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(AttrValue::as_bool)
    }

    /// Removes `name`, returning its value if it was present.
    pub fn remove(&mut self, name: &str) -> Option<AttrValue> {
        let idx = self.entries.iter().position(|(n, _)| n == name)?;
        Some(self.entries.remove(idx).1)
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(n, v)| (n.as_ref(), v))
    }

    /// Merges `other` into `self`; `other`'s values win on conflict.
    pub fn merge(&mut self, other: &AttrList) {
        for (n, v) in &other.entries {
            self.set(n.clone(), v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn set_get_replace() {
        let mut l = AttrList::new();
        l.set(names::ADAPT_PKTSIZE, 0.25);
        assert_eq!(l.get_float(names::ADAPT_PKTSIZE), Some(0.25));
        l.set(names::ADAPT_PKTSIZE, 0.5);
        assert_eq!(l.get_float(names::ADAPT_PKTSIZE), Some(0.5));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn builder_and_contains() {
        let l = AttrList::new()
            .with(names::ADAPT_WHEN, 20i64)
            .with(names::ADAPT_COND_ERATIO, 0.3);
        assert!(l.contains(names::ADAPT_WHEN));
        assert_eq!(l.get_int(names::ADAPT_WHEN), Some(20));
        assert_eq!(l.get_float(names::ADAPT_COND_ERATIO), Some(0.3));
        assert!(!l.contains(names::ADAPT_FREQ));
    }

    #[test]
    fn remove_and_empty() {
        let mut l = AttrList::new().with("x", 1i64);
        assert_eq!(l.remove("x"), Some(AttrValue::Int(1)));
        assert_eq!(l.remove("x"), None);
        assert!(l.is_empty());
    }

    #[test]
    fn merge_overrides() {
        let mut a = AttrList::new().with("k", 1i64).with("only-a", 2i64);
        let b = AttrList::new().with("k", 9i64);
        a.merge(&b);
        assert_eq!(a.get_int("k"), Some(9));
        assert_eq!(a.get_int("only-a"), Some(2));
    }

    #[test]
    fn iter_in_insertion_order() {
        let l = AttrList::new().with("a", 1i64).with("b", 2i64);
        let names: Vec<&str> = l.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
