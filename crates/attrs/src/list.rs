//! Attribute lists: the parameter bundles passed along `CMwritev_attr`
//! calls and callback returns.

use std::borrow::Cow;

use crate::names::{intern, SYM_NONE};
use crate::value::AttrValue;

/// An attribute name; usually one of the constants in [`crate::names`].
pub type AttrName = Cow<'static, str>;

/// An ordered list of `<name, value>` tuples.
///
/// Lists are small (a handful of entries), so lookups are linear; the
/// last write to a name wins. Each entry carries the interned symbol of
/// its name (see [`crate::names::intern`]) so lookups by a well-known
/// name compare one `u16` per entry instead of strings.
#[derive(Debug, Clone, Default)]
pub struct AttrList {
    entries: Vec<(u16, AttrName, AttrValue)>,
}

/// True when an entry tagged `(sym, entry_name)` matches a query
/// `(query_sym, query_name)`: interned symbols decide alone, unknown
/// names fall back to string equality.
#[inline]
fn matches(entry_sym: u16, entry_name: &str, query_sym: u16, query_name: &str) -> bool {
    entry_sym == query_sym && (query_sym != SYM_NONE || entry_name == query_name)
}

impl AttrList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, name: &'static str, value: impl Into<AttrValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Inserts or replaces `name`.
    pub fn set(&mut self, name: impl Into<AttrName>, value: impl Into<AttrValue>) {
        let name = name.into();
        let value = value.into();
        let sym = intern(&name);
        for (s, n, v) in &mut self.entries {
            if matches(*s, n, sym, &name) {
                *v = value;
                return;
            }
        }
        self.entries.push((sym, name, value));
    }

    /// Looks up `name`.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        let sym = intern(name);
        self.entries
            .iter()
            .find_map(|(s, n, v)| matches(*s, n, sym, name).then_some(v))
    }

    /// Float view of `name`, if present and numeric.
    pub fn get_float(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(AttrValue::as_float)
    }

    /// Integer view of `name`, if present and numeric.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(AttrValue::as_int)
    }

    /// Boolean view of `name`.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(AttrValue::as_bool)
    }

    /// Removes `name`, returning its value if it was present.
    pub fn remove(&mut self, name: &str) -> Option<AttrValue> {
        let sym = intern(name);
        let idx = self
            .entries
            .iter()
            .position(|(s, n, _)| matches(*s, n, sym, name))?;
        Some(self.entries.remove(idx).2)
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(_, n, v)| (n.as_ref(), v))
    }

    /// Merges `other` into `self`; `other`'s values win on conflict.
    ///
    /// Entries are matched by their already-interned symbols (strings
    /// only when both sides are unknown names) and names are cloned only
    /// when an entry is actually inserted, not once per probe.
    pub fn merge(&mut self, other: &AttrList) {
        self.entries.reserve(other.entries.len());
        'outer: for (sym, name, value) in &other.entries {
            for (s, n, v) in &mut self.entries {
                if matches(*s, n, *sym, name) {
                    *v = value.clone();
                    continue 'outer;
                }
            }
            self.entries.push((*sym, name.clone(), value.clone()));
        }
    }
}

// Symbols are derived from names, so equality is name/value equality.
impl PartialEq for AttrList {
    fn eq(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|((_, an, av), (_, bn, bv))| an == bn && av == bv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn set_get_replace() {
        let mut l = AttrList::new();
        l.set(names::ADAPT_PKTSIZE, 0.25);
        assert_eq!(l.get_float(names::ADAPT_PKTSIZE), Some(0.25));
        l.set(names::ADAPT_PKTSIZE, 0.5);
        assert_eq!(l.get_float(names::ADAPT_PKTSIZE), Some(0.5));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn builder_and_contains() {
        let l = AttrList::new()
            .with(names::ADAPT_WHEN, 20i64)
            .with(names::ADAPT_COND_ERATIO, 0.3);
        assert!(l.contains(names::ADAPT_WHEN));
        assert_eq!(l.get_int(names::ADAPT_WHEN), Some(20));
        assert_eq!(l.get_float(names::ADAPT_COND_ERATIO), Some(0.3));
        assert!(!l.contains(names::ADAPT_FREQ));
    }

    #[test]
    fn remove_and_empty() {
        let mut l = AttrList::new().with("x", 1i64);
        assert_eq!(l.remove("x"), Some(AttrValue::Int(1)));
        assert_eq!(l.remove("x"), None);
        assert!(l.is_empty());
    }

    #[test]
    fn merge_overrides() {
        let mut a = AttrList::new().with("k", 1i64).with("only-a", 2i64);
        let b = AttrList::new().with("k", 9i64);
        a.merge(&b);
        assert_eq!(a.get_int("k"), Some(9));
        assert_eq!(a.get_int("only-a"), Some(2));
    }

    #[test]
    fn merge_matches_interned_and_unknown_names() {
        let mut a = AttrList::new()
            .with(names::NET_RTT_MS, 10.0)
            .with("custom", 1i64);
        let mut b = AttrList::new();
        // Heap-allocated copies of the names: must still match by symbol
        // (well-known) and by string (unknown).
        b.set(names::NET_RTT_MS.to_string(), 25.0);
        b.set("custom".to_string(), 2i64);
        b.set(names::NET_CWND, 4i64);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get_float(names::NET_RTT_MS), Some(25.0));
        assert_eq!(a.get_int("custom"), Some(2));
        assert_eq!(a.get_int(names::NET_CWND), Some(4));
    }

    #[test]
    fn lookup_by_heap_copy_of_known_name() {
        let l = AttrList::new().with(names::NET_ERROR_RATIO, 0.1);
        let key = String::from("NET_ERROR_RATIO");
        assert_eq!(l.get_float(&key), Some(0.1));
    }

    #[test]
    fn iter_in_insertion_order() {
        let l = AttrList::new().with("a", 1i64).with("b", 2i64);
        let names: Vec<&str> = l.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
