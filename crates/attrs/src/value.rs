//! Attribute values.

use std::fmt;


/// The value half of an ECho `<name, value>` quality-attribute tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string.
    Str(String),
}

impl AttrValue {
    /// Integer view; `Float` values are truncated, others are `None`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            AttrValue::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Float view; `Int` values are widened, others are `None`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(f) => Some(*f),
            AttrValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(AttrValue::Int(3).as_float(), Some(3.0));
        assert_eq!(AttrValue::Float(2.9).as_int(), Some(2));
        assert_eq!(AttrValue::Bool(true).as_bool(), Some(true));
        assert_eq!(AttrValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(AttrValue::Bool(true).as_int(), None);
        assert_eq!(AttrValue::Int(1).as_str(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(AttrValue::from(5i64), AttrValue::Int(5));
        assert_eq!(AttrValue::from(0.5), AttrValue::Float(0.5));
        assert_eq!(AttrValue::from("hi"), AttrValue::Str("hi".into()));
        assert_eq!(AttrValue::from(7u32), AttrValue::Int(7));
    }

    #[test]
    fn display() {
        assert_eq!(AttrValue::Int(4).to_string(), "4");
        assert_eq!(AttrValue::Bool(false).to_string(), "false");
    }
}
