//! Well-known attribute names from the paper (§2.3.2) plus the network
//! metrics IQ-RUDP exports to applications (§2.1).

/// Degree of a frequency adaptation: the factor by which the application
/// reduced its message frequency (`f64` in `(0, 1)`, fraction removed).
pub const ADAPT_FREQ: &str = "ADAPT_FREQ";

/// Degree of a reliability adaptation: the fraction of packets the
/// application is now leaving unmarked (`f64` in `[0, 1]`).
pub const ADAPT_MARK: &str = "ADAPT_MARK";

/// Degree of a resolution adaptation: the fraction by which per-message
/// size was reduced (`rate_chg`, `f64` in `(0, 1)`).
pub const ADAPT_PKTSIZE: &str = "ADAPT_PKTSIZE";

/// Whether/when the application will adapt: `Int` number of messages
/// until the pending adaptation takes effect (0 = now, -1 = will not
/// adapt).
pub const ADAPT_WHEN: &str = "ADAPT_WHEN";

/// Error ratio the application observed when it *decided* to adapt
/// (`f64`); lets IQ-RUDP correct for network drift during a delayed
/// adaptation (§3.5 scheme 3, Eq. 1).
pub const ADAPT_COND_ERATIO: &str = "ADAPT_COND_ERATIO";

/// Average data rate (KB/s) the application assumed when adapting.
pub const ADAPT_COND_RATE: &str = "ADAPT_COND_RATE";

/// Exported metric: smoothed loss (error) ratio over the last measuring
/// period (`f64` in `[0, 1]`).
pub const NET_ERROR_RATIO: &str = "NET_ERROR_RATIO";

/// Exported metric: smoothed round-trip time in milliseconds.
pub const NET_RTT_MS: &str = "NET_RTT_MS";

/// Exported metric: current congestion window, in segments.
pub const NET_CWND: &str = "NET_CWND";

/// Exported metric: sender goodput estimate, KB/s.
pub const NET_RATE_KBPS: &str = "NET_RATE_KBPS";

/// Receiver loss tolerance for adaptive reliability (`f64` in `[0, 1]`).
pub const RELIABILITY_TOLERANCE: &str = "RELIABILITY_TOLERANCE";

/// Callback registration: upper error-ratio threshold (`f64`).
pub const CB_ERATIO_UPPER: &str = "CB_ERATIO_UPPER";

/// Callback registration: lower error-ratio threshold (`f64`).
pub const CB_ERATIO_LOWER: &str = "CB_ERATIO_LOWER";

/// Every well-known name, in symbol order: `ALL[sym as usize]` recovers
/// the string for an interned symbol.
pub const ALL: [&str; 13] = [
    ADAPT_FREQ,
    ADAPT_MARK,
    ADAPT_PKTSIZE,
    ADAPT_WHEN,
    ADAPT_COND_ERATIO,
    ADAPT_COND_RATE,
    NET_ERROR_RATIO,
    NET_RTT_MS,
    NET_CWND,
    NET_RATE_KBPS,
    RELIABILITY_TOLERANCE,
    CB_ERATIO_UPPER,
    CB_ERATIO_LOWER,
];

/// Symbol id meaning "not a well-known name" (fall back to string
/// comparison).
pub const SYM_NONE: u16 = u16::MAX;

/// Interns `name` to a small symbol id, or [`SYM_NONE`] for names not in
/// [`ALL`].
///
/// Callers that pass the `names::*` constants hit the pointer-equality
/// fast path: the `&'static str`s in `ALL` are the same statics the
/// constants reference, so no bytes are compared on the hot path
/// (attribute export runs once per measuring period per connection).
pub fn intern(name: &str) -> u16 {
    for (i, known) in ALL.iter().enumerate() {
        if std::ptr::eq(name as *const str, *known as *const str) {
            return i as u16;
        }
    }
    for (i, known) in ALL.iter().enumerate() {
        if name == *known {
            return i as u16;
        }
    }
    SYM_NONE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_roundtrips_every_known_name() {
        for (i, name) in ALL.iter().enumerate() {
            assert_eq!(intern(name), i as u16);
            // A heap copy (different pointer) must intern identically.
            let heap = String::from(*name);
            assert_eq!(intern(&heap), i as u16);
        }
    }

    #[test]
    fn intern_rejects_unknown_names() {
        assert_eq!(intern("NOT_A_REAL_ATTR"), SYM_NONE);
        assert_eq!(intern(""), SYM_NONE);
    }
}
