//! # iq-attrs
//!
//! ECho-style **quality attributes**: lightweight `<name, value>` tuples
//! that carry performance information across the application/transport
//! boundary (paper §2.2). Attributes travel two ways:
//!
//! * the application attaches `ADAPT_*` attributes to sends (or callback
//!   returns) to describe its adaptations to IQ-RUDP, and
//! * IQ-RUDP exports `NET_*` metrics the application can query at any
//!   time during a connection's lifetime.

#![warn(missing_docs)]

pub mod list;
pub mod names;
pub mod service;
pub mod value;

pub use list::{AttrList, AttrName};
pub use service::{AttrService, Versioned, WatchGuard};
pub use value::AttrValue;
