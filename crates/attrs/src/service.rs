//! The attribute service: a small shared registry through which the
//! application and the transport exchange quality information without a
//! direct call dependency (the paper's "distributed service" for
//! registration, update, and query of ECho attributes).

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::list::AttrName;
use crate::value::AttrValue;

/// A monotonically increasing version per attribute, so readers can tell
/// whether a value changed since they last looked.
#[derive(Debug, Clone, PartialEq)]
pub struct Versioned {
    /// The current value.
    pub value: AttrValue,
    /// Bumped on every update.
    pub version: u64,
}

type SharedWatchFn = Arc<dyn Fn(&AttrValue) + Send + Sync>;

#[derive(Default)]
struct Inner {
    entries: HashMap<AttrName, Versioned>,
    watchers: HashMap<AttrName, Vec<(u64, SharedWatchFn)>>,
    next_watch_id: u64,
}

/// RAII registration handle returned by [`AttrService::subscribe`]: the
/// watcher stays registered for as long as the guard lives and is
/// removed when the guard drops, so removal can never be forgotten and
/// never races with a stale id.
#[must_use = "dropping the guard immediately unregisters the watcher"]
pub struct WatchGuard {
    inner: Arc<RwLock<Inner>>,
    id: u64,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        remove_watcher(&self.inner, self.id);
    }
}

impl std::fmt::Debug for WatchGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchGuard").field("id", &self.id).finish()
    }
}

fn remove_watcher(inner: &RwLock<Inner>, id: u64) -> bool {
    let mut g = inner.write().unwrap_or_else(|e| e.into_inner());
    for ws in g.watchers.values_mut() {
        if let Some(idx) = ws.iter().position(|(wid, _)| *wid == id) {
            drop(ws.remove(idx));
            return true;
        }
    }
    false
}

/// Shared attribute registry. Cheap to clone; clones view the same state.
#[derive(Clone, Default)]
pub struct AttrService {
    inner: Arc<RwLock<Inner>>,
}

impl AttrService {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // Lock poisoning only happens if a watcher panicked mid-update; the
    // registry itself is still consistent, so recover the guard.
    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers or updates `name`, bumping its version and invoking any
    /// watchers registered for it. Returns the new version.
    pub fn update(&self, name: impl Into<AttrName>, value: impl Into<AttrValue>) -> u64 {
        let name = name.into();
        let value = value.into();
        let mut g = self.write();
        let entry = g
            .entries
            .entry(name.clone())
            .and_modify(|v| v.version += 1)
            .or_insert(Versioned {
                value: AttrValue::Int(0),
                version: 1,
            });
        entry.value = value.clone();
        let version = entry.version;
        // Snapshot the matching watchers and release the lock before
        // invoking them: callbacks may re-enter the service (query,
        // update another attribute, even subscribe) without deadlocking.
        // Each watcher sees the value of the update that triggered it;
        // under concurrent updates of the same attribute, callback
        // delivery order between the two updates is unspecified.
        let to_call: Vec<SharedWatchFn> = g
            .watchers
            .get(&name)
            .map(|ws| ws.iter().map(|(_, f)| Arc::clone(f)).collect())
            .unwrap_or_default();
        drop(g);
        for f in &to_call {
            f(&value);
        }
        version
    }

    fn register(&self, name: AttrName, f: SharedWatchFn) -> u64 {
        let mut g = self.write();
        g.next_watch_id += 1;
        let id = g.next_watch_id;
        g.watchers.entry(name).or_default().push((id, f));
        id
    }

    /// Registers a callback invoked on every update of `name` — the
    /// paper's attribute-based callback registration (§2.2: "the
    /// application registers for call-backs from IQ-RUDP using
    /// attributes"). The watcher lives until the returned [`WatchGuard`]
    /// is dropped. Callbacks run outside the registry lock, so they may
    /// call back into the service.
    pub fn subscribe(
        &self,
        name: impl Into<AttrName>,
        f: impl Fn(&AttrValue) + Send + Sync + 'static,
    ) -> WatchGuard {
        let id = self.register(name.into(), Arc::new(f));
        WatchGuard {
            inner: Arc::clone(&self.inner),
            id,
        }
    }

    /// Queries the current value of `name`.
    pub fn query(&self, name: &str) -> Option<AttrValue> {
        self.read().entries.get(name).map(|v| v.value.clone())
    }

    /// Queries value + version together.
    pub fn query_versioned(&self, name: &str) -> Option<Versioned> {
        self.read().entries.get(name).cloned()
    }

    /// Float view of `name`.
    pub fn query_float(&self, name: &str) -> Option<f64> {
        self.query(name).and_then(|v| v.as_float())
    }

    /// Returns the value only if its version is newer than `seen`,
    /// supporting cheap change polling.
    pub fn changed_since(&self, name: &str, seen: u64) -> Option<Versioned> {
        self.read()
            .entries
            .get(name)
            .filter(|v| v.version > seen)
            .cloned()
    }

    /// Removes `name`; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.write().entries.remove(name).is_some()
    }

    /// Number of registered attributes.
    pub fn len(&self) -> usize {
        self.read().entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn update_and_query() {
        let s = AttrService::new();
        assert!(s.query(names::NET_ERROR_RATIO).is_none());
        s.update(names::NET_ERROR_RATIO, 0.12);
        assert_eq!(s.query_float(names::NET_ERROR_RATIO), Some(0.12));
    }

    #[test]
    fn versions_bump_on_update() {
        let s = AttrService::new();
        assert_eq!(s.update("x", 1i64), 1);
        assert_eq!(s.update("x", 2i64), 2);
        let v = s.query_versioned("x").unwrap();
        assert_eq!(v.version, 2);
        assert_eq!(v.value, AttrValue::Int(2));
    }

    #[test]
    fn changed_since_filters() {
        let s = AttrService::new();
        s.update("x", 1i64);
        assert!(s.changed_since("x", 0).is_some());
        assert!(s.changed_since("x", 1).is_none());
        s.update("x", 2i64);
        assert!(s.changed_since("x", 1).is_some());
    }

    #[test]
    fn clones_share_state() {
        let a = AttrService::new();
        let b = a.clone();
        a.update("k", 5i64);
        assert_eq!(b.query_float("k"), Some(5.0));
        assert!(b.remove("k"));
        assert!(a.is_empty());
    }

    #[test]
    fn watchers_fire_on_update_and_unregister_on_guard_drop() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let s = AttrService::new();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let guard = s.subscribe(names::NET_ERROR_RATIO, move |v| {
            assert!(v.as_float().is_some());
            h.fetch_add(1, Ordering::SeqCst);
        });
        s.update(names::NET_ERROR_RATIO, 0.1);
        s.update(names::NET_ERROR_RATIO, 0.2);
        s.update(names::NET_RTT_MS, 30.0); // different attribute: no hit
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        drop(guard);
        s.update(names::NET_ERROR_RATIO, 0.3);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn multiple_watchers_on_one_attribute() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let s = AttrService::new();
        let hits = Arc::new(AtomicU64::new(0));
        let guards: Vec<WatchGuard> = (0..3)
            .map(|_| {
                let h = hits.clone();
                s.subscribe("x", move |_| {
                    h.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        s.update("x", 1i64);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        drop(guards);
        s.update("x", 2i64);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn watchers_may_reenter_the_service() {
        // Callbacks run outside the registry lock, so a watcher can
        // query and even update other attributes from inside the
        // notification without deadlocking.
        let s = AttrService::new();
        let s2 = s.clone();
        let _g = s.subscribe(names::NET_ERROR_RATIO, move |v| {
            let e = v.as_float().unwrap();
            assert_eq!(s2.query_float(names::NET_ERROR_RATIO), Some(e));
            s2.update("derived", e * 2.0);
        });
        s.update(names::NET_ERROR_RATIO, 0.25);
        assert_eq!(s.query_float("derived"), Some(0.5));
    }

    #[test]
    fn concurrent_updates_do_not_lose_writes() {
        let s = AttrService::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        s.update(format!("k{t}"), i as i64);
                    }
                });
            }
        });
        assert_eq!(s.len(), 4);
        for t in 0..4 {
            assert_eq!(s.query_float(&format!("k{t}")), Some(99.0));
        }
    }
}
