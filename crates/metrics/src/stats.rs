//! Online scalar statistics (Welford's algorithm).


/// Numerically stable online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average, as used by RTT estimators.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; larger
    /// alpha weights recent samples more.
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha: alpha.clamp(1e-6, 1.0),
            value: None,
        }
    }

    /// Feeds one sample and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any sample has been seen.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current average or `default` when no samples have been seen.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn empty_welford_is_zeroes() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        e.push(0.0);
        for _ in 0..30 {
            e.push(10.0);
        }
        assert!((e.get().unwrap() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn ewma_first_sample_initializes() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.push(42.0), 42.0);
        assert_eq!(e.get_or(0.0), 42.0);
    }
}
