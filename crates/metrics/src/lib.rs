//! # iq-metrics
//!
//! Measurement plumbing for the IQ-RUDP reproduction: online statistics,
//! per-flow receiver metrics matching the paper's table columns, time
//! series for the figures, and plain-text table rendering.

#![warn(missing_docs)]

pub mod flow;
pub mod plot;
pub mod series;
pub mod stats;
pub mod table;

pub use flow::FlowMetrics;
pub use plot::{bar_chart, line_plot, PlotConfig};
pub use series::TimeSeries;
pub use stats::{Ewma, Welford};
pub use table::{fmt, Table};
