//! Per-flow receiver metrics matching the columns of the paper's tables:
//! duration, throughput, message inter-arrival ("delay"), and the
//! deviation of inter-arrival ("jitter") — overall and for tagged
//! (must-deliver) messages only.


use crate::series::TimeSeries;
use crate::stats::Welford;

/// Accumulates arrivals at a receiving application.
#[derive(Debug, Clone, Default)]
pub struct FlowMetrics {
    first_arrival_ns: Option<u64>,
    last_arrival_ns: u64,
    prev_arrival_ns: Option<u64>,
    prev_tagged_ns: Option<u64>,
    bytes: u64,
    messages: u64,
    tagged_messages: u64,
    inter_arrival: Welford,
    tagged_inter_arrival: Welford,
    /// Per-message |inter-arrival - mean so far| series for Figures 2/3.
    jitter_series: TimeSeries,
    /// Summed one-way latency (send → deliver) in nanoseconds. An
    /// integer add keeps this off the floating-point hot path; the mean
    /// is derived on read.
    latency_sum_ns: u64,
}

impl FlowMetrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivered message.
    ///
    /// `sent_at_ns` is when the sender emitted it (for one-way latency);
    /// `tagged` marks must-deliver messages (§3.3 "tagged packets").
    pub fn on_message(&mut self, now_ns: u64, sent_at_ns: u64, bytes: u64, tagged: bool) {
        if self.first_arrival_ns.is_none() {
            self.first_arrival_ns = Some(now_ns);
        }
        self.last_arrival_ns = now_ns;
        self.bytes += bytes;
        self.messages += 1;
        self.latency_sum_ns += now_ns.saturating_sub(sent_at_ns);

        if let Some(prev) = self.prev_arrival_ns {
            self.record_gap(now_ns, prev);
        }
        self.prev_arrival_ns = Some(now_ns);

        if tagged {
            self.tagged_messages += 1;
            if let Some(prev) = self.prev_tagged_ns {
                self.tagged_inter_arrival.push((now_ns - prev) as f64 * 1e-9);
            }
            self.prev_tagged_ns = Some(now_ns);
        }
    }

    /// Feeds one inter-arrival gap to both consumers from a single
    /// computation: the Welford accumulator behind the tables'
    /// delay/jitter columns and the per-message series behind
    /// Figures 2/3. Keeping them in one place guarantees they can never
    /// disagree on count or value — a same-nanosecond arrival (gap 0)
    /// lands in both, once.
    fn record_gap(&mut self, now_ns: u64, prev_ns: u64) {
        let gap_s = (now_ns.saturating_sub(prev_ns)) as f64 * 1e-9;
        self.inter_arrival.push(gap_s);
        // Jitter sample: absolute deviation of this gap from the mean
        // gap so far (including this gap), in milliseconds; mirrors the
        // per-packet jitter plots of Figures 2 and 3.
        let dev_ms = (gap_s - self.inter_arrival.mean()).abs() * 1e3;
        self.jitter_series.record(now_ns, dev_ms);
    }

    /// Seconds from first to last arrival.
    pub fn duration_s(&self) -> f64 {
        match self.first_arrival_ns {
            Some(first) => (self.last_arrival_ns - first) as f64 / 1e9,
            None => 0.0,
        }
    }

    /// Average goodput in KB/s over the active period.
    pub fn throughput_kbps(&self) -> f64 {
        let d = self.duration_s();
        if d <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1000.0 / d
    }

    /// Total delivered messages.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Delivered messages that were tagged.
    pub fn tagged_messages(&self) -> u64 {
        self.tagged_messages
    }

    /// Total delivered bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean message inter-arrival in seconds (the tables' "Inter-arrival"
    /// / "Delay" column).
    pub fn inter_arrival_s(&self) -> f64 {
        self.inter_arrival.mean()
    }

    /// Standard deviation of inter-arrival in seconds (the "Jitter"
    /// column).
    pub fn jitter_s(&self) -> f64 {
        self.inter_arrival.stddev()
    }

    /// Mean inter-arrival of tagged messages, seconds.
    pub fn tagged_inter_arrival_s(&self) -> f64 {
        self.tagged_inter_arrival.mean()
    }

    /// Standard deviation of tagged inter-arrival, seconds.
    pub fn tagged_jitter_s(&self) -> f64 {
        self.tagged_inter_arrival.stddev()
    }

    /// Mean one-way message latency, seconds.
    pub fn latency_s(&self) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        self.latency_sum_ns as f64 / self.messages as f64 * 1e-9
    }

    /// The per-message jitter series (Figures 2/3).
    pub fn jitter_series(&self) -> &TimeSeries {
        &self.jitter_series
    }

    /// Percentage of `offered` messages that were delivered.
    pub fn delivered_pct(&self, offered: u64) -> f64 {
        if offered == 0 {
            return 0.0;
        }
        100.0 * self.messages as f64 / offered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn uniform_arrivals_have_zero_jitter() {
        let mut m = FlowMetrics::new();
        for i in 0..10u64 {
            m.on_message(i * 10 * MS, i * 10 * MS, 1000, false);
        }
        assert_eq!(m.messages(), 10);
        assert!((m.inter_arrival_s() - 0.010).abs() < 1e-9);
        assert!(m.jitter_s() < 1e-9);
        assert!((m.duration_s() - 0.090).abs() < 1e-9);
    }

    #[test]
    fn throughput_counts_bytes_over_duration() {
        let mut m = FlowMetrics::new();
        m.on_message(0, 0, 50_000, false);
        m.on_message(1_000 * MS, 0, 50_000, false);
        // 100 KB over 1 s.
        assert!((m.throughput_kbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn tagged_stats_are_separate() {
        let mut m = FlowMetrics::new();
        // Tagged every 20 ms, untagged in between.
        for i in 0..20u64 {
            m.on_message(i * 10 * MS, 0, 100, i % 2 == 0);
        }
        assert_eq!(m.tagged_messages(), 10);
        assert!((m.tagged_inter_arrival_s() - 0.020).abs() < 1e-9);
        assert!((m.inter_arrival_s() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn jitter_series_tracks_irregularity() {
        let mut m = FlowMetrics::new();
        let times = [0u64, 10, 20, 60, 70, 80]; // one 40 ms gap
        for &t in &times {
            m.on_message(t * MS, 0, 100, false);
        }
        assert_eq!(m.jitter_series().len(), times.len() - 1);
        let peak = m
            .jitter_series()
            .values()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(peak > 10.0, "the 40 ms gap should spike jitter, got {peak}");
    }

    #[test]
    fn same_nanosecond_arrivals_keep_series_in_step() {
        // A second message in the same nanosecond is a zero gap, not a
        // skipped sample: the inter-arrival accumulator and the jitter
        // series must both record it, keeping their counts equal.
        let mut m = FlowMetrics::new();
        m.on_message(10 * MS, 0, 100, false);
        m.on_message(10 * MS, 0, 100, false); // same instant
        m.on_message(20 * MS, 0, 100, false);
        assert_eq!(m.messages(), 3);
        assert_eq!(m.jitter_series().len(), 2);
        // Gaps are 0 ms and 10 ms → mean 5 ms.
        assert!((m.inter_arrival_s() - 0.005).abs() < 1e-12);
        // The second jitter sample deviates from the updated mean:
        // |10 ms − 5 ms| = 5 ms.
        let last = m.jitter_series().points.last().unwrap();
        assert_eq!(last.0, 20 * MS);
        assert!((last.1 - 5.0).abs() < 1e-9);
        // First sample: |0 − 0| = 0.
        assert_eq!(m.jitter_series().points[0], (10 * MS, 0.0));
    }

    #[test]
    fn delivered_pct() {
        let mut m = FlowMetrics::new();
        m.on_message(0, 0, 1, false);
        m.on_message(1, 0, 1, false);
        assert!((m.delivered_pct(4) - 50.0).abs() < 1e-9);
        assert_eq!(m.delivered_pct(0), 0.0);
    }

    #[test]
    fn latency_uses_sent_timestamps() {
        let mut m = FlowMetrics::new();
        m.on_message(30 * MS, 0, 1, false);
        m.on_message(60 * MS, 20 * MS, 1, false);
        // Latencies 30 ms and 40 ms → mean 35 ms.
        assert!((m.latency_s() - 0.035).abs() < 1e-9);
    }
}
