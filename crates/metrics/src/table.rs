//! Plain-text table rendering for the experiment harness, so each
//! reproduction prints rows shaped like the paper's tables.

/// A fixed-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; panics if the arity differs from the header.
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals, trimming noise.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Name", "Value"]);
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "22.5"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Columns align: "Value" starts at the same offset in all rows.
        let col = lines[1].find("Value").unwrap();
        assert_eq!(&lines[4][col..col + 4], "22.5");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
