//! Minimal SVG rendering for the paper's figures: line plots of
//! [`TimeSeries`] (Figures 1–3) and grouped bar charts (Figure 4).
//! No dependencies; the output opens in any browser.

use std::fmt::Write as _;

use crate::series::TimeSeries;

/// Styling and geometry of a plot.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    /// Title drawn above the axes.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Downsample series to at most this many points (0 = no limit).
    pub max_points: usize,
}

impl PlotConfig {
    /// A sensible default for the repository's figures.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            width: 720,
            height: 420,
            max_points: 2000,
        }
    }
}

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;
const SERIES_COLORS: [&str; 4] = ["#1f6fb2", "#c44f4f", "#3a9a5c", "#8a62b8"];

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    // NaN bounds must also land here, hence partial_cmp over `<=`.
    if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) || n == 0 {
        return vec![lo];
    }
    let span = hi - lo;
    let raw = span / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| span / s <= n as f64)
        .unwrap_or(mag * 10.0);
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 1.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.3}", v)
    }
}

fn svg_header(out: &mut String, cfg: &PlotConfig) {
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">
<rect width="{w}" height="{h}" fill="white"/>
<text x="{cx}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{title}</text>
"#,
        w = cfg.width,
        h = cfg.height,
        cx = cfg.width / 2,
        title = cfg.title,
    );
}

fn svg_axes(
    out: &mut String,
    cfg: &PlotConfig,
    (x_lo, x_hi): (f64, f64),
    (y_lo, y_hi): (f64, f64),
) -> impl Fn(f64, f64) -> (f64, f64) {
    let pw = f64::from(cfg.width) - MARGIN_L - MARGIN_R;
    let ph = f64::from(cfg.height) - MARGIN_T - MARGIN_B;
    let x_span = (x_hi - x_lo).max(1e-12);
    let y_span = (y_hi - y_lo).max(1e-12);
    let project = move |x: f64, y: f64| {
        (
            MARGIN_L + (x - x_lo) / x_span * pw,
            MARGIN_T + ph - (y - y_lo) / y_span * ph,
        )
    };
    // Frame.
    let _ = writeln!(
        out,
        r##"<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="none" stroke="#444"/>"##,
        x = MARGIN_L,
        y = MARGIN_T,
        w = pw,
        h = ph,
    );
    // Ticks and grid.
    for t in nice_ticks(x_lo, x_hi, 6) {
        let (px, _) = project(t, y_lo);
        let _ = writeln!(
            out,
            r##"<line x1="{px}" y1="{y0}" x2="{px}" y2="{y1}" stroke="#ddd"/><text x="{px}" y="{ty}" text-anchor="middle" font-size="11">{label}</text>"##,
            y0 = MARGIN_T,
            y1 = MARGIN_T + ph,
            ty = MARGIN_T + ph + 16.0,
            label = fmt_tick(t),
        );
    }
    for t in nice_ticks(y_lo, y_hi, 5) {
        let (_, py) = project(x_lo, t);
        let _ = writeln!(
            out,
            r##"<line x1="{x0}" y1="{py}" x2="{x1}" y2="{py}" stroke="#ddd"/><text x="{tx}" y="{typ}" text-anchor="end" font-size="11">{label}</text>"##,
            x0 = MARGIN_L,
            x1 = MARGIN_L + pw,
            tx = MARGIN_L - 6.0,
            typ = py + 4.0,
            label = fmt_tick(t),
        );
    }
    // Axis labels.
    let _ = write!(
        out,
        r#"<text x="{cx}" y="{by}" text-anchor="middle" font-size="12">{xl}</text>
<text x="14" y="{cy}" text-anchor="middle" font-size="12" transform="rotate(-90 14 {cy})">{yl}</text>
"#,
        cx = MARGIN_L + pw / 2.0,
        by = f64::from(cfg.height) - 10.0,
        cy = MARGIN_T + ph / 2.0,
        xl = cfg.x_label,
        yl = cfg.y_label,
    );
    project
}

/// Renders one or more time series as an SVG line plot. The x axis is
/// the sample index (the figures plot "per packet" series).
pub fn line_plot(cfg: &PlotConfig, series: &[(&str, &TimeSeries)]) -> String {
    let mut out = String::new();
    svg_header(&mut out, cfg);
    let prepared: Vec<(&str, TimeSeries)> = series
        .iter()
        .map(|&(name, s)| (name, s.downsample(cfg.max_points)))
        .collect();
    let x_hi = prepared
        .iter()
        .map(|(_, s)| s.len())
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let y_hi = prepared
        .iter()
        .flat_map(|(_, s)| s.values().collect::<Vec<_>>())
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-9);
    let project = svg_axes(&mut out, cfg, (0.0, x_hi), (0.0, y_hi * 1.05));
    for (i, (name, s)) in prepared.iter().enumerate() {
        let color = SERIES_COLORS[i % SERIES_COLORS.len()];
        let mut path = String::new();
        for (j, v) in s.values().enumerate() {
            let (px, py) = project(j as f64, v);
            let _ = write!(path, "{}{px:.1},{py:.1} ", if j == 0 { "M" } else { "L" });
        }
        let _ = write!(
            out,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.2"/>
<text x="{lx}" y="{ly}" font-size="12" fill="{color}">{name}</text>
"#,
            lx = MARGIN_L + 10.0,
            ly = MARGIN_T + 16.0 + 16.0 * i as f64,
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders grouped bars: one group per label, one bar per series.
pub fn bar_chart(cfg: &PlotConfig, labels: &[String], series: &[(&str, Vec<f64>)]) -> String {
    let mut out = String::new();
    svg_header(&mut out, cfg);
    let y_hi = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-9);
    let y_lo = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::min);
    let project = svg_axes(
        &mut out,
        cfg,
        (0.0, labels.len() as f64),
        (y_lo * 1.1, y_hi * 1.1),
    );
    let group_w = 1.0;
    let bar_w = group_w * 0.7 / series.len().max(1) as f64;
    for (gi, label) in labels.iter().enumerate() {
        for (si, (_, values)) in series.iter().enumerate() {
            let v = values.get(gi).copied().unwrap_or(0.0);
            let x = gi as f64 + 0.15 + si as f64 * bar_w;
            let (px0, py_v) = project(x, v.max(0.0));
            let (px1, py_0) = project(x + bar_w, v.min(0.0));
            let color = SERIES_COLORS[si % SERIES_COLORS.len()];
            let _ = writeln!(
                out,
                r#"<rect x="{px0:.1}" y="{py_v:.1}" width="{w:.1}" height="{h:.1}" fill="{color}"/>"#,
                w = px1 - px0,
                h = (py_0 - py_v).abs().max(0.5),
            );
        }
        let (cx, _) = project(gi as f64 + 0.5, 0.0);
        let _ = writeln!(
            out,
            r#"<text x="{cx:.1}" y="{ty}" text-anchor="middle" font-size="11">{label}</text>"#,
            ty = f64::from(cfg.height) - MARGIN_B + 30.0,
        );
    }
    for (si, (name, _)) in series.iter().enumerate() {
        let color = SERIES_COLORS[si % SERIES_COLORS.len()];
        let _ = writeln!(
            out,
            r#"<text x="{lx}" y="{ly}" font-size="12" fill="{color}">{name}</text>"#,
            lx = MARGIN_L + 10.0,
            ly = MARGIN_T + 16.0 + 16.0 * si as f64,
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> TimeSeries {
        let mut s = TimeSeries::new();
        for i in 0..n {
            s.record(i as u64, (i as f64 * 0.3).sin().abs() * 10.0);
        }
        s
    }

    #[test]
    fn line_plot_is_wellformed_svg() {
        let cfg = PlotConfig::new("Test", "packet", "jitter (ms)");
        let s1 = series(500);
        let s2 = series(300);
        let svg = line_plot(&cfg, &[("IQ-RUDP", &s1), ("RUDP", &s2)]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("IQ-RUDP"));
        assert!(svg.contains("jitter (ms)"));
    }

    #[test]
    fn line_plot_downsamples_large_series() {
        let mut cfg = PlotConfig::new("T", "x", "y");
        cfg.max_points = 100;
        let s = series(10_000);
        let svg = line_plot(&cfg, &[("s", &s)]);
        // Path has ~100 points, not 10k: count coordinate pairs.
        let path = svg.split("d=\"").nth(1).unwrap().split('"').next().unwrap();
        assert!(path.split_whitespace().count() <= 110);
    }

    #[test]
    fn bar_chart_draws_all_groups() {
        let cfg = PlotConfig::new("Fig 4", "iperf", "%");
        let svg = bar_chart(
            &cfg,
            &["12M".into(), "16M".into(), "18M".into()],
            &[
                ("thpt gain", vec![6.0, 15.0, 25.0]),
                ("jitter red.", vec![20.0, 50.0, 76.0]),
            ],
        );
        assert_eq!(svg.matches("<rect").count(), 1 + 1 + 6); // bg + frame + bars
        assert!(svg.contains("12M") && svg.contains("18M"));
    }

    #[test]
    fn negative_bars_render() {
        let cfg = PlotConfig::new("F", "x", "y");
        let svg = bar_chart(&cfg, &["a".into()], &[("v", vec![-5.0])]);
        assert!(svg.contains("<rect"));
    }

    #[test]
    fn ticks_are_nice() {
        let t = nice_ticks(0.0, 100.0, 5);
        assert!(t.contains(&0.0) || t.contains(&20.0));
        assert!(t.len() <= 7);
        let t = nice_ticks(0.0, 0.9, 5);
        assert!(t.len() >= 3);
    }
}
