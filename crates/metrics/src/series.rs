//! Time-series recording, used to regenerate the paper's figures.


/// A `(time_ns, value)` series with summary helpers.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Samples in recording order.
    pub points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn record(&mut self, t_ns: u64, value: f64) {
        self.points.push((t_ns, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only, discarding timestamps.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Mean of the values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.values().sum::<f64>() / self.points.len() as f64
    }

    /// Downsamples to at most `n` evenly spaced points (for plotting).
    pub fn downsample(&self, n: usize) -> TimeSeries {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let step = self.points.len() as f64 / n as f64;
        let points = (0..n)
            .map(|i| self.points[(i as f64 * step) as usize])
            .collect();
        TimeSeries { points }
    }

    /// Renders as `index<TAB>time_s<TAB>value` lines, gnuplot-ready.
    pub fn to_tsv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.points.len() * 24);
        for (i, &(t, v)) in self.points.iter().enumerate() {
            let _ = writeln!(out, "{i}\t{:.6}\t{v:.6}", t as f64 / 1e9);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut s = TimeSeries::new();
        s.record(0, 1.0);
        s.record(10, 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn downsample_keeps_bounds() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.record(i, i as f64);
        }
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.points[0], (0, 0.0));
        // Downsampling something already small is identity.
        assert_eq!(d.downsample(50).len(), 10);
    }

    #[test]
    fn tsv_has_one_line_per_point() {
        let mut s = TimeSeries::new();
        s.record(1_000_000_000, 2.5);
        s.record(2_000_000_000, 3.5);
        let tsv = s.to_tsv();
        assert_eq!(tsv.lines().count(), 2);
        assert!(tsv.starts_with("0\t1.000000\t2.500000"));
    }
}
