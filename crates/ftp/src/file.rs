//! File models for selectively lossy transfer.
//!
//! A file is a sequence of fixed-size blocks; a user-provided
//! criticality function scores every block (§4: "end users can
//! dynamically select (with user-provided functions) the most critical
//! file contents to be transferred to their local sites").

/// One transferable block of a file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block {
    /// Position within the file.
    pub index: u64,
    /// Payload bytes.
    pub size: u32,
    /// User-assigned criticality in `[0, 1]`; higher = more critical.
    pub priority: f64,
}

/// A file prepared for selectively lossy transfer.
#[derive(Debug, Clone)]
pub struct FileSpec {
    blocks: Vec<Block>,
}

impl FileSpec {
    /// Builds a file of `n_blocks` blocks of `block_size` bytes, scoring
    /// each block with the user's criticality function (index, count) →
    /// priority.
    pub fn new(
        n_blocks: u64,
        block_size: u32,
        criticality: impl Fn(u64, u64) -> f64,
    ) -> Self {
        assert!(n_blocks > 0 && block_size > 0, "empty file");
        let blocks = (0..n_blocks)
            .map(|i| Block {
                index: i,
                size: block_size,
                priority: criticality(i, n_blocks).clamp(0.0, 1.0),
            })
            .collect();
        Self { blocks }
    }

    /// A criticality profile for a dataset with a region of interest in
    /// the middle: priority falls off linearly with distance from the
    /// center (a remote-visualization focus region).
    pub fn with_center_focus(n_blocks: u64, block_size: u32) -> Self {
        Self::new(n_blocks, block_size, |i, n| {
            let center = (n as f64 - 1.0) / 2.0;
            let d = (i as f64 - center).abs() / center.max(1.0);
            1.0 - d
        })
    }

    /// Blocks in file order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Blocks sorted most-critical-first — the transfer order, so the
    /// contents the user cares about arrive earliest.
    pub fn transfer_order(&self) -> Vec<Block> {
        let mut sorted = self.blocks.clone();
        sorted.sort_by(|a, b| {
            b.priority
                .partial_cmp(&a.priority)
                .unwrap()
                .then(a.index.cmp(&b.index))
        });
        sorted
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the file has no blocks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.size)).sum()
    }

    /// Blocks with priority at least `threshold`.
    pub fn critical_count(&self, threshold: f64) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.priority >= threshold)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_focus_peaks_in_the_middle() {
        let f = FileSpec::with_center_focus(101, 1000);
        let blocks = f.blocks();
        assert_eq!(blocks.len(), 101);
        assert!((blocks[50].priority - 1.0).abs() < 1e-9);
        assert!(blocks[0].priority < 0.05);
        assert!(blocks[100].priority < 0.05);
        // Monotone toward the center.
        assert!(blocks[25].priority > blocks[10].priority);
    }

    #[test]
    fn transfer_order_is_most_critical_first() {
        let f = FileSpec::with_center_focus(11, 100);
        let order = f.transfer_order();
        assert_eq!(order[0].index, 5);
        for w in order.windows(2) {
            assert!(w[0].priority >= w[1].priority);
        }
        // Ties broken by file order => deterministic.
        let again = f.transfer_order();
        assert_eq!(order, again);
    }

    #[test]
    fn priorities_are_clamped() {
        let f = FileSpec::new(4, 10, |i, _| i as f64 * 10.0 - 5.0);
        assert_eq!(f.blocks()[0].priority, 0.0);
        assert_eq!(f.blocks()[3].priority, 1.0);
    }

    #[test]
    fn counting_helpers() {
        let f = FileSpec::with_center_focus(10, 500);
        assert_eq!(f.total_bytes(), 5000);
        assert_eq!(f.critical_count(0.0), 10);
        assert!(f.critical_count(0.9) < 10);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty file")]
    fn empty_file_rejected() {
        let _ = FileSpec::new(0, 10, |_, _| 1.0);
    }
}
