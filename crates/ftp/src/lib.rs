//! # iq-ftp
//!
//! Selectively lossy file transfer over IQ-RUDP — the follow-on system
//! the paper names in its conclusion (§4): "we are currently developing
//! the IQ-FTP implementation for selectively lossy file transfers: end
//! users can dynamically select (with user-provided functions) the most
//! critical file contents to be transferred to their local sites."
//!
//! A [`FileSpec`] scores every block with a user criticality function;
//! the [`FtpSenderAgent`] streams blocks most-critical-first, marking
//! those above an adaptive priority cutoff. Under congestion the cutoff
//! rises and — through IQ-RUDP coordination — the low-priority tail is
//! discarded before it enters the network, so critical content keeps
//! its timeliness.

#![warn(missing_docs)]

pub mod file;
pub mod transfer;

pub use file::{Block, FileSpec};
pub use transfer::{
    completeness_at, FtpConfig, FtpReceiverAgent, FtpSenderAgent, TransferReport,
};
