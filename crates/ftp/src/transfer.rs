//! The IQ-FTP sender and receiver agents.
//!
//! The sender streams a file's blocks most-critical-first over a
//! coordinated IQ-RUDP connection, marking blocks whose priority clears
//! an adaptive cutoff. Under congestion (upper-threshold callback) the
//! cutoff rises — more of the low-priority tail becomes droppable — and
//! the coordinator's discard-unmarked reaction sheds it before it enters
//! the network. When congestion clears, the cutoff relaxes.

use iq_attrs::{names, AttrList};
use iq_core::{CoordinationMode, Coordinator};
use iq_metrics::FlowMetrics;
use iq_netsim::{time, Addr, Agent, Ctx, FlowId, Packet, Time};
use iq_rudp::{
    ConnEvent, DeliveredMsg, RudpConfig, SenderConn, SenderDriver, RUDP_TIMER_TOKEN,
};

use crate::file::{Block, FileSpec};

/// Configuration of an [`FtpSenderAgent`].
pub struct FtpConfig {
    /// Connection identifier (must match the receiver).
    pub conn_id: u32,
    /// Transport settings; thresholds drive the cutoff adaptation.
    pub rudp: RudpConfig,
    /// Coordination mode (uncoordinated = plain selectively lossy RUDP).
    pub mode: CoordinationMode,
    /// Initial priority cutoff: blocks at or above it are marked
    /// (guaranteed); 0 means everything starts guaranteed.
    pub initial_cutoff: f64,
    /// Cutoff increase per congestion callback.
    pub cutoff_step: f64,
    /// Highest cutoff the sender will ever use (protects the most
    /// critical contents from ever becoming droppable).
    pub max_cutoff: f64,
    /// Settle time between cutoff increases.
    pub min_adapt_gap: iq_netsim::TimeDelta,
    /// Segments kept queued in the transport.
    pub backlog_target: usize,
}

impl FtpConfig {
    /// Defaults: 10 %/2 % thresholds, tolerance 0.5, cutoff starting at
    /// 0 and stepping by 0.2 up to 0.8.
    pub fn new(conn_id: u32) -> Self {
        let rudp = RudpConfig {
            loss_tolerance: 0.5,
            upper_threshold: Some(0.10),
            lower_threshold: Some(0.02),
            ..RudpConfig::default()
        };
        Self {
            conn_id,
            rudp,
            mode: CoordinationMode::Coordinated,
            initial_cutoff: 0.0,
            cutoff_step: 0.2,
            max_cutoff: 0.8,
            min_adapt_gap: time::secs(1.0),
            backlog_target: 128,
        }
    }
}

/// Transfer summary, computed sender-side after the run.
#[derive(Debug, Clone, Copy)]
pub struct TransferReport {
    /// Blocks in the file.
    pub total_blocks: u64,
    /// Blocks submitted to the transport (not discarded at the API).
    pub submitted_blocks: u64,
    /// Blocks discarded by coordination before entering the network.
    pub discarded_blocks: u64,
    /// Cutoff adaptations performed.
    pub cutoff_raises: u64,
    /// Final cutoff.
    pub final_cutoff: f64,
}

/// Streams a [`FileSpec`] most-critical-first with an adaptive cutoff.
pub struct FtpSenderAgent {
    driver: SenderDriver,
    coordinator: Coordinator,
    /// Blocks in transfer order; `next_block` indexes into it.
    order: Vec<Block>,
    next_block: usize,
    cutoff: f64,
    cutoff_step: f64,
    max_cutoff: f64,
    min_adapt_gap: iq_netsim::TimeDelta,
    backlog_target: usize,
    last_raise: Option<Time>,
    cutoff_raises: u64,
    /// msg_id → block, for receiver-side accounting.
    sent_map: Vec<Block>,
    events_scratch: Vec<ConnEvent>,
    finished: bool,
}

impl FtpSenderAgent {
    /// Creates a sender streaming `file` to `peer`.
    pub fn new(cfg: FtpConfig, file: &FileSpec, peer: Addr, flow: FlowId) -> Self {
        Self {
            driver: SenderDriver::new(SenderConn::new(cfg.conn_id, cfg.rudp.clone()), peer, flow),
            coordinator: Coordinator::new(cfg.mode),
            order: file.transfer_order(),
            next_block: 0,
            cutoff: cfg.initial_cutoff,
            cutoff_step: cfg.cutoff_step,
            max_cutoff: cfg.max_cutoff,
            min_adapt_gap: cfg.min_adapt_gap,
            backlog_target: cfg.backlog_target,
            last_raise: None,
            cutoff_raises: 0,
            sent_map: Vec::new(),
            events_scratch: Vec::new(),
            finished: false,
        }
    }

    /// The block a delivered `msg_id` corresponds to.
    pub fn block_for_msg(&self, msg_id: u64) -> Option<Block> {
        self.sent_map.get(msg_id as usize).copied()
    }

    /// Current priority cutoff.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Whether every block has been submitted (or discarded).
    pub fn schedule_done(&self) -> bool {
        self.finished
    }

    /// Post-run summary.
    pub fn report(&self) -> TransferReport {
        let stats = self.driver.conn.stats();
        TransferReport {
            total_blocks: self.order.len() as u64,
            submitted_blocks: stats.msgs_submitted,
            discarded_blocks: stats.msgs_discarded,
            cutoff_raises: self.cutoff_raises,
            final_cutoff: self.cutoff,
        }
    }

    fn process_events(&mut self, now: Time) {
        let mut events = std::mem::take(&mut self.events_scratch);
        self.coordinator
            .take_events_into(&mut self.driver.conn, &mut events);
        for ev in events.drain(..) {
            match ev {
                ConnEvent::UpperThreshold(_) => {
                    if let Some(last) = self.last_raise {
                        if now.saturating_sub(last) < self.min_adapt_gap {
                            continue;
                        }
                    }
                    self.last_raise = Some(now);
                    self.cutoff = (self.cutoff + self.cutoff_step).min(self.max_cutoff);
                    self.cutoff_raises += 1;
                    // Describe the reliability adaptation: the fraction
                    // of remaining blocks now below the cutoff.
                    let remaining = &self.order[self.next_block.min(self.order.len())..];
                    let droppable = remaining
                        .iter()
                        .filter(|b| b.priority < self.cutoff)
                        .count() as f64;
                    let frac = if remaining.is_empty() {
                        0.0
                    } else {
                        droppable / remaining.len() as f64
                    };
                    let attrs = AttrList::new().with(names::ADAPT_MARK, frac);
                    self.coordinator
                        .report_adaptation(&mut self.driver.conn, now, &attrs);
                }
                ConnEvent::LowerThreshold(_) if self.cutoff > 0.0 => {
                    self.cutoff = (self.cutoff - self.cutoff_step).max(0.0);
                    let attrs = AttrList::new().with(
                        names::ADAPT_MARK,
                        if self.cutoff > 0.0 { 0.1 } else { 0.0 },
                    );
                    self.coordinator
                        .report_adaptation(&mut self.driver.conn, now, &attrs);
                }
                _ => {}
            }
        }
        self.events_scratch = events;
    }

    fn refill(&mut self, now: Time) {
        while self.next_block < self.order.len()
            && self.driver.conn.backlog_segments() < self.backlog_target
        {
            let block = self.order[self.next_block];
            self.next_block += 1;
            let marked = block.priority >= self.cutoff;
            let outcome =
                self.coordinator
                    .send(&mut self.driver.conn, now, block.size, marked);
            if matches!(outcome, iq_rudp::SendOutcome::Queued { .. }) {
                self.sent_map.push(block);
            }
        }
        if self.next_block >= self.order.len() && !self.finished {
            self.finished = true;
            self.driver.conn.finish();
        }
    }
}

impl Agent for FtpSenderAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.refill(ctx.now());
        self.driver.pump(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if self.driver.handle_packet(ctx, &pkt) {
            self.process_events(ctx.now());
            self.refill(ctx.now());
            self.driver.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == RUDP_TIMER_TOKEN {
            self.driver.handle_timer(ctx);
            self.process_events(ctx.now());
            self.refill(ctx.now());
            self.driver.pump(ctx);
        }
    }
}

/// The receiving side: an RUDP sink that keeps delivered messages so the
/// harness can compute per-priority completeness.
pub struct FtpReceiverAgent {
    inner: iq_rudp::RudpSinkAgent,
}

impl FtpReceiverAgent {
    /// Creates a receiver for connection `conn_id` (same transport
    /// config as the sender, for the tolerance advertisement).
    pub fn new(conn_id: u32, rudp: RudpConfig, flow: FlowId) -> Self {
        Self {
            inner: iq_rudp::RudpSinkAgent::new(conn_id, rudp, flow).keep_messages(),
        }
    }

    /// Whether the transfer completed.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    /// Receiver metrics.
    pub fn metrics(&self) -> &FlowMetrics {
        &self.inner.metrics
    }

    /// Delivered messages (msg ids map to blocks via the sender).
    pub fn messages(&self) -> &[DeliveredMsg] {
        &self.inner.messages
    }
}

impl Agent for FtpReceiverAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.inner.on_packet(ctx, pkt);
    }
}

/// Computes `(delivered_at_or_above, total_at_or_above)` for blocks with
/// priority ≥ `threshold`, joining receiver messages with the sender's
/// block map.
pub fn completeness_at(
    sender: &FtpSenderAgent,
    receiver: &FtpReceiverAgent,
    threshold: f64,
) -> (u64, u64) {
    let total = sender
        .order
        .iter()
        .filter(|b| b.priority >= threshold)
        .count() as u64;
    let delivered = receiver
        .messages()
        .iter()
        .filter_map(|m| sender.block_for_msg(m.msg_id))
        .filter(|b| b.priority >= threshold)
        .count() as u64;
    (delivered, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::{LinkSpec, Simulator};

    fn run_transfer(
        link_bps: f64,
        mode: CoordinationMode,
        n_blocks: u64,
    ) -> (Simulator, iq_netsim::AgentId, iq_netsim::AgentId) {
        let mut sim = Simulator::new(9);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(link_bps, time::millis(10), 16_000));
        let file = FileSpec::with_center_focus(n_blocks, 1400);
        let mut cfg = FtpConfig::new(1);
        cfg.mode = mode;
        let rudp = cfg.rudp.clone();
        let tx = sim.add_agent(
            a,
            1,
            Box::new(FtpSenderAgent::new(cfg, &file, Addr::new(b, 1), FlowId(1))),
        );
        let rx = sim.add_agent(b, 1, Box::new(FtpReceiverAgent::new(1, rudp, FlowId(1))));
        sim.run_until(time::secs(300.0));
        (sim, tx, rx)
    }

    #[test]
    fn clean_link_delivers_every_block() {
        let (sim, tx, rx) = run_transfer(20e6, CoordinationMode::Coordinated, 300);
        let sender = sim.agent::<FtpSenderAgent>(tx).unwrap();
        let receiver = sim.agent::<FtpReceiverAgent>(rx).unwrap();
        assert!(receiver.is_finished());
        assert!(sender.schedule_done());
        let (got, total) = completeness_at(sender, receiver, 0.0);
        assert_eq!(got, total);
        assert_eq!(total, 300);
        assert_eq!(sender.report().cutoff_raises, 0);
    }

    #[test]
    fn critical_blocks_arrive_first() {
        let (sim, tx, rx) = run_transfer(20e6, CoordinationMode::Coordinated, 200);
        let sender = sim.agent::<FtpSenderAgent>(tx).unwrap();
        let receiver = sim.agent::<FtpReceiverAgent>(rx).unwrap();
        // Mean priority of the first half of deliveries exceeds the
        // second half: critical content led the transfer.
        let prios: Vec<f64> = receiver
            .messages()
            .iter()
            .filter_map(|m| sender.block_for_msg(m.msg_id))
            .map(|b| b.priority)
            .collect();
        let half = prios.len() / 2;
        let first: f64 = prios[..half].iter().sum::<f64>() / half as f64;
        let second: f64 = prios[half..].iter().sum::<f64>() / (prios.len() - half) as f64;
        assert!(first > second, "first {first} !> second {second}");
    }

    #[test]
    fn congestion_sheds_low_priority_blocks_only() {
        // A thin link forces cutoff raises; coordination discards the
        // low-priority tail at the API.
        let (sim, tx, rx) = run_transfer(1.2e6, CoordinationMode::Coordinated, 500);
        let sender = sim.agent::<FtpSenderAgent>(tx).unwrap();
        let receiver = sim.agent::<FtpReceiverAgent>(rx).unwrap();
        assert!(receiver.is_finished(), "transfer did not finish");
        let report = sender.report();
        assert!(report.cutoff_raises > 0, "cutoff never adapted");
        assert!(report.discarded_blocks > 0, "nothing was shed");
        // Everything above the final cutoff made it.
        let (got, total) = completeness_at(sender, receiver, 0.85);
        assert_eq!(got, total, "critical content lost");
        // The overall file is incomplete (that is the point).
        let (all_got, all_total) = completeness_at(sender, receiver, 0.0);
        assert!(all_got < all_total);
    }

    #[test]
    fn uncoordinated_mode_keeps_sending_everything() {
        let (sim, tx, _rx) = run_transfer(1.2e6, CoordinationMode::Uncoordinated, 400);
        let sender = sim.agent::<FtpSenderAgent>(tx).unwrap();
        // The cutoff still adapts app-side, but the transport never
        // discards (coordination is off).
        assert_eq!(sender.report().discarded_blocks, 0);
    }
}
