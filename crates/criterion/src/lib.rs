//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `sample_size`, `criterion_group!`,
//! `criterion_main!`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this path crate under the `criterion` package name. It is a
//! simple wall-clock timer, not a statistical harness: each benchmark
//! runs a short warm-up, then `sample_size` timed samples, and prints
//! min/median/mean per iteration. Good enough to compare runs on the
//! same machine; not a replacement for the real crate's analysis.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        BenchmarkGroup { sample_size: 20 }.bench_function(name, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints per-iteration timings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One untimed warm-up sample, then the timed ones.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mut per_iter: Vec<Duration> = b.samples;
        per_iter.sort();
        let min = per_iter.first().copied().unwrap_or_default();
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or_default();
        let mean = per_iter
            .iter()
            .sum::<Duration>()
            .checked_div(per_iter.len() as u32)
            .unwrap_or_default();
        println!(
            "  {name}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
            per_iter.len()
        );
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `f` (the routine under test).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        std::hint::black_box(out);
    }
}

/// Re-export so benches importing `criterion::black_box` keep working.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
