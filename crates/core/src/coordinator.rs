//! The coordinator: IQ-RUDP's re-adaptation engine.
//!
//! Sits between the application (IQ-ECho sends carrying `ADAPT_*`
//! attributes) and the RUDP sender. In coordinated modes it translates
//! reported application adaptations into transport parameter
//! re-adjustments (§2.3.1 "Keys to the Solution", observation 3):
//!
//! * **Reliability adaptation** (`ADAPT_MARK`) → start discarding
//!   unmarked datagrams before they enter the network (§3.3); no window
//!   change.
//! * **Resolution adaptation** (`ADAPT_PKTSIZE = rate_chg`) → scale the
//!   window by `1/(1 − rate_chg)` when frames are below the MSS, so the
//!   joint application+transport reaction matches the fair share instead
//!   of overshooting downward (§3.4).
//! * **Frequency adaptation** (`ADAPT_FREQ`) → no window change (the
//!   frequency reduction already has the window's intended effect).
//! * **Deferred adaptation** (`ADAPT_WHEN`) → remember the announcement;
//!   the transport keeps adapting on its own until the application
//!   reports execution (§3.5).
//! * **Obsolete information** (`ADAPT_COND`) → apply Eq. (1), correcting
//!   the resolution factor for network drift during the delay.

use iq_attrs::{names, AttrList, AttrService};
use iq_netsim::Time;
use iq_rudp::{ConnEvent, NetCond, SendOutcome, SenderConn};
use iq_telemetry::{CwndReason, TelemetryEvent};

use crate::report::{cond_window_factor, resolution_window_factor, AdaptReport};

/// How much coordination the transport performs — the experimental
/// variable of every table in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinationMode {
    /// Plain RUDP: application attributes are ignored; each level adapts
    /// independently (the paper's "RUDP" rows).
    Uncoordinated,
    /// IQ-RUDP: transport re-adapts on reported application adaptations
    /// (the paper's "IQ-RUDP" / "IQ-RUDP w/o ADAPT_COND" rows).
    Coordinated,
    /// IQ-RUDP with `ADAPT_COND`: additionally corrects deferred
    /// adaptations for obsolete network information (Eq. 1).
    CoordinatedWithCond,
}

/// Counters describing what coordination actually did during a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinationLog {
    /// Window re-adjustments applied (resolution adaptations).
    pub window_rescales: u64,
    /// Of those, how many used the Eq. (1) correction.
    pub cond_corrections: u64,
    /// Reliability reports that toggled discard-unmarked.
    pub reliability_reports: u64,
    /// Deferred-adaptation announcements received.
    pub deferred_announcements: u64,
    /// Frequency reports (accepted, but deliberately no window change).
    pub frequency_reports: u64,
    /// Product of all window factors applied (diagnostic).
    pub cumulative_factor: f64,
}

/// A deferred adaptation the application announced but has not yet
/// executed.
#[derive(Debug, Clone, Copy)]
struct PendingAdaptation {
    /// Error ratio at announcement time (transport's own view), used
    /// when the application does not supply `ADAPT_COND`.
    eratio_at_announce: f64,
}

/// The IQ-RUDP coordination layer for one sending connection.
///
/// The coordinator does not own the connection; every call borrows it.
/// This lets the embedding agent keep the connection inside its
/// [`iq_rudp::SenderDriver`] while the coordinator supplies policy.
///
/// `Clone` is shallow for the attribute registry (an [`AttrService`]
/// shares its store across clones); model-checker worlds that need
/// independent copies must run without one attached.
#[derive(Clone)]
pub struct Coordinator {
    mode: CoordinationMode,
    pending: Option<PendingAdaptation>,
    /// Optional registry to export `NET_*` metrics into.
    attrs: Option<AttrService>,
    /// Size of the most recent application message, for the frames-below-
    /// MSS condition on resolution re-adjustment.
    last_msg_size: u32,
    mss: u32,
    log: CoordinationLog,
}

impl Coordinator {
    /// Creates a coordinator with the given mode.
    pub fn new(mode: CoordinationMode) -> Self {
        Self {
            mode,
            pending: None,
            attrs: None,
            last_msg_size: 0,
            mss: iq_rudp::DEFAULT_MSS,
            log: CoordinationLog {
                cumulative_factor: 1.0,
                ..CoordinationLog::default()
            },
        }
    }

    /// Exports `NET_*` metrics into `service` after every period.
    pub fn with_attr_service(mut self, service: AttrService) -> Self {
        self.attrs = Some(service);
        self
    }

    /// The active coordination mode.
    pub fn mode(&self) -> CoordinationMode {
        self.mode
    }

    /// What coordination has done so far.
    pub fn log(&self) -> CoordinationLog {
        self.log
    }

    /// Whether a deferred adaptation is armed (announced, not executed).
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The smoothed error ratio snapshotted when the armed deferral was
    /// announced, if one is armed.
    pub fn pending_eratio(&self) -> Option<f64> {
        self.pending.map(|p| p.eratio_at_announce)
    }

    /// Folds the coordination state into a model-checker digest.
    pub fn state_digest(&self, h: &mut iq_telemetry::Fnv64) {
        h.write_u8(match self.mode {
            CoordinationMode::Uncoordinated => 0,
            CoordinationMode::Coordinated => 1,
            CoordinationMode::CoordinatedWithCond => 2,
        });
        h.write_bool(self.pending.is_some());
        h.write_f64(self.pending.map_or(0.0, |p| p.eratio_at_announce));
        h.write_u64(u64::from(self.last_msg_size));
        h.write_u64(u64::from(self.mss));
        h.write_u64(self.log.window_rescales);
        h.write_u64(self.log.cond_corrections);
        h.write_u64(self.log.reliability_reports);
        h.write_u64(self.log.deferred_announcements);
        h.write_u64(self.log.frequency_reports);
        h.write_f64(self.log.cumulative_factor);
    }

    /// The application-facing send call: `CMwritev_attr`. Attributes
    /// describe adaptations taking effect with this message.
    pub fn send_with_attrs(
        &mut self,
        conn: &mut SenderConn,
        now: Time,
        size: u32,
        marked: bool,
        attrs: &AttrList,
    ) -> SendOutcome {
        self.last_msg_size = size;
        if !attrs.is_empty() {
            self.handle_report(conn, now, AdaptReport::from_attrs(attrs));
        }
        conn.send_message(now, size, marked)
    }

    /// Plain send without attributes.
    pub fn send(&mut self, conn: &mut SenderConn, now: Time, size: u32, marked: bool) -> SendOutcome {
        self.last_msg_size = size;
        conn.send_message(now, size, marked)
    }

    /// Reports an adaptation outside a send (a callback return value).
    pub fn report_adaptation(&mut self, conn: &mut SenderConn, now: Time, attrs: &AttrList) {
        if !attrs.is_empty() {
            self.handle_report(conn, now, AdaptReport::from_attrs(attrs));
        }
    }

    fn handle_report(&mut self, conn: &mut SenderConn, now: Time, report: AdaptReport) {
        if self.mode == CoordinationMode::Uncoordinated {
            return;
        }
        // Timing: a future announcement arms the pending state and
        // nothing else happens until execution.
        if report.is_deferred() {
            self.log.deferred_announcements += 1;
            self.pending = Some(PendingAdaptation {
                eratio_at_announce: conn.net_cond().eratio_smoothed,
            });
            return;
        }
        // Reliability: enable/disable discard-unmarked. No window change
        // (§2.3.2: "a reliability adaptation does not lead to changes in
        // IQ-RUDP's window algorithm").
        if let Some(mark_ratio) = report.mark_ratio {
            self.log.reliability_reports += 1;
            conn.set_discard_unmarked(mark_ratio > 0.0);
        }
        // Frequency: deliberately no window change.
        if report.freq_chg.is_some() {
            self.log.frequency_reports += 1;
        }
        // Resolution: re-inflate the window, but only when application
        // frames are below the segment size — larger frames already
        // shrink the number of segments proportionally. Size *increases*
        // (negative rate_chg) deliberately leave the window alone: the
        // growing frames are the application's probe for spare
        // bandwidth, and the congestion window's own loss response
        // already polices it (deflating here would pin the flow below
        // its share during every recovery).
        if let Some(rate_chg) = report.rate_chg {
            let frames_below_mss = self.last_msg_size <= self.mss;
            let pending = self.pending.take();
            if frames_below_mss && rate_chg > 0.0 {
                // (eratio_then, eratio_now) when Eq. (1) was applied.
                let mut cond_used: Option<(f64, f64)> = None;
                let factor = match (self.mode, report.cond_eratio, pending) {
                    // Scheme 3: the application told us the conditions it
                    // based the (possibly delayed) adaptation on.
                    (CoordinationMode::CoordinatedWithCond, Some(then), _) => {
                        self.log.cond_corrections += 1;
                        let now_e = conn.net_cond().eratio_smoothed;
                        cond_used = Some((then, now_e));
                        cond_window_factor(rate_chg, then, now_e)
                    }
                    // Scheme 3 without an explicit ADAPT_COND: fall back
                    // to the transport's own snapshot taken when the
                    // deferral was announced.
                    (CoordinationMode::CoordinatedWithCond, None, Some(p)) => {
                        self.log.cond_corrections += 1;
                        let now_e = conn.net_cond().eratio_smoothed;
                        cond_used = Some((p.eratio_at_announce, now_e));
                        cond_window_factor(rate_chg, p.eratio_at_announce, now_e)
                    }
                    // Scheme 2 (or an immediate adaptation): plain §3.4
                    // factor.
                    _ => resolution_window_factor(rate_chg),
                };
                self.log.window_rescales += 1;
                self.log.cumulative_factor *= factor;
                let cwnd = conn.scale_cwnd(factor);
                let sink = conn.telemetry();
                let flow = conn.telemetry_flow();
                if let Some((eratio_then, eratio_now)) = cond_used {
                    sink.emit(
                        now,
                        flow,
                        TelemetryEvent::AdaptCond {
                            eratio_then,
                            eratio_now,
                        },
                    );
                }
                sink.emit_with(now, flow, || TelemetryEvent::WindowReinflate {
                    rate_chg,
                    factor,
                    cwnd,
                    srtt_ms: conn.net_cond().srtt_ms,
                });
                sink.emit(
                    now,
                    flow,
                    TelemetryEvent::CwndUpdate {
                        cwnd,
                        reason: CwndReason::Rescale,
                    },
                );
            }
        }
    }

    /// Drains transport events, exporting metrics along the way. The
    /// embedding agent forwards threshold events to the application's
    /// registered callbacks.
    pub fn take_events(&mut self, conn: &mut SenderConn) -> Vec<ConnEvent> {
        let mut events = Vec::new();
        self.take_events_into(conn, &mut events);
        events
    }

    /// Allocation-free variant of [`Coordinator::take_events`]: swaps the
    /// drained events into `out` (clearing it first) so a caller-owned
    /// scratch buffer can be reused across polls.
    pub fn take_events_into(&mut self, conn: &mut SenderConn, out: &mut Vec<ConnEvent>) {
        conn.take_events_into(out);
        if let Some(service) = &self.attrs {
            for ev in out.iter() {
                if let ConnEvent::PeriodEnded(cond) = ev {
                    export_net_cond(service, cond);
                }
            }
        }
    }
}

/// Publishes a [`NetCond`] snapshot as `NET_*` attributes.
pub fn export_net_cond(service: &AttrService, cond: &NetCond) {
    service.update(names::NET_ERROR_RATIO, cond.eratio);
    service.update(names::NET_RTT_MS, cond.srtt_ms);
    service.update(names::NET_CWND, cond.cwnd);
    service.update(names::NET_RATE_KBPS, cond.rate_kbps);
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_rudp::{RudpConfig, Segment};

    fn setup(mode: CoordinationMode) -> (Coordinator, SenderConn) {
        let mut conn = SenderConn::new(1, RudpConfig::default());
        // Handshake so the window is live.
        let _ = conn.poll_transmit(0);
        conn.on_segment(
            0,
            &Segment::SynAck {
                loss_tolerance: 0.4,
                recv_window: 1024,
            },
        );
        conn.scale_cwnd(10.0); // cwnd 20 for visible effects
        (Coordinator::new(mode), conn)
    }

    #[test]
    fn resolution_report_scales_window() {
        let (mut c, mut conn) = setup(CoordinationMode::Coordinated);
        let before = conn.cwnd();
        let attrs = AttrList::new().with(names::ADAPT_PKTSIZE, 0.2);
        c.send_with_attrs(&mut conn, 0, 1000, true, &attrs);
        assert!((conn.cwnd() - before * 1.25).abs() < 1e-9);
        assert_eq!(c.log().window_rescales, 1);
    }

    #[test]
    fn uncoordinated_mode_ignores_reports() {
        let (mut c, mut conn) = setup(CoordinationMode::Uncoordinated);
        let before = conn.cwnd();
        let attrs = AttrList::new()
            .with(names::ADAPT_PKTSIZE, 0.2)
            .with(names::ADAPT_MARK, 0.5);
        c.send_with_attrs(&mut conn, 0, 1000, true, &attrs);
        assert_eq!(conn.cwnd(), before);
        assert!(!conn.discard_unmarked());
        assert_eq!(c.log().window_rescales, 0);
    }

    #[test]
    fn reliability_report_toggles_discard() {
        let (mut c, mut conn) = setup(CoordinationMode::Coordinated);
        c.report_adaptation(&mut conn, 0, &AttrList::new().with(names::ADAPT_MARK, 0.4));
        assert!(conn.discard_unmarked());
        // Unmarking probability dropped to zero: discard turns off.
        c.report_adaptation(&mut conn, 0, &AttrList::new().with(names::ADAPT_MARK, 0.0));
        assert!(!conn.discard_unmarked());
        assert_eq!(c.log().reliability_reports, 2);
    }

    #[test]
    fn frequency_report_leaves_window_alone() {
        let (mut c, mut conn) = setup(CoordinationMode::Coordinated);
        let before = conn.cwnd();
        c.report_adaptation(&mut conn, 0, &AttrList::new().with(names::ADAPT_FREQ, 0.5));
        assert_eq!(conn.cwnd(), before);
        assert_eq!(c.log().frequency_reports, 1);
    }

    #[test]
    fn large_frames_skip_window_rescale() {
        let (mut c, mut conn) = setup(CoordinationMode::Coordinated);
        let before = conn.cwnd();
        // Frame far above MSS: reducing it already reduces segments.
        let attrs = AttrList::new().with(names::ADAPT_PKTSIZE, 0.2);
        c.send_with_attrs(&mut conn, 0, 30_000, true, &attrs);
        assert_eq!(conn.cwnd(), before);
    }

    #[test]
    fn deferred_announcement_then_execution() {
        let (mut c, mut conn) = setup(CoordinationMode::Coordinated);
        let before = conn.cwnd();
        // Announce: adaptation in 20 messages. No window change yet.
        c.report_adaptation(&mut conn, 0, &AttrList::new().with(names::ADAPT_WHEN, 20i64));
        assert_eq!(conn.cwnd(), before);
        assert_eq!(c.log().deferred_announcements, 1);
        // Execute.
        let attrs = AttrList::new().with(names::ADAPT_PKTSIZE, 0.2);
        c.send_with_attrs(&mut conn, 0, 1000, true, &attrs);
        assert!((conn.cwnd() - before * 1.25).abs() < 1e-9);
    }

    #[test]
    fn cond_mode_applies_equation_one() {
        let (mut c, mut conn) = setup(CoordinationMode::CoordinatedWithCond);
        let before = conn.cwnd();
        // Transport's own smoothed eratio is 0 (clean start); the app
        // says it decided at eratio 0.3. Factor = (1-0)/(1-0.3) * 1.25.
        let attrs = AttrList::new()
            .with(names::ADAPT_PKTSIZE, 0.2)
            .with(names::ADAPT_COND_ERATIO, 0.3);
        c.send_with_attrs(&mut conn, 0, 1000, true, &attrs);
        let expect = (1.0 / 0.7) * 1.25;
        assert!((conn.cwnd() - before * expect).abs() < 1e-6);
        assert_eq!(c.log().cond_corrections, 1);
    }

    #[test]
    fn coordinated_mode_ignores_cond_attribute() {
        // Scheme 2: ADAPT_COND present but the mode does not use it.
        let (mut c, mut conn) = setup(CoordinationMode::Coordinated);
        let before = conn.cwnd();
        let attrs = AttrList::new()
            .with(names::ADAPT_PKTSIZE, 0.2)
            .with(names::ADAPT_COND_ERATIO, 0.3);
        c.send_with_attrs(&mut conn, 0, 1000, true, &attrs);
        assert!((conn.cwnd() - before * 1.25).abs() < 1e-9);
        assert_eq!(c.log().cond_corrections, 0);
    }

    #[test]
    fn metrics_exported_to_attr_service() {
        let service = AttrService::new();
        let mut conn = SenderConn::new(1, RudpConfig::default());
        let mut c = Coordinator::new(CoordinationMode::Coordinated)
            .with_attr_service(service.clone());
        let _ = conn.poll_transmit(0);
        conn.on_segment(
            0,
            &Segment::SynAck {
                loss_tolerance: 0.0,
                recv_window: 64,
            },
        );
        // Roll one measuring period.
        conn.on_tick(iq_netsim::time::millis(200));
        let _ = c.take_events(&mut conn);
        assert!(service.query_float(names::NET_ERROR_RATIO).is_some());
        assert!(service.query_float(names::NET_CWND).is_some());
    }
}
