//! Adaptation reports: the typed view of the `ADAPT_*` quality
//! attributes an application attaches to sends or callback returns.
//!
//! The paper's coordination mechanism (§2.3.2) needs three pieces of
//! information about an application adaptation: its **impact** on
//! traffic (frequency / resolution / reliability), its **timing**
//! (`ADAPT_WHEN`), and the **network conditions** it was based on
//! (`ADAPT_COND`). This module parses an [`AttrList`] into that view.

use iq_attrs::{names, AttrList};

/// A parsed application-adaptation description.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdaptReport {
    /// `ADAPT_FREQ`: fraction by which message frequency was reduced
    /// (negative = increased).
    pub freq_chg: Option<f64>,
    /// `ADAPT_MARK`: fraction of datagrams now left unmarked.
    pub mark_ratio: Option<f64>,
    /// `ADAPT_PKTSIZE`: fraction by which per-message size was reduced
    /// (`rate_chg`; negative = increased).
    pub rate_chg: Option<f64>,
    /// `ADAPT_WHEN`: messages until the adaptation takes effect
    /// (`Some(0)` = effective now, `None` = not stated).
    pub when: Option<i64>,
    /// `ADAPT_COND`: the error ratio the application observed when it
    /// decided to adapt.
    pub cond_eratio: Option<f64>,
}

impl AdaptReport {
    /// Parses the `ADAPT_*` attributes out of `attrs`.
    pub fn from_attrs(attrs: &AttrList) -> Self {
        Self {
            freq_chg: attrs.get_float(names::ADAPT_FREQ),
            mark_ratio: attrs.get_float(names::ADAPT_MARK),
            rate_chg: attrs.get_float(names::ADAPT_PKTSIZE),
            when: attrs.get_int(names::ADAPT_WHEN),
            cond_eratio: attrs.get_float(names::ADAPT_COND_ERATIO),
        }
    }

    /// Whether the report carries any adaptation information at all.
    pub fn is_empty(&self) -> bool {
        self.freq_chg.is_none()
            && self.mark_ratio.is_none()
            && self.rate_chg.is_none()
            && self.when.is_none()
            && self.cond_eratio.is_none()
    }

    /// Whether the adaptation is announced for later rather than
    /// already in effect.
    pub fn is_deferred(&self) -> bool {
        matches!(self.when, Some(n) if n > 0)
    }
}

/// The window re-adjustment factor for a resolution adaptation that
/// reduced message sizes by `rate_chg` (§3.4): the window (in packets)
/// grows to `1/(1 - rate_chg)` of its value so the *bit rate* stays
/// matched to the connection's share instead of shrinking twice.
///
/// `rate_chg` is clamped to `(-4.0, 0.95]`; negative values (size
/// increases) symmetrically shrink the window.
pub fn resolution_window_factor(rate_chg: f64) -> f64 {
    let r = rate_chg.clamp(-4.0, 0.95);
    1.0 / (1.0 - r)
}

/// The obsolete-information correction of Eq. (1) (§3.5, scheme 3).
///
/// When the application adapted late using a stale error ratio
/// `eratio_then`, and the network has meanwhile moved to `eratio_now`,
/// the window change becomes
/// `(1 - eratio_now) / (1 - eratio_then) · 1/(1 - rate_chg)`.
///
/// The paper's typeset formula stacks the two fractions ambiguously; the
/// surrounding prose ("this change accounts for the network change
/// during the application's delay of adaptation") says the correction
/// multiplies the §3.4 factor, which is what we implement.
pub fn cond_window_factor(rate_chg: f64, eratio_then: f64, eratio_now: f64) -> f64 {
    let then = eratio_then.clamp(0.0, 0.95);
    let now = eratio_now.clamp(0.0, 0.95);
    ((1.0 - now) / (1.0 - then)) * resolution_window_factor(rate_chg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_attrs::names;

    #[test]
    fn parses_all_fields() {
        let attrs = AttrList::new()
            .with(names::ADAPT_PKTSIZE, 0.2)
            .with(names::ADAPT_WHEN, 12i64)
            .with(names::ADAPT_COND_ERATIO, 0.3)
            .with(names::ADAPT_MARK, 0.4)
            .with(names::ADAPT_FREQ, 0.1);
        let r = AdaptReport::from_attrs(&attrs);
        assert_eq!(r.rate_chg, Some(0.2));
        assert_eq!(r.when, Some(12));
        assert_eq!(r.cond_eratio, Some(0.3));
        assert_eq!(r.mark_ratio, Some(0.4));
        assert_eq!(r.freq_chg, Some(0.1));
        assert!(r.is_deferred());
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_list_is_empty_report() {
        let r = AdaptReport::from_attrs(&AttrList::new());
        assert!(r.is_empty());
        assert!(!r.is_deferred());
    }

    #[test]
    fn when_zero_is_not_deferred() {
        let attrs = AttrList::new().with(names::ADAPT_WHEN, 0i64);
        assert!(!AdaptReport::from_attrs(&attrs).is_deferred());
    }

    #[test]
    fn resolution_factor_matches_paper() {
        // 20% smaller frames -> window grows to 1/(1-0.2) = 1.25x.
        assert!((resolution_window_factor(0.20) - 1.25).abs() < 1e-12);
        // A 10% size increase shrinks the window to 1/1.1.
        assert!((resolution_window_factor(-0.10) - 1.0 / 1.1).abs() < 1e-12);
        // Degenerate reductions clamp instead of dividing by ~zero.
        assert!(resolution_window_factor(0.9999).is_finite());
    }

    #[test]
    fn cond_factor_corrects_for_drift() {
        // Network unchanged: reduces to the plain resolution factor.
        let plain = resolution_window_factor(0.2);
        assert!((cond_window_factor(0.2, 0.3, 0.3) - plain).abs() < 1e-12);
        // Congestion worsened (0.1 -> 0.4): window grows less.
        assert!(cond_window_factor(0.2, 0.1, 0.4) < plain);
        // Congestion eased: window grows more.
        assert!(cond_window_factor(0.2, 0.4, 0.1) > plain);
    }
}
