//! # iq-core
//!
//! The IQ-RUDP **coordination layer** — the paper's primary
//! contribution. It couples application-level adaptations (described
//! through ECho quality attributes) with transport-level re-adaptations
//! of the RUDP sender:
//!
//! | Application adaptation | Attribute | IQ-RUDP reaction |
//! |---|---|---|
//! | reliability (unmark packets) | `ADAPT_MARK` | discard unmarked datagrams before sending (§3.3) |
//! | resolution (down-sample)     | `ADAPT_PKTSIZE` | window ← window · 1/(1−rate_chg) (§3.4) |
//! | frequency (fewer messages)   | `ADAPT_FREQ` | none (reduction already has the intended effect) |
//! | deferred (adapt later)       | `ADAPT_WHEN` | keep adapting alone until execution (§3.5) |
//! | stale conditions             | `ADAPT_COND` | Eq. (1) drift correction (§3.5 scheme 3) |
//!
//! [`CoordinationMode`] selects how much of this machinery is active,
//! which is precisely the independent variable of the paper's tables
//! (RUDP vs IQ-RUDP vs IQ-RUDP w/ ADAPT_COND).

#![warn(missing_docs)]

pub mod coordinator;
pub mod report;

pub use coordinator::{export_net_cond, CoordinationLog, CoordinationMode, Coordinator};
pub use report::{cond_window_factor, resolution_window_factor, AdaptReport};
