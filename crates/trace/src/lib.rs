//! # iq-trace
//!
//! Workload traces for the IQ-RUDP reproduction: a synthetic MBone-style
//! membership-dynamics generator (standing in for the paper's Figure 1
//! trace) and frame schedules derived from it.

#![warn(missing_docs)]

pub mod membership;
pub mod schedule;

pub use membership::{MembershipConfig, MembershipTrace};
pub use schedule::FrameSchedule;
