//! Frame schedules: when each application frame is emitted and how big it
//! is. Produced from a membership trace plus a frame rate, consumed by the
//! application sources in `iq-echo` and `iq-workload`.


use crate::membership::MembershipTrace;

/// A fixed-rate schedule of frames.
#[derive(Debug, Clone)]
pub struct FrameSchedule {
    /// Frames per second at which the source emits.
    pub fps: f64,
    /// Frame sizes in bytes, in emission order.
    pub sizes: Vec<u32>,
}

impl FrameSchedule {
    /// Builds a schedule from a membership trace.
    pub fn from_trace(trace: &MembershipTrace, bytes_per_member: u32, fps: f64) -> Self {
        Self {
            fps,
            sizes: trace.frame_sizes(bytes_per_member),
        }
    }

    /// Constant-size schedule of `n` frames.
    pub fn constant(size: u32, n: usize, fps: f64) -> Self {
        Self {
            fps,
            sizes: vec![size; n],
        }
    }

    /// Interval between frame emissions, in nanoseconds.
    pub fn frame_interval_ns(&self) -> u64 {
        if self.fps <= 0.0 {
            return 0;
        }
        (1e9 / self.fps) as u64
    }

    /// Total payload bytes over the whole schedule.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().map(|&s| u64::from(s)).sum()
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the schedule has no frames.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Average offered rate in bits/second.
    pub fn offered_bps(&self) -> f64 {
        if self.sizes.is_empty() || self.fps <= 0.0 {
            return 0.0;
        }
        let mean = self.total_bytes() as f64 / self.sizes.len() as f64;
        mean * 8.0 * self.fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_matches_fps() {
        let s = FrameSchedule::constant(1000, 10, 500.0);
        assert_eq!(s.frame_interval_ns(), 2_000_000); // 2 ms at 500 fps
        assert_eq!(s.len(), 10);
        assert_eq!(s.total_bytes(), 10_000);
    }

    #[test]
    fn offered_rate() {
        // 1000 B at 100 fps = 800 kb/s.
        let s = FrameSchedule::constant(1000, 5, 100.0);
        assert!((s.offered_bps() - 800_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_fps_is_degenerate_but_safe() {
        let s = FrameSchedule::constant(1000, 5, 0.0);
        assert_eq!(s.frame_interval_ns(), 0);
        assert_eq!(s.offered_bps(), 0.0);
    }

    #[test]
    fn from_trace_multiplies() {
        let t = MembershipTrace { samples: vec![2, 3] };
        let s = FrameSchedule::from_trace(&t, 2000, 500.0);
        assert_eq!(s.sizes, vec![4000, 6000]);
    }
}
