//! Synthetic MBone-style membership dynamics.
//!
//! Figure 1 of the paper drives both the changing-application workload and
//! the VBR cross traffic from an MBone trace of multicast group size over
//! time. The original trace is not available, so this module synthesizes a
//! series with the same qualitative structure: a slowly drifting baseline
//! audience, short bursts of joins (session announcements) and leaves, and
//! occasional quiet periods — i.e. "constant and very fast changes in
//! rate" (§3.3) at the frame level.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tunables for [`MembershipTrace::generate`].
#[derive(Debug, Clone)]
pub struct MembershipConfig {
    /// RNG seed; equal seeds give identical traces.
    pub seed: u64,
    /// Number of samples (one per application frame).
    pub len: usize,
    /// Baseline group size the series reverts toward.
    pub base: f64,
    /// Per-step probability of a join/leave burst starting.
    pub burst_prob: f64,
    /// Mean burst amplitude in members (sign chosen randomly).
    pub burst_scale: f64,
    /// Mean-reversion factor per step (0 = pure random walk).
    pub reversion: f64,
    /// Per-step random walk standard deviation.
    pub walk_sd: f64,
    /// Inclusive lower clamp on group size.
    pub min: u32,
    /// Inclusive upper clamp on group size.
    pub max: u32,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            seed: 0x4d42_6f6e, // "MBon"
            len: 2000,
            base: 12.0,
            burst_prob: 0.02,
            burst_scale: 10.0,
            reversion: 0.02,
            walk_sd: 1.2,
            min: 1,
            max: 45,
        }
    }
}

/// A multicast group-size series, one sample per frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipTrace {
    /// Group size per frame index.
    pub samples: Vec<u32>,
}

impl MembershipTrace {
    /// Generates a trace from `cfg`; deterministic in `cfg.seed`.
    pub fn generate(cfg: &MembershipConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut samples = Vec::with_capacity(cfg.len);
        let mut level = cfg.base;
        // An active burst decays geometrically; `burst` holds its
        // remaining amplitude (signed).
        let mut burst = 0.0f64;
        for _ in 0..cfg.len {
            if rng.gen::<f64>() < cfg.burst_prob {
                let magnitude = cfg.burst_scale * (0.5 + rng.gen::<f64>());
                burst += if rng.gen::<bool>() { magnitude } else { -magnitude };
            }
            burst *= 0.9;
            // Box-Muller-free gaussian-ish step: sum of uniforms (CLT).
            let noise: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() - 2.0;
            level += cfg.walk_sd * noise;
            level += cfg.reversion * (cfg.base - level);
            let value = (level + burst).round().clamp(cfg.min as f64, cfg.max as f64);
            samples.push(value as u32);
        }
        Self { samples }
    }

    /// The paper's default trace used for the changing-application tests.
    pub fn paper_default() -> Self {
        Self::generate(&MembershipConfig::default())
    }

    /// Frame sizes in bytes: group size times `bytes_per_member`.
    ///
    /// The paper uses 3000 B/member for application traffic (§3.1) and
    /// 2000 B/member for the VBR UDP cross traffic.
    pub fn frame_sizes(&self, bytes_per_member: u32) -> Vec<u32> {
        self.samples
            .iter()
            .map(|&g| g.saturating_mul(bytes_per_member))
            .collect()
    }

    /// Total bytes of a frame-size schedule derived from this trace.
    pub fn total_bytes(&self, bytes_per_member: u32) -> u64 {
        self.samples
            .iter()
            .map(|&g| u64::from(g) * u64::from(bytes_per_member))
            .sum()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = MembershipConfig::default();
        assert_eq!(MembershipTrace::generate(&cfg), MembershipTrace::generate(&cfg));
        let other = MembershipConfig {
            seed: 99,
            ..MembershipConfig::default()
        };
        assert_ne!(MembershipTrace::generate(&cfg), MembershipTrace::generate(&other));
    }

    #[test]
    fn respects_bounds() {
        let cfg = MembershipConfig {
            min: 2,
            max: 20,
            ..MembershipConfig::default()
        };
        let t = MembershipTrace::generate(&cfg);
        assert!(t.samples.iter().all(|&g| (2..=20).contains(&g)));
        assert_eq!(t.len(), cfg.len);
    }

    #[test]
    fn has_visible_dynamics() {
        let t = MembershipTrace::paper_default();
        let min = *t.samples.iter().min().unwrap();
        let max = *t.samples.iter().max().unwrap();
        assert!(max - min >= 10, "trace too flat: {min}..{max}");
        // Changes happen frequently: at least a third of steps move.
        let moves = t
            .samples
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count();
        assert!(moves * 3 >= t.len(), "only {moves} moves in {}", t.len());
    }

    #[test]
    fn frame_sizes_scale_members() {
        let t = MembershipTrace {
            samples: vec![1, 5, 10],
        };
        assert_eq!(t.frame_sizes(3000), vec![3000, 15000, 30000]);
        assert_eq!(t.total_bytes(2000), 32_000);
    }
}
