//! Microbenchmarks of the hot paths under the experiments: the event
//! loop, the protocol state machine, attribute operations, and the
//! trace generator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iq_attrs::{names, AttrList, AttrService};
use iq_netsim::{time, Addr, FlowId, LinkSpec, Simulator};
use iq_rudp::{BulkSenderAgent, RudpConfig, RudpSinkAgent, SenderConn};
use iq_trace::{MembershipConfig, MembershipTrace};

/// A full small transfer through the simulator: event-loop + protocol.
fn transfer(msgs: u64) -> u64 {
    let mut sim = Simulator::new(1);
    let a = sim.add_node();
    let b = sim.add_node();
    sim.add_duplex_link(a, b, LinkSpec::new(100e6, time::millis(2), 256_000));
    let cfg = RudpConfig::default();
    sim.add_agent(
        a,
        1,
        Box::new(BulkSenderAgent::new(
            SenderConn::new(1, cfg.clone()),
            Addr::new(b, 1),
            FlowId(1),
            msgs,
            1400,
        )),
    );
    let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(1, cfg, FlowId(1))));
    sim.run_until(time::secs(30.0));
    sim.agent::<RudpSinkAgent>(rx).unwrap().metrics.messages()
}

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    g.bench_function("sim_transfer_1000_msgs", |b| {
        b.iter(|| {
            let got = transfer(1000);
            assert_eq!(got, 1000);
            black_box(got)
        })
    });

    g.bench_function("attr_list_set_get", |b| {
        b.iter(|| {
            let mut l = AttrList::new();
            l.set(names::ADAPT_PKTSIZE, 0.25);
            l.set(names::ADAPT_WHEN, 20i64);
            l.set(names::ADAPT_COND_ERATIO, 0.3);
            black_box(l.get_float(names::ADAPT_COND_ERATIO))
        })
    });

    let service = AttrService::new();
    g.bench_function("attr_service_update_query", |b| {
        b.iter(|| {
            service.update(names::NET_ERROR_RATIO, 0.12);
            black_box(service.query_float(names::NET_ERROR_RATIO))
        })
    });

    g.bench_function("membership_trace_2000", |b| {
        b.iter(|| {
            black_box(MembershipTrace::generate(&MembershipConfig::default()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
