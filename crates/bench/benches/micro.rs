//! Microbenchmarks of the hot paths under the experiments: the event
//! loop, the protocol state machine, attribute operations, and the
//! trace generator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iq_attrs::{names, AttrList, AttrService};
use iq_netsim::{time, Addr, Agent, Ctx, EventQueue, FlowId, LinkSpec, Packet, Simulator};
use iq_rudp::{BulkSenderAgent, RudpConfig, RudpSinkAgent, SenderConn};
use iq_trace::{MembershipConfig, MembershipTrace};

/// A full small transfer through the simulator: event-loop + protocol.
fn transfer(msgs: u64) -> u64 {
    let mut sim = Simulator::new(1);
    let a = sim.add_node();
    let b = sim.add_node();
    sim.add_duplex_link(a, b, LinkSpec::new(100e6, time::millis(2), 256_000));
    let cfg = RudpConfig::default();
    sim.add_agent(
        a,
        1,
        Box::new(BulkSenderAgent::new(
            SenderConn::new(1, cfg.clone()),
            Addr::new(b, 1),
            FlowId(1),
            msgs,
            1400,
        )),
    );
    let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(1, cfg, FlowId(1))));
    sim.run_until(time::secs(30.0));
    sim.agent::<RudpSinkAgent>(rx).unwrap().metrics.messages()
}

/// Timer-churning agent: each firing re-arms two timers and cancels one,
/// the set/cancel/fire pattern of RTO management.
struct TimerChurn {
    remaining: u32,
}

impl Agent for TimerChurn {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(time::micros(10), 0);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.remaining == 0 {
            ctx.stop_simulation();
            return;
        }
        self.remaining -= 1;
        let keep = ctx.set_timer(time::micros(10), 0);
        let cancel = ctx.set_timer(time::millis(5), 1);
        ctx.cancel_timer(cancel);
        black_box(keep);
    }
}

/// Fixed-rate source driving packets down a multi-hop chain, so each
/// packet exercises per-hop routing, enqueue, and serialization.
struct ChainSource {
    dst: Addr,
    remaining: u32,
}

impl Agent for ChainSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(time::micros(50), 0);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        ctx.send(self.dst, 1000, FlowId(1), iq_netsim::payload(()));
        ctx.set_timer(time::micros(50), 0);
    }
}

/// Packet sink for the chain scenario.
#[derive(Default)]
struct ChainSink(u32);

impl Agent for ChainSink {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {
        self.0 += 1;
    }
}

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    // Raw scheduler throughput: a sliding window of pending events, each
    // pop schedules a successor (the steady-state shape of a simulation).
    g.bench_function("event_queue_push_pop_100k", |b| {
        b.iter(|| {
            use iq_netsim::event::{Event, EventKind};
            use iq_netsim::AgentId;
            let mut q = EventQueue::new();
            let mut seq = 0u64;
            // Pending set spanning level 0 through level 2.
            for i in 0..256u64 {
                q.push(Event {
                    at: i * 37_003, // ≈ tens of µs apart
                    seq,
                    kind: EventKind::Start { agent: AgentId(0) },
                });
                seq += 1;
            }
            for _ in 0..100_000u32 {
                let ev = q.pop().expect("window never drains");
                q.push(Event {
                    at: ev.at + 947_011, // ≈ 1 ms ahead
                    seq,
                    kind: EventKind::Start { agent: AgentId(0) },
                });
                seq += 1;
            }
            black_box(q.len())
        })
    });

    // Timer arm/cancel/fire through the full simulator dispatch path.
    g.bench_function("timer_set_cancel_fire_20k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(7);
            let n = sim.add_node();
            sim.add_agent(n, 1, Box::new(TimerChurn { remaining: 20_000 }));
            sim.run_until(time::secs(10.0));
            black_box(sim.counters().timers_fired)
        })
    });

    // Per-hop routing cost: 2k packets each crossing 8 store-and-forward
    // hops (enqueue, serialize, arrive, route).
    g.bench_function("chain_routing_8hop_2k_pkts", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(7);
            let nodes: Vec<_> = (0..9).map(|_| sim.add_node()).collect();
            for w in nodes.windows(2) {
                sim.add_duplex_link(w[0], w[1], LinkSpec::new(1e9, time::micros(10), 1_000_000));
            }
            let last = *nodes.last().unwrap();
            sim.add_agent(
                nodes[0],
                1,
                Box::new(ChainSource {
                    dst: Addr::new(last, 2),
                    remaining: 2_000,
                }),
            );
            let rx = sim.add_agent(last, 2, Box::new(ChainSink::default()));
            sim.run_until(time::secs(2.0));
            let got = sim.agent::<ChainSink>(rx).unwrap().0;
            assert_eq!(got, 2_000);
            black_box(got)
        })
    });

    g.bench_function("sim_transfer_1000_msgs", |b| {
        b.iter(|| {
            let got = transfer(1000);
            assert_eq!(got, 1000);
            black_box(got)
        })
    });

    g.bench_function("attr_list_set_get", |b| {
        b.iter(|| {
            let mut l = AttrList::new();
            l.set(names::ADAPT_PKTSIZE, 0.25);
            l.set(names::ADAPT_WHEN, 20i64);
            l.set(names::ADAPT_COND_ERATIO, 0.3);
            black_box(l.get_float(names::ADAPT_COND_ERATIO))
        })
    });

    let service = AttrService::new();
    g.bench_function("attr_service_update_query", |b| {
        b.iter(|| {
            service.update(names::NET_ERROR_RATIO, 0.12);
            black_box(service.query_float(names::NET_ERROR_RATIO))
        })
    });

    g.bench_function("membership_trace_2000", |b| {
        b.iter(|| {
            black_box(MembershipTrace::generate(&MembershipConfig::default()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
