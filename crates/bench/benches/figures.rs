//! One Criterion bench per paper figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iq_experiments::figures::{figure1, figure4_from_rows, figures_2_3, render_figure4};
use iq_experiments::tables::{run_table6, Size};

const BENCH_SIZE: Size = Size(0.08);

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("figure1_membership_dynamics", |b| {
        b.iter(|| black_box(figure1()))
    });

    let (iq, rudp) = figures_2_3(BENCH_SIZE);
    println!(
        "Figure 2/3 jitter series: IQ-RUDP mean {:.2} ms ({} samples), RUDP mean {:.2} ms ({} samples)",
        iq.mean(),
        iq.len(),
        rudp.mean(),
        rudp.len()
    );
    g.bench_function("figures_2_3_delay_jitter", |b| {
        b.iter(|| black_box(figures_2_3(BENCH_SIZE)))
    });

    let rows = run_table6(BENCH_SIZE);
    println!("{}", render_figure4(&figure4_from_rows(&rows)));
    g.bench_function("figure4_improvement_vs_congestion", |b| {
        b.iter(|| black_box(figure4_from_rows(&rows)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
