//! Criterion benches for the ablation studies (design-choice sweeps
//! beyond the paper's own tables; see `iq_experiments::ablations`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iq_experiments::ablations::{
    ablation_measure_period, ablation_policies, ablation_queue_discipline, ablation_tolerance,
    render_measure_period, render_policies, render_queue_discipline, render_tolerance,
};
use iq_experiments::tables::Size;

const BENCH_SIZE: Size = Size(0.08);

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    println!("{}", render_measure_period(&ablation_measure_period(BENCH_SIZE)));
    g.bench_function("measure_period_sweep", |b| {
        b.iter(|| black_box(ablation_measure_period(BENCH_SIZE)))
    });

    println!("{}", render_policies(&ablation_policies(BENCH_SIZE)));
    g.bench_function("policy_comparison", |b| {
        b.iter(|| black_box(ablation_policies(BENCH_SIZE)))
    });

    println!("{}", render_tolerance(&ablation_tolerance(BENCH_SIZE)));
    g.bench_function("tolerance_sweep", |b| {
        b.iter(|| black_box(ablation_tolerance(BENCH_SIZE)))
    });

    println!("{}", render_queue_discipline(&ablation_queue_discipline(BENCH_SIZE)));
    g.bench_function("queue_discipline", |b| {
        b.iter(|| black_box(ablation_queue_discipline(BENCH_SIZE)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
