//! One Criterion bench per paper table. Each iteration regenerates the
//! table's rows at a reduced-but-faithful scale; the printed rows (once
//! per bench, outside the timing loop) are the reproduction artifact.
//!
//! Run the full-scale harness with
//! `cargo run --release --example paper_tables` instead when you want
//! paper-sized numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iq_experiments::tables::*;

const BENCH_SIZE: Size = Size(0.08);

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    macro_rules! table {
        ($name:literal, $run:ident, $render:ident) => {
            let rows = $run(BENCH_SIZE);
            println!("{}", $render(&rows));
            g.bench_function($name, |b| {
                b.iter(|| black_box($run(BENCH_SIZE)))
            });
        };
    }

    table!("table1_basic_comparison", run_table1, render_table1);
    table!("table2_fairness", run_table2, render_table2);
    table!("table3_conflict_changing_app", run_table3, render_table3);
    table!("table4_conflict_changing_network", run_table4, render_table4);
    table!("table5_overreaction_changing_app", run_table5, render_table5);
    table!("table6_overreaction_changing_network", run_table6, render_table6);
    table!("table7_granularity_changing_app", run_table7, render_table7);
    table!("table8_granularity_changing_network", run_table8, render_table8);
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
