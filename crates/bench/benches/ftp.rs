//! Bench for the IQ-FTP extension: selective vs fully reliable transfer
//! of the same file over the same congested link.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iq_core::CoordinationMode;
use iq_ftp::{completeness_at, FileSpec, FtpConfig, FtpReceiverAgent, FtpSenderAgent};
use iq_netsim::{time, Addr, FlowId, LinkSpec, Simulator};

fn transfer(selective: bool) -> (u64, u64) {
    let mut sim = Simulator::new(9);
    let a = sim.add_node();
    let b = sim.add_node();
    sim.add_duplex_link(a, b, LinkSpec::new(1.5e6, time::millis(10), 16_000));
    let file = FileSpec::with_center_focus(400, 1400);
    let mut cfg = FtpConfig::new(1);
    if !selective {
        cfg.rudp.loss_tolerance = 0.0;
        cfg.max_cutoff = 0.0;
        cfg.mode = CoordinationMode::Uncoordinated;
    }
    let rudp = cfg.rudp.clone();
    let tx = sim.add_agent(
        a,
        1,
        Box::new(FtpSenderAgent::new(cfg, &file, Addr::new(b, 1), FlowId(1))),
    );
    let rx = sim.add_agent(b, 1, Box::new(FtpReceiverAgent::new(1, rudp, FlowId(1))));
    sim.run_until(time::secs(120.0));
    let sender = sim.agent::<FtpSenderAgent>(tx).unwrap();
    let receiver = sim.agent::<FtpReceiverAgent>(rx).unwrap();
    completeness_at(sender, receiver, 0.0)
}

fn bench_ftp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftp");
    g.sample_size(10);
    let (sel, total) = transfer(true);
    let (rel, _) = transfer(false);
    println!("ftp: selective delivered {sel}/{total} blocks, reliable {rel}/{total}");
    g.bench_function("selective_transfer", |b| b.iter(|| black_box(transfer(true))));
    g.bench_function("reliable_transfer", |b| b.iter(|| black_box(transfer(false))));
    g.finish();
}

criterion_group!(benches, bench_ftp);
criterion_main!(benches);
