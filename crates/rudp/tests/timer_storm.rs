//! Regression tests for the zero-delay timer storm.
//!
//! `SenderConn::next_timeout` used to ignore `now` entirely: after any
//! stall (scheduling delay, a burst of expiries, a long-idle meter) it
//! happily returned a deadline already in the past, and the embedding
//! driver re-armed a timer that fired immediately — again and again —
//! because one `on_tick` retired only the *earliest* expired RTO. These
//! tests pin the repaired contract:
//!
//! 1. `next_timeout(now)` never returns a time before `now`;
//! 2. one `on_tick` + transmit-drain cycle retires *every* expired
//!    deadline, leaving the next wakeup strictly in the future;
//! 3. under a lossy netsim bulk transfer, the timer-fire rate stays
//!    within a small, justified per-sim-second budget.

use iq_netsim::{time, Addr, FlowId, LinkSpec, Simulator};
use iq_rudp::endpoint::{BulkSenderAgent, RudpSinkAgent};
use iq_rudp::{ReceiverConn, RudpConfig, Segment, SenderConn};

/// Handshakes a directly-driven sender/receiver pair at `now`.
fn establish(now: u64, cfg: &RudpConfig) -> (SenderConn, ReceiverConn) {
    let mut s = SenderConn::new(7, cfg.clone());
    let mut r = ReceiverConn::new(7, cfg.clone());
    let syn = s.poll_transmit(now).expect("syn");
    assert!(matches!(syn, Segment::Syn { .. }));
    r.on_segment(now, &syn);
    let synack = r.poll_transmit(now).expect("synack");
    s.on_segment(now, &synack);
    (s, r)
}

/// The repaired contract, part 1: no matter how stale the internal
/// deadlines are, `next_timeout` clamps to `now` instead of handing the
/// driver a wakeup in the past.
#[test]
fn next_timeout_never_returns_past_deadline() {
    let cfg = RudpConfig::default();
    let (mut s, _r) = establish(0, &cfg);
    let _ = s.send_message(0, 1000, true);
    while s.poll_transmit(0).is_some() {}

    // Both the measuring-period deadline (100 ms) and the data RTO
    // (1 s pre-sample) are long past at t = 5 s.
    let now = time::secs(5.0);
    let t = s.next_timeout(now).expect("armed");
    assert!(
        t >= now,
        "next_timeout returned a past deadline: {t} < {now}"
    );

    // Idle/handshake states obey the same clamp.
    let mut idle = SenderConn::new(1, cfg.clone());
    assert!(idle.next_timeout(time::secs(9.0)).expect("idle") >= time::secs(9.0));
    let _ = idle.poll_transmit(0); // SYN out at t = 0, deadline t = 1 s
    let late = time::secs(30.0);
    assert!(idle.next_timeout(late).expect("syn-sent") >= late);
}

/// The repaired contract, part 2: a single tick retires every expired
/// RTO (not just the earliest), so after draining retransmissions the
/// next wakeup is strictly in the future — the driver never spins.
#[test]
fn one_tick_retires_all_expired_deadlines() {
    let cfg = RudpConfig::default();
    let (mut s, _r) = establish(0, &cfg);
    s.scale_cwnd(4.0); // initial cwnd 2 -> 8: room for the whole burst
    // Three segments in flight, all transmitted around t = 0.
    for _ in 0..3 {
        let _ = s.send_message(0, 1000, true);
    }
    let mut sent = 0;
    while s.poll_transmit(0).is_some() {
        sent += 1;
    }
    assert_eq!(sent, 3, "expected all three fragments on the wire");

    // Jump far past every deadline, then run exactly one tick cycle.
    let now = time::secs(10.0);
    s.on_tick(now);
    let mut retx = 0;
    while let Some(seg) = s.poll_transmit(now) {
        if matches!(seg, Segment::Data(ref d) if d.retransmit) {
            retx += 1;
        }
    }
    assert_eq!(retx, 3, "one tick must queue every expired segment");
    assert!(s.stats().timeouts >= 1);

    let t = s.next_timeout(now).expect("armed");
    assert!(
        t > now,
        "deadline not strictly future after tick+drain: {t} <= {now}"
    );
}

/// End-to-end rate check: a lossy bulk transfer through the simulator
/// fires a bounded number of timers per sim-second. Budget: the
/// measuring period rolls 10×/s, the minimum RTO allows ≲10 expiries/s,
/// plus handshake/FIN retries — 25/s per flow is generous. The
/// pre-fix behavior (re-arming an already-expired deadline) fires
/// thousands per sim-second and blows far past this.
#[test]
fn lossy_transfer_timer_rate_is_bounded() {
    let mut sim = Simulator::new(11);
    let a = sim.add_node();
    let b = sim.add_node();
    sim.add_duplex_link(
        a,
        b,
        LinkSpec::new(10e6, time::millis(5), 64_000).with_random_loss(0.05),
    );
    let cfg = RudpConfig::default();
    let sender = BulkSenderAgent::new(
        SenderConn::new(7, cfg.clone()),
        Addr::new(b, 1),
        FlowId(1),
        200,
        1400,
    );
    sim.add_agent(a, 1, Box::new(sender));
    let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(7, cfg, FlowId(1))));
    let horizon_s = 60.0;
    sim.run_until(time::secs(horizon_s));

    let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
    assert!(sink.is_finished(), "lossy transfer did not finish");
    let fired = sim.counters().timers_fired;
    let budget = (25.0 * horizon_s) as u64;
    assert!(
        fired <= budget,
        "timer storm: {fired} timer events in {horizon_s} sim-seconds (budget {budget})"
    );
}
