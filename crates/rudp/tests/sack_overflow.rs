//! Regression tests for SACK-range truncation (> [`MAX_SACK_RANGES`]
//! reassembly holes).
//!
//! An ACK carries at most 8 SACK ranges. With more than 8 holes the
//! receiver silently truncates the tail, so segments it *does* hold can
//! go unreported. The duplicate-evidence sweep used to run all the way
//! up to `highest_seen`, counting those held-but-unreported segments as
//! missing and fast-retransmitting them spuriously. The fix clamps the
//! sweep to the end of the last *reported* range whenever the SACK list
//! is full. These tests pin that: with a 10-hole loss pattern the
//! sender fast-retransmits exactly the genuinely-lost segments below
//! the horizon, and a full recovery loop completes without ever
//! retransmitting a segment the receiver already holds.

use iq_rudp::{ReceiverConn, RudpConfig, Segment, SenderConn, MAX_SACK_RANGES};

/// Handshakes a directly-driven sender/receiver pair at t = 0 and opens
/// the congestion window wide enough for a 20-segment burst.
fn establish(cfg: &RudpConfig) -> (SenderConn, ReceiverConn) {
    let mut s = SenderConn::new(7, cfg.clone());
    let mut r = ReceiverConn::new(7, cfg.clone());
    let syn = s.poll_transmit(0).expect("syn");
    r.on_segment(0, &syn);
    let synack = r.poll_transmit(0).expect("synack");
    s.on_segment(0, &synack);
    s.scale_cwnd(16.0); // initial cwnd 2 -> 32 segments
    (s, r)
}

/// Sends `n` one-fragment messages and returns the polled data segments.
fn burst(s: &mut SenderConn, now: u64, n: usize) -> Vec<Segment> {
    for _ in 0..n {
        let _ = s.send_message(now, 1000, true);
    }
    let mut out = Vec::new();
    while let Some(seg) = s.poll_transmit(now) {
        out.push(seg);
    }
    assert_eq!(out.len(), n, "window too small for the burst");
    out
}

/// Ten interleaved holes (all even seqs of 0..20 lost) produce more
/// ranges than an ACK can carry. The sender must fast-retransmit only
/// the genuine holes below the reported horizon — never the odd
/// segments the receiver holds but could not report (seqs 17, 19), and
/// not the unreported tail holes (16, 18; those are RTO territory).
#[test]
fn truncated_sack_does_not_trigger_spurious_retransmits() {
    let cfg = RudpConfig::default();
    let (mut s, mut r) = establish(&cfg);
    let segs = burst(&mut s, 0, 20);

    // Deliver only the odd seqs, in order: 10 holes > MAX_SACK_RANGES.
    let mut acks = Vec::new();
    for seg in &segs {
        let Segment::Data(d) = seg else { unreachable!() };
        if d.seq % 2 == 1 {
            r.on_segment(1_000_000, seg);
            let ack = r.poll_transmit(1_000_000).expect("ooo data acks immediately");
            acks.push(ack);
        }
    }
    // The final ACK really is truncated.
    let Segment::Ack(last) = acks.last().unwrap() else {
        unreachable!()
    };
    assert_eq!(last.sack.len(), MAX_SACK_RANGES);
    assert_eq!(last.highest_seen, 20, "highest_seen is one past the top seq");
    assert!(r.has_segment(17) && r.has_segment(19));

    for ack in &acks {
        s.on_segment(2_000_000, ack);
    }
    let mut retx = Vec::new();
    while let Some(seg) = s.poll_transmit(2_000_000) {
        let Segment::Data(d) = seg else { continue };
        assert!(d.retransmit);
        assert!(
            !r.has_segment(d.seq),
            "spurious retransmit of seq {} the receiver already holds",
            d.seq
        );
        retx.push(d.seq);
    }
    retx.sort_unstable();
    // Exactly the lost even seqs below the horizon (end of the last
    // reported range, 16). 16 and 18 sit above it, unreported: they are
    // recovered by the RTO backstop or a later SACK slide, not by
    // fabricated duplicate evidence.
    assert_eq!(retx, vec![0, 2, 4, 6, 8, 10, 12, 14]);
}

/// Driving the same loss pattern to full recovery: every hole is
/// eventually repaired, all 20 messages are delivered, and no
/// retransmission ever duplicates a segment the receiver holds.
#[test]
fn many_hole_recovery_completes_without_duplicate_retransmits() {
    let cfg = RudpConfig::default();
    let (mut s, mut r) = establish(&cfg);
    let mut wire = burst(&mut s, 0, 20);

    let mut now = 0u64;
    let mut first_pass = true;
    for _round in 0..50 {
        if r.stats().msgs_delivered == 20 {
            break;
        }
        now += 2_000_000;
        // Sender -> receiver; the first transmission of every even seq
        // is lost.
        for seg in wire.drain(..) {
            if let Segment::Data(d) = &seg {
                if first_pass && d.seq % 2 == 0 && !d.retransmit {
                    continue;
                }
                assert!(
                    !(d.retransmit && r.has_segment(d.seq)),
                    "retransmit of seq {} the receiver already holds",
                    d.seq
                );
            }
            r.on_segment(now, &seg);
        }
        first_pass = false;
        // Receiver -> sender.
        now += 2_000_000;
        while let Some(ack) = r.poll_transmit(now) {
            s.on_segment(now, &ack);
        }
        s.on_tick(now);
        while let Some(seg) = s.poll_transmit(now) {
            wire.push(seg);
        }
    }
    assert_eq!(r.stats().msgs_delivered, 20, "recovery did not complete");
    assert_eq!(r.stats().duplicates, 0, "receiver saw duplicate segments");
}
