//! Differential tests of [`SeqRing`] against a `BTreeMap` model.
//!
//! The sender's inflight table and the receiver's reorder buffer used to
//! be `BTreeMap<u64, _>`; `SeqRing` replaced them on the hot path. These
//! properties pin the ring to the map's observable behaviour — inserts
//! (forward, duplicate, and below the current head), point removals,
//! in-order pops, cumulative drains that cross holes (the `cum_ack` /
//! `fwd_seq` abandonment paths), and bounded mutation sweeps — over
//! randomized op streams with loss, reordering, and skips.

use std::collections::BTreeMap;

use iq_rudp::SeqRing;
use proptest::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};

/// Asserts the ring and map agree on everything a caller can observe.
fn assert_same(ring: &SeqRing<u32>, model: &BTreeMap<u64, u32>) {
    prop_assert_eq!(ring.len(), model.len());
    prop_assert_eq!(ring.is_empty(), model.is_empty());
    prop_assert_eq!(ring.first_seq(), model.first_key_value().map(|(&k, _)| k));
    let got: Vec<(u64, u32)> = ring.iter().map(|(s, &v)| (s, v)).collect();
    let want: Vec<(u64, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    prop_assert_eq!(got, want);
    if let Some((&last, _)) = model.last_key_value() {
        prop_assert!(ring.end_seq() > last, "end_seq must cover the last entry");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_matches_btreemap_under_random_ops(
        ops in prop::collection::vec((0u32..7, 0u64..48), 1..400),
    ) {
        let mut ring: SeqRing<u32> = SeqRing::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        let mut cursor = 16u64; // headroom for below-head inserts
        let mut tick = 0u32;

        for &(op, raw) in &ops {
            tick += 1;
            match op {
                // Forward insert at (or slightly past) the cursor,
                // leaving reorder holes behind.
                0 => {
                    let seq = cursor + raw % 4;
                    cursor = seq + 1;
                    prop_assert_eq!(ring.insert(seq, tick), model.insert(seq, tick));
                }
                // Insert at or below the current head: the ring must
                // re-anchor (and possibly grow) without losing entries.
                1 => {
                    let head = ring.first_seq().unwrap_or(cursor);
                    let seq = head.saturating_sub(raw % 8);
                    prop_assert_eq!(ring.insert(seq, tick), model.insert(seq, tick));
                }
                // Point removal of an existing key (SACK-style).
                2 => {
                    let seq = model
                        .keys()
                        .nth(raw as usize % model.len().max(1))
                        .copied()
                        .unwrap_or(raw);
                    prop_assert_eq!(ring.take(seq), model.remove(&seq));
                }
                // Point removal of an arbitrary (likely absent) key.
                3 => {
                    prop_assert_eq!(ring.take(raw), model.remove(&raw));
                }
                // In-order pop.
                4 => {
                    prop_assert_eq!(ring.pop_first(), model.pop_first());
                }
                // Cumulative drain below a bound, crossing holes — the
                // `cum_ack` / `fwd_seq` abandonment path. The bound can
                // land far past the head.
                5 => {
                    let bound = ring.first_seq().unwrap_or(0) + raw;
                    loop {
                        let want = model
                            .first_key_value()
                            .filter(|&(&k, _)| k < bound)
                            .map(|(&k, &v)| (k, v));
                        let got = ring.pop_first_below(bound);
                        prop_assert_eq!(got, want);
                        if want.is_none() {
                            break;
                        }
                        model.pop_first();
                    }
                }
                // Bounded mutation sweep (the dup-ack hint scan).
                _ => {
                    let bound = ring.first_seq().unwrap_or(0) + raw;
                    let mut visited = Vec::new();
                    ring.for_each_mut_below(bound, |seq, v| {
                        *v = v.wrapping_add(1);
                        visited.push(seq);
                    });
                    let mut expected = Vec::new();
                    for (&k, v) in model.range_mut(..bound) {
                        *v = v.wrapping_add(1);
                        expected.push(k);
                    }
                    prop_assert_eq!(visited, expected, "sweep order/coverage");
                }
            }
            assert_same(&ring, &model);
        }
    }

    /// A receiver-shaped stream: segments from a sliding window arrive
    /// reordered, some are lost, and every few arrivals the sender's
    /// `fwd_seq` floor jumps ahead, abandoning everything below — the
    /// drain must cross the ring head and any holes in one sweep.
    #[test]
    fn receiver_stream_with_loss_reorder_and_fwd_skips(
        arrivals in prop::collection::vec((0u64..24, prop::bool::weighted(0.8)), 1..300),
        fwd_step in 1u64..40,
    ) {
        let mut ring: SeqRing<u32> = SeqRing::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        let mut base = 0u64;
        let mut floor = 0u64;

        for (i, &(offset, keep)) in arrivals.iter().enumerate() {
            // The window slides forward as the stream progresses.
            if i % 5 == 4 {
                base += offset % 6;
            }
            let seq = base + offset;
            if keep && seq >= floor {
                let v = seq as u32;
                prop_assert_eq!(ring.insert(seq, v), model.insert(seq, v));
            }
            // Periodic fwd_seq abandonment, possibly past the head and
            // across holes left by losses.
            if i % 7 == 6 {
                floor += fwd_step;
                while let Some((got_seq, got_v)) = ring.pop_first_below(floor) {
                    let (want_seq, want_v) = model.pop_first().expect("model ahead of ring");
                    prop_assert_eq!((got_seq, got_v), (want_seq, want_v));
                }
                prop_assert!(
                    model.first_key_value().is_none_or(|(&k, _)| k >= floor),
                    "ring stopped draining before the floor"
                );
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.first_seq(), model.first_key_value().map(|(&k, _)| k));
        }
        assert_same(&ring, &model);
    }
}
