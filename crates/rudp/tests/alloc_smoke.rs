//! Zero-allocation smoke test for the steady-state ACK path.
//!
//! A counting global allocator wraps `System`; after a warm-up phase
//! that sizes every ring, queue, and scratch buffer, a sustained
//! data → ACK → drain cycle between a [`SenderConn`] and a
//! [`ReceiverConn`] must perform **zero** heap allocations. This pins
//! the PR's zero-alloc claims: inline SACK storage in `AckSeg`,
//! ring-buffer transport state, and the swap-style `take_*_into` /
//! `clear_events` drain APIs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use iq_rudp::{CcAlgorithm, ReceiverConn, RudpConfig, Segment, SenderConn};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One steady-state cycle: submit data, ship segments to the receiver,
/// return its ACKs, drain messages and events through reused scratch.
fn cycle(
    now: &mut u64,
    s: &mut SenderConn,
    r: &mut ReceiverConn,
    msgs: &mut Vec<iq_rudp::DeliveredMsg>,
) {
    for _ in 0..4 {
        let _ = s.send_message(*now, 1000, true);
    }
    s.on_tick(*now);
    while let Some(seg) = s.poll_transmit(*now) {
        r.on_segment(*now, &seg);
    }
    *now += 2_000_000; // 2 ms one-way
    while let Some(seg) = r.poll_transmit(*now) {
        s.on_segment(*now, &seg);
    }
    r.take_messages_into(msgs);
    r.clear_events();
    s.clear_events();
    *now += 3_000_000;
}

/// Runs the steady-state measurement under one congestion controller
/// and returns the best (lowest) allocation delta over three attempts.
fn measure(algorithm: CcAlgorithm) -> u64 {
    let mut cfg = RudpConfig::default();
    cfg.cc.algorithm = algorithm;
    let mut s = SenderConn::new(7, cfg.clone());
    let mut r = ReceiverConn::new(7, cfg);
    let mut now = 0u64;

    // Handshake.
    let syn = s.poll_transmit(now).expect("syn");
    assert!(matches!(syn, Segment::Syn { .. }));
    r.on_segment(now, &syn);
    let synack = r.poll_transmit(now).expect("synack");
    s.on_segment(now, &synack);

    // Warm up: grow the inflight/reorder rings, outboxes, event vecs,
    // and the caller-side message scratch to their steady-state sizes.
    let mut msgs = Vec::new();
    for _ in 0..300 {
        cycle(&mut now, &mut s, &mut r, &mut msgs);
    }

    // The counter is process-global, so a libtest harness thread that
    // happens to allocate mid-measurement (its slow-test machinery, on
    // a loaded machine) can taint an attempt. A real regression in the
    // cycle allocates on every attempt, so requiring one clean attempt
    // out of three keeps the gate sound while shedding harness noise.
    let mut delta = u64::MAX;
    for _ in 0..3 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..200 {
            cycle(&mut now, &mut s, &mut r, &mut msgs);
        }
        delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        if delta == 0 {
            break;
        }
    }
    delta
}

#[test]
fn steady_state_ack_path_does_not_allocate() {
    // Every controller must hold the zero-alloc line: the trait seam is
    // enum dispatch stored inline in the sender (no `Box<dyn>`), and
    // the controllers themselves keep their state in fixed arrays.
    let mut algorithms: Vec<CcAlgorithm> = CcAlgorithm::all_adaptive().to_vec();
    algorithms.push(CcAlgorithm::from_name("fixed").unwrap());
    for alg in algorithms {
        let name = alg.name();
        let delta = measure(alg);
        assert_eq!(
            delta, 0,
            "steady-state data/ACK cycles performed {delta} heap allocations under {name}"
        );
    }
}
