//! Differential test of the trait-based [`LdaWindow`] against the
//! pre-refactor implementation.
//!
//! The congestion-control redesign (the [`CongestionControl`] trait and
//! [`CcController`] enum dispatch) must not move LDA's trajectories by
//! a single bit: the determinism fingerprints, the telemetry streams,
//! and the model checker's pinned explored-state counts all hang off
//! them. `ReferenceLda` below is the pre-refactor `LdaWindow` copied
//! verbatim (config flags and all); the property drives it and the
//! trait-based controller through identical period / timeout / scale
//! sequences and requires bit-identical windows after every step.

use iq_rudp::{
    CcAlgorithm, CcConfig, CcController, CongestionControl, LdaParams, NetCond,
};
use proptest::{prop, prop_assert_eq, proptest, ProptestConfig};

/// The pre-refactor `LdaWindow`, verbatim (including the `enabled` /
/// `fixed_cwnd` flag-soup it replaced), serving as the reference model.
mod reference {
    pub struct RefConfig {
        pub initial_cwnd: f64,
        pub min_cwnd: f64,
        pub max_cwnd: f64,
        pub incr_per_period: f64,
        pub beta: f64,
        pub enabled: bool,
        pub fixed_cwnd: f64,
    }

    impl Default for RefConfig {
        fn default() -> Self {
            Self {
                initial_cwnd: 2.0,
                min_cwnd: 1.0,
                max_cwnd: 1024.0,
                incr_per_period: 1.0,
                beta: 2.0,
                enabled: true,
                fixed_cwnd: 64.0,
            }
        }
    }

    pub struct ReferenceLda {
        cfg: RefConfig,
        cwnd: f64,
    }

    impl ReferenceLda {
        pub fn new(cfg: RefConfig) -> Self {
            let cwnd = if cfg.enabled {
                cfg.initial_cwnd
            } else {
                cfg.fixed_cwnd
            };
            Self { cfg, cwnd }
        }

        pub fn cwnd(&self) -> f64 {
            self.cwnd
        }

        pub fn cwnd_segments(&self) -> u32 {
            (self.cwnd.round() as u32).max(1)
        }

        fn clamp(&mut self) {
            self.cwnd = self.cwnd.clamp(self.cfg.min_cwnd, self.cfg.max_cwnd);
        }

        pub fn on_period(&mut self, loss_ratio: f64) -> f64 {
            if !self.cfg.enabled {
                return self.cwnd;
            }
            if loss_ratio <= 0.0 {
                self.cwnd += self.cfg.incr_per_period;
            } else {
                let factor = (1.0 - self.cfg.beta * loss_ratio.sqrt()).max(0.5);
                self.cwnd *= factor;
            }
            self.clamp();
            self.cwnd
        }

        pub fn on_timeout(&mut self) -> f64 {
            if !self.cfg.enabled {
                return self.cwnd;
            }
            self.cwnd *= 0.5;
            self.clamp();
            self.cwnd
        }

        pub fn scale(&mut self, factor: f64) -> f64 {
            if factor.is_finite() && factor > 0.0 {
                self.cwnd *= factor;
                self.clamp();
            }
            self.cwnd
        }
    }
}

use reference::{RefConfig, ReferenceLda};

fn cond_with_loss(eratio: f64) -> NetCond {
    NetCond {
        eratio,
        ..NetCond::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same loss sequences → identical cwnd trajectories, bit for bit.
    #[test]
    fn trait_lda_matches_pre_refactor_lda(
        incr in 0.25f64..4.0,
        beta in 0.5f64..4.0,
        initial in 1.0f64..64.0,
        ops in prop::collection::vec((0u32..3, 0.0f64..1.2), 1..600),
    ) {
        let mut model = ReferenceLda::new(RefConfig {
            initial_cwnd: initial,
            incr_per_period: incr,
            beta,
            ..RefConfig::default()
        });
        let mut cc = CcController::new(&CcConfig {
            algorithm: CcAlgorithm::Lda(LdaParams {
                incr_per_period: incr,
                beta,
            }),
            initial_cwnd: initial,
            ..CcConfig::default()
        });
        prop_assert_eq!(model.cwnd().to_bits(), cc.cwnd().to_bits());

        let mut now = 0u64;
        for &(op, x) in &ops {
            now += 1_000_000;
            let (want, got) = match op {
                // Period boundary: x doubles as the loss ratio (values
                // slightly above 1 exercise the decrease floor).
                0 => (model.on_period(x), cc.on_period(now, &cond_with_loss(x))),
                // Retransmission timeout.
                1 => (model.on_timeout(), cc.on_timeout(now)),
                // Coordination rescale, spanning shrink, grow, and the
                // degenerate factors `scale` must ignore.
                _ => {
                    let factor = if x < 0.1 {
                        f64::NAN // ignored by both
                    } else {
                        x * 2.0 - 0.2 // ~[0, 2.2], includes <= 0
                    };
                    (model.scale(factor), cc.scale(factor))
                }
            };
            prop_assert_eq!(want.to_bits(), got.to_bits());
            prop_assert_eq!(model.cwnd().to_bits(), cc.cwnd().to_bits());
            prop_assert_eq!(model.cwnd_segments(), cc.cwnd_segments());
        }
    }

    /// The old `enabled: false` mode maps onto `CcAlgorithm::Fixed`
    /// with the same step-for-step behaviour.
    #[test]
    fn fixed_controller_matches_disabled_lda(
        pinned in 1.0f64..256.0,
        ops in prop::collection::vec((0u32..3, 0.0f64..1.2), 1..200),
    ) {
        let mut model = ReferenceLda::new(RefConfig {
            enabled: false,
            fixed_cwnd: pinned,
            ..RefConfig::default()
        });
        let mut cc = CcController::new(&CcConfig {
            algorithm: CcAlgorithm::Fixed { cwnd: pinned },
            ..CcConfig::default()
        });
        let mut now = 0u64;
        for &(op, x) in &ops {
            now += 1_000_000;
            let (want, got) = match op {
                0 => (model.on_period(x), cc.on_period(now, &cond_with_loss(x))),
                1 => (model.on_timeout(), cc.on_timeout(now)),
                _ => (model.scale(x * 2.0), cc.scale(x * 2.0)),
            };
            prop_assert_eq!(want.to_bits(), got.to_bits());
        }
    }
}
