//! Karn's-rule property test: the RTT estimator never collapses below
//! the true path RTT, no matter how transmissions are dropped, delayed,
//! or retransmitted.
//!
//! The dangerous failure mode of retransmission ambiguity is
//! *undershoot*: matching an ACK triggered by a slow original against
//! the (later) retransmission time yields a sample shorter than any
//! packet actually took. IQ-RUDP avoids this end to end: the receiver
//! echoes the arriving segment's own `tx_at` and suppresses the echo
//! for retransmissions and duplicates, and the sender additionally
//! rejects echoes stamped in the future. The property here drives a
//! sender/receiver pair over a two-sided 10 ms path whose data
//! transmissions suffer random loss and random extra queueing delay
//! (so originals can overtake their own retransmissions in wall-clock
//! terms), and asserts the smoothed RTT — whenever seeded — never
//! drops below the 20 ms propagation floor.

use proptest::{prop, proptest, ProptestConfig};

use iq_rudp::{AckSeg, ReceiverConn, RudpConfig, SackRanges, Segment, SenderConn};

/// One-way propagation delay, nanoseconds (10 ms).
const D: u64 = 10_000_000;
/// True path RTT floor, milliseconds.
const FLOOR_MS: f64 = 2.0 * (D as f64) / 1e6;
/// Simulation step (1 ms) and horizon (3 s).
const STEP: u64 = 1_000_000;
const HORIZON: u64 = 3_000_000_000;

fn establish(cfg: &RudpConfig) -> (SenderConn, ReceiverConn) {
    let mut s = SenderConn::new(7, cfg.clone());
    let mut r = ReceiverConn::new(7, cfg.clone());
    let syn = s.poll_transmit(0).expect("syn");
    r.on_segment(0, &syn);
    let synack = r.poll_transmit(0).expect("synack");
    s.on_segment(0, &synack);
    (s, r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random loss + jitter never drags SRTT below the propagation RTT.
    #[test]
    fn srtt_never_collapses_below_path_rtt(
        drops in prop::collection::vec(prop::bool::weighted(0.3), 64..65),
        extras_ms in prop::collection::vec(0u64..40, 64..65),
    ) {
        // Guarantee the property is exercised: at least one data
        // transmission is lost, forcing a retransmission.
        let mut drops = drops;
        if !drops.iter().any(|&b| b) {
            drops[0] = true;
        }

        let cfg = RudpConfig::default();
        let (mut s, mut r) = establish(&cfg);
        // (arrival, insertion-order, segment) kept sorted by arrival.
        let mut to_recv: Vec<(u64, u64, Segment)> = Vec::new();
        let mut to_send: Vec<(u64, u64, Segment)> = Vec::new();
        let mut order = 0u64;
        let mut data_tx = 0usize; // indexes drops/extras per transmission
        let mut submitted = 0u32;

        let mut now = 0u64;
        while now <= HORIZON {
            // Application offers a message every 5 ms, 30 in total.
            if submitted < 30 && now.is_multiple_of(5 * STEP) {
                let _ = s.send_message(now, 1000, true);
                submitted += 1;
            }

            s.on_tick(now);
            while let Some(seg) = s.poll_transmit(now) {
                if let Segment::Data(_) = seg {
                    let dropped = drops.get(data_tx).copied().unwrap_or(false);
                    let extra = extras_ms.get(data_tx).copied().unwrap_or(0) * STEP;
                    data_tx += 1;
                    if dropped {
                        continue;
                    }
                    to_recv.push((now + D + extra, order, seg));
                } else {
                    to_recv.push((now + D, order, seg));
                }
                order += 1;
            }

            to_recv.sort_unstable_by_key(|&(at, ord, _)| (at, ord));
            while to_recv.first().is_some_and(|&(at, _, _)| at <= now) {
                let (_, _, seg) = to_recv.remove(0);
                r.on_segment(now, &seg);
                while let Some(ack) = r.poll_transmit(now) {
                    to_send.push((now + D, order, ack));
                    order += 1;
                }
            }

            to_send.sort_unstable_by_key(|&(at, ord, _)| (at, ord));
            while to_send.first().is_some_and(|&(at, _, _)| at <= now) {
                let (_, _, seg) = to_send.remove(0);
                s.on_segment(now, &seg);
                let srtt = s.net_cond().srtt_ms;
                if srtt > 0.0 {
                    assert!(
                        srtt >= FLOOR_MS - 1e-6,
                        "SRTT collapsed below the path RTT: {srtt} ms < {FLOOR_MS} ms"
                    );
                }
            }

            s.clear_events();
            r.clear_events();
            let _ = r.take_messages();
            now += STEP;
        }

        // The run was meaningful: losses really forced retransmissions,
        // and enough clean exchanges happened to seed the estimator.
        assert!(s.stats().retransmits > 0, "no retransmissions exercised");
        assert!(s.net_cond().srtt_ms >= FLOOR_MS - 1e-6);
    }
}

/// Deterministic Karn corner: an ACK whose echo claims a transmit time
/// in the future (corrupt peer or reordered clock) must not feed the
/// estimator.
#[test]
fn future_echo_is_rejected() {
    let cfg = RudpConfig::default();
    let (mut s, _r) = establish(&cfg);
    let _ = s.send_message(0, 1000, true);
    while s.poll_transmit(0).is_some() {}

    let now = 5 * STEP;
    let ack = AckSeg {
        cum_ack: 1,
        highest_seen: 0,
        sack: SackRanges::new(),
        recv_window: 1024,
        loss_tolerance: 0.0,
        echo_tx_at: Some(now + 40 * STEP), // 40 ms in the future
    };
    s.on_segment(now, &Segment::Ack(ack));
    assert_eq!(
        s.net_cond().srtt_ms,
        0.0,
        "future echo must not seed the RTT estimator"
    );
}

/// Deterministic Karn corner on the receiver: a retransmitted data
/// segment — even one delivering brand-new data — never carries an RTT
/// echo back, because its send time is ambiguous at the sender.
#[test]
fn retransmitted_data_is_never_echoed() {
    let cfg = RudpConfig::default();
    let (mut s, mut r) = establish(&cfg);
    let _ = s.send_message(0, 1000, true);
    let seg = s.poll_transmit(0).expect("data");
    let Segment::Data(mut d) = seg else {
        panic!("expected data")
    };
    d.retransmit = true; // as if the original were lost
    d.tx_at = 7 * STEP;
    r.on_segment(8 * STEP, &Segment::Data(d));
    let ack = r.poll_transmit(8 * STEP).expect("ack");
    let Segment::Ack(a) = ack else {
        panic!("expected ack")
    };
    assert_eq!(a.cum_ack, 1, "new data still advances the cumulative ack");
    assert_eq!(a.echo_tx_at, None, "retransmission must not echo an RTT");
}
