//! RUDP wire segments.
//!
//! Segments are never serialized to bytes; they travel through the
//! simulator as typed payloads while their wire footprint is modelled by
//! [`wire_size`]. The format follows the Reliable UDP draft's shape
//! (SYN/ACK/EACK/data) extended with the adaptive-reliability fields the
//! paper requires: a per-datagram `marked` bit (sender packet priority
//! marking) and a `fwd_seq` floor that lets the sender abandon unmarked
//! losses (receiver loss tolerance).

use iq_netsim::Time;

/// Modelled IP + UDP + RUDP header bytes per segment.
pub const HEADER_BYTES: u32 = 44;

/// Wire bytes of an ACK segment (header + cumulative ack + SACK summary).
pub const ACK_BYTES: u32 = HEADER_BYTES + 16;

/// Default maximum RUDP segment payload (paper §3.1: 1400 bytes).
pub const DEFAULT_MSS: u32 = 1400;

/// A data segment: one fragment of one application message.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSeg {
    /// Segment sequence number (one per fragment, increasing).
    pub seq: u64,
    /// Application message this fragment belongs to.
    pub msg_id: u64,
    /// Index of this fragment within the message.
    pub frag_idx: u16,
    /// Total fragments in the message.
    pub frag_count: u16,
    /// Payload bytes carried by this fragment.
    pub len: u32,
    /// Whether the datagram is marked (tagged = must be delivered).
    pub marked: bool,
    /// Receiver may treat every seq below this as abandoned by the
    /// sender (adaptive-reliability skip, like PR-SCTP's FORWARD-TSN).
    pub fwd_seq: u64,
    /// When the application emitted the message (end-to-end latency).
    pub msg_sent_at: Time,
    /// When this particular transmission left the sender (RTT echo).
    pub tx_at: Time,
    /// True for retransmissions (Karn's rule: no RTT sample).
    pub retransmit: bool,
}

/// A cumulative + selective acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub struct AckSeg {
    /// Next sequence number the receiver still needs (everything below
    /// was delivered or skipped).
    pub cum_ack: u64,
    /// Highest sequence number received so far (enables hole detection
    /// without shipping full SACK lists through the model).
    pub highest_seen: u64,
    /// Received ranges above `cum_ack`, `[start, end)`, capped in length.
    pub sack: Vec<(u64, u64)>,
    /// Remaining receive-buffer space, in segments (flow control).
    pub recv_window: u32,
    /// The receiver's *current* loss tolerance: the paper's adaptive
    /// reliability lets the receiver change its tolerance during the
    /// connection (§2.1), so every ACK re-advertises it.
    pub loss_tolerance: f64,
    /// `tx_at` of the segment that triggered this ACK; `None` when that
    /// segment was a retransmission (Karn) or the ACK is a duplicate.
    pub echo_tx_at: Option<Time>,
}

/// All RUDP segment types.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Connection request carrying the sender's initial sequence number.
    Syn {
        /// First data sequence number the sender will use.
        init_seq: u64,
    },
    /// Connection accept carrying receiver parameters.
    SynAck {
        /// Receiver's adaptive-reliability loss tolerance in `[0, 1]`.
        loss_tolerance: f64,
        /// Initial advertised receive window, in segments.
        recv_window: u32,
    },
    /// One fragment of application data.
    Data(DataSeg),
    /// Acknowledgement.
    Ack(AckSeg),
    /// Standalone skip notification, sent when the sender abandons
    /// unmarked data and has no data segment to piggyback `fwd_seq` on.
    Fwd {
        /// New floor: receiver should not wait for anything below this.
        fwd_seq: u64,
    },
    /// End of stream: no sequence at or above `final_seq` will be sent.
    Fin {
        /// One past the last sequence number used.
        final_seq: u64,
    },
    /// Acknowledges a `Fin`.
    FinAck,
}

/// A segment stamped with the connection it belongs to; this is the
/// payload type placed in simulator packets.
#[derive(Debug, Clone, PartialEq)]
pub struct RudpPacket {
    /// Connection identifier (demultiplexing and sanity checks).
    pub conn_id: u32,
    /// The segment.
    pub segment: Segment,
}

/// Wire size in bytes of a segment, for queueing and serialization.
pub fn wire_size(seg: &Segment) -> u32 {
    match seg {
        Segment::Data(d) => HEADER_BYTES + d.len,
        Segment::Ack(_) => ACK_BYTES,
        Segment::Syn { .. }
        | Segment::SynAck { .. }
        | Segment::Fwd { .. }
        | Segment::Fin { .. }
        | Segment::FinAck => HEADER_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(len: u32) -> Segment {
        Segment::Data(DataSeg {
            seq: 0,
            msg_id: 0,
            frag_idx: 0,
            frag_count: 1,
            len,
            marked: true,
            fwd_seq: 0,
            msg_sent_at: 0,
            tx_at: 0,
            retransmit: false,
        })
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(wire_size(&data(1400)), 1444);
        assert_eq!(wire_size(&data(0)), 44);
        assert_eq!(
            wire_size(&Segment::Ack(AckSeg {
                cum_ack: 0,
                highest_seen: 0,
                sack: vec![],
                recv_window: 10,
                loss_tolerance: 0.0,
                echo_tx_at: None,
            })),
            60
        );
        assert_eq!(wire_size(&Segment::Fin { final_seq: 9 }), 44);
        assert_eq!(wire_size(&Segment::Syn { init_seq: 0 }), 44);
    }
}
