//! RUDP wire segments.
//!
//! Segments are never serialized to bytes; they travel through the
//! simulator as typed payloads while their wire footprint is modelled by
//! [`wire_size`]. The format follows the Reliable UDP draft's shape
//! (SYN/ACK/EACK/data) extended with the adaptive-reliability fields the
//! paper requires: a per-datagram `marked` bit (sender packet priority
//! marking) and a `fwd_seq` floor that lets the sender abandon unmarked
//! losses (receiver loss tolerance).

use iq_netsim::Time;

/// Modelled IP + UDP + RUDP header bytes per segment.
pub const HEADER_BYTES: u32 = 44;

/// Wire bytes of an ACK segment with no SACK ranges (header + cumulative
/// ack + window/tolerance summary); each carried range adds
/// [`SACK_RANGE_BYTES`].
pub const ACK_BYTES: u32 = HEADER_BYTES + 16;

/// Wire bytes per SACK range carried in an ACK (two 32-bit offsets).
pub const SACK_RANGE_BYTES: u32 = 8;

/// Default maximum RUDP segment payload (paper §3.1: 1400 bytes).
pub const DEFAULT_MSS: u32 = 1400;

/// Maximum SACK ranges reported per ACK.
pub const MAX_SACK_RANGES: usize = 8;

/// Inline storage for the SACK ranges of one ACK.
///
/// Ranges are `[start, end)` pairs, at most [`MAX_SACK_RANGES`] of them,
/// kept inline so building and copying an [`AckSeg`] never touches the
/// heap — an ACK is created for (nearly) every received data segment, so
/// this sits directly on the steady-state hot path.
#[derive(Debug, Clone, Copy)]
pub struct SackRanges {
    ranges: [(u64, u64); MAX_SACK_RANGES],
    len: u8,
}

impl SackRanges {
    /// An empty range list.
    pub const fn new() -> Self {
        Self {
            ranges: [(0, 0); MAX_SACK_RANGES],
            len: 0,
        }
    }

    /// Builds a list from a slice (panics above [`MAX_SACK_RANGES`]).
    pub fn from_slice(ranges: &[(u64, u64)]) -> Self {
        let mut s = Self::new();
        for &r in ranges {
            assert!(s.push(r), "more than MAX_SACK_RANGES ranges");
        }
        s
    }

    /// Appends a range; returns `false` (dropping it) when full.
    pub fn push(&mut self, range: (u64, u64)) -> bool {
        if self.is_full() {
            return false;
        }
        self.ranges[self.len as usize] = range;
        self.len += 1;
        true
    }

    /// Mutable access to the most recently pushed range (for merging a
    /// contiguous extension in place).
    pub fn last_mut(&mut self) -> Option<&mut (u64, u64)> {
        match self.len {
            0 => None,
            n => Some(&mut self.ranges[n as usize - 1]),
        }
    }

    /// The ranges as a slice.
    pub fn as_slice(&self) -> &[(u64, u64)] {
        &self.ranges[..self.len as usize]
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no ranges are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the inline capacity is exhausted.
    pub fn is_full(&self) -> bool {
        self.len as usize == MAX_SACK_RANGES
    }

    /// Iterates the ranges.
    pub fn iter(&self) -> std::slice::Iter<'_, (u64, u64)> {
        self.as_slice().iter()
    }
}

impl Default for SackRanges {
    fn default() -> Self {
        Self::new()
    }
}

// Compare only the live prefix; slots past `len` are scratch.
impl PartialEq for SackRanges {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<(u64, u64)>> for SackRanges {
    fn eq(&self, other: &Vec<(u64, u64)>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a SackRanges {
    type Item = &'a (u64, u64);
    type IntoIter = std::slice::Iter<'a, (u64, u64)>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A data segment: one fragment of one application message.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSeg {
    /// Segment sequence number (one per fragment, increasing).
    pub seq: u64,
    /// Application message this fragment belongs to.
    pub msg_id: u64,
    /// Index of this fragment within the message.
    pub frag_idx: u16,
    /// Total fragments in the message.
    pub frag_count: u16,
    /// Payload bytes carried by this fragment.
    pub len: u32,
    /// Whether the datagram is marked (tagged = must be delivered).
    pub marked: bool,
    /// Receiver may treat every seq below this as abandoned by the
    /// sender (adaptive-reliability skip, like PR-SCTP's FORWARD-TSN).
    pub fwd_seq: u64,
    /// When the application emitted the message (end-to-end latency).
    pub msg_sent_at: Time,
    /// When this particular transmission left the sender (RTT echo).
    pub tx_at: Time,
    /// True for retransmissions (Karn's rule: no RTT sample).
    pub retransmit: bool,
}

/// A cumulative + selective acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub struct AckSeg {
    /// Next sequence number the receiver still needs (everything below
    /// was delivered or skipped).
    pub cum_ack: u64,
    /// Highest sequence number received so far (enables hole detection
    /// without shipping full SACK lists through the model).
    pub highest_seen: u64,
    /// Received ranges above `cum_ack`, `[start, end)`, capped in length.
    pub sack: SackRanges,
    /// Remaining receive-buffer space, in segments (flow control).
    pub recv_window: u32,
    /// The receiver's *current* loss tolerance: the paper's adaptive
    /// reliability lets the receiver change its tolerance during the
    /// connection (§2.1), so every ACK re-advertises it.
    pub loss_tolerance: f64,
    /// `tx_at` of the segment that triggered this ACK; `None` when that
    /// segment was a retransmission (Karn) or the ACK is a duplicate.
    pub echo_tx_at: Option<Time>,
}

/// All RUDP segment types.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Connection request carrying the sender's initial sequence number.
    Syn {
        /// First data sequence number the sender will use.
        init_seq: u64,
    },
    /// Connection accept carrying receiver parameters.
    SynAck {
        /// Receiver's adaptive-reliability loss tolerance in `[0, 1]`.
        loss_tolerance: f64,
        /// Initial advertised receive window, in segments.
        recv_window: u32,
    },
    /// One fragment of application data.
    Data(DataSeg),
    /// Acknowledgement.
    Ack(AckSeg),
    /// Standalone skip notification, sent when the sender abandons
    /// unmarked data and has no data segment to piggyback `fwd_seq` on.
    Fwd {
        /// New floor: receiver should not wait for anything below this.
        fwd_seq: u64,
    },
    /// End of stream: no sequence at or above `final_seq` will be sent.
    Fin {
        /// One past the last sequence number used.
        final_seq: u64,
    },
    /// Acknowledges a `Fin`.
    FinAck,
}

impl Segment {
    /// Folds the segment into a model-checker state digest. Timestamps
    /// are hashed relative to `now` so equivalent in-flight sets reached
    /// at different absolute clocks still collide in the visited table.
    pub fn state_digest(&self, now: Time, h: &mut iq_telemetry::Fnv64) {
        match self {
            Segment::Syn { init_seq } => {
                h.write_u8(0);
                h.write_u64(*init_seq);
            }
            Segment::SynAck {
                loss_tolerance,
                recv_window,
            } => {
                h.write_u8(1);
                h.write_f64(*loss_tolerance);
                h.write_u64(u64::from(*recv_window));
            }
            Segment::Data(d) => {
                h.write_u8(2);
                h.write_u64(d.seq);
                h.write_u64(d.msg_id);
                h.write_u64(u64::from(d.frag_idx));
                h.write_u64(u64::from(d.frag_count));
                h.write_u64(u64::from(d.len));
                h.write_bool(d.marked);
                h.write_u64(d.fwd_seq);
                h.write_u64(now.saturating_sub(d.msg_sent_at));
                h.write_u64(now.saturating_sub(d.tx_at));
                h.write_bool(d.retransmit);
            }
            Segment::Ack(a) => {
                h.write_u8(3);
                h.write_u64(a.cum_ack);
                h.write_u64(a.highest_seen);
                for &(s, e) in &a.sack {
                    h.write_u64(s);
                    h.write_u64(e);
                }
                h.write_u64(u64::from(a.recv_window));
                h.write_f64(a.loss_tolerance);
                h.write_bool(a.echo_tx_at.is_some());
                if let Some(t) = a.echo_tx_at {
                    h.write_u64(now.saturating_sub(t));
                }
            }
            Segment::Fwd { fwd_seq } => {
                h.write_u8(4);
                h.write_u64(*fwd_seq);
            }
            Segment::Fin { final_seq } => {
                h.write_u8(5);
                h.write_u64(*final_seq);
            }
            Segment::FinAck => h.write_u8(6),
        }
    }
}

/// A segment stamped with the connection it belongs to; this is the
/// payload type placed in simulator packets.
#[derive(Debug, Clone, PartialEq)]
pub struct RudpPacket {
    /// Connection identifier (demultiplexing and sanity checks).
    pub conn_id: u32,
    /// The segment.
    pub segment: Segment,
}

/// Wire size in bytes of a segment, for queueing and serialization.
pub fn wire_size(seg: &Segment) -> u32 {
    match seg {
        Segment::Data(d) => HEADER_BYTES + d.len,
        Segment::Ack(a) => ACK_BYTES + SACK_RANGE_BYTES * a.sack.len() as u32,
        Segment::Syn { .. }
        | Segment::SynAck { .. }
        | Segment::Fwd { .. }
        | Segment::Fin { .. }
        | Segment::FinAck => HEADER_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(len: u32) -> Segment {
        Segment::Data(DataSeg {
            seq: 0,
            msg_id: 0,
            frag_idx: 0,
            frag_count: 1,
            len,
            marked: true,
            fwd_seq: 0,
            msg_sent_at: 0,
            tx_at: 0,
            retransmit: false,
        })
    }

    fn ack(sack: SackRanges) -> Segment {
        Segment::Ack(AckSeg {
            cum_ack: 0,
            highest_seen: 0,
            sack,
            recv_window: 10,
            loss_tolerance: 0.0,
            echo_tx_at: None,
        })
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(wire_size(&data(1400)), 1444);
        assert_eq!(wire_size(&data(0)), 44);
        assert_eq!(wire_size(&ack(SackRanges::new())), 60);
        // Each SACK range the ACK carries costs wire bytes.
        assert_eq!(wire_size(&ack(SackRanges::from_slice(&[(1, 2)]))), 68);
        assert_eq!(
            wire_size(&ack(SackRanges::from_slice(&[(1, 2), (4, 6), (9, 10)]))),
            84
        );
        assert_eq!(wire_size(&Segment::Fin { final_seq: 9 }), 44);
        assert_eq!(wire_size(&Segment::Syn { init_seq: 0 }), 44);
    }

    #[test]
    fn sack_ranges_inline_semantics() {
        let mut s = SackRanges::new();
        assert!(s.is_empty());
        assert!(s.push((1, 3)));
        s.last_mut().unwrap().1 = 4;
        assert_eq!(s.as_slice(), &[(1, 4)]);
        assert_eq!(s, vec![(1, 4)]);
        for i in 0..7u64 {
            assert!(s.push((10 * (i + 1), 10 * (i + 1) + 1)));
        }
        assert!(s.is_full());
        assert!(!s.push((99, 100)), "push past capacity must be dropped");
        assert_eq!(s.len(), MAX_SACK_RANGES);
        // Equality ignores scratch beyond `len`.
        let t = SackRanges::from_slice(s.as_slice());
        assert_eq!(s, t);
    }
}
