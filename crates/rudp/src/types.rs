//! Shared configuration, events, and statistics types.

use iq_netsim::{time, Time, TimeDelta};

use crate::cc::CcConfig;
use crate::meter::NetCond;
use crate::segment::DEFAULT_MSS;

/// Connection configuration, shared by sender and receiver endpoints
/// (each uses the fields relevant to its role).
#[derive(Debug, Clone)]
pub struct RudpConfig {
    /// Maximum data payload per segment (paper: 1400 B).
    pub mss: u32,
    /// Congestion-control tunables.
    pub cc: CcConfig,
    /// Measuring-period length for loss-ratio/metrics snapshots.
    pub measure_period: TimeDelta,
    /// SACK-above count that declares a segment lost (fast retransmit).
    pub dupack_threshold: u32,
    /// Lower clamp on the retransmission timeout.
    pub min_rto: TimeDelta,
    /// Upper clamp on the retransmission timeout.
    pub max_rto: TimeDelta,
    /// Receive buffer, in segments (advertised window).
    pub recv_buffer_segments: u32,
    /// Receiver loss tolerance in `[0, 1]`: the fraction of traffic the
    /// receiver will let the sender abandon (0 = fully reliable).
    pub loss_tolerance: f64,
    /// Error-ratio upper threshold for application callbacks.
    pub upper_threshold: Option<f64>,
    /// Error-ratio lower threshold for application callbacks.
    pub lower_threshold: Option<f64>,
    /// When `true` the sender drops unmarked application datagrams
    /// before they enter the network (the IQ-RUDP coordinated reaction
    /// to a reliability adaptation, §3.3).
    pub discard_unmarked: bool,
    /// ACK decimation: acknowledge every n-th in-order data segment
    /// instead of every one (1 = ack everything, the default). Out-of-
    /// order arrivals always ack immediately (they carry the duplicate
    /// evidence fast retransmit needs).
    pub ack_every: u32,
}

impl Default for RudpConfig {
    fn default() -> Self {
        Self {
            mss: DEFAULT_MSS,
            cc: CcConfig::default(),
            measure_period: time::millis(100),
            dupack_threshold: 3,
            min_rto: time::millis(100),
            max_rto: time::secs(4.0),
            recv_buffer_segments: 2048,
            loss_tolerance: 0.0,
            upper_threshold: None,
            lower_threshold: None,
            discard_unmarked: false,
            ack_every: 1,
        }
    }
}

/// Asynchronous notifications surfaced by a connection; drained by the
/// embedding agent after every input.
#[derive(Debug, Clone)]
pub enum ConnEvent {
    /// Handshake completed.
    Connected,
    /// A measuring period closed with this snapshot.
    PeriodEnded(NetCond),
    /// The error ratio reached the registered upper threshold — the
    /// application's "congestion is serious" callback (§3.3).
    UpperThreshold(NetCond),
    /// The error ratio fell to the registered lower threshold.
    LowerThreshold(NetCond),
    /// The connection terminated cleanly.
    Finished,
}

/// Outcome of submitting an application message to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted and fragmented into `fragments` segments.
    Queued {
        /// Message identifier assigned by the connection.
        msg_id: u64,
        /// Number of segments the message was split into.
        fragments: u16,
    },
    /// Dropped at the API boundary because the message was unmarked and
    /// discard-unmarked coordination is active.
    Discarded,
}

/// A fully reassembled message handed to the receiving application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredMsg {
    /// Message identifier (sender-assigned, increasing).
    pub msg_id: u64,
    /// Total payload bytes.
    pub size: u32,
    /// Whether it was marked (tagged).
    pub marked: bool,
    /// When the sending application emitted it.
    pub sent_at: Time,
    /// When the last fragment was delivered in order.
    pub delivered_at: Time,
}

/// Sender-side counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderStats {
    /// Messages accepted from the application.
    pub msgs_submitted: u64,
    /// Messages dropped by discard-unmarked coordination.
    pub msgs_discarded: u64,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmissions only.
    pub retransmits: u64,
    /// Segments abandoned under the receiver's loss tolerance.
    pub segments_abandoned: u64,
    /// Segments acknowledged.
    pub segments_acked: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Payload bytes acknowledged.
    pub bytes_acked: u64,
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReceiverStats {
    /// Data segments received (including duplicates).
    pub segments_received: u64,
    /// Duplicate segments.
    pub duplicates: u64,
    /// Sequence numbers skipped under sender abandonment.
    pub segments_skipped: u64,
    /// Fully assembled messages delivered to the application.
    pub msgs_delivered: u64,
    /// Messages dropped because one of their fragments was skipped.
    pub msgs_dropped_partial: u64,
    /// ACKs whose SACK block could not represent every hole (more
    /// reorder-buffer ranges than `MAX_SACK_RANGES`): the sender's loss
    /// sweep stops at the last reported range, so chronic truncation
    /// delays hole repair.
    pub sack_truncations: u64,
}
