//! Round-trip time estimation (Jacobson/Karels SRTT + RTTVAR, Karn's
//! rule applied by the caller via the `echo_tx_at` convention).

use iq_netsim::{time, Time, TimeDelta};

/// SRTT/RTTVAR estimator with exponential RTO backoff.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: TimeDelta,
    max_rto: TimeDelta,
    /// Current backoff multiplier (doubles on timeout, resets on sample).
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO clamps.
    pub fn new(min_rto: TimeDelta, max_rto: TimeDelta) -> Self {
        Self {
            srtt: None,
            rttvar: 0.0,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Feeds one RTT sample (seconds since the echoed transmission).
    pub fn sample(&mut self, rtt_s: f64) {
        const ALPHA: f64 = 1.0 / 8.0;
        const BETA: f64 = 1.0 / 4.0;
        match self.srtt {
            None => {
                self.srtt = Some(rtt_s);
                self.rttvar = rtt_s / 2.0;
            }
            Some(srtt) => {
                let err = rtt_s - srtt;
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * err.abs();
                self.srtt = Some(srtt + ALPHA * err);
            }
        }
        self.backoff = 0;
    }

    /// Records a sample from transmission/arrival timestamps.
    ///
    /// Zero-delay echoes are legal (sub-nanosecond links in tests round
    /// to the same tick); they must still seed the estimator or the RTO
    /// stays pinned at its initial value. Only a clock running backwards
    /// is discarded. The sample is floored at 1 µs so `rttvar` cannot
    /// collapse to exactly zero.
    pub fn sample_times(&mut self, tx_at: Time, now: Time) {
        if now >= tx_at {
            self.sample(((now - tx_at) as f64 / 1e9).max(1e-6));
        }
    }

    /// Smoothed RTT in seconds, or `default` before the first sample.
    pub fn srtt_or(&self, default: f64) -> f64 {
        self.srtt.unwrap_or(default)
    }

    /// Smoothed RTT in milliseconds (0 before the first sample).
    pub fn srtt_ms(&self) -> f64 {
        self.srtt.unwrap_or(0.0) * 1e3
    }

    /// Smoothed RTT as a time delta, or `None` before the first sample
    /// (feeds the congestion controllers' ACK hook).
    pub fn srtt(&self) -> Option<TimeDelta> {
        self.srtt.map(|s| (s * 1e9) as TimeDelta)
    }

    /// Current retransmission timeout including backoff.
    pub fn rto(&self) -> TimeDelta {
        let base = match self.srtt {
            None => time::millis(1000),
            Some(srtt) => time::secs(srtt + 4.0 * self.rttvar),
        };
        base.clamp(self.min_rto, self.max_rto)
            .saturating_mul(1u64 << self.backoff.min(6))
            .min(self.max_rto)
    }

    /// Doubles the RTO after a retransmission timeout (Karn backoff).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(6);
    }

    /// Current Karn backoff level (0 when no timeout is outstanding).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Folds the estimator state into a model-checker digest.
    pub(crate) fn digest(&self, h: &mut iq_telemetry::Fnv64) {
        h.write_bool(self.srtt.is_some());
        h.write_f64(self.srtt.unwrap_or(0.0));
        h.write_f64(self.rttvar);
        h.write_u64(u64::from(self.backoff));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::time::millis;

    fn est() -> RttEstimator {
        RttEstimator::new(millis(100), time::secs(4.0))
    }

    #[test]
    fn initial_rto_is_one_second() {
        assert_eq!(est().rto(), millis(1000));
    }

    #[test]
    fn converges_on_stable_rtt() {
        let mut e = est();
        for _ in 0..50 {
            e.sample(0.030);
        }
        assert!((e.srtt_or(0.0) - 0.030).abs() < 1e-6);
        assert!((e.srtt_ms() - 30.0).abs() < 1e-3);
        // Variance decays toward zero, so RTO clamps to the floor.
        assert_eq!(e.rto(), millis(100));
    }

    #[test]
    fn rto_tracks_variance() {
        let mut e = est();
        e.sample(0.1);
        // First sample: srtt=0.1, rttvar=0.05 => rto = 0.3 s.
        assert_eq!(e.rto(), millis(300));
    }

    #[test]
    fn backoff_doubles_and_resets() {
        let mut e = est();
        e.sample(0.1);
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), (base * 2).min(time::secs(4.0)));
        e.on_timeout();
        assert_eq!(e.rto(), (base * 4).min(time::secs(4.0)));
        e.sample(0.1);
        assert!(e.rto() <= base + millis(1));
    }

    #[test]
    fn rto_respects_max() {
        let mut e = est();
        e.sample(2.0);
        for _ in 0..10 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), time::secs(4.0));
    }

    #[test]
    fn sample_times_ignores_clock_anomalies() {
        let mut e = est();
        e.sample_times(100, 50); // now < tx_at: ignored
        assert_eq!(e.srtt_ms(), 0.0);
        e.sample_times(0, 30_000_000);
        assert!((e.srtt_ms() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_delay_sample_seeds_the_estimator() {
        let mut e = est();
        e.sample_times(1_000, 1_000); // same tick: must not be discarded
        assert!(e.srtt_ms() > 0.0, "estimator still unseeded");
        // Seeded with the 1 µs floor, so the RTO leaves its 1 s initial
        // value and clamps to the configured minimum.
        assert_eq!(e.rto(), millis(100));
    }
}
