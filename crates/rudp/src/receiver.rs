//! The receiving half of an RUDP connection: in-order delivery with a
//! reorder buffer, message reassembly, selective acknowledgements, and
//! adaptive-reliability skipping (the sender's `fwd_seq` floor).

use std::collections::VecDeque;
use std::sync::Arc;

use iq_netsim::Time;
use iq_telemetry::{TelemetryEvent, TelemetrySink};

use crate::ring::SeqRing;
use crate::segment::{AckSeg, DataSeg, SackRanges, Segment};
use crate::types::{ConnEvent, DeliveredMsg, ReceiverStats, RudpConfig};

/// In-progress reassembly of one application message.
#[derive(Debug, Clone)]
struct Assembly {
    msg_id: u64,
    frag_count: u16,
    next_frag: u16,
    bytes: u32,
    marked: bool,
    msg_sent_at: Time,
}

/// The receiving endpoint state machine.
#[derive(Debug, Clone)]
pub struct ReceiverConn {
    cfg: Arc<RudpConfig>,
    conn_id: u32,
    /// Current loss tolerance; starts at `cfg.loss_tolerance` and may be
    /// changed by the receiving application at any time.
    tolerance: f64,
    established: bool,
    /// Next sequence number needed for in-order progress.
    next_required: u64,
    /// Highest sequence number observed.
    highest_seen: u64,
    /// Out-of-order segments above `next_required`.
    buffer: SeqRing<DataSeg>,
    /// Current message being assembled from in-order fragments.
    assembly: Option<Assembly>,
    /// Set when a skipped hole may have cut a message in half; cleared
    /// at the next fragment with index 0.
    poisoned: bool,
    /// Completed messages awaiting pickup by the application.
    delivered: Vec<DeliveredMsg>,
    /// Segments waiting to be put on the wire (SYN-ACK, ACKs, FIN-ACK).
    outbox: VecDeque<Segment>,
    events: Vec<ConnEvent>,
    fin_seq: Option<u64>,
    finished: bool,
    /// In-order segments since the last ACK (decimation counter).
    unacked_in_order: u32,
    stats: ReceiverStats,
    telemetry: TelemetrySink,
    telemetry_flow: u64,
}

impl ReceiverConn {
    /// Creates a receiver for connection `conn_id`.
    pub fn new(conn_id: u32, cfg: RudpConfig) -> Self {
        Self::from_shared(conn_id, Arc::new(cfg))
    }

    /// Creates a receiver sharing an already-wrapped configuration (the
    /// [`crate::ConnBuilder`] path: many-flow setups build hundreds of
    /// connections from one config without cloning it each time).
    pub fn from_shared(conn_id: u32, cfg: Arc<RudpConfig>) -> Self {
        let tolerance = cfg.loss_tolerance;
        Self {
            cfg,
            conn_id,
            tolerance,
            established: false,
            next_required: 0,
            highest_seen: 0,
            buffer: SeqRing::new(),
            assembly: None,
            poisoned: false,
            delivered: Vec::new(),
            outbox: VecDeque::new(),
            events: Vec::new(),
            fin_seq: None,
            finished: false,
            unacked_in_order: 0,
            stats: ReceiverStats::default(),
            telemetry: TelemetrySink::disabled(),
            telemetry_flow: 0,
        }
    }

    /// Attaches a telemetry sink; subsequent events are emitted under
    /// `flow`.
    pub fn set_telemetry(&mut self, sink: TelemetrySink, flow: u64) {
        self.telemetry = sink;
        self.telemetry_flow = flow;
    }

    /// The attached telemetry sink (disabled by default).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Flow id telemetry is emitted under.
    pub fn telemetry_flow(&self) -> u64 {
        self.telemetry_flow
    }

    /// Connection identifier.
    pub fn conn_id(&self) -> u32 {
        self.conn_id
    }

    /// Counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Whether the sender has closed and everything owed was delivered.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Drains pending events.
    pub fn take_events(&mut self) -> Vec<ConnEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains pending events into a caller-owned scratch buffer: `out`
    /// is cleared and swapped with the internal queue, so a caller that
    /// reuses one buffer pays no allocation per poll in steady state.
    pub fn take_events_into(&mut self, out: &mut Vec<ConnEvent>) {
        out.clear();
        std::mem::swap(&mut self.events, out);
    }

    /// Discards pending events (sinks that never inspect them).
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    /// Drains messages completed since the last call.
    pub fn take_messages(&mut self) -> Vec<DeliveredMsg> {
        std::mem::take(&mut self.delivered)
    }

    /// Drains completed messages into a caller-owned scratch buffer (the
    /// swap-style counterpart of [`Self::take_messages`]).
    pub fn take_messages_into(&mut self, out: &mut Vec<DeliveredMsg>) {
        out.clear();
        std::mem::swap(&mut self.delivered, out);
    }

    /// Current loss tolerance.
    pub fn loss_tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Adaptive reliability, receiver side (§2.1): changes the loss
    /// tolerance mid-connection. The new value is advertised on every
    /// subsequent ACK, so the sender picks it up within one RTT.
    pub fn set_loss_tolerance(&mut self, tolerance: f64) {
        self.tolerance = tolerance.clamp(0.0, 1.0);
    }

    /// Remaining buffer space, in segments.
    fn recv_window(&self) -> u32 {
        self.cfg
            .recv_buffer_segments
            .saturating_sub(self.buffer.len() as u32)
            .max(1)
    }

    /// Builds the SACK range list from the reorder buffer, counting the
    /// ACKs whose block could not hold every hole (sim-plane counter:
    /// a pure function of the deterministic buffer contents).
    fn sack_ranges(&mut self) -> SackRanges {
        let mut ranges = SackRanges::new();
        for (seq, _) in self.buffer.iter() {
            match ranges.last_mut() {
                Some((_, end)) if *end == seq => *end = seq + 1,
                _ => {
                    if !ranges.push((seq, seq + 1)) {
                        iq_obs::counter_inc!(self.stats.sack_truncations);
                        break;
                    }
                }
            }
        }
        ranges
    }

    fn push_ack(&mut self, echo_tx_at: Option<Time>) {
        let ack = AckSeg {
            cum_ack: self.next_required,
            highest_seen: self.highest_seen,
            sack: self.sack_ranges(),
            recv_window: self.recv_window(),
            loss_tolerance: self.tolerance,
            echo_tx_at,
        };
        self.outbox.push_back(Segment::Ack(ack));
    }

    /// Processes an incoming segment.
    pub fn on_segment(&mut self, now: Time, seg: &Segment) {
        match seg {
            Segment::Syn { init_seq } => {
                if !self.established {
                    self.established = true;
                    self.next_required = *init_seq;
                    self.events.push(ConnEvent::Connected);
                }
                // (Re)send the SYN-ACK; duplicates are harmless.
                self.outbox.push_back(Segment::SynAck {
                    loss_tolerance: self.tolerance,
                    recv_window: self.recv_window(),
                });
            }
            Segment::Data(d) => self.on_data(now, d),
            Segment::Fwd { fwd_seq } => {
                self.apply_fwd(now, *fwd_seq);
                self.push_ack(None);
                self.maybe_finish();
            }
            Segment::Fin { final_seq } => {
                if self.finished {
                    // Retransmitted FIN: our FIN-ACK was lost.
                    self.outbox.push_back(Segment::FinAck);
                } else {
                    self.fin_seq = Some(*final_seq);
                    // The sender only emits FIN once every sequence below
                    // `final_seq` is acknowledged or abandoned, so any
                    // remaining hole is an abandonment whose skip
                    // notification was lost: the FIN doubles as the final
                    // skip floor.
                    self.apply_fwd(now, *final_seq);
                    self.maybe_finish();
                }
            }
            // Sender-bound segments; ignore.
            _ => {}
        }
    }

    fn on_data(&mut self, now: Time, d: &DataSeg) {
        self.stats.segments_received += 1;
        self.highest_seen = self.highest_seen.max(d.seq + 1);
        let duplicate = d.seq < self.next_required || self.buffer.contains(d.seq);
        if duplicate {
            self.stats.duplicates += 1;
        } else {
            self.buffer.insert(d.seq, d.clone());
        }
        self.apply_fwd(now, d.fwd_seq);
        let before = self.next_required;
        self.drain(now);
        let in_order = self.next_required > before && self.buffer.is_empty();
        // Karn: no RTT echo for retransmissions or duplicates.
        let echo = (!d.retransmit && !duplicate).then_some(d.tx_at);
        // ACK decimation: clean in-order progress may batch ACKs; any
        // reordering evidence (gap, duplicate, retransmission) acks
        // immediately so loss detection stays sharp.
        let ack_every = self.cfg.ack_every.max(1);
        if ack_every == 1 || !in_order || duplicate || d.retransmit {
            self.unacked_in_order = 0;
            self.push_ack(echo);
        } else {
            self.unacked_in_order += 1;
            if self.unacked_in_order >= ack_every {
                self.unacked_in_order = 0;
                self.push_ack(echo);
            }
        }
        self.maybe_finish();
    }

    /// Advances over sequence numbers the sender abandoned.
    fn apply_fwd(&mut self, now: Time, fwd_seq: u64) {
        if fwd_seq <= self.next_required {
            return;
        }
        while self.next_required < fwd_seq {
            let seq = self.next_required;
            if self.buffer.contains(seq) {
                self.deliver_next(now);
            } else {
                // A hole the sender told us to skip.
                self.stats.segments_skipped += 1;
                self.telemetry
                    .emit(now, self.telemetry_flow, TelemetryEvent::GapSkipped { seq });
                self.poison();
                self.next_required += 1;
            }
        }
        self.drain(now);
    }

    /// Delivers the contiguous run starting at `next_required`.
    fn drain(&mut self, now: Time) {
        while self.buffer.contains(self.next_required) {
            self.deliver_next(now);
        }
    }

    /// Drops a partially assembled message cut by a skipped fragment.
    fn poison(&mut self) {
        if self.assembly.take().is_some() {
            self.stats.msgs_dropped_partial += 1;
        }
        self.poisoned = true;
    }

    fn deliver_next(&mut self, now: Time) {
        let seq = self.next_required;
        let d = self.buffer.take(seq).expect("caller checked presence");
        self.next_required += 1;

        if d.frag_idx == 0 {
            // A fresh message clears any poisoning.
            if self.assembly.take().is_some() {
                // Previous assembly never completed (shouldn't happen
                // without skips, but be robust).
                self.stats.msgs_dropped_partial += 1;
            }
            self.poisoned = false;
            self.assembly = Some(Assembly {
                msg_id: d.msg_id,
                frag_count: d.frag_count,
                next_frag: 0,
                bytes: 0,
                marked: d.marked,
                msg_sent_at: d.msg_sent_at,
            });
        }
        if self.poisoned {
            // Tail fragments of a message whose head was skipped.
            return;
        }
        let mismatch = match self.assembly.as_ref() {
            None => return,
            Some(asm) => asm.msg_id != d.msg_id || asm.next_frag != d.frag_idx,
        };
        if mismatch {
            // Unexpected fragment: the message was cut somewhere.
            self.poison();
            return;
        }
        let asm = self.assembly.as_mut().expect("checked above");
        asm.bytes += d.len;
        asm.next_frag += 1;
        if asm.next_frag == asm.frag_count {
            let asm = self.assembly.take().expect("just borrowed");
            self.stats.msgs_delivered += 1;
            self.telemetry.emit_with(now, self.telemetry_flow, || {
                TelemetryEvent::MsgDelivered {
                    msg_id: asm.msg_id,
                    size: asm.bytes,
                    marked: asm.marked,
                    latency_ns: now.saturating_sub(asm.msg_sent_at),
                }
            });
            self.delivered.push(DeliveredMsg {
                msg_id: asm.msg_id,
                size: asm.bytes,
                marked: asm.marked,
                sent_at: asm.msg_sent_at,
                delivered_at: now,
            });
        }
    }

    fn maybe_finish(&mut self) {
        if self.finished {
            return;
        }
        if let Some(fin) = self.fin_seq {
            if self.next_required >= fin {
                self.finished = true;
                self.events.push(ConnEvent::Finished);
                self.outbox.push_back(Segment::FinAck);
            }
        }
    }

    /// Produces the next outgoing segment (SYN-ACK / ACK / FIN-ACK).
    pub fn poll_transmit(&mut self, _now: Time) -> Option<Segment> {
        self.outbox.pop_front()
    }

    /// Whether the receiver already holds `seq` (delivered, skipped, or
    /// buffered out of order). Used by tests and the model checker to
    /// detect spurious retransmissions of data the receiver has.
    pub fn has_segment(&self, seq: u64) -> bool {
        seq < self.next_required || self.buffer.contains(seq)
    }

    /// Folds the full control state into a model-checker digest (the
    /// receiving-side counterpart of [`crate::SenderConn::state_digest`]).
    pub fn state_digest(&self, now: Time, h: &mut iq_telemetry::Fnv64) {
        h.write_bool(self.established);
        h.write_f64(self.tolerance);
        h.write_u64(self.next_required);
        h.write_u64(self.highest_seen);
        h.write_u64(self.buffer.len() as u64);
        for (seq, d) in self.buffer.iter() {
            h.write_u64(seq);
            h.write_u64(d.msg_id);
            h.write_u64(u64::from(d.frag_idx));
            h.write_u64(u64::from(d.frag_count));
            h.write_u64(u64::from(d.len));
            h.write_bool(d.marked);
        }
        h.write_bool(self.assembly.is_some());
        if let Some(a) = &self.assembly {
            h.write_u64(a.msg_id);
            h.write_u64(u64::from(a.frag_count));
            h.write_u64(u64::from(a.next_frag));
            h.write_u64(u64::from(a.bytes));
            h.write_bool(a.marked);
        }
        h.write_bool(self.poisoned);
        h.write_u64(self.delivered.len() as u64);
        h.write_u64(self.outbox.len() as u64);
        for seg in &self.outbox {
            seg.state_digest(now, h);
        }
        h.write_bool(self.fin_seq.is_some());
        h.write_u64(self.fin_seq.unwrap_or(0));
        h.write_bool(self.finished);
        h.write_u64(u64::from(self.unacked_in_order));
        h.write_u64(self.events.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv(tolerance: f64) -> ReceiverConn {
        ReceiverConn::new(
            1,
            RudpConfig {
                loss_tolerance: tolerance,
                ..RudpConfig::default()
            },
        )
    }

    fn data(seq: u64, msg_id: u64, frag_idx: u16, frag_count: u16, marked: bool) -> Segment {
        Segment::Data(DataSeg {
            seq,
            msg_id,
            frag_idx,
            frag_count,
            len: 1400,
            marked,
            fwd_seq: 0,
            msg_sent_at: 0,
            tx_at: 5,
            retransmit: false,
        })
    }

    fn last_ack(r: &mut ReceiverConn) -> AckSeg {
        let mut last = None;
        while let Some(seg) = r.poll_transmit(0) {
            if let Segment::Ack(a) = seg {
                last = Some(a);
            }
        }
        last.expect("no ack produced")
    }

    #[test]
    fn syn_produces_synack_with_tolerance() {
        let mut r = recv(0.4);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        match r.poll_transmit(0) {
            Some(Segment::SynAck {
                loss_tolerance, ..
            }) => assert!((loss_tolerance - 0.4).abs() < 1e-12),
            other => panic!("expected SynAck, got {other:?}"),
        }
        assert!(matches!(
            r.take_events().as_slice(),
            [ConnEvent::Connected]
        ));
    }

    #[test]
    fn in_order_single_fragment_messages_deliver() {
        let mut r = recv(0.0);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        for seq in 0..3 {
            r.on_segment(10 + seq, &data(seq, seq, 0, 1, true));
        }
        let msgs = r.take_messages();
        assert_eq!(msgs.len(), 3);
        assert_eq!(msgs[0].msg_id, 0);
        assert_eq!(msgs[2].delivered_at, 12);
        assert_eq!(last_ack(&mut r).cum_ack, 3);
    }

    #[test]
    fn multi_fragment_message_assembles() {
        let mut r = recv(0.0);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        r.on_segment(1, &data(0, 7, 0, 3, true));
        r.on_segment(2, &data(1, 7, 1, 3, true));
        assert!(r.take_messages().is_empty());
        r.on_segment(3, &data(2, 7, 2, 3, true));
        let msgs = r.take_messages();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].size, 3 * 1400);
        assert_eq!(msgs[0].msg_id, 7);
    }

    #[test]
    fn out_of_order_buffers_and_sacks() {
        let mut r = recv(0.0);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        // Seq 1 and 3 arrive; 0 and 2 missing.
        r.on_segment(1, &data(1, 1, 0, 1, true));
        r.on_segment(2, &data(3, 3, 0, 1, true));
        let a = last_ack(&mut r);
        assert_eq!(a.cum_ack, 0);
        assert_eq!(a.highest_seen, 4);
        assert_eq!(a.sack, vec![(1, 2), (3, 4)]);
        // Hole at 0 fills: 0 and 1 deliver, 3 still buffered.
        r.on_segment(3, &data(0, 0, 0, 1, true));
        let a = last_ack(&mut r);
        assert_eq!(a.cum_ack, 2);
        assert_eq!(a.sack, vec![(3, 4)]);
        assert_eq!(r.take_messages().len(), 2);
    }

    #[test]
    fn fwd_skips_hole_and_delivers_beyond() {
        let mut r = recv(0.4);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        // Seqs 1, 2 arrive; 0 was abandoned by the sender.
        r.on_segment(1, &data(1, 1, 0, 1, true));
        r.on_segment(2, &data(2, 2, 0, 1, true));
        assert!(r.take_messages().is_empty());
        r.on_segment(3, &Segment::Fwd { fwd_seq: 1 });
        let msgs = r.take_messages();
        assert_eq!(msgs.len(), 2);
        assert_eq!(r.stats().segments_skipped, 1);
        assert_eq!(last_ack(&mut r).cum_ack, 3);
    }

    #[test]
    fn piggybacked_fwd_on_data_works_too() {
        let mut r = recv(0.4);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        // Seq 0 lost+abandoned; seq 1 carries fwd_seq = 1.
        let mut d = match data(1, 1, 0, 1, true) {
            Segment::Data(d) => d,
            _ => unreachable!(),
        };
        d.fwd_seq = 1;
        r.on_segment(1, &Segment::Data(d));
        assert_eq!(r.take_messages().len(), 1);
        assert_eq!(r.stats().segments_skipped, 1);
    }

    #[test]
    fn skipped_fragment_drops_whole_message() {
        let mut r = recv(0.4);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        // Message 5 spans seqs 0..3; seq 1 is skipped.
        r.on_segment(1, &data(0, 5, 0, 3, true));
        r.on_segment(2, &data(2, 5, 2, 3, true));
        r.on_segment(3, &Segment::Fwd { fwd_seq: 2 });
        // Next message arrives complete.
        r.on_segment(4, &data(3, 6, 0, 1, true));
        let msgs = r.take_messages();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].msg_id, 6);
        assert_eq!(r.stats().msgs_dropped_partial, 1);
    }

    #[test]
    fn duplicates_are_counted_and_reacked() {
        let mut r = recv(0.0);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        r.on_segment(1, &data(0, 0, 0, 1, true));
        r.on_segment(2, &data(0, 0, 0, 1, true));
        assert_eq!(r.stats().duplicates, 1);
        assert_eq!(r.take_messages().len(), 1);
        // The duplicate still produced an ACK (with no RTT echo).
        let a = last_ack(&mut r);
        assert_eq!(a.cum_ack, 1);
        assert_eq!(a.echo_tx_at, None);
    }

    #[test]
    fn retransmissions_do_not_echo_rtt() {
        let mut r = recv(0.0);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        let mut d = match data(0, 0, 0, 1, true) {
            Segment::Data(d) => d,
            _ => unreachable!(),
        };
        d.retransmit = true;
        r.on_segment(1, &Segment::Data(d));
        assert_eq!(last_ack(&mut r).echo_tx_at, None);
    }

    #[test]
    fn fin_after_all_data_finishes() {
        let mut r = recv(0.0);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        r.on_segment(1, &data(0, 0, 0, 1, true));
        r.on_segment(2, &Segment::Fin { final_seq: 1 });
        assert!(r.is_finished());
        let outs: Vec<Segment> = std::iter::from_fn(|| r.poll_transmit(0)).collect();
        assert!(outs.iter().any(|s| matches!(s, Segment::FinAck)));
        assert!(r
            .take_events()
            .iter()
            .any(|e| matches!(e, ConnEvent::Finished)));
    }

    #[test]
    fn fin_skips_abandoned_holes() {
        // The sender only emits FIN when every lower sequence is acked
        // or abandoned, so a hole at FIN time is an abandonment whose
        // skip notification was lost: the receiver must not deadlock.
        let mut r = recv(0.4);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        r.on_segment(1, &data(1, 1, 0, 1, true)); // 0 missing (abandoned)
        r.on_segment(2, &Segment::Fin { final_seq: 2 });
        assert!(r.is_finished());
        assert_eq!(r.stats().segments_skipped, 1);
        // The buffered message behind the hole was delivered.
        assert_eq!(r.take_messages().len(), 1);
    }

    #[test]
    fn dynamic_tolerance_is_advertised_on_acks() {
        let mut r = recv(0.0);
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        r.on_segment(1, &data(0, 0, 0, 1, true));
        assert_eq!(last_ack(&mut r).loss_tolerance, 0.0);
        // The receiving application relaxes its requirement mid-stream.
        r.set_loss_tolerance(0.25);
        assert_eq!(r.loss_tolerance(), 0.25);
        r.on_segment(2, &data(1, 1, 0, 1, true));
        assert!((last_ack(&mut r).loss_tolerance - 0.25).abs() < 1e-12);
        // Values outside [0, 1] are clamped.
        r.set_loss_tolerance(7.0);
        assert_eq!(r.loss_tolerance(), 1.0);
    }

    #[test]
    fn ack_decimation_batches_clean_progress() {
        let mut r = ReceiverConn::new(
            1,
            RudpConfig {
                ack_every: 4,
                ..RudpConfig::default()
            },
        );
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        while r.poll_transmit(0).is_some() {}
        // Seven clean in-order segments: only one ACK (at the 4th).
        for seq in 0..7 {
            r.on_segment(1 + seq, &data(seq, seq, 0, 1, true));
        }
        let acks: Vec<_> = std::iter::from_fn(|| r.poll_transmit(8))
            .filter(|s| matches!(s, Segment::Ack(_)))
            .collect();
        assert_eq!(acks.len(), 1);
        // A gap forces an immediate ACK despite decimation.
        r.on_segment(9, &data(9, 9, 0, 1, true)); // hole at 7, 8
        let acks: Vec<_> = std::iter::from_fn(|| r.poll_transmit(10))
            .filter(|s| matches!(s, Segment::Ack(_)))
            .collect();
        assert_eq!(acks.len(), 1);
    }

    #[test]
    fn window_shrinks_as_buffer_fills() {
        let mut r = ReceiverConn::new(
            1,
            RudpConfig {
                recv_buffer_segments: 4,
                ..RudpConfig::default()
            },
        );
        r.on_segment(0, &Segment::Syn { init_seq: 0 });
        // Out-of-order segments pile up in the buffer.
        r.on_segment(1, &data(1, 1, 0, 1, true));
        r.on_segment(2, &data(2, 2, 0, 1, true));
        let a = last_ack(&mut r);
        assert_eq!(a.recv_window, 2);
    }
}
