//! Congestion control: a window-based analogue of the Loss-Delay
//! Adjustment algorithm (Sisalem & Schulzrinne) the paper says IQ-RUDP
//! resembles (§2).
//!
//! Per measuring period the window grows additively when the period was
//! loss-free and shrinks multiplicatively with the measured loss ratio —
//! `w ← w · max(0.5, 1 − β·√loss)` (LDA's loss-proportional adjustment)
//! — which is smoother than TCP's halving and is what gives RUDP its
//! "smoother changes of congestion window" (§3.2), while the √ keeps the
//! reaction strong enough to remain roughly TCP-friendly.
//! Retransmission timeouts still halve the window immediately.
//!
//! Coordination hooks: [`LdaWindow::scale`] applies the IQ-RUDP window
//! re-adjustments (e.g. `1/(1 − rate_chg)` after a resolution
//! adaptation), and the whole controller can be disabled to reproduce the
//! paper's "application adaptation only" row (Table 1, row 3).

/// Tunables for [`LdaWindow`].
#[derive(Debug, Clone)]
pub struct CcConfig {
    /// Initial window, segments.
    pub initial_cwnd: f64,
    /// Window floor.
    pub min_cwnd: f64,
    /// Window ceiling.
    pub max_cwnd: f64,
    /// Additive increase per loss-free period, segments.
    pub incr_per_period: f64,
    /// Multiplier on the square root of the loss ratio for the decrease
    /// factor.
    pub beta: f64,
    /// Whether adaptive control is active; when `false` the window stays
    /// pinned at `fixed_cwnd`.
    pub enabled: bool,
    /// Window used when `enabled == false`.
    pub fixed_cwnd: f64,
}

impl Default for CcConfig {
    fn default() -> Self {
        Self {
            initial_cwnd: 2.0,
            min_cwnd: 1.0,
            max_cwnd: 1024.0,
            incr_per_period: 1.0,
            beta: 2.0,
            enabled: true,
            fixed_cwnd: 64.0,
        }
    }
}

/// The congestion window state.
#[derive(Debug, Clone)]
pub struct LdaWindow {
    cfg: CcConfig,
    cwnd: f64,
}

impl LdaWindow {
    /// Creates a window from its configuration.
    pub fn new(cfg: CcConfig) -> Self {
        let cwnd = if cfg.enabled {
            cfg.initial_cwnd
        } else {
            cfg.fixed_cwnd
        };
        Self { cfg, cwnd }
    }

    /// Current window in (fractional) segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Window rounded to the nearest whole segment, at least one.
    ///
    /// Truncation would make a window of 1.999 behave as 1 segment,
    /// stalling recovery near the floor: each additive increase has to
    /// accumulate a full segment before any of it takes effect.
    pub fn cwnd_segments(&self) -> u32 {
        (self.cwnd.round() as u32).max(1)
    }

    /// Whether adaptive control is active.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    fn clamp(&mut self) {
        self.cwnd = self.cwnd.clamp(self.cfg.min_cwnd, self.cfg.max_cwnd);
    }

    /// Ends a measuring period with the observed `loss_ratio`. Returns
    /// the resulting window so callers can report the change without
    /// re-querying.
    pub fn on_period(&mut self, loss_ratio: f64) -> f64 {
        if !self.cfg.enabled {
            return self.cwnd;
        }
        if loss_ratio <= 0.0 {
            self.cwnd += self.cfg.incr_per_period;
        } else {
            let factor = (1.0 - self.cfg.beta * loss_ratio.sqrt()).max(0.5);
            self.cwnd *= factor;
        }
        self.clamp();
        self.cwnd
    }

    /// Reacts to a retransmission timeout: immediate halving. Returns
    /// the resulting window.
    pub fn on_timeout(&mut self) -> f64 {
        if !self.cfg.enabled {
            return self.cwnd;
        }
        self.cwnd *= 0.5;
        self.clamp();
        self.cwnd
    }

    /// Coordination re-adjustment: multiplies the window by `factor`
    /// (clamped). Used by IQ-RUDP when the application reports an
    /// adaptation that changes its traffic pattern. Returns the
    /// resulting window.
    pub fn scale(&mut self, factor: f64) -> f64 {
        if factor.is_finite() && factor > 0.0 {
            self.cwnd *= factor;
            self.clamp();
        }
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win() -> LdaWindow {
        LdaWindow::new(CcConfig::default())
    }

    #[test]
    fn additive_increase_when_clean() {
        let mut w = win();
        let start = w.cwnd();
        w.on_period(0.0);
        w.on_period(0.0);
        assert_eq!(w.cwnd(), start + 2.0 * CcConfig::default().incr_per_period);
    }

    #[test]
    fn loss_proportional_decrease() {
        let mut w = LdaWindow::new(CcConfig {
            beta: 1.0,
            ..CcConfig::default()
        });
        w.scale(50.0); // get to 100
        let before = w.cwnd();
        w.on_period(0.09); // sqrt(0.09) = 0.3
        assert!((w.cwnd() - before * 0.7).abs() < 1e-9);
        // Heavy loss floors at one half.
        let before = w.cwnd();
        w.on_period(0.9);
        assert!((w.cwnd() - before * 0.5).abs() < 1e-9);
    }

    #[test]
    fn timeout_halves() {
        let mut w = win();
        w.scale(8.0); // 16
        w.on_timeout();
        assert_eq!(w.cwnd(), 8.0);
    }

    #[test]
    fn clamped_to_bounds() {
        let mut w = win();
        for _ in 0..2000 {
            w.on_period(0.0);
        }
        assert_eq!(w.cwnd(), 1024.0);
        for _ in 0..100 {
            w.on_timeout();
        }
        assert_eq!(w.cwnd(), 1.0);
        assert_eq!(w.cwnd_segments(), 1);
    }

    #[test]
    fn disabled_window_is_pinned() {
        let mut w = LdaWindow::new(CcConfig {
            enabled: false,
            fixed_cwnd: 40.0,
            ..CcConfig::default()
        });
        w.on_period(0.5);
        w.on_timeout();
        assert_eq!(w.cwnd(), 40.0);
        assert!(!w.enabled());
        // Coordination scaling still applies even with cc disabled.
        w.scale(0.5);
        assert_eq!(w.cwnd(), 20.0);
    }

    #[test]
    fn cwnd_segments_rounds_to_nearest() {
        let mut w = win();
        w.scale(1.999 / w.cwnd());
        assert!((w.cwnd() - 1.999).abs() < 1e-12);
        // 1.999 must behave as 2 segments, not truncate to 1.
        assert_eq!(w.cwnd_segments(), 2);
        w.scale(1.4 / w.cwnd());
        assert_eq!(w.cwnd_segments(), 1);
        w.scale(2.5 / w.cwnd());
        assert_eq!(w.cwnd_segments(), 3); // round half away from zero
    }

    #[test]
    fn scale_ignores_degenerate_factors() {
        let mut w = win();
        let before = w.cwnd();
        w.scale(0.0);
        w.scale(-1.0);
        w.scale(f64::NAN);
        w.scale(f64::INFINITY);
        assert_eq!(w.cwnd(), before);
    }
}
