//! Pluggable congestion control.
//!
//! The transport's congestion-control seam is the [`CongestionControl`]
//! trait: period / ACK / loss / timeout / ECN hooks, a cwnd query, and
//! the coordinator's [`scale`](CongestionControl::scale) re-adjustment
//! (IQ-RUDP §3.4 window re-inflation). Which controller a connection
//! runs is a typed [`CcAlgorithm`] value in [`CcConfig`]; the sender
//! stores the chosen controller *inline* as a [`CcController`] enum so
//! the per-ACK hot path stays allocation- and vtable-free.
//!
//! Controllers:
//!
//! - [`LdaWindow`] — the paper's loss-proportional window, a window-based
//!   analogue of the Loss-Delay Adjustment algorithm (Sisalem &
//!   Schulzrinne) IQ-RUDP says it resembles (§2). Additive increase per
//!   loss-free measuring period; `w ← w · max(0.5, 1 − β·√loss)` on
//!   lossy periods; timeouts halve. Smoother than TCP's halving — the
//!   "smoother changes of congestion window" of §3.2.
//! - [`CubicWindow`] — RFC 8312-style CUBIC: after a loss event the
//!   window follows `W(t) = C·(t − K)³ + W_max` in time since the event,
//!   giving the concave/convex probe around the last known saturation
//!   point; a plain slow-start phase handles the initial ramp.
//! - [`BbrWindow`] — a simplified BBR-like model: windowed-max delivery
//!   rate × windowed-min RTT (both sampled at measuring-period
//!   boundaries from [`NetCond`]) estimate the bandwidth-delay product,
//!   and the window is pinned to `gain × BDP`.
//! - [`RrrWindow`] — an interpretation of "Relative Rate Reduction Based
//!   Control with Adjustable Congestion Level" (PAPERS.md): the operator
//!   picks a target congestion level (acceptable loss ratio); periods at
//!   or below the target probe additively, periods above it reduce the
//!   window proportionally to the loss excess *relative* to the target.
//! - [`FixedWindow`] — no adaptation; reproduces the paper's
//!   "application adaptation only" rows (Table 1, row 3). Coordination
//!   `scale` still applies, matching the old `enabled: false` behavior.
//!
//! Every controller's `scale` is multiply-then-clamp against the shared
//! `[min_cwnd, max_cwnd]` bounds — that uniform contract is what the
//! model checker's re-inflation invariant (DESIGN.md §13) checks for
//! all of them.

use iq_netsim::{Time, TimeDelta};

use crate::meter::NetCond;

/// Congestion-control configuration: the algorithm plus the window
/// bounds every controller shares.
///
/// The bounds stay outside [`CcAlgorithm`] because the coordinator's
/// re-inflation contract (and the model checker's invariant) is defined
/// in terms of them regardless of controller.
#[derive(Debug, Clone, PartialEq)]
pub struct CcConfig {
    /// Which controller to run.
    pub algorithm: CcAlgorithm,
    /// Initial window, segments (adaptive controllers).
    pub initial_cwnd: f64,
    /// Window floor.
    pub min_cwnd: f64,
    /// Window ceiling.
    pub max_cwnd: f64,
}

impl Default for CcConfig {
    fn default() -> Self {
        Self {
            algorithm: CcAlgorithm::default(),
            initial_cwnd: 2.0,
            min_cwnd: 1.0,
            max_cwnd: 1024.0,
        }
    }
}

/// Typed selection of a congestion controller, with its tunables.
#[derive(Debug, Clone, PartialEq)]
pub enum CcAlgorithm {
    /// The paper's loss-proportional LDA window (the default).
    Lda(LdaParams),
    /// RFC 8312-style CUBIC.
    Cubic(CubicParams),
    /// Simplified delivery-rate × min-RTT model.
    BbrLike(BbrParams),
    /// Relative-rate-reduction with an adjustable congestion level.
    Rrr(RrrParams),
    /// No adaptation: the window stays pinned (coordination `scale`
    /// still applies). The paper's "application adaptation only" mode.
    Fixed {
        /// The pinned window, segments.
        cwnd: f64,
    },
}

impl Default for CcAlgorithm {
    fn default() -> Self {
        CcAlgorithm::Lda(LdaParams::default())
    }
}

impl CcAlgorithm {
    /// Stable lower-case name, used in CLI flags, scenario labels, and
    /// telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            CcAlgorithm::Lda(_) => "lda",
            CcAlgorithm::Cubic(_) => "cubic",
            CcAlgorithm::BbrLike(_) => "bbr",
            CcAlgorithm::Rrr(_) => "rrr",
            CcAlgorithm::Fixed { .. } => "fixed",
        }
    }

    /// Parses a [`Self::name`] back into an algorithm with default
    /// parameters (`fixed` uses the default [`CcConfig`]'s 64-segment
    /// pin). Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "lda" => Some(CcAlgorithm::Lda(LdaParams::default())),
            "cubic" => Some(CcAlgorithm::Cubic(CubicParams::default())),
            "bbr" => Some(CcAlgorithm::BbrLike(BbrParams::default())),
            "rrr" => Some(CcAlgorithm::Rrr(RrrParams::default())),
            "fixed" => Some(CcAlgorithm::Fixed { cwnd: 64.0 }),
            _ => None,
        }
    }

    /// All adaptive algorithms with default parameters, in stable order.
    /// The experiment matrix and the alloc smoke iterate this.
    pub fn all_adaptive() -> [Self; 4] {
        [
            CcAlgorithm::Lda(LdaParams::default()),
            CcAlgorithm::Cubic(CubicParams::default()),
            CcAlgorithm::BbrLike(BbrParams::default()),
            CcAlgorithm::Rrr(RrrParams::default()),
        ]
    }
}

/// Tunables for [`LdaWindow`].
#[derive(Debug, Clone, PartialEq)]
pub struct LdaParams {
    /// Additive increase per loss-free period, segments.
    pub incr_per_period: f64,
    /// Multiplier on the square root of the loss ratio for the decrease
    /// factor.
    pub beta: f64,
}

impl Default for LdaParams {
    fn default() -> Self {
        Self {
            incr_per_period: 1.0,
            beta: 2.0,
        }
    }
}

/// Tunables for [`CubicWindow`].
#[derive(Debug, Clone, PartialEq)]
pub struct CubicParams {
    /// The cubic coefficient `C`, segments/s³ (RFC 8312 default 0.4).
    pub c: f64,
    /// Multiplicative decrease on a loss event (RFC 8312 default 0.7).
    pub beta: f64,
}

impl Default for CubicParams {
    fn default() -> Self {
        Self { c: 0.4, beta: 0.7 }
    }
}

/// Tunables for [`BbrWindow`].
#[derive(Debug, Clone, PartialEq)]
pub struct BbrParams {
    /// Window gain over the estimated BDP (headroom for ACK clocking).
    pub gain: f64,
    /// Multiplicative growth per period while no BDP estimate exists
    /// yet (the startup phase).
    pub startup_gain: f64,
    /// Segment size used to convert the BDP estimate to segments.
    pub mss: u32,
}

impl Default for BbrParams {
    fn default() -> Self {
        Self {
            gain: 2.0,
            startup_gain: 2.0,
            mss: crate::segment::DEFAULT_MSS,
        }
    }
}

/// Tunables for [`RrrWindow`].
#[derive(Debug, Clone, PartialEq)]
pub struct RrrParams {
    /// The adjustable congestion level: the loss ratio the controller
    /// is willing to operate at.
    pub target_loss: f64,
    /// Gain on the relative loss excess for the reduction factor.
    pub gamma: f64,
    /// Additive increase per period at or below the target, segments.
    pub incr_per_period: f64,
}

impl Default for RrrParams {
    fn default() -> Self {
        Self {
            target_loss: 0.05,
            gamma: 1.0,
            incr_per_period: 1.0,
        }
    }
}

/// The congestion-control seam between the transport and a window
/// algorithm.
///
/// Hook contract (see DESIGN.md §14 for ordering relative to the
/// coordinator):
///
/// - [`on_ack`](Self::on_ack) fires once per processed ACK segment that
///   newly acknowledged data (ack-clocked controllers grow here).
/// - [`on_loss`](Self::on_loss) fires at most once per ACK that crossed
///   the dup-threshold for some segment — one *loss event*, not one
///   call per lost segment.
/// - [`on_period`](Self::on_period) fires at each measuring-period
///   boundary with the fresh [`NetCond`] snapshot (period-driven
///   controllers adjust here).
/// - [`on_timeout`](Self::on_timeout) fires per RTO-expired segment.
/// - [`on_ecn`](Self::on_ecn) is reserved for ECN marks; the default
///   treats a mark as a loss event, which is what ECN semantically is
///   to a loss-based controller. No transport path emits it yet.
/// - [`scale`](Self::scale) is the coordinator's re-adjustment (§3.4);
///   every implementation MUST be multiply-then-clamp so the model
///   checker's re-inflation invariant holds for any controller.
///
/// Every mutating hook returns the resulting window so callers can
/// report changes without re-querying.
pub trait CongestionControl {
    /// Current window in (fractional) segments.
    fn cwnd(&self) -> f64;

    /// Window rounded to the nearest whole segment, at least one.
    ///
    /// Truncation would make a window of 1.999 behave as 1 segment,
    /// stalling recovery near the floor: each additive increase has to
    /// accumulate a full segment before any of it takes effect.
    fn cwnd_segments(&self) -> u32 {
        (self.cwnd().round() as u32).max(1)
    }

    /// An ACK segment newly acknowledged `acked_segments` segments;
    /// `srtt` is the current smoothed RTT if one exists.
    fn on_ack(&mut self, now: Time, acked_segments: u32, srtt: Option<TimeDelta>) -> f64 {
        let _ = (now, acked_segments, srtt);
        self.cwnd()
    }

    /// A loss event: at least one segment crossed the duplicate-ACK
    /// threshold in one incoming ACK.
    fn on_loss(&mut self, now: Time) -> f64 {
        let _ = now;
        self.cwnd()
    }

    /// A measuring period closed with snapshot `cond`.
    fn on_period(&mut self, now: Time, cond: &NetCond) -> f64 {
        let _ = (now, cond);
        self.cwnd()
    }

    /// A retransmission timeout fired.
    fn on_timeout(&mut self, now: Time) -> f64;

    /// An ECN congestion mark arrived (no transport path emits this
    /// yet; the hook keeps the seam ECN-ready).
    fn on_ecn(&mut self, now: Time) -> f64 {
        self.on_loss(now)
    }

    /// Coordination re-adjustment: multiplies the window by `factor`,
    /// clamped to the configured bounds. Degenerate factors (non-finite
    /// or ≤ 0) are ignored. Used by IQ-RUDP when the application
    /// reports an adaptation that changes its traffic pattern (§3.4).
    fn scale(&mut self, factor: f64) -> f64;

    /// Folds the controller state into a model-checker digest; times
    /// must be hashed relative to `now` (DESIGN.md §13).
    fn digest(&self, now: Time, h: &mut iq_telemetry::Fnv64);
}

/// Shared window bounds, extracted from [`CcConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bounds {
    min: f64,
    max: f64,
}

impl Bounds {
    fn of(cfg: &CcConfig) -> Self {
        Self {
            min: cfg.min_cwnd,
            max: cfg.max_cwnd,
        }
    }

    fn clamp(self, w: f64) -> f64 {
        w.clamp(self.min, self.max)
    }
}

/// Multiply-then-clamp shared by every controller's `scale`: the §3.4
/// re-inflation contract the model checker pins.
fn scale_cwnd(cwnd: &mut f64, factor: f64, b: Bounds) -> f64 {
    if factor.is_finite() && factor > 0.0 {
        *cwnd = b.clamp(*cwnd * factor);
    }
    *cwnd
}

// ---------------------------------------------------------------- LDA

/// The paper's loss-proportional congestion window (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct LdaWindow {
    p: LdaParams,
    b: Bounds,
    cwnd: f64,
}

impl LdaWindow {
    /// Creates a window from the shared config and its tunables.
    pub fn new(cfg: &CcConfig, p: LdaParams) -> Self {
        Self {
            p,
            b: Bounds::of(cfg),
            cwnd: cfg.initial_cwnd,
        }
    }
}

impl CongestionControl for LdaWindow {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Additive increase on a clean period; multiplicative,
    /// loss-proportional decrease (`max(0.5, 1 − β·√loss)`) otherwise.
    fn on_period(&mut self, _now: Time, cond: &NetCond) -> f64 {
        let loss_ratio = cond.eratio;
        if loss_ratio <= 0.0 {
            self.cwnd += self.p.incr_per_period;
        } else {
            let factor = (1.0 - self.p.beta * loss_ratio.sqrt()).max(0.5);
            self.cwnd *= factor;
        }
        self.cwnd = self.b.clamp(self.cwnd);
        self.cwnd
    }

    fn on_timeout(&mut self, _now: Time) -> f64 {
        self.cwnd *= 0.5;
        self.cwnd = self.b.clamp(self.cwnd);
        self.cwnd
    }

    fn scale(&mut self, factor: f64) -> f64 {
        scale_cwnd(&mut self.cwnd, factor, self.b)
    }

    fn digest(&self, _now: Time, h: &mut iq_telemetry::Fnv64) {
        // Exactly the pre-trait digest (one f64): the pinned
        // explored-state counts in `mc-smoke` depend on it.
        h.write_f64(self.cwnd);
    }
}

// -------------------------------------------------------------- CUBIC

/// RFC 8312-style CUBIC window (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct CubicWindow {
    p: CubicParams,
    b: Bounds,
    cwnd: f64,
    /// Window at the last congestion event — the saturation point the
    /// cubic curve converges back to.
    w_max: f64,
    /// Slow-start threshold; `INFINITY` until the first loss.
    ssthresh: f64,
    /// Time offset `K` (seconds) at which `W(t)` reaches `w_max`.
    k: f64,
    /// Start of the current congestion-avoidance epoch; `None` after a
    /// congestion event until the next ACK re-anchors the curve.
    epoch_start: Option<Time>,
}

impl CubicWindow {
    /// Creates a window from the shared config and its tunables.
    pub fn new(cfg: &CcConfig, p: CubicParams) -> Self {
        Self {
            p,
            b: Bounds::of(cfg),
            cwnd: cfg.initial_cwnd,
            w_max: cfg.initial_cwnd,
            ssthresh: f64::INFINITY,
            k: 0.0,
            epoch_start: None,
        }
    }

    /// The cubic window function `W(t) = C·(t − K)³ + W_max`, with `t`
    /// in seconds since the epoch start.
    pub fn w_cubic(&self, t: f64) -> f64 {
        let d = t - self.k;
        self.p.c * d * d * d + self.w_max
    }

    /// Registers a congestion event with multiplicative decrease
    /// `factor`, recomputing `K` and closing the epoch.
    fn congestion_event(&mut self, factor: f64) -> f64 {
        self.w_max = self.cwnd;
        self.cwnd = self.b.clamp(self.cwnd * factor);
        self.ssthresh = self.cwnd;
        // K = cbrt(W_max·(1 − factor)/C): time for the curve to climb
        // from the reduced window back to W_max.
        self.k = (self.w_max * (1.0 - factor) / self.p.c).cbrt();
        self.epoch_start = None;
        self.cwnd
    }
}

impl CongestionControl for CubicWindow {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn on_ack(&mut self, now: Time, acked_segments: u32, _srtt: Option<TimeDelta>) -> f64 {
        if acked_segments == 0 {
            return self.cwnd;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: one segment per acked segment.
            self.cwnd = self.b.clamp(self.cwnd + f64::from(acked_segments));
            return self.cwnd;
        }
        let start = *self.epoch_start.get_or_insert(now);
        let t = (now - start) as f64 / 1e9;
        let target = self.w_cubic(t);
        if target > self.cwnd {
            // Converge toward the curve at most one segment per cwnd of
            // ACKs (the RFC's cwnd += (target − cwnd)/cwnd per ACK).
            let step = (target - self.cwnd) / self.cwnd.max(1.0);
            self.cwnd = self.b.clamp(self.cwnd + step * f64::from(acked_segments));
        }
        // At or above the curve (e.g. just re-inflated by the
        // coordinator): hold and let the curve catch up.
        self.cwnd
    }

    fn on_loss(&mut self, _now: Time) -> f64 {
        let beta = self.p.beta;
        self.congestion_event(beta)
    }

    fn on_timeout(&mut self, _now: Time) -> f64 {
        self.congestion_event(0.5)
    }

    fn scale(&mut self, factor: f64) -> f64 {
        if factor.is_finite() && factor > 0.0 {
            // Scale the saturation point with the window so the §3.4
            // re-inflation survives the next epoch instead of being
            // undone by convergence back to the stale W_max.
            self.w_max *= factor;
            if self.ssthresh.is_finite() {
                self.ssthresh *= factor;
            }
            self.epoch_start = None;
        }
        scale_cwnd(&mut self.cwnd, factor, self.b)
    }

    fn digest(&self, now: Time, h: &mut iq_telemetry::Fnv64) {
        h.write_f64(self.cwnd);
        h.write_f64(self.w_max);
        h.write_f64(self.ssthresh);
        h.write_f64(self.k);
        h.write_u64(match self.epoch_start {
            Some(start) => now.saturating_sub(start),
            None => u64::MAX,
        });
    }
}

// ----------------------------------------------------------- BBR-like

/// Sample window length for the BBR-like rate/RTT filters, periods.
const BBR_WINDOW: usize = 8;

/// Simplified BBR-like model window (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct BbrWindow {
    p: BbrParams,
    b: Bounds,
    cwnd: f64,
    /// Delivery-rate samples (KB/s), ring-buffered; 0 = empty slot.
    rates: [f64; BBR_WINDOW],
    /// RTT samples (ms), ring-buffered; 0 = empty slot.
    rtts: [f64; BBR_WINDOW],
    pos: u8,
}

impl BbrWindow {
    /// Creates a window from the shared config and its tunables.
    pub fn new(cfg: &CcConfig, p: BbrParams) -> Self {
        Self {
            p,
            b: Bounds::of(cfg),
            cwnd: cfg.initial_cwnd,
            rates: [0.0; BBR_WINDOW],
            rtts: [0.0; BBR_WINDOW],
            pos: 0,
        }
    }

    /// The current BDP estimate in segments: windowed-max delivery rate
    /// × windowed-min RTT over MSS. `None` until both filters have a
    /// sample.
    pub fn bdp_segments(&self) -> Option<f64> {
        let max_rate = self.rates.iter().copied().fold(0.0_f64, f64::max);
        let min_rtt = self
            .rtts
            .iter()
            .copied()
            .filter(|&r| r > 0.0)
            .fold(f64::INFINITY, f64::min);
        if max_rate <= 0.0 || !min_rtt.is_finite() {
            return None;
        }
        // rate is KB/s and RTT is ms, so rate·rtt is bytes in flight.
        Some(max_rate * min_rtt / f64::from(self.p.mss))
    }
}

impl CongestionControl for BbrWindow {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Feeds the period's delivery rate and RTT into the filters and
    /// re-derives the window from the model.
    fn on_period(&mut self, _now: Time, cond: &NetCond) -> f64 {
        if cond.rate_kbps > 0.0 || cond.srtt_ms > 0.0 {
            self.rates[usize::from(self.pos)] = cond.rate_kbps;
            self.rtts[usize::from(self.pos)] = cond.srtt_ms;
            self.pos = (self.pos + 1) % BBR_WINDOW as u8;
        }
        match self.bdp_segments() {
            Some(bdp) => self.cwnd = self.b.clamp(self.p.gain * bdp),
            // Startup: grow multiplicatively until the model has data.
            None => self.cwnd = self.b.clamp(self.cwnd * self.p.startup_gain),
        }
        self.cwnd
    }

    /// Individual losses do not move a model-based window; the rate
    /// filter already reflects what was actually delivered.
    fn on_loss(&mut self, _now: Time) -> f64 {
        self.cwnd
    }

    fn on_timeout(&mut self, _now: Time) -> f64 {
        // An RTO means the model badly overestimated; back off like a
        // loss-based controller and let fresh samples rebuild it.
        self.cwnd = self.b.clamp(self.cwnd * 0.5);
        self.cwnd
    }

    fn scale(&mut self, factor: f64) -> f64 {
        // Model-based: the next period re-derives cwnd from the
        // filters, so a coordination re-inflation is transient by
        // design (the model sees the post-adaptation rate within a
        // period anyway). The immediate multiply still matters — it
        // bridges the gap until that next snapshot.
        scale_cwnd(&mut self.cwnd, factor, self.b)
    }

    fn digest(&self, _now: Time, h: &mut iq_telemetry::Fnv64) {
        h.write_f64(self.cwnd);
        for (&r, &t) in self.rates.iter().zip(self.rtts.iter()) {
            h.write_f64(r);
            h.write_f64(t);
        }
        h.write_u64(u64::from(self.pos));
    }
}

// ---------------------------------------------------------------- RRR

/// Relative-rate-reduction window (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct RrrWindow {
    p: RrrParams,
    b: Bounds,
    cwnd: f64,
}

impl RrrWindow {
    /// Creates a window from the shared config and its tunables.
    pub fn new(cfg: &CcConfig, p: RrrParams) -> Self {
        Self {
            p,
            b: Bounds::of(cfg),
            cwnd: cfg.initial_cwnd,
        }
    }

    /// The reduction factor applied for a period with `loss_ratio`
    /// above the target: `1 − γ·(loss − target)/(1 − target)`, floored
    /// at one half. At the target the factor is 1 (no reduction); at
    /// total loss it is `1 − γ` (or the 0.5 floor).
    pub fn reduction_factor(&self, loss_ratio: f64) -> f64 {
        let excess = (loss_ratio - self.p.target_loss) / (1.0 - self.p.target_loss);
        (1.0 - self.p.gamma * excess).max(0.5)
    }
}

impl CongestionControl for RrrWindow {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn on_period(&mut self, _now: Time, cond: &NetCond) -> f64 {
        if cond.eratio <= self.p.target_loss {
            // At or below the acceptable congestion level: probe.
            self.cwnd += self.p.incr_per_period;
        } else {
            self.cwnd *= self.reduction_factor(cond.eratio);
        }
        self.cwnd = self.b.clamp(self.cwnd);
        self.cwnd
    }

    fn on_timeout(&mut self, _now: Time) -> f64 {
        self.cwnd = self.b.clamp(self.cwnd * 0.5);
        self.cwnd
    }

    fn scale(&mut self, factor: f64) -> f64 {
        scale_cwnd(&mut self.cwnd, factor, self.b)
    }

    fn digest(&self, _now: Time, h: &mut iq_telemetry::Fnv64) {
        h.write_f64(self.cwnd);
    }
}

// -------------------------------------------------------------- Fixed

/// Pinned window: no adaptation, coordination `scale` still applies.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedWindow {
    b: Bounds,
    cwnd: f64,
}

impl FixedWindow {
    /// Creates a window pinned at `cwnd`.
    pub fn new(cfg: &CcConfig, cwnd: f64) -> Self {
        Self {
            b: Bounds::of(cfg),
            cwnd,
        }
    }
}

impl CongestionControl for FixedWindow {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn on_timeout(&mut self, _now: Time) -> f64 {
        self.cwnd
    }

    fn scale(&mut self, factor: f64) -> f64 {
        scale_cwnd(&mut self.cwnd, factor, self.b)
    }

    fn digest(&self, _now: Time, h: &mut iq_telemetry::Fnv64) {
        h.write_f64(self.cwnd);
    }
}

// ------------------------------------------------------ enum dispatch

/// The controller a connection actually runs: enum dispatch over the
/// concrete implementations, stored inline in the sender so the per-ACK
/// hot path performs no heap allocation and no virtual calls.
#[derive(Debug, Clone, PartialEq)]
pub enum CcController {
    /// LDA (the default).
    Lda(LdaWindow),
    /// CUBIC.
    Cubic(CubicWindow),
    /// BBR-like.
    BbrLike(BbrWindow),
    /// RRR.
    Rrr(RrrWindow),
    /// Pinned window.
    Fixed(FixedWindow),
}

impl CcController {
    /// Instantiates the controller selected by `cfg.algorithm`.
    pub fn new(cfg: &CcConfig) -> Self {
        match cfg.algorithm.clone() {
            CcAlgorithm::Lda(p) => CcController::Lda(LdaWindow::new(cfg, p)),
            CcAlgorithm::Cubic(p) => CcController::Cubic(CubicWindow::new(cfg, p)),
            CcAlgorithm::BbrLike(p) => CcController::BbrLike(BbrWindow::new(cfg, p)),
            CcAlgorithm::Rrr(p) => CcController::Rrr(RrrWindow::new(cfg, p)),
            CcAlgorithm::Fixed { cwnd } => CcController::Fixed(FixedWindow::new(cfg, cwnd)),
        }
    }

    /// Stable name of the running algorithm (matches
    /// [`CcAlgorithm::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            CcController::Lda(_) => "lda",
            CcController::Cubic(_) => "cubic",
            CcController::BbrLike(_) => "bbr",
            CcController::Rrr(_) => "rrr",
            CcController::Fixed(_) => "fixed",
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $w:ident => $body:expr) => {
        match $self {
            CcController::Lda($w) => $body,
            CcController::Cubic($w) => $body,
            CcController::BbrLike($w) => $body,
            CcController::Rrr($w) => $body,
            CcController::Fixed($w) => $body,
        }
    };
}

impl CongestionControl for CcController {
    fn cwnd(&self) -> f64 {
        dispatch!(self, w => w.cwnd())
    }

    fn cwnd_segments(&self) -> u32 {
        dispatch!(self, w => w.cwnd_segments())
    }

    fn on_ack(&mut self, now: Time, acked_segments: u32, srtt: Option<TimeDelta>) -> f64 {
        dispatch!(self, w => w.on_ack(now, acked_segments, srtt))
    }

    fn on_loss(&mut self, now: Time) -> f64 {
        dispatch!(self, w => w.on_loss(now))
    }

    fn on_period(&mut self, now: Time, cond: &NetCond) -> f64 {
        dispatch!(self, w => w.on_period(now, cond))
    }

    fn on_timeout(&mut self, now: Time) -> f64 {
        dispatch!(self, w => w.on_timeout(now))
    }

    fn on_ecn(&mut self, now: Time) -> f64 {
        dispatch!(self, w => w.on_ecn(now))
    }

    fn scale(&mut self, factor: f64) -> f64 {
        dispatch!(self, w => w.scale(factor))
    }

    fn digest(&self, now: Time, h: &mut iq_telemetry::Fnv64) {
        dispatch!(self, w => w.digest(now, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss(eratio: f64) -> NetCond {
        NetCond {
            eratio,
            ..NetCond::default()
        }
    }

    fn win() -> LdaWindow {
        LdaWindow::new(&CcConfig::default(), LdaParams::default())
    }

    #[test]
    fn additive_increase_when_clean() {
        let mut w = win();
        let start = w.cwnd();
        w.on_period(0, &loss(0.0));
        w.on_period(0, &loss(0.0));
        assert_eq!(w.cwnd(), start + 2.0 * LdaParams::default().incr_per_period);
    }

    #[test]
    fn loss_proportional_decrease() {
        let mut w = LdaWindow::new(
            &CcConfig::default(),
            LdaParams {
                beta: 1.0,
                ..LdaParams::default()
            },
        );
        w.scale(50.0); // get to 100
        let before = w.cwnd();
        w.on_period(0, &loss(0.09)); // sqrt(0.09) = 0.3
        assert!((w.cwnd() - before * 0.7).abs() < 1e-9);
        // Heavy loss floors at one half.
        let before = w.cwnd();
        w.on_period(0, &loss(0.9));
        assert!((w.cwnd() - before * 0.5).abs() < 1e-9);
    }

    #[test]
    fn timeout_halves() {
        let mut w = win();
        w.scale(8.0); // 16
        w.on_timeout(0);
        assert_eq!(w.cwnd(), 8.0);
    }

    #[test]
    fn clamped_to_bounds() {
        let mut w = win();
        for _ in 0..2000 {
            w.on_period(0, &loss(0.0));
        }
        assert_eq!(w.cwnd(), 1024.0);
        for _ in 0..100 {
            w.on_timeout(0);
        }
        assert_eq!(w.cwnd(), 1.0);
        assert_eq!(w.cwnd_segments(), 1);
    }

    #[test]
    fn fixed_window_is_pinned() {
        let mut w = CcController::new(&CcConfig {
            algorithm: CcAlgorithm::Fixed { cwnd: 40.0 },
            ..CcConfig::default()
        });
        w.on_period(0, &loss(0.5));
        w.on_timeout(0);
        w.on_ack(0, 3, None);
        w.on_loss(0);
        assert_eq!(w.cwnd(), 40.0);
        // Coordination scaling still applies to a pinned window.
        w.scale(0.5);
        assert_eq!(w.cwnd(), 20.0);
    }

    #[test]
    fn cwnd_segments_rounds_to_nearest() {
        let mut w = win();
        w.scale(1.999 / w.cwnd());
        assert!((w.cwnd() - 1.999).abs() < 1e-12);
        // 1.999 must behave as 2 segments, not truncate to 1.
        assert_eq!(w.cwnd_segments(), 2);
        w.scale(1.4 / w.cwnd());
        assert_eq!(w.cwnd_segments(), 1);
        w.scale(2.5 / w.cwnd());
        assert_eq!(w.cwnd_segments(), 3); // round half away from zero
    }

    #[test]
    fn scale_ignores_degenerate_factors() {
        for alg in CcAlgorithm::all_adaptive() {
            let mut w = CcController::new(&CcConfig {
                algorithm: alg,
                ..CcConfig::default()
            });
            let before = w.cwnd();
            w.scale(0.0);
            w.scale(-1.0);
            w.scale(f64::NAN);
            w.scale(f64::INFINITY);
            assert_eq!(w.cwnd(), before, "{}", w.name());
        }
    }

    #[test]
    fn every_controller_scale_is_multiply_then_clamp() {
        // The §3.4 contract the model checker relies on, for all five.
        let cfg = CcConfig::default();
        let algs = [
            CcAlgorithm::Lda(LdaParams::default()),
            CcAlgorithm::Cubic(CubicParams::default()),
            CcAlgorithm::BbrLike(BbrParams::default()),
            CcAlgorithm::Rrr(RrrParams::default()),
            CcAlgorithm::Fixed { cwnd: 64.0 },
        ];
        for alg in algs {
            let mut w = CcController::new(&CcConfig {
                algorithm: alg,
                ..cfg.clone()
            });
            let before = w.cwnd();
            let after = w.scale(3.0);
            assert_eq!(
                after,
                (before * 3.0).clamp(cfg.min_cwnd, cfg.max_cwnd),
                "{}",
                w.name()
            );
            let before = w.cwnd();
            let after = w.scale(1e9);
            assert_eq!(after, (before * 1e9).clamp(cfg.min_cwnd, cfg.max_cwnd));
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for alg in CcAlgorithm::all_adaptive() {
            let name = alg.name();
            assert_eq!(CcAlgorithm::from_name(name), Some(alg));
        }
        assert_eq!(
            CcAlgorithm::from_name("fixed"),
            Some(CcAlgorithm::Fixed { cwnd: 64.0 })
        );
        assert_eq!(CcAlgorithm::from_name("reno"), None);
    }

    // ------------------------------------------------------- CUBIC

    #[test]
    fn cubic_window_function_matches_rfc_form() {
        let mut w = CubicWindow::new(
            &CcConfig {
                initial_cwnd: 100.0,
                ..CcConfig::default()
            },
            CubicParams::default(),
        );
        w.ssthresh = 0.0; // force congestion avoidance
        w.on_loss(0);
        // After a loss at w = 100: w_max = 100, cwnd = 70,
        // K = cbrt(100·0.3/0.4) = cbrt(75).
        assert!((w.cwnd() - 70.0).abs() < 1e-9);
        let k = (100.0 * 0.3 / 0.4_f64).cbrt();
        assert!((w.k - k).abs() < 1e-12);
        // W(K) = w_max exactly; W(0) = cwnd after the decrease.
        assert!((w.w_cubic(k) - 100.0).abs() < 1e-9);
        assert!((w.w_cubic(0.0) - 70.0).abs() < 1e-6);
        // Convex growth past K.
        assert!(w.w_cubic(k + 1.0) > 100.0);
        assert!(w.w_cubic(k + 2.0) - w.w_cubic(k + 1.0) > w.w_cubic(k + 1.0) - w.w_cubic(k));
    }

    #[test]
    fn cubic_slow_starts_then_converges_to_w_max() {
        let mut w = CubicWindow::new(&CcConfig::default(), CubicParams::default());
        // Slow start: each acked segment adds one.
        w.on_ack(0, 2, None);
        assert_eq!(w.cwnd(), 4.0);
        w.on_loss(0);
        let reduced = w.cwnd();
        assert!((reduced - 4.0 * 0.7).abs() < 1e-9);
        // ACKs over the following seconds climb back toward w_max = 4
        // and then past it (convex region).
        let mut now = 0u64;
        for _ in 0..200 {
            now += 100_000_000; // 100 ms
            w.on_ack(now, 1, None);
        }
        assert!(w.cwnd() > 4.0, "cwnd {} should pass w_max", w.cwnd());
    }

    #[test]
    fn cubic_holds_above_curve_after_reinflation() {
        let mut w = CubicWindow::new(&CcConfig::default(), CubicParams::default());
        w.on_ack(0, 8, None); // slow start to 10
        w.on_loss(0); // w_max = 10, cwnd = 7
        let before = w.cwnd();
        w.scale(4.0); // coordinator re-inflates to 28
        assert_eq!(w.cwnd(), before * 4.0);
        // The very next ACK must not crash the window back to the old
        // curve: w_max scaled with it.
        w.on_ack(1_000_000, 1, None);
        assert!(w.cwnd() >= before * 4.0 - 1e-9);
    }

    // ---------------------------------------------------- BBR-like

    #[test]
    fn bbr_pins_window_to_gain_times_bdp() {
        let mut w = BbrWindow::new(&CcConfig::default(), BbrParams::default());
        // 1400 KB/s × 20 ms = 28 000 bytes in flight = 20 segments of
        // 1400 B; gain 2 → cwnd 40.
        let cond = NetCond {
            rate_kbps: 1400.0,
            srtt_ms: 20.0,
            ..NetCond::default()
        };
        w.on_period(0, &cond);
        assert_eq!(w.bdp_segments(), Some(20.0));
        assert_eq!(w.cwnd(), 40.0);
        // Max-rate filter: a slower period does not shrink the estimate
        // while the fast sample is in the window.
        let slow = NetCond {
            rate_kbps: 700.0,
            srtt_ms: 20.0,
            ..NetCond::default()
        };
        w.on_period(0, &slow);
        assert_eq!(w.cwnd(), 40.0);
    }

    #[test]
    fn bbr_startup_grows_until_model_has_data() {
        let mut w = BbrWindow::new(&CcConfig::default(), BbrParams::default());
        let idle = NetCond::default(); // no rate, no rtt yet
        w.on_period(0, &idle);
        assert_eq!(w.cwnd(), 4.0); // 2 × startup_gain
        w.on_period(0, &idle);
        assert_eq!(w.cwnd(), 8.0);
    }

    #[test]
    fn bbr_max_rate_sample_eventually_ages_out() {
        let mut w = BbrWindow::new(&CcConfig::default(), BbrParams::default());
        let fast = NetCond {
            rate_kbps: 1400.0,
            srtt_ms: 20.0,
            ..NetCond::default()
        };
        w.on_period(0, &fast);
        let slow = NetCond {
            rate_kbps: 700.0,
            srtt_ms: 20.0,
            ..NetCond::default()
        };
        for _ in 0..BBR_WINDOW {
            w.on_period(0, &slow);
        }
        // The fast sample fell out of the 8-period window.
        assert_eq!(w.bdp_segments(), Some(10.0));
        assert_eq!(w.cwnd(), 20.0);
    }

    // --------------------------------------------------------- RRR

    #[test]
    fn rrr_probes_at_or_below_target() {
        let mut w = RrrWindow::new(&CcConfig::default(), RrrParams::default());
        let start = w.cwnd();
        w.on_period(0, &loss(0.0));
        w.on_period(0, &loss(0.05)); // exactly at the target level
        assert_eq!(w.cwnd(), start + 2.0);
    }

    #[test]
    fn rrr_reduction_is_relative_to_target() {
        let p = RrrParams {
            target_loss: 0.05,
            gamma: 1.0,
            incr_per_period: 1.0,
        };
        let mut w = RrrWindow::new(
            &CcConfig {
                initial_cwnd: 100.0,
                ..CcConfig::default()
            },
            p,
        );
        // loss 0.24: excess = (0.24 − 0.05)/0.95 = 0.2 → factor 0.8.
        let f = w.reduction_factor(0.24);
        assert!((f - 0.8).abs() < 1e-9);
        w.on_period(0, &loss(0.24));
        assert!((w.cwnd() - 80.0).abs() < 1e-6);
        // Total loss floors at one half regardless of gamma.
        assert_eq!(w.reduction_factor(1.0), 0.5);
        // A higher congestion level tolerates the same loss untouched.
        let tolerant = RrrWindow::new(
            &CcConfig::default(),
            RrrParams {
                target_loss: 0.30,
                ..RrrParams::default()
            },
        );
        assert!(tolerant.reduction_factor(0.24) >= 1.0);
    }

    #[test]
    fn rrr_timeout_halves() {
        let mut w = RrrWindow::new(
            &CcConfig {
                initial_cwnd: 16.0,
                ..CcConfig::default()
            },
            RrrParams::default(),
        );
        w.on_timeout(0);
        assert_eq!(w.cwnd(), 8.0);
    }

    #[test]
    fn controller_digests_differ_by_state_not_clock() {
        // CUBIC's epoch is hashed relative to `now`: the same state
        // reached at different absolute times digests identically.
        let cfg = CcConfig {
            algorithm: CcAlgorithm::Cubic(CubicParams::default()),
            ..CcConfig::default()
        };
        let mut a = CcController::new(&cfg);
        let mut b = CcController::new(&cfg);
        a.on_loss(0);
        a.on_ack(1_000_000, 1, None);
        b.on_loss(0);
        b.on_ack(5_000_000, 1, None);
        let digest_at = |w: &CcController, now: Time| {
            let mut h = iq_telemetry::Fnv64::new();
            w.digest(now, &mut h);
            h.finish()
        };
        // Same epoch age → same digest, even at different clocks.
        assert_eq!(digest_at(&a, 2_000_000), digest_at(&b, 6_000_000));
        // Different epoch age → different digest.
        assert_ne!(digest_at(&a, 2_000_000), digest_at(&a, 9_000_000));
    }
}
