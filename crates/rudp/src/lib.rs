//! # iq-rudp
//!
//! The RUDP transport of the IQ-RUDP reproduction: a connection-oriented,
//! datagram-based protocol providing in-order reliable delivery, flow
//! control, window-based congestion control resembling the Loss-Delay
//! Adjustment algorithm, and the paper's adaptive-reliability extensions
//! (§2.1):
//!
//! 1. **Exported network metrics** — [`meter::NetCond`] snapshots per
//!    measuring period, queryable any time.
//! 2. **Application-registered callbacks** — error-ratio threshold events
//!    ([`ConnEvent::UpperThreshold`] / [`ConnEvent::LowerThreshold`]).
//! 3. **Application-controlled adaptive reliability** — sender packet
//!    marking plus receiver loss tolerance; lost unmarked datagrams may
//!    be abandoned and skipped with a `fwd_seq` floor.
//!
//! The protocol lives in pure state machines ([`SenderConn`],
//! [`ReceiverConn`]) with simulator glue in [`endpoint`]. Coordination
//! with application adaptations (what makes IQ-RUDP "IQ") lives one
//! crate up, in `iq-core`.

#![warn(missing_docs)]

pub mod cc;
pub mod endpoint;
pub mod meter;
pub mod receiver;
pub mod ring;
pub mod rtt;
pub mod segment;
pub mod sender;
pub mod types;

pub use cc::{
    BbrParams, BbrWindow, CcAlgorithm, CcConfig, CcController, CongestionControl, CubicParams,
    CubicWindow, FixedWindow, LdaParams, LdaWindow, RrrParams, RrrWindow,
};
pub use endpoint::{
    BulkSenderAgent, ConnBuilder, ReceiverDriver, RudpSinkAgent, SenderDriver, RUDP_TIMER_TOKEN,
};
pub use meter::{NetCond, PeriodMeter};
pub use receiver::ReceiverConn;
pub use ring::SeqRing;
pub use rtt::RttEstimator;
pub use segment::{
    wire_size, AckSeg, DataSeg, RudpPacket, SackRanges, Segment, ACK_BYTES, DEFAULT_MSS,
    HEADER_BYTES, MAX_SACK_RANGES, SACK_RANGE_BYTES,
};
pub use sender::{SenderConn, SenderState};
pub use types::{ConnEvent, DeliveredMsg, ReceiverStats, RudpConfig, SendOutcome, SenderStats};
