//! A dense, sequence-indexed ring buffer for per-connection transport
//! state.
//!
//! RUDP assigns sequence numbers contiguously per connection, so the set
//! of outstanding sender segments (and the receiver's reorder buffer)
//! always lives in a narrow window `[head, head + span)` that slides
//! forward as cumulative ACKs and in-order delivery advance. A
//! `BTreeMap<u64, T>` pays pointer chasing and node allocation for
//! ordering the structure gets for free; [`SeqRing`] stores the window
//! in a power-of-two slab of `Option<T>` slots indexed by
//! `(seq - head_seq) & mask`, so lookups are O(1), iteration is a linear
//! scan, and steady-state operation allocates nothing (the slab only
//! grows, and the window is bounded by the receive buffer).
//!
//! Semantics match a `BTreeMap<u64, T>` restricted to the access
//! patterns the protocol uses; `tests/ring_diff.rs` pins that
//! equivalence with differential property tests.

/// A sparse window of `T` values keyed by contiguous-ish `u64` sequence
/// numbers, backed by a ring of `Option<T>` slots.
#[derive(Debug, Clone)]
pub struct SeqRing<T> {
    /// Sequence number of the slot at physical index `head`; meaningful
    /// only while `span > 0`. Invariant: when `len > 0` the head slot is
    /// occupied (leading empties are trimmed after every removal).
    head_seq: u64,
    /// Physical index of `head_seq`'s slot.
    head: usize,
    /// Width of the active window `[head_seq, head_seq + span)`.
    span: usize,
    /// Occupied slots within the window.
    len: usize,
    /// Power-of-two slot storage (empty until the first insert).
    slots: Box<[Option<T>]>,
}

impl<T> Default for SeqRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SeqRing<T> {
    /// An empty ring; the slab is allocated lazily on the first insert.
    pub fn new() -> Self {
        Self {
            head_seq: 0,
            head: 0,
            span: 0,
            len: 0,
            slots: Box::default(),
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot capacity (for tests and sizing diagnostics).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lowest occupied sequence number.
    pub fn first_seq(&self) -> Option<u64> {
        (self.len > 0).then_some(self.head_seq)
    }

    /// One past the highest sequence the window covers (0 when empty).
    /// Occupied seqs all satisfy `first_seq() <= seq < end_seq()`,
    /// except when the window abuts `u64::MAX`: the sum saturates there
    /// instead of overflowing, so an entry at `u64::MAX` itself reports
    /// `end_seq() == u64::MAX`.
    pub fn end_seq(&self) -> u64 {
        if self.len == 0 {
            0
        } else {
            self.head_seq.saturating_add(self.span as u64)
        }
    }

    fn slot_index(&self, seq: u64) -> Option<usize> {
        if self.span == 0 || seq < self.head_seq {
            return None;
        }
        let offset = seq - self.head_seq;
        if offset >= self.span as u64 {
            return None;
        }
        Some((self.head + offset as usize) & (self.slots.len() - 1))
    }

    /// Whether `seq` is occupied.
    pub fn contains(&self, seq: u64) -> bool {
        self.get(seq).is_some()
    }

    /// Borrows the entry at `seq`.
    pub fn get(&self, seq: u64) -> Option<&T> {
        self.slot_index(seq).and_then(|i| self.slots[i].as_ref())
    }

    /// Mutably borrows the entry at `seq`.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        self.slot_index(seq)
            .and_then(move |i| self.slots[i].as_mut())
    }

    /// Relocates the window into a slab of at least `min_cap` slots,
    /// with the head at physical index 0.
    fn grow(&mut self, min_cap: usize) {
        let new_cap = min_cap.next_power_of_two().max(8);
        let mut new_slots: Vec<Option<T>> = Vec::with_capacity(new_cap);
        new_slots.resize_with(new_cap, || None);
        if !self.slots.is_empty() {
            let mask = self.slots.len() - 1;
            for (off, slot) in new_slots.iter_mut().enumerate().take(self.span) {
                *slot = self.slots[(self.head + off) & mask].take();
            }
        }
        self.slots = new_slots.into_boxed_slice();
        self.head = 0;
    }

    /// Inserts `value` at `seq`, returning the previous occupant if any.
    /// The window stretches to cover `seq` in either direction (the
    /// receiver re-anchors backwards when an out-of-order segment lands
    /// below the current head).
    pub fn insert(&mut self, seq: u64, value: T) -> Option<T> {
        if self.len == 0 {
            if self.slots.is_empty() {
                self.grow(8);
            }
            self.head = 0;
            self.head_seq = seq;
            self.span = 1;
        } else if seq >= self.head_seq {
            let offset = seq - self.head_seq;
            let offset = usize::try_from(offset).expect("seq window exceeds usize");
            if offset >= self.slots.len() {
                self.grow(offset + 1);
            }
            if offset >= self.span {
                self.span = offset + 1;
            }
        } else {
            let back = self.head_seq - seq;
            let needed = (self.span as u64)
                .checked_add(back)
                .and_then(|n| usize::try_from(n).ok())
                .expect("seq window exceeds usize");
            if needed > self.slots.len() {
                self.grow(needed);
            }
            let back = back as usize;
            let cap = self.slots.len();
            self.head = (self.head + cap - back) & (cap - 1);
            self.head_seq = seq;
            self.span += back;
        }
        let i = (self.head + (seq - self.head_seq) as usize) & (self.slots.len() - 1);
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Drops empty slots at the front so `head_seq` stays the lowest
    /// occupied sequence (or resets the window when nothing is left).
    fn trim_front(&mut self) {
        if self.len == 0 {
            self.span = 0;
            return;
        }
        let mask = self.slots.len() - 1;
        while self.slots[self.head].is_none() {
            self.head = (self.head + 1) & mask;
            self.head_seq += 1;
            self.span -= 1;
        }
    }

    /// Removes and returns the entry at `seq`.
    pub fn take(&mut self, seq: u64) -> Option<T> {
        let i = self.slot_index(seq)?;
        let v = self.slots[i].take()?;
        self.len -= 1;
        self.trim_front();
        Some(v)
    }

    /// Removes and returns the lowest entry.
    pub fn pop_first(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        let seq = self.head_seq;
        let v = self.slots[self.head].take().expect("head slot occupied");
        self.len -= 1;
        if self.len == 0 {
            self.span = 0;
        } else {
            let mask = self.slots.len() - 1;
            self.head = (self.head + 1) & mask;
            self.head_seq += 1;
            self.span -= 1;
            self.trim_front();
        }
        Some((seq, v))
    }

    /// Removes and returns the lowest entry if its seq is below `bound`
    /// (the cumulative-ACK drain loop).
    pub fn pop_first_below(&mut self, bound: u64) -> Option<(u64, T)> {
        if self.len == 0 || self.head_seq >= bound {
            return None;
        }
        self.pop_first()
    }

    /// Iterates occupied entries in ascending sequence order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let mask = self.slots.len().wrapping_sub(1);
        (0..self.span).filter_map(move |off| {
            let i = (self.head + off) & mask;
            self.slots[i]
                .as_ref()
                .map(|v| (self.head_seq + off as u64, v))
        })
    }

    /// Calls `f` on every occupied entry with seq below `bound`, in
    /// ascending order (the dup-hint loss-detection sweep).
    pub fn for_each_mut_below(&mut self, bound: u64, mut f: impl FnMut(u64, &mut T)) {
        if self.span == 0 {
            return;
        }
        let mask = self.slots.len() - 1;
        for off in 0..self.span {
            let seq = self.head_seq + off as u64;
            if seq >= bound {
                break;
            }
            if let Some(v) = self.slots[(self.head + off) & mask].as_mut() {
                f(seq, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occupied(r: &SeqRing<u32>) -> Vec<(u64, u32)> {
        r.iter().map(|(s, &v)| (s, v)).collect()
    }

    #[test]
    fn insert_get_take_roundtrip() {
        let mut r = SeqRing::new();
        assert!(r.is_empty());
        assert_eq!(r.insert(10, 1), None);
        assert_eq!(r.insert(12, 3), None);
        assert_eq!(r.insert(10, 2), Some(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(10), Some(&2));
        assert_eq!(r.get(11), None);
        assert_eq!(r.first_seq(), Some(10));
        assert_eq!(r.end_seq(), 13);
        assert_eq!(r.take(12), Some(3));
        assert_eq!(r.take(12), None);
        assert_eq!(r.take(10), Some(2));
        assert!(r.is_empty());
        assert_eq!(r.end_seq(), 0);
    }

    #[test]
    fn head_trims_past_holes() {
        let mut r = SeqRing::new();
        for seq in 0..6 {
            r.insert(seq, seq as u32);
        }
        r.take(1);
        r.take(2);
        assert_eq!(r.first_seq(), Some(0));
        r.take(0); // head advances over the 1..=2 hole straight to 3
        assert_eq!(r.first_seq(), Some(3));
        assert_eq!(occupied(&r), vec![(3, 3), (4, 4), (5, 5)]);
    }

    #[test]
    fn pop_first_below_is_a_cumulative_drain() {
        let mut r = SeqRing::new();
        for seq in 5..10 {
            r.insert(seq, seq as u32);
        }
        let mut popped = vec![];
        while let Some((s, _)) = r.pop_first_below(8) {
            popped.push(s);
        }
        assert_eq!(popped, vec![5, 6, 7]);
        assert_eq!(r.first_seq(), Some(8));
    }

    #[test]
    fn growth_preserves_contents_and_order() {
        let mut r = SeqRing::new();
        for seq in 0..200u64 {
            r.insert(seq, seq as u32);
        }
        assert!(r.capacity() >= 200);
        assert_eq!(r.len(), 200);
        let got = occupied(&r);
        assert_eq!(got.len(), 200);
        assert!(got.iter().enumerate().all(|(i, &(s, v))| s == i as u64 && v == i as u32));
    }

    #[test]
    fn window_slides_without_growing() {
        let mut r = SeqRing::new();
        for seq in 0..8u64 {
            r.insert(seq, 0);
        }
        let cap = r.capacity();
        // Slide the window far past the initial capacity: pop one, push
        // one. Capacity must stay put.
        for seq in 8..10_000u64 {
            r.pop_first();
            r.insert(seq, 0);
        }
        assert_eq!(r.capacity(), cap);
        assert_eq!(r.len(), 8);
        assert_eq!(r.first_seq(), Some(9992));
    }

    #[test]
    fn insert_below_head_reanchors() {
        let mut r = SeqRing::new();
        r.insert(20, 20);
        r.insert(22, 22);
        // An out-of-order arrival below the current head.
        r.insert(17, 17);
        assert_eq!(r.first_seq(), Some(17));
        assert_eq!(occupied(&r), vec![(17, 17), (20, 20), (22, 22)]);
        assert_eq!(r.take(17), Some(17));
        assert_eq!(r.first_seq(), Some(20));
    }

    #[test]
    fn insert_far_below_head_grows() {
        let mut r = SeqRing::new();
        r.insert(100, 1);
        for seq in (0..100).rev() {
            r.insert(seq, 2);
        }
        assert_eq!(r.len(), 101);
        assert_eq!(r.first_seq(), Some(0));
        assert_eq!(r.get(100), Some(&1));
    }

    #[test]
    fn wraparound_adjacent_seqs() {
        // Sequence numbers right at the top of the u64 space: the
        // window arithmetic must not overflow (`end_seq` saturates
        // instead of panicking when an entry sits at u64::MAX).
        let top = u64::MAX;
        let mut r = SeqRing::new();
        r.insert(top - 3, 3u32);
        r.insert(top - 1, 1);
        r.insert(top, 0);
        assert_eq!(r.len(), 3);
        assert_eq!(r.first_seq(), Some(top - 3));
        assert_eq!(r.end_seq(), top); // saturated, not wrapped
        assert_eq!(
            occupied(&r),
            vec![(top - 3, 3), (top - 1, 1), (top, 0)]
        );
        assert_eq!(r.get(top - 2), None);
        // Re-anchor backwards while the window touches the top.
        r.insert(top - 6, 6);
        assert_eq!(r.first_seq(), Some(top - 6));
        assert_eq!(r.take(top - 6), Some(6));
        assert_eq!(r.take(top - 3), Some(3));
        assert_eq!(r.first_seq(), Some(top - 1));
        // Drain everything through the cumulative path; `pop_first` on
        // the final top-of-space entry must not advance head_seq past
        // u64::MAX.
        assert_eq!(r.pop_first(), Some((top - 1, 1)));
        assert_eq!(r.pop_first(), Some((top, 0)));
        assert!(r.is_empty());
        assert_eq!(r.end_seq(), 0);
    }

    #[test]
    fn growth_with_gap_spanning_ring_boundary() {
        // Build a window that physically wraps the slab boundary with a
        // reassembly hole in the middle, then force a grow: the relocated
        // window must preserve contents, order, and the hole.
        let mut r = SeqRing::new();
        for seq in 0..8u64 {
            r.insert(seq, seq as u32);
        }
        assert_eq!(r.capacity(), 8);
        for _ in 0..6 {
            r.pop_first();
        }
        // head now sits at physical index 6; extend the window across
        // the boundary, skipping seq 9 (the gap).
        r.insert(8, 8);
        for seq in 10..13u64 {
            r.insert(seq, seq as u32);
        }
        assert_eq!(r.capacity(), 8, "still within the original slab");
        // One more lands past the slab: grow while the gap spans the old
        // physical boundary.
        r.insert(14, 14);
        assert!(r.capacity() > 8);
        assert_eq!(
            occupied(&r),
            vec![(6, 6), (7, 7), (8, 8), (10, 10), (11, 11), (12, 12), (14, 14)]
        );
        assert_eq!(r.get(9), None);
        assert_eq!(r.get(13), None);
        assert_eq!(r.end_seq(), 15);
    }

    #[test]
    fn insert_at_capacity_grows_instead_of_evicting() {
        // Exactly filling the slab and then inserting one past it must
        // grow, never silently overwrite the oldest entry.
        let mut r = SeqRing::new();
        for seq in 0..8u64 {
            r.insert(seq, seq as u32);
        }
        assert_eq!(r.len(), r.capacity());
        r.insert(8, 8);
        assert_eq!(r.len(), 9);
        assert_eq!(r.get(0), Some(&0), "oldest entry survived the grow");
        assert_eq!(r.get(8), Some(&8));
        // Same at the re-anchor path: a backward insert past capacity.
        let mut r = SeqRing::new();
        for seq in 100..108u64 {
            r.insert(seq, seq as u32);
        }
        r.insert(99, 99);
        assert_eq!(r.len(), 9);
        assert_eq!(r.first_seq(), Some(99));
        assert_eq!(r.get(107), Some(&107));
    }

    #[test]
    fn for_each_mut_below_respects_bound() {
        let mut r = SeqRing::new();
        for seq in 0..10u64 {
            r.insert(seq, 0u32);
        }
        r.take(3);
        r.for_each_mut_below(7, |_, v| *v += 1);
        let bumped: Vec<u64> = r.iter().filter(|&(_, &v)| v == 1).map(|(s, _)| s).collect();
        assert_eq!(bumped, vec![0, 1, 2, 4, 5, 6]);
    }
}
