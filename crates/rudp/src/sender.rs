//! The sending half of an RUDP connection: a pure state machine with no
//! dependency on the simulator's event loop. Inputs are incoming
//! segments, clock ticks, and application messages; outputs are segments
//! to transmit (via [`SenderConn::poll_transmit`]) and [`ConnEvent`]s.

use std::collections::VecDeque;
use std::sync::Arc;

use iq_netsim::Time;
use iq_telemetry::{CwndReason, TelemetryEvent, TelemetrySink};

use crate::cc::{CcController, CongestionControl};
use crate::meter::{NetCond, PeriodMeter};
use crate::ring::SeqRing;
use crate::rtt::RttEstimator;
use crate::segment::{AckSeg, DataSeg, Segment};
use crate::types::{ConnEvent, RudpConfig, SendOutcome, SenderStats};

/// Where the measured error ratio sits relative to the registered
/// callback thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreshZone {
    Low,
    Mid,
    High,
}

/// Connection lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderState {
    /// Not yet started; a SYN will be emitted on the first poll.
    Idle,
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Data transfer.
    Established,
    /// FIN sent, waiting for FIN-ACK.
    FinSent,
    /// Fully closed.
    Closed,
}

/// A fragment waiting for its first transmission.
#[derive(Debug, Clone)]
struct PendingFrag {
    msg_id: u64,
    frag_idx: u16,
    frag_count: u16,
    len: u32,
    marked: bool,
    msg_sent_at: Time,
}

/// An unacknowledged transmitted fragment.
#[derive(Debug, Clone)]
struct InFlight {
    frag: PendingFrag,
    /// Last transmission time.
    tx_at: Time,
    /// Whether it has ever been retransmitted (Karn).
    retransmitted: bool,
    /// Number of ACKs that covered data above this seq without covering
    /// it (loss-detection counter).
    dup_hint: u32,
    /// Declared lost and waiting in the retransmit queue.
    lost_pending: bool,
}

/// The sending endpoint state machine.
#[derive(Debug, Clone)]
pub struct SenderConn {
    cfg: Arc<RudpConfig>,
    conn_id: u32,
    state: SenderState,
    /// Next sequence number to assign at first transmission.
    next_seq: u64,
    /// Fragments not yet transmitted for the first time.
    queue: VecDeque<PendingFrag>,
    /// Sequence numbers awaiting retransmission.
    retx_queue: VecDeque<u64>,
    /// Transmitted but not yet acked/abandoned, keyed by seq.
    inflight: SeqRing<InFlight>,
    /// Peer's advertised window, segments.
    peer_window: u32,
    /// Peer's loss tolerance, learned from the SYN-ACK.
    peer_tolerance: f64,
    /// Whether a standalone `Fwd` must be emitted.
    fwd_dirty: bool,
    /// Whether the SYN (or FIN) needs (re)sending.
    handshake_dirty: bool,
    handshake_deadline: Time,
    /// The congestion controller, stored inline (enum dispatch): the
    /// per-ACK hooks must not box or allocate.
    cc: CcController,
    rtt: RttEstimator,
    meter: PeriodMeter,
    events: Vec<ConnEvent>,
    next_msg_id: u64,
    finish_requested: bool,
    discard_unmarked: bool,
    abandoned_total: u64,
    thresh_zone: ThreshZone,
    stats: SenderStats,
    telemetry: TelemetrySink,
    telemetry_flow: u64,
    /// Reused sequence-number buffer for the ACK-processing phases
    /// (cumulative, selective, loss detection), so the per-ACK hot path
    /// does not allocate in steady state.
    scratch_seqs: Vec<u64>,
}

impl SenderConn {
    /// Creates a sender for connection `conn_id`.
    pub fn new(conn_id: u32, cfg: RudpConfig) -> Self {
        Self::from_shared(conn_id, Arc::new(cfg))
    }

    /// Creates a sender sharing an already-wrapped configuration (the
    /// [`crate::ConnBuilder`] path: many-flow setups build hundreds of
    /// connections from one config without cloning it each time).
    pub fn from_shared(conn_id: u32, cfg: Arc<RudpConfig>) -> Self {
        let cc = CcController::new(&cfg.cc);
        let meter = PeriodMeter::new(cfg.measure_period);
        let rtt = RttEstimator::new(cfg.min_rto, cfg.max_rto);
        let discard_unmarked = cfg.discard_unmarked;
        Self {
            cfg,
            conn_id,
            state: SenderState::Idle,
            next_seq: 0,
            queue: VecDeque::new(),
            retx_queue: VecDeque::new(),
            inflight: SeqRing::new(),
            peer_window: 1,
            peer_tolerance: 0.0,
            fwd_dirty: false,
            handshake_dirty: true,
            handshake_deadline: 0,
            cc,
            rtt,
            meter,
            events: Vec::new(),
            next_msg_id: 0,
            finish_requested: false,
            discard_unmarked,
            abandoned_total: 0,
            thresh_zone: ThreshZone::Mid,
            stats: SenderStats::default(),
            telemetry: TelemetrySink::disabled(),
            telemetry_flow: 0,
            scratch_seqs: Vec::new(),
        }
    }

    /// Attaches a telemetry sink; subsequent events are emitted under
    /// `flow`.
    pub fn set_telemetry(&mut self, sink: TelemetrySink, flow: u64) {
        self.telemetry = sink;
        self.telemetry_flow = flow;
    }

    /// The attached telemetry sink (disabled by default).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Flow id telemetry is emitted under.
    pub fn telemetry_flow(&self) -> u64 {
        self.telemetry_flow
    }

    /// Connection identifier.
    pub fn conn_id(&self) -> u32 {
        self.conn_id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SenderState {
        self.state
    }

    /// Counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Most recent network-condition snapshot.
    pub fn net_cond(&self) -> NetCond {
        let mut c = self.meter.last();
        c.srtt_ms = self.rtt.srtt_ms();
        c.cwnd = self.cc.cwnd();
        c
    }

    /// Current congestion window, segments.
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Stable name of the congestion-control algorithm this connection
    /// runs ([`crate::CcAlgorithm::name`]).
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Applies a coordination re-adjustment to the window (IQ-RUDP's
    /// reaction to a reported application adaptation). Returns the
    /// resulting window.
    pub fn scale_cwnd(&mut self, factor: f64) -> f64 {
        self.cc.scale(factor)
    }

    /// Toggles discard-unmarked coordination.
    pub fn set_discard_unmarked(&mut self, on: bool) {
        self.discard_unmarked = on;
    }

    /// Whether discard-unmarked coordination is active.
    pub fn discard_unmarked(&self) -> bool {
        self.discard_unmarked
    }

    /// Peer loss tolerance learned during the handshake.
    pub fn peer_tolerance(&self) -> f64 {
        self.peer_tolerance
    }

    /// Untransmitted + unacknowledged segments (application back-pressure
    /// signal).
    pub fn backlog_segments(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Whether everything submitted has been delivered or abandoned and
    /// the connection closed.
    pub fn is_closed(&self) -> bool {
        self.state == SenderState::Closed
    }

    /// Drains pending events.
    pub fn take_events(&mut self) -> Vec<ConnEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains pending events into a caller-owned scratch buffer: `out`
    /// is cleared and swapped with the internal queue, so a caller that
    /// reuses one buffer pays no allocation per poll in steady state.
    pub fn take_events_into(&mut self, out: &mut Vec<ConnEvent>) {
        out.clear();
        std::mem::swap(&mut self.events, out);
    }

    /// Discards pending events (sinks that never inspect them).
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    /// Submits an application message of `size` bytes.
    ///
    /// The message is fragmented into MSS-sized segments. Returns
    /// [`SendOutcome::Discarded`] when the message is unmarked and
    /// discard-unmarked coordination is active.
    pub fn send_message(&mut self, now: Time, size: u32, marked: bool) -> SendOutcome {
        assert!(size > 0, "empty messages are not allowed");
        if self.discard_unmarked && !marked {
            self.stats.msgs_discarded += 1;
            self.telemetry
                .emit(now, self.telemetry_flow, TelemetryEvent::Unmarked { size });
            return SendOutcome::Discarded;
        }
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.stats.msgs_submitted += 1;
        let frag_count = size.div_ceil(self.cfg.mss).max(1) as u16;
        let mut remaining = size;
        for idx in 0..frag_count {
            let len = remaining.min(self.cfg.mss);
            remaining -= len;
            self.queue.push_back(PendingFrag {
                msg_id,
                frag_idx: idx,
                frag_count,
                len,
                marked,
                msg_sent_at: now,
            });
        }
        SendOutcome::Queued {
            msg_id,
            fragments: frag_count,
        }
    }

    /// Signals that the application will send no more messages; a FIN
    /// follows once everything outstanding completes.
    pub fn finish(&mut self) {
        self.finish_requested = true;
    }

    /// All sequence numbers below this are acknowledged or abandoned.
    fn done_floor(&self) -> u64 {
        self.inflight.first_seq().unwrap_or(self.next_seq)
    }

    /// Whether the loss tolerance admits abandoning one more segment.
    fn may_abandon(&self) -> bool {
        if self.peer_tolerance <= 0.0 {
            return false;
        }
        let completed = self.stats.segments_acked + self.abandoned_total;
        if completed == 0 {
            return true;
        }
        ((self.abandoned_total + 1) as f64 / (completed + 1) as f64) < self.peer_tolerance
    }

    /// Handles a segment declared lost: retransmit or abandon.
    fn on_segment_lost(&mut self, now: Time, seq: u64) {
        let Some(entry) = self.inflight.get(seq) else {
            return;
        };
        if entry.lost_pending {
            return;
        }
        let marked = entry.frag.marked;
        self.meter.on_loss();
        if marked || !self.may_abandon() {
            let entry = self.inflight.get_mut(seq).expect("checked above");
            entry.lost_pending = true;
            self.retx_queue.push_back(seq);
        } else {
            self.inflight.take(seq);
            self.abandoned_total += 1;
            self.stats.segments_abandoned += 1;
            self.fwd_dirty = true;
            self.telemetry.emit(
                now,
                self.telemetry_flow,
                TelemetryEvent::SegmentDropped { seq, marked },
            );
        }
    }

    /// Processes an incoming segment.
    pub fn on_segment(&mut self, now: Time, seg: &Segment) {
        match seg {
            Segment::SynAck {
                loss_tolerance,
                recv_window,
            } if self.state == SenderState::SynSent || self.state == SenderState::Idle => {
                self.state = SenderState::Established;
                self.peer_tolerance = *loss_tolerance;
                self.peer_window = (*recv_window).max(1);
                self.events.push(ConnEvent::Connected);
            }
            Segment::Ack(ack) => self.on_ack(now, ack),
            Segment::FinAck if self.state == SenderState::FinSent => {
                self.state = SenderState::Closed;
                self.events.push(ConnEvent::Finished);
            }
            // Data/Syn/Fwd/Fin are receiver-bound; ignore.
            _ => {}
        }
    }

    fn on_ack(&mut self, now: Time, ack: &AckSeg) {
        if self.state != SenderState::Established && self.state != SenderState::FinSent {
            return;
        }
        if let Some(tx_at) = ack.echo_tx_at {
            // Karn's rule: the receiver echoes a timestamp only for
            // segments that were neither retransmissions nor duplicates
            // (see `ReceiverConn::on_data`), so every echo reaching this
            // point is a genuine first-transmission RTT. A peer that
            // mis-stamps an echo from the future would still poison the
            // estimator, so reject those outright.
            if tx_at <= now {
                self.rtt.sample_times(tx_at, now);
            }
        }
        self.peer_window = ack.recv_window.max(1);
        // The receiver may have re-adapted its reliability requirement.
        self.peer_tolerance = ack.loss_tolerance;

        // Cumulative: everything below cum_ack is done at the receiver.
        // Popping from the ring head is exactly this drain.
        let mut newly_acked: u32 = 0;
        while let Some((_, e)) = self.inflight.pop_first_below(ack.cum_ack) {
            self.note_acked(&e);
            newly_acked += 1;
        }
        // Selective: ranges above cum_ack. Ranges are receiver-observed
        // sequence runs, so they are bounded by the in-flight window;
        // clamp to the ring's live span and probe each slot directly.
        for &(start, end) in &ack.sack {
            let lo = start.max(self.inflight.first_seq().unwrap_or(u64::MAX));
            let hi = end.min(self.inflight.end_seq());
            let mut seq = lo;
            while seq < hi {
                if let Some(e) = self.inflight.take(seq) {
                    self.note_acked(&e);
                    newly_acked += 1;
                }
                seq += 1;
            }
        }
        // ACK-clocked controllers grow here; the hook fires once per
        // ACK segment that newly acknowledged data. LDA's hook is a
        // no-op, so its telemetry stream is untouched by the redesign.
        if newly_acked > 0 {
            let before = self.cc.cwnd();
            let cwnd = self.cc.on_ack(now, newly_acked, self.rtt.srtt());
            if cwnd != before {
                self.telemetry.emit(
                    now,
                    self.telemetry_flow,
                    TelemetryEvent::CwndUpdate {
                        cwnd,
                        reason: CwndReason::Ack,
                    },
                );
            }
        }
        // Loss detection: anything still in flight below the highest
        // sequence the receiver has seen gathers a dup hint per ACK.
        // The scratch buffer collects the seqs crossing the threshold
        // (abandonment below re-borrows `inflight`), and returning it to
        // `self` preserves its capacity so this never allocates in
        // steady state.
        //
        // When the SACK block is full the receiver may have had more
        // reassembly holes than the wire format carries, and everything
        // above the last reported range is *unreported*, not missing:
        // segments the receiver actually holds must not gather hints
        // there, or they get spuriously fast-retransmitted and counted
        // as losses. Clamp the sweep to the end of reported coverage;
        // the tail holes start gathering hints once earlier ranges ack
        // out and the SACK window slides over them, and the RTO still
        // backstops everything.
        let dup_horizon = if ack.sack.is_full() {
            ack.sack
                .as_slice()
                .last()
                .map_or(ack.cum_ack, |&(_, end)| end)
        } else {
            ack.highest_seen
        };
        let mut seqs = std::mem::take(&mut self.scratch_seqs);
        seqs.clear();
        let dupack_threshold = self.cfg.dupack_threshold;
        self.inflight
            .for_each_mut_below(dup_horizon, |seq, entry| {
                if entry.lost_pending {
                    return;
                }
                entry.dup_hint += 1;
                if entry.dup_hint >= dupack_threshold {
                    seqs.push(seq);
                }
            });
        for &seq in &seqs {
            self.on_segment_lost(now, seq);
        }
        // One *loss event* per ACK, no matter how many segments crossed
        // the threshold together — the classic one-reduction-per-window
        // approximation. (RTO losses react in `on_tick` instead.)
        if !seqs.is_empty() {
            let before = self.cc.cwnd();
            let cwnd = self.cc.on_loss(now);
            if cwnd != before {
                self.telemetry.emit(
                    now,
                    self.telemetry_flow,
                    TelemetryEvent::CwndUpdate {
                        cwnd,
                        reason: CwndReason::Loss,
                    },
                );
            }
        }

        self.scratch_seqs = seqs;
    }

    fn note_acked(&mut self, e: &InFlight) {
        self.stats.segments_acked += 1;
        self.stats.bytes_acked += u64::from(e.frag.len);
        self.meter.on_acked(u64::from(e.frag.len));
    }

    /// Clock tick: retransmission timeouts, handshake retries, and
    /// measuring-period rollover.
    pub fn on_tick(&mut self, now: Time) {
        match self.state {
            SenderState::SynSent | SenderState::FinSent if now >= self.handshake_deadline => {
                self.handshake_dirty = true;
                self.rtt.on_timeout();
            }
            SenderState::Established => {
                // RTO on the earliest outstanding segment. Every segment
                // whose deadline has passed is declared lost in this one
                // tick: handling only the first and leaving the rest to
                // the re-armed timer would make `next_timeout` return an
                // already-expired deadline, which the driver turns into
                // a burst of zero-delay timer events (one per expired
                // segment). The loop terminates because each iteration
                // marks its segment `lost_pending` (or abandons it),
                // removing it from the earliest-outstanding search, and
                // the per-iteration Karn backoff pushes the RTO out for
                // whatever remains.
                loop {
                    let earliest = self
                        .inflight
                        .iter()
                        .find(|(_, e)| !e.lost_pending)
                        .map(|(seq, e)| (seq, e.tx_at));
                    let Some((seq, tx_at)) = earliest else { break };
                    if now < tx_at + self.rtt.rto() {
                        break;
                    }
                    self.stats.timeouts += 1;
                    let rto_ns = self.rtt.rto();
                    self.rtt.on_timeout();
                    let cwnd = self.cc.on_timeout(now);
                    self.telemetry.emit_with(now, self.telemetry_flow, || {
                        TelemetryEvent::RtoFired {
                            seq,
                            rto_ns,
                            backoff: self.rtt.backoff(),
                        }
                    });
                    self.telemetry.emit(
                        now,
                        self.telemetry_flow,
                        TelemetryEvent::CwndUpdate {
                            cwnd,
                            reason: CwndReason::Timeout,
                        },
                    );
                    self.on_segment_lost(now, seq);
                }
                // Measuring period.
                let srtt_ms = self.rtt.srtt_ms();
                let cwnd = self.cc.cwnd();
                if let Some(cond) = self.meter.maybe_roll(now, srtt_ms, cwnd) {
                    let new_cwnd = self.cc.on_period(now, &cond);
                    let mut cond = cond;
                    cond.cwnd = new_cwnd;
                    self.events.push(ConnEvent::PeriodEnded(cond));
                    self.telemetry.emit_with(now, self.telemetry_flow, || {
                        TelemetryEvent::PeriodSample {
                            eratio: cond.eratio,
                            eratio_smoothed: cond.eratio_smoothed,
                            srtt_ms: cond.srtt_ms,
                            cwnd: new_cwnd,
                            rate_kbps: cond.rate_kbps,
                        }
                    });
                    self.telemetry.emit(
                        now,
                        self.telemetry_flow,
                        TelemetryEvent::CwndUpdate {
                            cwnd: new_cwnd,
                            reason: CwndReason::Period,
                        },
                    );
                    // Threshold callbacks are level-triggered per
                    // measuring period: the application reduces "by a
                    // degree proportional to the loss ratio" while above
                    // the upper threshold and recovers "at a fixed rate
                    // when the loss is below a certain threshold" (§3.2).
                    // Applications rate-limit their own reactions (the
                    // adaptation-granularity story of §3.5).
                    let zone = if self.cfg.upper_threshold.is_some_and(|u| cond.eratio >= u) {
                        ThreshZone::High
                    } else if self.cfg.lower_threshold.is_some_and(|l| cond.eratio <= l) {
                        ThreshZone::Low
                    } else {
                        ThreshZone::Mid
                    };
                    if zone == ThreshZone::High {
                        self.events.push(ConnEvent::UpperThreshold(cond));
                        self.telemetry.emit(
                            now,
                            self.telemetry_flow,
                            TelemetryEvent::Threshold {
                                upper: true,
                                eratio: cond.eratio,
                            },
                        );
                    }
                    if zone == ThreshZone::Low && self.cfg.lower_threshold.is_some() {
                        self.events.push(ConnEvent::LowerThreshold(cond));
                        self.telemetry.emit(
                            now,
                            self.telemetry_flow,
                            TelemetryEvent::Threshold {
                                upper: false,
                                eratio: cond.eratio,
                            },
                        );
                    }
                    self.thresh_zone = zone;
                }
            }
            _ => {}
        }
    }

    /// Earliest time at which [`Self::on_tick`] must run again.
    ///
    /// Never returns a time before `now`: a deadline at or below `now`
    /// is work [`Self::on_tick`] dispatches when called *at* `now`, and
    /// after the usual tick → poll cycle every internal deadline is
    /// strictly in the future again (the RTO loop marks all expired
    /// segments lost, the meter rolls, and the poll resets a due
    /// handshake deadline). Returning stale deadlines made drivers
    /// re-arm at a past instant and spin on zero-delay timers.
    pub fn next_timeout(&self, now: Time) -> Option<Time> {
        let t = match self.state {
            SenderState::Closed => return None,
            // Nothing is armed yet; the first poll starts the handshake.
            SenderState::Idle => 0,
            SenderState::SynSent | SenderState::FinSent => self.handshake_deadline,
            SenderState::Established => {
                let mut t = self.meter.deadline();
                if let Some((_, entry)) = self.inflight.iter().find(|(_, e)| !e.lost_pending) {
                    t = t.min(entry.tx_at + self.rtt.rto());
                }
                t
            }
        };
        Some(t.max(now))
    }

    /// Whether a new (never-transmitted) segment fits in the windows.
    fn can_send_new(&self) -> bool {
        let window = self.cc.cwnd_segments().min(self.peer_window).max(1) as usize;
        self.inflight.len() < window
    }

    /// Produces the next segment to put on the wire, if any.
    pub fn poll_transmit(&mut self, now: Time) -> Option<Segment> {
        match self.state {
            SenderState::Idle => {
                self.state = SenderState::SynSent;
                self.handshake_deadline = now + self.rtt.rto();
                self.handshake_dirty = false;
                Some(Segment::Syn { init_seq: 0 })
            }
            SenderState::SynSent => {
                if self.handshake_dirty {
                    self.handshake_dirty = false;
                    self.handshake_deadline = now + self.rtt.rto();
                    Some(Segment::Syn { init_seq: 0 })
                } else {
                    None
                }
            }
            SenderState::Established => self.poll_established(now),
            SenderState::FinSent => {
                if self.handshake_dirty {
                    self.handshake_dirty = false;
                    self.handshake_deadline = now + self.rtt.rto();
                    Some(Segment::Fin {
                        final_seq: self.next_seq,
                    })
                } else {
                    None
                }
            }
            SenderState::Closed => None,
        }
    }

    fn poll_established(&mut self, now: Time) -> Option<Segment> {
        let fwd_seq = self.done_floor();
        // 1. Standalone skip notification after abandonment.
        if self.fwd_dirty {
            self.fwd_dirty = false;
            return Some(Segment::Fwd { fwd_seq });
        }
        // 2. Retransmissions (window-exempt: they do not grow in-flight).
        while let Some(seq) = self.retx_queue.pop_front() {
            let Some(entry) = self.inflight.get_mut(seq) else {
                continue; // acked or abandoned meanwhile
            };
            entry.tx_at = now;
            entry.retransmitted = true;
            entry.dup_hint = 0;
            entry.lost_pending = false;
            self.stats.segments_sent += 1;
            self.stats.retransmits += 1;
            self.meter.on_send();
            let f = &entry.frag;
            return Some(Segment::Data(DataSeg {
                seq,
                msg_id: f.msg_id,
                frag_idx: f.frag_idx,
                frag_count: f.frag_count,
                len: f.len,
                marked: f.marked,
                fwd_seq,
                msg_sent_at: f.msg_sent_at,
                tx_at: now,
                retransmit: true,
            }));
        }
        // 3. Fresh data within the congestion/flow windows.
        if self.can_send_new() {
            if let Some(frag) = self.queue.pop_front() {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.stats.segments_sent += 1;
                self.meter.on_send();
                let seg = DataSeg {
                    seq,
                    msg_id: frag.msg_id,
                    frag_idx: frag.frag_idx,
                    frag_count: frag.frag_count,
                    len: frag.len,
                    marked: frag.marked,
                    fwd_seq,
                    msg_sent_at: frag.msg_sent_at,
                    tx_at: now,
                    retransmit: false,
                };
                self.inflight.insert(
                    seq,
                    InFlight {
                        frag,
                        tx_at: now,
                        retransmitted: false,
                        dup_hint: 0,
                        lost_pending: false,
                    },
                );
                return Some(Segment::Data(seg));
            }
        }
        // 4. Graceful close once everything is finished.
        if self.finish_requested && self.queue.is_empty() && self.inflight.is_empty() {
            self.state = SenderState::FinSent;
            self.handshake_deadline = now + self.rtt.rto();
            self.handshake_dirty = false;
            return Some(Segment::Fin {
                final_seq: self.next_seq,
            });
        }
        None
    }

    /// Folds the full control state into a model-checker digest.
    ///
    /// Every field that can influence future behavior is included;
    /// timestamps are hashed relative to `now` so equivalent states
    /// reached at different absolute clocks still collide in a visited
    /// table. `msg_sent_at` is deliberately time-relative too (it only
    /// feeds delivery-latency accounting, but keeping it makes the hash
    /// an over- rather than under-approximation of state identity).
    pub fn state_digest(&self, now: Time, h: &mut iq_telemetry::Fnv64) {
        h.write_u8(match self.state {
            SenderState::Idle => 0,
            SenderState::SynSent => 1,
            SenderState::Established => 2,
            SenderState::FinSent => 3,
            SenderState::Closed => 4,
        });
        h.write_u64(self.next_seq);
        h.write_u64(self.next_msg_id);
        h.write_u64(u64::from(self.peer_window));
        h.write_f64(self.peer_tolerance);
        h.write_bool(self.fwd_dirty);
        h.write_bool(self.handshake_dirty);
        h.write_u64(self.handshake_deadline.saturating_sub(now));
        h.write_u64(self.queue.len() as u64);
        for f in &self.queue {
            h.write_u64(f.msg_id);
            h.write_u64(u64::from(f.frag_idx));
            h.write_u64(u64::from(f.len));
            h.write_bool(f.marked);
        }
        h.write_u64(self.retx_queue.len() as u64);
        for &seq in &self.retx_queue {
            h.write_u64(seq);
        }
        h.write_u64(self.inflight.len() as u64);
        for (seq, e) in self.inflight.iter() {
            h.write_u64(seq);
            h.write_u64(now.saturating_sub(e.tx_at));
            h.write_bool(e.retransmitted);
            h.write_u64(u64::from(e.dup_hint));
            h.write_bool(e.lost_pending);
            h.write_bool(e.frag.marked);
            h.write_u64(u64::from(e.frag.len));
        }
        self.cc.digest(now, h);
        self.rtt.digest(h);
        self.meter.digest(now, h);
        h.write_bool(self.finish_requested);
        h.write_bool(self.discard_unmarked);
        h.write_u64(self.abandoned_total);
        h.write_u8(match self.thresh_zone {
            ThreshZone::Low => 0,
            ThreshZone::Mid => 1,
            ThreshZone::High => 2,
        });
        h.write_u64(self.stats.segments_acked);
        h.write_u64(self.events.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment as S;
    use iq_netsim::time::millis;

    fn establish(conn: &mut SenderConn, now: Time) {
        let syn = conn.poll_transmit(now).expect("syn");
        assert!(matches!(syn, S::Syn { .. }));
        conn.on_segment(
            now,
            &S::SynAck {
                loss_tolerance: 0.4,
                recv_window: 1024,
            },
        );
        assert_eq!(conn.state(), SenderState::Established);
    }

    fn ack_tol(cum: u64, highest: u64, tolerance: f64) -> S {
        S::Ack(AckSeg {
            cum_ack: cum,
            highest_seen: highest,
            sack: crate::segment::SackRanges::new(),
            recv_window: 1024,
            loss_tolerance: tolerance,
            echo_tx_at: None,
        })
    }

    /// ACK matching the 0.4-tolerance handshake used by `establish`.
    fn ack(cum: u64, highest: u64) -> S {
        ack_tol(cum, highest, 0.4)
    }

    #[test]
    fn handshake_then_data_flows() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        establish(&mut c, 0);
        assert!(matches!(
            c.take_events().as_slice(),
            [ConnEvent::Connected]
        ));
        c.send_message(0, 2800, true);
        // cwnd starts at 2: exactly two segments may fly.
        let a = c.poll_transmit(0).unwrap();
        let b = c.poll_transmit(0).unwrap();
        assert!(matches!(a, S::Data(ref d) if d.seq == 0 && d.len == 1400));
        assert!(matches!(b, S::Data(ref d) if d.seq == 1 && d.frag_idx == 1));
        assert!(c.poll_transmit(0).is_none(), "window exhausted");
        // Ack both; nothing left.
        c.on_segment(millis(30), &ack(2, 1));
        assert_eq!(c.backlog_segments(), 0);
        assert_eq!(c.stats().segments_acked, 2);
        assert_eq!(c.stats().bytes_acked, 2800);
    }

    #[test]
    fn fragmentation_counts() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        establish(&mut c, 0);
        match c.send_message(0, 4200, true) {
            SendOutcome::Queued { fragments, .. } => assert_eq!(fragments, 3),
            other => panic!("{other:?}"),
        }
        match c.send_message(0, 1, true) {
            SendOutcome::Queued { fragments, .. } => assert_eq!(fragments, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn discard_unmarked_drops_at_api() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        establish(&mut c, 0);
        c.set_discard_unmarked(true);
        assert_eq!(c.send_message(0, 100, false), SendOutcome::Discarded);
        assert!(matches!(
            c.send_message(0, 100, true),
            SendOutcome::Queued { .. }
        ));
        assert_eq!(c.stats().msgs_discarded, 1);
        assert_eq!(c.stats().msgs_submitted, 1);
    }

    #[test]
    fn dup_hints_trigger_fast_retransmit_of_marked() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        establish(&mut c, 0);
        // Grow the window so several segments can fly.
        c.scale_cwnd(8.0);
        for _ in 0..5 {
            c.send_message(0, 1400, true);
        }
        let mut seqs = vec![];
        while let Some(S::Data(d)) = c.poll_transmit(0) {
            seqs.push(d.seq);
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        // Receiver saw 1..5 but not 0: three acks with growing evidence.
        for highest in [2, 3, 4] {
            c.on_segment(
                millis(10),
                &S::Ack(AckSeg {
                    cum_ack: 0,
                    highest_seen: highest,
                    sack: crate::segment::SackRanges::from_slice(&[(1, highest)]),
                    recv_window: 1024,
                    loss_tolerance: 0.4,
                    echo_tx_at: None,
                }),
            );
        }
        // Seq 0 is now lost-pending; the next poll retransmits it.
        match c.poll_transmit(millis(11)) {
            Some(S::Data(d)) => {
                assert_eq!(d.seq, 0);
                assert!(d.retransmit);
            }
            other => panic!("expected retransmit, got {other:?}"),
        }
        assert_eq!(c.stats().retransmits, 1);
    }

    #[test]
    fn unmarked_losses_are_abandoned_within_tolerance() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        establish(&mut c, 0); // tolerance 0.4 from the test SynAck
        c.scale_cwnd(8.0);
        // One unmarked message then several marked.
        c.send_message(0, 1400, false);
        for _ in 0..4 {
            c.send_message(0, 1400, true);
        }
        while c.poll_transmit(0).is_some() {}
        // Seq 0 (unmarked) goes missing.
        for highest in [2, 3, 4] {
            c.on_segment(
                millis(10),
                &S::Ack(AckSeg {
                    cum_ack: 0,
                    highest_seen: highest,
                    sack: crate::segment::SackRanges::from_slice(&[(1, highest)]),
                    recv_window: 1024,
                    loss_tolerance: 0.4,
                    echo_tx_at: None,
                }),
            );
        }
        assert_eq!(c.stats().segments_abandoned, 1);
        // A standalone Fwd is emitted so the receiver can skip seq 0.
        match c.poll_transmit(millis(11)) {
            Some(S::Fwd { fwd_seq }) => assert!(fwd_seq >= 1),
            other => panic!("expected Fwd, got {other:?}"),
        }
    }

    #[test]
    fn zero_tolerance_never_abandons() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        let syn = c.poll_transmit(0);
        assert!(syn.is_some());
        c.on_segment(
            0,
            &S::SynAck {
                loss_tolerance: 0.0,
                recv_window: 1024,
            },
        );
        c.scale_cwnd(8.0);
        c.send_message(0, 1400, false);
        for _ in 0..4 {
            c.send_message(0, 1400, true);
        }
        while c.poll_transmit(0).is_some() {}
        for highest in [2, 3, 4] {
            c.on_segment(millis(10), &ack_tol(0, highest, 0.0));
        }
        assert_eq!(c.stats().segments_abandoned, 0);
        // It must be queued for retransmission instead.
        match c.poll_transmit(millis(11)) {
            Some(S::Data(d)) => assert!(d.retransmit && d.seq == 0),
            other => panic!("expected retransmit, got {other:?}"),
        }
    }

    #[test]
    fn rto_fires_and_halves_window() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        establish(&mut c, 0);
        c.scale_cwnd(8.0); // cwnd 16
        c.send_message(0, 1400, true);
        let _ = c.poll_transmit(0);
        let cwnd_before = c.cwnd();
        // No acks; tick past the initial RTO (1 s).
        c.on_tick(millis(1100));
        assert_eq!(c.stats().timeouts, 1);
        assert!(c.cwnd() < cwnd_before);
        match c.poll_transmit(millis(1100)) {
            Some(S::Data(d)) => assert!(d.retransmit),
            other => panic!("expected retransmit, got {other:?}"),
        }
    }

    #[test]
    fn period_events_and_thresholds() {
        let cfg = RudpConfig {
            upper_threshold: Some(0.3),
            lower_threshold: Some(0.05),
            ..RudpConfig::default()
        };
        let mut c = SenderConn::new(1, cfg);
        establish(&mut c, 0);
        c.take_events();
        // Clean period: lower-threshold callback fires (eratio 0).
        c.on_tick(millis(100));
        let evs = c.take_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, ConnEvent::PeriodEnded(_))));
        assert!(evs
            .iter()
            .any(|e| matches!(e, ConnEvent::LowerThreshold(_))));
        assert!(!evs
            .iter()
            .any(|e| matches!(e, ConnEvent::UpperThreshold(_))));
    }

    #[test]
    fn fin_handshake_closes() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        establish(&mut c, 0);
        c.send_message(0, 100, true);
        let _ = c.poll_transmit(0);
        c.finish();
        assert!(c.poll_transmit(0).is_none(), "fin waits for acks");
        c.on_segment(millis(10), &ack(1, 0));
        match c.poll_transmit(millis(10)) {
            Some(S::Fin { final_seq }) => assert_eq!(final_seq, 1),
            other => panic!("expected Fin, got {other:?}"),
        }
        c.on_segment(millis(40), &S::FinAck);
        assert!(c.is_closed());
        assert!(c
            .take_events()
            .iter()
            .any(|e| matches!(e, ConnEvent::Finished)));
    }

    #[test]
    fn flow_control_respects_peer_window() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        let _ = c.poll_transmit(0);
        c.on_segment(
            0,
            &S::SynAck {
                loss_tolerance: 0.0,
                recv_window: 1, // tiny receiver
            },
        );
        c.scale_cwnd(16.0);
        c.send_message(0, 4200, true);
        assert!(c.poll_transmit(0).is_some());
        assert!(c.poll_transmit(0).is_none(), "peer window is 1");
    }

    #[test]
    fn syn_retries_until_synack() {
        let mut c = SenderConn::new(1, RudpConfig::default());
        assert!(matches!(c.poll_transmit(0), Some(S::Syn { .. })));
        assert!(c.poll_transmit(millis(10)).is_none());
        // Initial RTO is 1 s; tick past it.
        c.on_tick(millis(1001));
        assert!(matches!(
            c.poll_transmit(millis(1001)),
            Some(S::Syn { .. })
        ));
    }
}
