//! Per-connection measurement periods.
//!
//! IQ-RUDP maintains "a group of network performance metrics ... anytime
//! during a connection's lifetime" (§2.1). The sender counts segments
//! sent, acknowledged, and lost within fixed measuring periods; at each
//! period boundary it produces a [`NetCond`] snapshot used for (a) the
//! LDA window adjustment, (b) the exported `NET_*` attributes, and (c)
//! the application's error-ratio threshold callbacks.

use iq_metrics::Ewma;
use iq_netsim::{Time, TimeDelta};

/// A snapshot of network condition at a period boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetCond {
    /// Loss ("error") ratio of the last period, in `[0, 1]`.
    pub eratio: f64,
    /// Smoothed loss ratio (EWMA over periods).
    pub eratio_smoothed: f64,
    /// Smoothed round-trip time, milliseconds.
    pub srtt_ms: f64,
    /// Current congestion window, segments.
    pub cwnd: f64,
    /// Acked goodput over the last period, KB/s.
    pub rate_kbps: f64,
}

/// Counts per-period sender activity.
#[derive(Debug, Clone)]
pub struct PeriodMeter {
    period: TimeDelta,
    period_start: Time,
    sent: u64,
    lost: u64,
    acked_bytes: u64,
    eratio_smoothed: Ewma,
    last: NetCond,
}

impl PeriodMeter {
    /// Creates a meter with the given period length.
    pub fn new(period: TimeDelta) -> Self {
        Self {
            period,
            period_start: 0,
            sent: 0,
            lost: 0,
            acked_bytes: 0,
            eratio_smoothed: Ewma::new(0.3),
            last: NetCond::default(),
        }
    }

    /// Period length.
    pub fn period(&self) -> TimeDelta {
        self.period
    }

    /// Records a (re)transmitted data segment.
    pub fn on_send(&mut self) {
        self.sent += 1;
    }

    /// Records a detected loss (fast-retransmit trigger, timeout, or
    /// abandonment of an unmarked segment).
    pub fn on_loss(&mut self) {
        self.lost += 1;
    }

    /// Records `bytes` newly acknowledged.
    pub fn on_acked(&mut self, bytes: u64) {
        self.acked_bytes += bytes;
    }

    /// Time at which the current period ends.
    pub fn deadline(&self) -> Time {
        self.period_start + self.period
    }

    /// Closes the period if `now` passed its deadline; returns the fresh
    /// snapshot when one was produced. `srtt_ms` and `cwnd` are provided
    /// by the connection for inclusion in the snapshot.
    pub fn maybe_roll(&mut self, now: Time, srtt_ms: f64, cwnd: f64) -> Option<NetCond> {
        if now < self.deadline() {
            return None;
        }
        let eratio = if self.sent == 0 {
            0.0
        } else {
            (self.lost as f64 / self.sent as f64).min(1.0)
        };
        let elapsed_s = (now - self.period_start) as f64 / 1e9;
        let rate_kbps = if elapsed_s > 0.0 {
            self.acked_bytes as f64 / 1000.0 / elapsed_s
        } else {
            0.0
        };
        let cond = NetCond {
            eratio,
            eratio_smoothed: self.eratio_smoothed.push(eratio),
            srtt_ms,
            cwnd,
            rate_kbps,
        };
        self.last = cond;
        self.sent = 0;
        self.lost = 0;
        self.acked_bytes = 0;
        self.period_start = now;
        Some(cond)
    }

    /// Most recent completed snapshot.
    pub fn last(&self) -> NetCond {
        self.last
    }

    /// Folds the meter state into a model-checker digest. Times are
    /// hashed relative to `now` so equivalent states reached at
    /// different absolute clocks still collide.
    pub(crate) fn digest(&self, now: Time, h: &mut iq_telemetry::Fnv64) {
        h.write_u64(self.deadline().saturating_sub(now));
        h.write_u64(self.sent);
        h.write_u64(self.lost);
        h.write_u64(self.acked_bytes);
        h.write_f64(self.last.eratio);
        h.write_f64(self.last.eratio_smoothed);
        h.write_f64(self.last.rate_kbps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::time::millis;

    #[test]
    fn no_roll_before_deadline() {
        let mut m = PeriodMeter::new(millis(100));
        m.on_send();
        assert!(m.maybe_roll(millis(50), 30.0, 10.0).is_none());
    }

    #[test]
    fn eratio_is_lost_over_sent() {
        let mut m = PeriodMeter::new(millis(100));
        for _ in 0..10 {
            m.on_send();
        }
        m.on_loss();
        m.on_loss();
        let c = m.maybe_roll(millis(100), 30.0, 10.0).unwrap();
        assert!((c.eratio - 0.2).abs() < 1e-9);
        assert_eq!(c.srtt_ms, 30.0);
        assert_eq!(c.cwnd, 10.0);
    }

    #[test]
    fn counters_reset_each_period() {
        let mut m = PeriodMeter::new(millis(100));
        m.on_send();
        m.on_loss();
        m.maybe_roll(millis(100), 0.0, 0.0).unwrap();
        m.on_send();
        let c = m.maybe_roll(millis(200), 0.0, 0.0).unwrap();
        assert_eq!(c.eratio, 0.0);
    }

    #[test]
    fn idle_period_has_zero_eratio() {
        let mut m = PeriodMeter::new(millis(100));
        let c = m.maybe_roll(millis(150), 0.0, 0.0).unwrap();
        assert_eq!(c.eratio, 0.0);
        assert_eq!(c.rate_kbps, 0.0);
    }

    #[test]
    fn rate_counts_acked_bytes() {
        let mut m = PeriodMeter::new(millis(100));
        m.on_acked(50_000);
        let c = m.maybe_roll(millis(100), 0.0, 0.0).unwrap();
        // 50 KB over 0.1 s = 500 KB/s.
        assert!((c.rate_kbps - 500.0).abs() < 1e-9);
    }

    #[test]
    fn smoothed_eratio_lags_instantaneous() {
        let mut m = PeriodMeter::new(millis(100));
        let mut t = millis(100);
        // First period: heavy loss.
        for _ in 0..10 {
            m.on_send();
        }
        for _ in 0..5 {
            m.on_loss();
        }
        m.maybe_roll(t, 0.0, 0.0);
        // Next periods: clean.
        for _ in 0..5 {
            t += millis(100);
            for _ in 0..10 {
                m.on_send();
            }
            m.maybe_roll(t, 0.0, 0.0);
        }
        let c = m.last();
        assert_eq!(c.eratio, 0.0);
        assert!(c.eratio_smoothed > 0.0 && c.eratio_smoothed < 0.2);
    }
}
