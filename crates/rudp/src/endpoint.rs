//! Simulator glue: drivers that embed the connection state machines into
//! netsim agents, plus ready-made bulk-transfer agents used by the
//! fairness and baseline experiments.

use std::sync::Arc;

use iq_metrics::FlowMetrics;
use iq_netsim::{payload, Addr, Agent, Ctx, FlowId, Packet, Time, TimerId};
use iq_telemetry::TelemetrySink;

use crate::receiver::ReceiverConn;
use crate::segment::{wire_size, RudpPacket};
use crate::sender::SenderConn;
use crate::types::{ConnEvent, DeliveredMsg, RudpConfig};

/// Timer token reserved for RUDP protocol ticks; embedding agents must
/// route `on_timer` calls with this token to the driver (or simply call
/// [`SenderDriver::on_timer`], which owns the routing).
pub const RUDP_TIMER_TOKEN: u64 = 0x5255_4450; // "RUDP"

/// Builds both halves of one RUDP connection from a single
/// configuration, keeping conn id, flow tag, and telemetry sink
/// consistent between them.
///
/// Obtained from [`RudpConfig::builder`]. The builder is the one place
/// that knows how a connection plugs into the simulator: it attaches the
/// telemetry sink to both state machines (under the flow's id) and the
/// drivers it yields own the [`RUDP_TIMER_TOKEN`] routing detail, so
/// embedding agents never touch the constant.
#[derive(Clone)]
pub struct ConnBuilder {
    /// Shared, not cloned per connection: a many-flow setup builds
    /// hundreds of connections from one immutable config.
    cfg: Arc<RudpConfig>,
    conn_id: u32,
    flow: FlowId,
    telemetry: TelemetrySink,
}

impl ConnBuilder {
    /// Creates a builder for connection `conn_id`, tagging packets and
    /// telemetry with `flow`.
    pub fn new(cfg: RudpConfig, conn_id: u32, flow: FlowId) -> Self {
        Self {
            cfg: Arc::new(cfg),
            conn_id,
            flow,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink to every connection built afterwards.
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Selects the congestion-control algorithm for every connection
    /// built afterwards (window bounds stay as configured).
    pub fn cc(mut self, algorithm: crate::CcAlgorithm) -> Self {
        Arc::make_mut(&mut self.cfg).cc.algorithm = algorithm;
        self
    }

    /// Re-targets the builder at another connection id and flow, reusing
    /// the shared config (many-flow setup loops).
    pub fn for_conn(&self, conn_id: u32, flow: FlowId) -> Self {
        Self {
            cfg: Arc::clone(&self.cfg),
            conn_id,
            flow,
            telemetry: self.telemetry.clone(),
        }
    }

    /// Builds the sending half, driving segments toward `peer`.
    pub fn build_sender(&self, peer: Addr) -> SenderDriver {
        let mut conn = SenderConn::from_shared(self.conn_id, Arc::clone(&self.cfg));
        conn.set_telemetry(self.telemetry.clone(), u64::from(self.flow.0));
        SenderDriver::new(conn, peer, self.flow)
    }

    /// Builds the receiving half.
    pub fn build_receiver(&self) -> ReceiverDriver {
        let mut conn = ReceiverConn::from_shared(self.conn_id, Arc::clone(&self.cfg));
        conn.set_telemetry(self.telemetry.clone(), u64::from(self.flow.0));
        ReceiverDriver::new(conn, self.flow)
    }

    /// Builds both drivers at once (sender first).
    pub fn build(&self, peer: Addr) -> (SenderDriver, ReceiverDriver) {
        (self.build_sender(peer), self.build_receiver())
    }
}

impl RudpConfig {
    /// Starts a [`ConnBuilder`] yielding matched sender/receiver drivers
    /// for connection `conn_id` on `flow`.
    pub fn builder(&self, conn_id: u32, flow: FlowId) -> ConnBuilder {
        ConnBuilder::new(self.clone(), conn_id, flow)
    }
}

/// Embeds a [`SenderConn`] into an agent: transmission pumping, timer
/// management, and packet demultiplexing.
pub struct SenderDriver {
    /// The protocol state machine (public for metric access).
    pub conn: SenderConn,
    peer: Addr,
    flow: FlowId,
    armed: Option<(Time, TimerId)>,
}

impl SenderDriver {
    /// Creates a driver that talks to `peer` tagging packets with `flow`.
    pub fn new(conn: SenderConn, peer: Addr, flow: FlowId) -> Self {
        Self {
            conn,
            peer,
            flow,
            armed: None,
        }
    }

    /// Feeds an incoming packet; returns `true` if it belonged to this
    /// connection. Call [`Self::pump`] afterwards.
    pub fn handle_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) -> bool {
        let Some(rp) = pkt.payload_as::<RudpPacket>() else {
            return false;
        };
        if rp.conn_id != self.conn.conn_id() {
            return false;
        }
        self.conn.on_segment(ctx.now(), &rp.segment);
        true
    }

    /// Handles a timer tick (token [`RUDP_TIMER_TOKEN`]).
    ///
    /// Safe to call on any driver when the token fires, even with
    /// several drivers sharing one agent: only a timer that actually
    /// reached its deadline is considered consumed (otherwise this
    /// driver's pending timer stays armed and no duplicate is set).
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((at, _)) = self.armed {
            if at <= ctx.now() {
                self.armed = None;
            }
        }
        self.conn.on_tick(ctx.now());
    }

    /// Routes a timer callback by token: consumes the tick (and returns
    /// `true`) iff `token` is the RUDP protocol token, so embedding
    /// agents need not know [`RUDP_TIMER_TOKEN`]. Call [`Self::pump`]
    /// afterwards when this returns `true`.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> bool {
        if token != RUDP_TIMER_TOKEN {
            return false;
        }
        self.handle_timer(ctx);
        true
    }

    /// Transmits everything ready and re-arms the protocol timer. Must
    /// be called after every interaction with the connection.
    pub fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let conn_id = self.conn.conn_id();
        while let Some(seg) = self.conn.poll_transmit(ctx.now()) {
            let size = wire_size(&seg);
            ctx.send(
                self.peer,
                size,
                self.flow,
                payload(RudpPacket {
                    conn_id,
                    segment: seg,
                }),
            );
        }
        self.rearm(ctx);
    }

    fn rearm(&mut self, ctx: &mut Ctx<'_>) {
        let Some(next) = self.conn.next_timeout(ctx.now()) else {
            return;
        };
        let next = next.max(ctx.now());
        match self.armed {
            Some((at, _)) if at <= next => {} // an earlier timer is armed
            _ => {
                if let Some((_, id)) = self.armed.take() {
                    ctx.cancel_timer(id);
                }
                let delay = next - ctx.now();
                let id = ctx.set_timer(delay, RUDP_TIMER_TOKEN);
                self.armed = Some((next, id));
            }
        }
    }
}

/// Embeds a [`ReceiverConn`] into an agent. The peer address is learned
/// from the first arriving packet.
pub struct ReceiverDriver {
    /// The protocol state machine (public for metric access).
    pub conn: ReceiverConn,
    peer: Option<Addr>,
    flow: FlowId,
}

impl ReceiverDriver {
    /// Creates a receiver driver tagging outgoing ACKs with `flow`.
    pub fn new(conn: ReceiverConn, flow: FlowId) -> Self {
        Self {
            conn,
            peer: None,
            flow,
        }
    }

    /// Feeds an incoming packet; returns `true` when consumed. Call
    /// [`Self::pump`] afterwards.
    pub fn handle_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) -> bool {
        let Some(rp) = pkt.payload_as::<RudpPacket>() else {
            return false;
        };
        if rp.conn_id != self.conn.conn_id() {
            return false;
        }
        self.peer.get_or_insert(pkt.src);
        self.conn.on_segment(ctx.now(), &rp.segment);
        true
    }

    /// Transmits pending ACKs/control segments.
    pub fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let Some(peer) = self.peer else {
            return;
        };
        let conn_id = self.conn.conn_id();
        while let Some(seg) = self.conn.poll_transmit(ctx.now()) {
            let size = wire_size(&seg);
            ctx.send(
                peer,
                size,
                self.flow,
                payload(RudpPacket {
                    conn_id,
                    segment: seg,
                }),
            );
        }
    }
}

/// Sends a fixed volume of data as fast as the windows allow, in
/// `msg_size`-byte marked messages, then closes. Used by the baseline
/// and fairness experiments.
pub struct BulkSenderAgent {
    driver: SenderDriver,
    remaining_msgs: u64,
    msg_size: u32,
    /// Keep roughly this many segments queued inside the connection.
    backlog_target: usize,
    /// Send every n-th message unmarked (0 = everything marked); the
    /// incast workload uses this to exercise abandonment paths.
    unmark_every: u64,
    offered: u64,
    /// Network-condition history, one entry per measuring period.
    pub period_log: Vec<crate::meter::NetCond>,
    events_scratch: Vec<ConnEvent>,
}

impl BulkSenderAgent {
    /// Creates a bulk sender that will transfer `total_msgs` messages of
    /// `msg_size` bytes each over `conn`.
    pub fn new(conn: SenderConn, peer: Addr, flow: FlowId, total_msgs: u64, msg_size: u32) -> Self {
        Self::from_driver(SenderDriver::new(conn, peer, flow), total_msgs, msg_size)
    }

    /// Wraps an already-built driver (see [`ConnBuilder::build_sender`]).
    pub fn from_driver(driver: SenderDriver, total_msgs: u64, msg_size: u32) -> Self {
        Self {
            driver,
            remaining_msgs: total_msgs,
            msg_size,
            backlog_target: 128,
            unmark_every: 0,
            offered: 0,
            period_log: Vec::new(),
            events_scratch: Vec::new(),
        }
    }

    /// Sends every `n`-th message unmarked (droppable under the
    /// receiver's loss tolerance or discard-unmarked coordination).
    pub fn unmark_every(mut self, n: u64) -> Self {
        self.unmark_every = n;
        self
    }

    /// Access to the underlying connection (stats, window).
    pub fn conn(&self) -> &SenderConn {
        &self.driver.conn
    }

    /// Messages offered so far (including discarded unmarked ones).
    pub fn offered_msgs(&self) -> u64 {
        self.offered
    }

    fn refill(&mut self, now: Time) {
        while self.remaining_msgs > 0
            && self.driver.conn.backlog_segments() < self.backlog_target
        {
            let marked = self.unmark_every == 0 || !self.offered.is_multiple_of(self.unmark_every);
            self.driver.conn.send_message(now, self.msg_size, marked);
            self.offered += 1;
            self.remaining_msgs -= 1;
        }
        if self.remaining_msgs == 0 {
            self.driver.conn.finish();
        }
    }

    fn after_io(&mut self, ctx: &mut Ctx<'_>) {
        self.driver.conn.take_events_into(&mut self.events_scratch);
        for ev in self.events_scratch.drain(..) {
            if let ConnEvent::PeriodEnded(c) = ev {
                self.period_log.push(c);
            }
        }
        self.refill(ctx.now());
        self.driver.pump(ctx);
    }
}

impl Agent for BulkSenderAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.refill(ctx.now());
        self.driver.pump(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if self.driver.handle_packet(ctx, &pkt) {
            self.after_io(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == RUDP_TIMER_TOKEN {
            self.driver.handle_timer(ctx);
            self.after_io(ctx);
        }
    }
}

/// Receives messages and records [`FlowMetrics`]; the standard receiving
/// end of every RUDP experiment.
pub struct RudpSinkAgent {
    driver: ReceiverDriver,
    /// Receiver-side application metrics.
    pub metrics: FlowMetrics,
    /// Raw messages, retained when `keep_messages` is set.
    pub messages: Vec<DeliveredMsg>,
    keep_messages: bool,
    msgs_scratch: Vec<DeliveredMsg>,
}

impl RudpSinkAgent {
    /// Creates a sink for connection `conn_id`.
    pub fn new(conn_id: u32, cfg: RudpConfig, flow: FlowId) -> Self {
        Self::from_driver(ReceiverDriver::new(ReceiverConn::new(conn_id, cfg), flow))
    }

    /// Wraps an already-built driver (see
    /// [`ConnBuilder::build_receiver`]).
    pub fn from_driver(driver: ReceiverDriver) -> Self {
        Self {
            driver,
            metrics: FlowMetrics::new(),
            messages: Vec::new(),
            keep_messages: false,
            msgs_scratch: Vec::new(),
        }
    }

    /// Retain every delivered message for later inspection.
    pub fn keep_messages(mut self) -> Self {
        self.keep_messages = true;
        self
    }

    /// Access to the underlying connection (stats).
    pub fn conn(&self) -> &ReceiverConn {
        &self.driver.conn
    }

    /// Whether the transfer finished cleanly.
    pub fn is_finished(&self) -> bool {
        self.driver.conn.is_finished()
    }
}

impl Agent for RudpSinkAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if !self.driver.handle_packet(ctx, &pkt) {
            return;
        }
        self.driver.conn.take_messages_into(&mut self.msgs_scratch);
        for msg in self.msgs_scratch.drain(..) {
            self.metrics.on_message(
                msg.delivered_at,
                msg.sent_at,
                u64::from(msg.size),
                msg.marked,
            );
            if self.keep_messages {
                self.messages.push(msg);
            }
        }
        self.driver.conn.clear_events();
        self.driver.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::{time, LinkSpec, Simulator};

    /// End-to-end bulk transfer over a clean 10 Mb/s, 10 ms-RTT link.
    #[test]
    fn bulk_transfer_delivers_everything() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(10e6, time::millis(5), 64_000));
        let cfg = RudpConfig::default();
        let sender = BulkSenderAgent::new(
            SenderConn::new(7, cfg.clone()),
            Addr::new(b, 1),
            FlowId(1),
            100,
            1400,
        );
        let tx = sim.add_agent(a, 1, Box::new(sender));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(7, cfg, FlowId(1))));
        sim.run_until(time::secs(30.0));

        let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
        assert!(sink.is_finished(), "transfer did not finish");
        assert_eq!(sink.metrics.messages(), 100);
        assert_eq!(sink.metrics.bytes(), 140_000);
        let sender = sim.agent::<BulkSenderAgent>(tx).unwrap();
        assert!(sender.conn().is_closed());
        assert_eq!(sender.conn().stats().segments_acked, 100);
    }

    /// The same transfer over a 5%-lossy link still completes (marked
    /// data is fully reliable) with retransmissions.
    #[test]
    fn bulk_transfer_survives_random_loss() {
        let mut sim = Simulator::new(11);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(
            a,
            b,
            LinkSpec::new(10e6, time::millis(5), 64_000).with_random_loss(0.05),
        );
        let cfg = RudpConfig::default();
        let sender = BulkSenderAgent::new(
            SenderConn::new(7, cfg.clone()),
            Addr::new(b, 1),
            FlowId(1),
            200,
            1400,
        );
        let tx = sim.add_agent(a, 1, Box::new(sender));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(7, cfg, FlowId(1))));
        sim.run_until(time::secs(60.0));

        let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
        assert!(sink.is_finished(), "lossy transfer did not finish");
        assert_eq!(sink.metrics.messages(), 200);
        let sender = sim.agent::<BulkSenderAgent>(tx).unwrap();
        assert!(sender.conn().stats().retransmits > 0, "expected retransmits");
        assert_eq!(sender.conn().stats().segments_abandoned, 0);
    }

    /// The builder yields matched drivers with telemetry attached to
    /// both ends, and a transfer over them leaves a coherent event
    /// stream on the bus.
    #[test]
    fn conn_builder_wires_telemetry_through_both_drivers() {
        use iq_telemetry::TelemetryReport;

        let mut sim = Simulator::new(3);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(10e6, time::millis(5), 64_000));
        let (sink, bus) = TelemetrySink::new_bus(0);
        let builder = RudpConfig::default()
            .builder(7, FlowId(1))
            .telemetry(sink);
        let (tx_driver, rx_driver) = builder.build(Addr::new(b, 1));
        assert!(tx_driver.conn.telemetry().is_enabled());
        assert_eq!(tx_driver.conn.telemetry_flow(), 1);
        assert_eq!(rx_driver.conn.telemetry_flow(), 1);

        // Run a real transfer over the built drivers.
        let sender = BulkSenderAgent::from_driver(tx_driver, 50, 1400);
        sim.add_agent(a, 1, Box::new(sender));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::from_driver(rx_driver)));
        sim.run_until(time::secs(30.0));

        let sink_agent = sim.agent::<RudpSinkAgent>(rx).unwrap();
        assert!(sink_agent.is_finished());
        let records = bus.lock().unwrap().records();
        let report = TelemetryReport::from_records(&records);
        assert_eq!(report.msgs_delivered, 50);
        assert!(report.count("period_sample") > 0, "no period samples");
        assert!(records.iter().all(|r| r.flow == 1));
        // Sequence numbers are strictly increasing (emission order).
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    /// Throughput of a long transfer approaches the link rate.
    #[test]
    fn bulk_transfer_saturates_clean_link() {
        let mut sim = Simulator::new(5);
        let a = sim.add_node();
        let b = sim.add_node();
        // 8 Mb/s, 20 ms RTT; queue = BDP.
        sim.add_duplex_link(
            a,
            b,
            LinkSpec::new(8e6, time::millis(10), 64_000).with_bdp_queue(time::millis(20)),
        );
        let cfg = RudpConfig::default();
        let total_msgs = 2000u64;
        let sender = BulkSenderAgent::new(
            SenderConn::new(1, cfg.clone()),
            Addr::new(b, 1),
            FlowId(1),
            total_msgs,
            1400,
        );
        sim.add_agent(a, 1, Box::new(sender));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(1, cfg, FlowId(1))));
        sim.run_until(time::secs(60.0));
        let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
        assert!(sink.is_finished());
        let kbps = sink.metrics.throughput_kbps();
        // 8 Mb/s is 1000 KB/s; expect at least 60% utilization
        // (conservative: additive increase takes a while).
        assert!(kbps > 600.0, "throughput too low: {kbps} KB/s");
    }
}
