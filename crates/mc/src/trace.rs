//! Counterexample rendering and deterministic replay.
//!
//! A counterexample is just the `Vec<Choice>` that led to the
//! violation. Because every transition is deterministic given the
//! choice sequence, re-applying the trace on a fresh [`World`]
//! reproduces the exact failing state — [`replay`] is both the
//! debugging entry point and the checker's own self-test that traces
//! are faithful.

use std::fmt;
use std::sync::Arc;

use crate::invariant::Violation;
use crate::world::{Choice, Mutation, ScenarioSpec, World};

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::App { flow } => write!(f, "app(flow {flow})"),
            Choice::DeliverData { flow, idx } => {
                write!(f, "deliver-data(flow {flow}, idx {idx})")
            }
            Choice::DropData { flow, idx } => write!(f, "drop-data(flow {flow}, idx {idx})"),
            Choice::DeliverAck { flow, idx } => {
                write!(f, "deliver-ack(flow {flow}, idx {idx})")
            }
            Choice::DropAck { flow, idx } => write!(f, "drop-ack(flow {flow}, idx {idx})"),
            Choice::Tick { flow } => write!(f, "tick(flow {flow})"),
        }
    }
}

/// Renders a trace as numbered lines, one choice per line.
pub fn render(trace: &[Choice]) -> String {
    let mut out = String::new();
    for (i, c) in trace.iter().enumerate() {
        out.push_str(&format!("  {:>3}. {c}\n", i + 1));
    }
    out
}

/// Re-applies a recorded trace on a fresh world and returns the
/// violation its final transition produces (if any).
///
/// A choice that is not enabled in the replayed state (stale index,
/// exhausted script) stops the replay and returns `None` — a trace
/// recorded by [`crate::check`] against the same scenario, mutation,
/// and budgets always stays enabled.
pub fn replay(
    spec: &Arc<ScenarioSpec>,
    mutation: Mutation,
    cfg: &crate::checker::CheckerConfig,
    trace: &[Choice],
) -> Option<Violation> {
    let mut world = World::new(Arc::clone(spec), mutation, cfg.drop_budget, cfg.tick_budget);
    for choice in trace {
        if !world.choices().contains(choice) {
            return None;
        }
        if let Some(v) = world.apply(*choice) {
            return Some(v);
        }
    }
    None
}
