//! The checker's state space: scenarios, mutations, and the transition
//! relation.
//!
//! A [`World`] holds one or two flows, each a sender/receiver/
//! coordinator triple plus two explicit in-flight segment sets (the
//! "network"). Where the simulator's [`iq_netsim::EventSource`] always
//! yields the earliest pending event, the checker enumerates *every*
//! enabled [`Choice`] — deliver any in-flight segment (in any order),
//! drop one (while the budget lasts), fire the sender's timer, or run
//! the next scripted application step — and recurses on each.
//!
//! Time is explicit but coarse: every transition advances the clock by
//! [`STEP`]; a timer choice jumps it to the sender's next deadline.
//! [`World::state_hash`] hashes all timestamps relative to the clock,
//! so behaviorally equivalent states reached at different absolute
//! times collide in the visited table.

use std::sync::Arc;

use iq_attrs::{names, AttrList};
use iq_core::{AdaptReport, CoordinationMode, Coordinator};
use iq_echo::{DeferredResolution, ResolutionAdapter};
use iq_netsim::{Time, TimeDelta};
use iq_rudp::{NetCond, ReceiverConn, RudpConfig, Segment, SenderConn};
use iq_telemetry::Fnv64;

use crate::invariant::{check_invariants, Snapshot, Violation};

/// Clock advance per transition (1 ms).
pub const STEP: TimeDelta = 1_000_000;

/// One scripted application send: the message and the `ADAPT_*`
/// attributes reported with it.
#[derive(Debug, Clone)]
pub struct AppStep {
    /// Message payload bytes.
    pub size: u32,
    /// Whether the message is marked (must-deliver).
    pub marked: bool,
    /// Adaptation attributes attached to the send.
    pub attrs: AttrList,
}

impl AppStep {
    fn plain() -> Self {
        Self {
            size: 1000,
            marked: true,
            attrs: AttrList::new(),
        }
    }

    fn with_attrs(attrs: AttrList) -> Self {
        Self { attrs, ..Self::plain() }
    }
}

/// A bounded scenario: the coordination mode and each flow's scripted
/// application steps.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (CLI and reports).
    pub name: &'static str,
    /// Coordination mode every flow runs under.
    pub mode: CoordinationMode,
    /// Per-flow application scripts.
    pub flows: Vec<Vec<AppStep>>,
    /// Connection configuration shared by all flows.
    pub cfg: RudpConfig,
}

/// Names accepted by [`scenario`].
pub fn scenario_names() -> &'static [&'static str] {
    &["basic", "deferred", "two-flow"]
}

/// Builds a named scenario, or `None` for an unknown name.
///
/// * `basic` — one flow, `Coordinated`: a plain send, an immediate
///   resolution adaptation, and a reliability adaptation.
/// * `deferred` — one flow, `CoordinatedWithCond`: a deferral announced
///   and later executed with `ADAPT_COND`, built through the real
///   IQ-ECho [`DeferredResolution`] adapter so the scripted attributes
///   are exactly what an application would emit.
/// * `two-flow` — two independent flows, `Coordinated`, each with a
///   plain send and a resolution adaptation; exercises cross-flow
///   interleavings of the same invariants.
pub fn scenario(name: &str) -> Option<Arc<ScenarioSpec>> {
    scenario_with_cc(name, iq_rudp::CcAlgorithm::default())
}

/// Builds a named scenario running congestion controller `cc` on every
/// flow (`iqrudp mc --cc <alg>`): the coordination invariants are
/// checked against whatever controller the transport runs, because
/// their contract — `scale` is multiply-then-clamp — is
/// controller-independent.
pub fn scenario_with_cc(
    name: &str,
    cc: iq_rudp::CcAlgorithm,
) -> Option<Arc<ScenarioSpec>> {
    let mut spec = match name {
        "basic" => ScenarioSpec {
            name: "basic",
            mode: CoordinationMode::Coordinated,
            flows: vec![vec![
                AppStep::plain(),
                AppStep::with_attrs(AttrList::new().with(names::ADAPT_PKTSIZE, 0.2)),
                AppStep {
                    marked: false,
                    ..AppStep::with_attrs(AttrList::new().with(names::ADAPT_MARK, 0.5))
                },
            ]],
            cfg: RudpConfig::default(),
        },
        "deferred" => {
            // Generate the announcement/execution pair with the real
            // application-side adapter (granularity 2, scheme 3).
            let mut adapter =
                DeferredResolution::new(ResolutionAdapter::default(), 2, true);
            let seen = NetCond {
                eratio: 0.3,
                eratio_smoothed: 0.3,
                ..NetCond::default()
            };
            let announce = adapter.on_threshold(true, &seen, 1);
            assert!(announce.get_int(names::ADAPT_WHEN).is_some_and(|w| w > 0));
            let execute = adapter.on_frame(2);
            assert!(execute.get_float(names::ADAPT_PKTSIZE).is_some());
            assert!(execute.get_float(names::ADAPT_COND_ERATIO).is_some());
            ScenarioSpec {
                name: "deferred",
                mode: CoordinationMode::CoordinatedWithCond,
                flows: vec![vec![
                    AppStep::plain(),
                    AppStep::with_attrs(announce),
                    AppStep::with_attrs(execute),
                    AppStep::plain(),
                ]],
                cfg: RudpConfig::default(),
            }
        }
        "two-flow" => {
            let script = vec![
                AppStep::plain(),
                AppStep::with_attrs(AttrList::new().with(names::ADAPT_PKTSIZE, 0.2)),
            ];
            ScenarioSpec {
                name: "two-flow",
                mode: CoordinationMode::Coordinated,
                flows: vec![script.clone(), script],
                cfg: RudpConfig::default(),
            }
        }
        _ => return None,
    };
    spec.cfg.cc.algorithm = cc;
    Some(Arc::new(spec))
}

/// A deliberately seeded coordination bug, applied to the attribute
/// list *fed to the coordinator* while the invariants keep judging
/// against the unmutated script. `Mutation::None` checks the real code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// No seeded bug: check the production coordination path.
    None,
    /// Strip `ADAPT_PKTSIZE`: the coordinator never sees the resolution
    /// adaptation, so the window is not re-inflated (breaks invariant 1).
    SkipReinflate,
    /// Strip `ADAPT_COND_ERATIO`: the Eq. (1) correction runs on the
    /// wrong (transport-local) snapshot (breaks invariant 2).
    DropCondCorrection,
    /// Strip `ADAPT_WHEN`: a deferral announcement is treated as
    /// immediate, so no pending adaptation is armed (breaks invariant 3).
    IgnoreDeferral,
}

impl Mutation {
    /// Parses a CLI name (`reinflate`, `cond`, `deferral`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "reinflate" => Some(Self::SkipReinflate),
            "cond" => Some(Self::DropCondCorrection),
            "deferral" => Some(Self::IgnoreDeferral),
            _ => None,
        }
    }

    /// The attribute this mutation suppresses, if any.
    fn stripped_attr(self) -> Option<&'static str> {
        match self {
            Self::None => None,
            Self::SkipReinflate => Some(names::ADAPT_PKTSIZE),
            Self::DropCondCorrection => Some(names::ADAPT_COND_ERATIO),
            Self::IgnoreDeferral => Some(names::ADAPT_WHEN),
        }
    }

    /// The attribute list the coordinator actually receives.
    fn mutate(self, attrs: &AttrList) -> AttrList {
        let mut out = attrs.clone();
        if let Some(name) = self.stripped_attr() {
            out.remove(name);
        }
        out
    }
}

/// One explorable transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Run the flow's next scripted application step.
    App {
        /// Flow index.
        flow: usize,
    },
    /// Deliver the `idx`-th in-flight data-direction segment (any index:
    /// this is how reordering enters the space).
    DeliverData {
        /// Flow index.
        flow: usize,
        /// Index into the sender→receiver in-flight set.
        idx: usize,
    },
    /// Drop the `idx`-th in-flight data-direction segment (consumes
    /// drop budget).
    DropData {
        /// Flow index.
        flow: usize,
        /// Index into the sender→receiver in-flight set.
        idx: usize,
    },
    /// Deliver the `idx`-th in-flight ack-direction segment.
    DeliverAck {
        /// Flow index.
        flow: usize,
        /// Index into the receiver→sender in-flight set.
        idx: usize,
    },
    /// Drop the `idx`-th in-flight ack-direction segment.
    DropAck {
        /// Flow index.
        flow: usize,
        /// Index into the receiver→sender in-flight set.
        idx: usize,
    },
    /// Jump the clock to the sender's next deadline and tick it.
    Tick {
        /// Flow index.
        flow: usize,
    },
}

/// One flow's endpoints plus its in-flight segments.
#[derive(Clone)]
pub struct FlowState {
    /// The sending endpoint.
    pub sender: SenderConn,
    /// The receiving endpoint.
    pub receiver: ReceiverConn,
    /// The coordination layer wrapping `sender`.
    pub coord: Coordinator,
    /// Segments in flight sender → receiver.
    pub to_recv: Vec<Segment>,
    /// Segments in flight receiver → sender.
    pub to_send: Vec<Segment>,
    /// Next unexecuted script step.
    pub script_pos: usize,
}

/// One state in the explored space.
#[derive(Clone)]
pub struct World {
    /// Simulated clock, nanoseconds.
    pub now: Time,
    /// Per-flow state.
    pub flows: Vec<FlowState>,
    /// Remaining drop budget (shared across flows).
    pub drops_left: u32,
    /// Remaining timer-firing budget (shared across flows).
    ///
    /// Unbudgeted, timers make the space infinite: every firing can
    /// regenerate retransmissions with fresh backoff and counters, so
    /// no two tick-cycles ever hash-collide. Bounding firings per
    /// trace — exactly like drops — keeps the space finite while still
    /// interleaving RTO recovery against every delivery order.
    pub ticks_left: u32,
    spec: Arc<ScenarioSpec>,
    mutation: Mutation,
}

impl World {
    /// The initial state: every flow handshaken at `t = 0`, scripts
    /// unexecuted, full drop and tick budgets.
    pub fn new(
        spec: Arc<ScenarioSpec>,
        mutation: Mutation,
        drop_budget: u32,
        tick_budget: u32,
    ) -> Self {
        let mut flows = Vec::with_capacity(spec.flows.len());
        for i in 0..spec.flows.len() {
            let conn_id = i as u32 + 1;
            let mut sender = SenderConn::new(conn_id, spec.cfg.clone());
            let mut receiver = ReceiverConn::new(conn_id, spec.cfg.clone());
            let syn = sender.poll_transmit(0).expect("syn");
            receiver.on_segment(0, &syn);
            let synack = receiver.poll_transmit(0).expect("synack");
            sender.on_segment(0, &synack);
            sender.clear_events();
            receiver.clear_events();
            flows.push(FlowState {
                sender,
                receiver,
                coord: Coordinator::new(spec.mode),
                to_recv: Vec::new(),
                to_send: Vec::new(),
                script_pos: 0,
            });
        }
        Self {
            now: 0,
            flows,
            drops_left: drop_budget,
            ticks_left: tick_budget,
            spec,
            mutation,
        }
    }

    /// The scenario this world explores.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Whether every script has run and no segments remain in flight.
    pub fn quiescent(&self) -> bool {
        self.flows.iter().enumerate().all(|(i, f)| {
            f.script_pos == self.spec.flows[i].len()
                && f.to_recv.is_empty()
                && f.to_send.is_empty()
        })
    }

    /// Enumerates the enabled transitions, in a fixed deterministic
    /// order (application steps, then deliveries, drops, and finally
    /// timers, flow by flow).
    pub fn choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for (i, f) in self.flows.iter().enumerate() {
            if f.script_pos < self.spec.flows[i].len() {
                out.push(Choice::App { flow: i });
            }
        }
        for (i, f) in self.flows.iter().enumerate() {
            for idx in 0..f.to_recv.len() {
                out.push(Choice::DeliverData { flow: i, idx });
            }
            for idx in 0..f.to_send.len() {
                out.push(Choice::DeliverAck { flow: i, idx });
            }
        }
        if self.drops_left > 0 {
            for (i, f) in self.flows.iter().enumerate() {
                for idx in 0..f.to_recv.len() {
                    out.push(Choice::DropData { flow: i, idx });
                }
                for idx in 0..f.to_send.len() {
                    out.push(Choice::DropAck { flow: i, idx });
                }
            }
        }
        if self.ticks_left > 0 {
            for (i, f) in self.flows.iter().enumerate() {
                // Ticking a quiescent flow only laps the measuring
                // period; skipping it keeps traces tighter.
                if !f.sender.is_closed()
                    && (f.script_pos < self.spec.flows[i].len()
                        || !f.to_recv.is_empty()
                        || !f.to_send.is_empty()
                        || f.sender.backlog_segments() > 0)
                {
                    out.push(Choice::Tick { flow: i });
                }
            }
        }
        out
    }

    /// Applies one transition, returning a violation if the transition
    /// was an application step that broke the coordination contract.
    pub fn apply(&mut self, choice: Choice) -> Option<Violation> {
        self.now += STEP;
        let violation = match choice {
            Choice::App { flow } => self.app_step(flow),
            Choice::DeliverData { flow, idx } => {
                let seg = self.flows[flow].to_recv.remove(idx);
                let now = self.now;
                self.flows[flow].receiver.on_segment(now, &seg);
                None
            }
            Choice::DropData { flow, idx } => {
                self.flows[flow].to_recv.remove(idx);
                self.drops_left -= 1;
                None
            }
            Choice::DeliverAck { flow, idx } => {
                let seg = self.flows[flow].to_send.remove(idx);
                let now = self.now;
                self.flows[flow].sender.on_segment(now, &seg);
                None
            }
            Choice::DropAck { flow, idx } => {
                self.flows[flow].to_send.remove(idx);
                self.drops_left -= 1;
                None
            }
            Choice::Tick { flow } => {
                self.ticks_left -= 1;
                if let Some(t) = self.flows[flow].sender.next_timeout(self.now) {
                    debug_assert!(t >= self.now, "next_timeout returned the past");
                    self.now = self.now.max(t);
                }
                let now = self.now;
                self.flows[flow].sender.on_tick(now);
                None
            }
        };
        let flow = match choice {
            Choice::App { flow }
            | Choice::DeliverData { flow, .. }
            | Choice::DropData { flow, .. }
            | Choice::DeliverAck { flow, .. }
            | Choice::DropAck { flow, .. }
            | Choice::Tick { flow } => flow,
        };
        self.pump(flow);
        violation
    }

    /// Runs the flow's next scripted application step through the
    /// coordinator (mutated view) and judges the transition against the
    /// unmutated script.
    fn app_step(&mut self, flow: usize) -> Option<Violation> {
        let step = &self.spec.flows[flow][self.flows[flow].script_pos];
        let report = AdaptReport::from_attrs(&step.attrs);
        let fed = self.mutation.mutate(&step.attrs);
        let size = step.size;
        let marked = step.marked;
        let now = self.now;
        let mode = self.spec.mode;
        let cc = self.spec.cfg.cc.clone();
        let f = &mut self.flows[flow];
        f.script_pos += 1;
        let pre = Snapshot::capture(&f.sender, &f.coord);
        let _ = f.coord.send_with_attrs(&mut f.sender, now, size, marked, &fed);
        let post = Snapshot::capture(&f.sender, &f.coord);
        check_invariants(mode, &cc, size, &report, &pre, &post)
            .map(|v| v.at(flow, f.script_pos - 1))
    }

    /// Drains both endpoints' outgoing segments into the in-flight sets
    /// and clears the event/message queues (the checker has no
    /// application to hand them to).
    fn pump(&mut self, flow: usize) {
        let now = self.now;
        let f = &mut self.flows[flow];
        while let Some(seg) = f.sender.poll_transmit(now) {
            f.to_recv.push(seg);
        }
        while let Some(seg) = f.receiver.poll_transmit(now) {
            f.to_send.push(seg);
        }
        f.sender.clear_events();
        f.receiver.clear_events();
        let _ = f.receiver.take_messages();
    }

    /// FNV-1a digest of the full control state.
    ///
    /// Timestamps inside connections and segments are hashed relative
    /// to `now`, and `now` itself is excluded, so states differing only
    /// by when they were reached collide. The in-flight sets are hashed
    /// as order-independent multisets (per-segment digests, sorted):
    /// delivery choices address segments by index anyway, so two
    /// worlds holding the same segments in different vector orders
    /// have identical futures.
    pub fn state_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(u64::from(self.drops_left));
        h.write_u64(u64::from(self.ticks_left));
        for f in &self.flows {
            f.sender.state_digest(self.now, &mut h);
            f.receiver.state_digest(self.now, &mut h);
            f.coord.state_digest(&mut h);
            h.write_u64(f.script_pos as u64);
            for set in [&f.to_recv, &f.to_send] {
                let mut digests: Vec<u64> = set
                    .iter()
                    .map(|seg| {
                        let mut sh = Fnv64::new();
                        seg.state_digest(self.now, &mut sh);
                        sh.finish()
                    })
                    .collect();
                digests.sort_unstable();
                h.write_u64(digests.len() as u64);
                for d in digests {
                    h.write_u64(d);
                }
            }
        }
        h.finish()
    }
}
