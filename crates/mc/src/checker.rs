//! Bounded exploration: iterative-deepening DFS with a visited table.
//!
//! Iterative deepening buys two properties cheaply: the first
//! counterexample found is *minimal* (no shorter trace violates), and
//! an iteration that finishes without hitting its depth cutoff proves
//! the whole reachable space (under the drop budget) was covered — the
//! report's `complete` flag.
//!
//! The visited table maps a state hash to the largest remaining depth
//! it was explored with; a state is re-expanded only when revisited
//! with *more* depth to spend, the standard IDDFS memoization. All
//! iteration is over the deterministic [`World::choices`] vector — no
//! hash-map iteration anywhere — so explored-state counts are stable
//! run to run and pinned in CI.

use std::collections::HashMap;
use std::sync::Arc;

use crate::invariant::Violation;
use crate::world::{Choice, Mutation, ScenarioSpec, World};

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct CheckerConfig {
    /// Maximum transitions per trace.
    pub max_depth: u32,
    /// Total segment drops allowed along one trace.
    pub drop_budget: u32,
    /// Total timer firings allowed along one trace (see
    /// [`World::ticks_left`](crate::world::World::ticks_left) for why
    /// this must be bounded).
    pub tick_budget: u32,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            drop_budget: 1,
            tick_budget: 2,
        }
    }
}

/// A minimal violating trace.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The choices leading to the violation, in order.
    pub trace: Vec<Choice>,
    /// What broke on the final transition.
    pub violation: Violation,
}

/// The outcome of a bounded exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Unique states expanded in the deepest iteration run.
    pub explored: u64,
    /// Depth of the deepest iteration run.
    pub depth_reached: u32,
    /// Whether that iteration covered the entire bounded space (no
    /// trace was cut off by the depth bound).
    pub complete: bool,
    /// The minimal counterexample, when a violation exists.
    pub counterexample: Option<Counterexample>,
}

struct Dfs {
    visited: HashMap<u64, u32>,
    explored: u64,
    cutoff: bool,
}

impl Dfs {
    fn run(
        &mut self,
        world: &World,
        remaining: u32,
        trace: &mut Vec<Choice>,
    ) -> Option<Counterexample> {
        let h = world.state_hash();
        match self.visited.get(&h) {
            Some(&r) if r >= remaining => return None,
            _ => {
                self.visited.insert(h, remaining);
            }
        }
        self.explored += 1;
        let choices = world.choices();
        if choices.is_empty() {
            return None;
        }
        if remaining == 0 {
            self.cutoff = true;
            return None;
        }
        for choice in choices {
            let mut next = world.clone();
            trace.push(choice);
            if let Some(violation) = next.apply(choice) {
                return Some(Counterexample {
                    trace: trace.clone(),
                    violation,
                });
            }
            if let Some(ce) = self.run(&next, remaining - 1, trace) {
                return Some(ce);
            }
            trace.pop();
        }
        None
    }
}

/// Explores `spec` under `mutation` up to the configured bounds.
///
/// Runs depths `1..=max_depth` in order; returns on the first depth
/// that yields a violation (minimal counterexample) or covers the
/// space completely.
pub fn check(spec: &Arc<ScenarioSpec>, mutation: Mutation, cfg: &CheckerConfig) -> CheckReport {
    let mut report = CheckReport {
        explored: 0,
        depth_reached: 0,
        complete: false,
        counterexample: None,
    };
    for depth in 1..=cfg.max_depth {
        let mut dfs = Dfs {
            visited: HashMap::new(),
            explored: 0,
            cutoff: false,
        };
        let root = World::new(Arc::clone(spec), mutation, cfg.drop_budget, cfg.tick_budget);
        let mut trace = Vec::new();
        let found = dfs.run(&root, depth, &mut trace);
        report.explored = dfs.explored;
        report.depth_reached = depth;
        if let Some(ce) = found {
            report.counterexample = Some(ce);
            return report;
        }
        if !dfs.cutoff {
            report.complete = true;
            return report;
        }
    }
    report
}
