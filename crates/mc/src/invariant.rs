//! The coordination contract as checkable predicates.
//!
//! Every application transition is judged by comparing a pre/post
//! [`Snapshot`] pair against the *unmutated* adaptation report — the
//! checker recomputes what the coordinator should have done from the
//! paper's formulas ([`iq_core::resolution_window_factor`],
//! [`iq_core::cond_window_factor`]) and flags any divergence.

use iq_core::{cond_window_factor, resolution_window_factor, AdaptReport, CoordinationMode, Coordinator};
use iq_rudp::{CcConfig, SenderConn};

/// Tolerance for floating-point window comparisons.
const EPS: f64 = 1e-6;

/// The three checked coordination invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// §3.4: a sub-MSS resolution adaptation rescales the window
    /// exactly once, by the resolution factor, within the cc clamps.
    Reinflation,
    /// §3.5 Eq. (1): `CoordinatedWithCond` corrects the factor using
    /// the error ratio the application adapted under.
    CondCorrection,
    /// §3.5: a deferral announcement changes nothing now and arms
    /// exactly one pending adaptation.
    Deferral,
}

impl Invariant {
    /// Short stable name (reports, CI grep).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::Reinflation => "reinflation",
            Invariant::CondCorrection => "cond-correction",
            Invariant::Deferral => "deferral",
        }
    }
}

/// A violated invariant, with enough context to read the failure.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Human-readable explanation (expected vs. observed).
    pub detail: String,
    /// Flow whose application step tripped the check.
    pub flow: usize,
    /// Script step index within that flow.
    pub step: usize,
}

impl Violation {
    fn new(invariant: Invariant, detail: String) -> Self {
        Self {
            invariant,
            detail,
            flow: 0,
            step: 0,
        }
    }

    /// Attaches the flow/step location.
    pub fn at(mut self, flow: usize, step: usize) -> Self {
        self.flow = flow;
        self.step = step;
        self
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant {} violated at flow {} step {}: {}",
            self.invariant.name(),
            self.flow,
            self.step,
            self.detail
        )
    }
}

/// The observable coordination state around one transition.
#[derive(Debug, Clone, Copy)]
pub struct Snapshot {
    /// Congestion window, segments.
    pub cwnd: f64,
    /// Window rescales performed so far.
    pub rescales: u64,
    /// Eq. (1) corrections performed so far.
    pub cond_corrections: u64,
    /// Whether a deferred adaptation is armed.
    pub has_pending: bool,
    /// Error ratio snapshotted when the armed deferral was announced.
    pub pending_eratio: Option<f64>,
    /// The transport's current smoothed error ratio.
    pub eratio_smoothed: f64,
    /// Whether unmarked sends are being discarded.
    pub discard_unmarked: bool,
}

impl Snapshot {
    /// Captures the checked state of a sender/coordinator pair.
    pub fn capture(sender: &SenderConn, coord: &Coordinator) -> Self {
        let log = coord.log();
        Self {
            cwnd: sender.cwnd(),
            rescales: log.window_rescales,
            cond_corrections: log.cond_corrections,
            has_pending: coord.has_pending(),
            pending_eratio: coord.pending_eratio(),
            eratio_smoothed: sender.net_cond().eratio_smoothed,
            discard_unmarked: sender.discard_unmarked(),
        }
    }
}

/// Judges one application transition. `report` is parsed from the
/// *unmutated* script attributes; `pre`/`post` bracket the coordinator
/// call (which may have seen mutated attributes).
pub fn check_invariants(
    mode: CoordinationMode,
    cc: &CcConfig,
    msg_size: u32,
    report: &AdaptReport,
    pre: &Snapshot,
    post: &Snapshot,
) -> Option<Violation> {
    if mode == CoordinationMode::Uncoordinated {
        // Out of scope: uncoordinated transports ignore reports by
        // design, so there is nothing to contract-check.
        return None;
    }

    // Invariant 3: a deferral announcement is pure arming.
    if report.is_deferred() {
        if (post.cwnd - pre.cwnd).abs() > EPS {
            return Some(Violation::new(
                Invariant::Deferral,
                format!(
                    "announcement changed cwnd {} -> {}",
                    pre.cwnd, post.cwnd
                ),
            ));
        }
        if post.rescales != pre.rescales {
            return Some(Violation::new(
                Invariant::Deferral,
                format!(
                    "announcement rescaled the window ({} -> {})",
                    pre.rescales, post.rescales
                ),
            ));
        }
        if !post.has_pending {
            return Some(Violation::new(
                Invariant::Deferral,
                "announcement did not arm a pending adaptation".into(),
            ));
        }
        return None;
    }

    if let Some(rate_chg) = report.rate_chg {
        if msg_size <= iq_rudp::DEFAULT_MSS && rate_chg > 0.0 {
            // Invariant 2 decides which factor invariant 1 must apply.
            let (factor, cond_expected) = match (mode, report.cond_eratio, pre.has_pending) {
                (CoordinationMode::CoordinatedWithCond, Some(then), _) => (
                    cond_window_factor(rate_chg, then, pre.eratio_smoothed),
                    true,
                ),
                (CoordinationMode::CoordinatedWithCond, None, true) => (
                    cond_window_factor(
                        rate_chg,
                        pre.pending_eratio.unwrap_or(0.0),
                        pre.eratio_smoothed,
                    ),
                    true,
                ),
                _ => (resolution_window_factor(rate_chg), false),
            };
            let expect = (pre.cwnd * factor).clamp(cc.min_cwnd, cc.max_cwnd);

            if post.rescales != pre.rescales + 1 {
                return Some(Violation::new(
                    Invariant::Reinflation,
                    format!(
                        "expected exactly one window rescale ({} -> {}), got {}",
                        pre.rescales,
                        pre.rescales + 1,
                        post.rescales
                    ),
                ));
            }
            if (post.cwnd - expect).abs() > EPS {
                // Attribute the miss: if the plain §3.4 factor explains
                // the observed window, the Eq. (1) correction is what
                // went missing.
                let plain = (pre.cwnd * resolution_window_factor(rate_chg))
                    .clamp(cc.min_cwnd, cc.max_cwnd);
                let inv = if cond_expected && (post.cwnd - expect).abs() > EPS
                    && (factor - resolution_window_factor(rate_chg)).abs() > EPS
                    && (post.cwnd - plain).abs() <= EPS
                {
                    Invariant::CondCorrection
                } else {
                    Invariant::Reinflation
                };
                return Some(Violation::new(
                    inv,
                    format!(
                        "cwnd {} * factor {factor:.6} should be {expect:.6}, got {:.6}",
                        pre.cwnd, post.cwnd
                    ),
                ));
            }
            if cond_expected && post.cond_corrections != pre.cond_corrections + 1 {
                return Some(Violation::new(
                    Invariant::CondCorrection,
                    format!(
                        "expected an Eq. (1) correction ({} -> {}), got {}",
                        pre.cond_corrections,
                        pre.cond_corrections + 1,
                        post.cond_corrections
                    ),
                ));
            }
            // Execution consumes the armed deferral.
            if post.has_pending {
                return Some(Violation::new(
                    Invariant::Deferral,
                    "executed adaptation left the pending deferral armed".into(),
                ));
            }
        }
    }
    None
}
