//! Explicit-state bounded model checking for the IQ-RUDP coordination
//! protocol.
//!
//! Simulation runs one interleaving per seed; coordination bugs hide in
//! the ones it never draws. This crate drives the *same* sans-io
//! protocol state machines the simulator uses — [`iq_rudp::SenderConn`],
//! [`iq_rudp::ReceiverConn`], and the [`iq_core::Coordinator`] — through
//! **every** interleaving of message delivery, reordering, bounded
//! drop, and timer firing that a small scripted scenario admits, and
//! asserts the paper's coordination contract on each application
//! transition:
//!
//! 1. **Re-inflation** (§3.4): a reported resolution adaptation with
//!    sub-MSS frames rescales the window exactly once, by the §3.4
//!    factor, clamped to the congestion-control bounds.
//! 2. **Obsolete-information correction** (§3.5, Eq. 1): in
//!    `CoordinatedWithCond` mode the factor uses the error ratio the
//!    application adapted *under* (explicit `ADAPT_COND` or the armed
//!    deferral snapshot), corrected to current conditions.
//! 3. **Deferral** (§3.5): an `ADAPT_WHEN` announcement changes nothing
//!    now and arms exactly one pending adaptation.
//!
//! ## Architecture
//!
//! * [`world`] — the checker's state: per-flow connection triples plus
//!   explicit in-flight segment sets, advanced by [`world::Choice`]
//!   transitions. The netsim seam this mirrors is
//!   [`iq_netsim::EventSource`]: the checker *is* an event source that
//!   enumerates orders instead of popping the earliest.
//! * [`invariant`] — the three contract predicates, checked against
//!   pre/post [`invariant::Snapshot`]s of a transition.
//! * [`checker`] — iterative-deepening DFS with a visited table keyed
//!   on [`world::World::state_hash`] (FNV-1a over the full control
//!   state, timestamps taken relative to the clock so equivalent
//!   states reached at different times collide).
//! * [`trace`] — human-readable counterexample traces and deterministic
//!   replay.
//!
//! Seeded mutations ([`world::Mutation`]) deliberately break one
//! coordination path at a time; the checker finding each one is the
//! self-test proving the invariants have teeth (`iqrudp mc
//! --seed-break ...`, and the `mc-smoke` CI job).

#![warn(missing_docs)]

pub mod checker;
pub mod invariant;
pub mod trace;
pub mod world;

pub use checker::{check, CheckReport, CheckerConfig, Counterexample};
pub use invariant::{Invariant, Snapshot, Violation};
pub use trace::replay;
pub use world::{
    scenario, scenario_names, scenario_with_cc, AppStep, Choice, Mutation, ScenarioSpec, World,
};
