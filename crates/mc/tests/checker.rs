//! End-to-end checks of the bounded model checker: clean scenarios
//! verify, explored-state counts are deterministic (and pinned, so CI
//! notices state-space drift), every seeded mutation is caught with a
//! replayable minimal counterexample, and on the real code all three
//! invariants hold across every explored interleaving.

use iq_mc::{check, replay, scenario, scenario_with_cc, CheckerConfig, Invariant, Mutation};
use iq_rudp::CcAlgorithm;

fn cfg(max_depth: u32, drop_budget: u32) -> CheckerConfig {
    CheckerConfig {
        max_depth,
        drop_budget,
        tick_budget: 2,
    }
}

#[test]
fn basic_scenario_is_clean_and_complete() {
    let spec = scenario("basic").unwrap();
    let report = check(&spec, Mutation::None, &cfg(30, 1));
    assert!(report.counterexample.is_none(), "violation on main: {report:?}");
    assert!(report.complete, "basic space should close under the budgets");
    assert_eq!(report.depth_reached, 11);
    // Pinned: a change here means the protocol state space changed —
    // deliberate protocol changes update the pin, anything else is a
    // determinism or hashing regression.
    assert_eq!(report.explored, 5289);
}

#[test]
fn basic_scenario_is_clean_and_complete_under_cubic() {
    // The coordination invariants are controller-independent: the same
    // space closes (and stays clean) when the transport runs CUBIC.
    // CUBIC's extra digest state (w_max, ssthresh, K, epoch age) makes
    // the count differ from LDA's — both pins are deliberate.
    let spec = scenario_with_cc("basic", CcAlgorithm::from_name("cubic").unwrap()).unwrap();
    let report = check(&spec, Mutation::None, &cfg(30, 1));
    assert!(report.counterexample.is_none(), "violation on main: {report:?}");
    assert!(report.complete, "basic space should close under cubic");
    assert_eq!(report.depth_reached, 11);
    assert_eq!(report.explored, 5477);
}

#[test]
fn basic_scenario_is_clean_and_complete_under_bbr() {
    let spec = scenario_with_cc("basic", CcAlgorithm::from_name("bbr").unwrap()).unwrap();
    let report = check(&spec, Mutation::None, &cfg(30, 1));
    assert!(report.counterexample.is_none(), "violation on main: {report:?}");
    assert!(report.complete, "basic space should close under bbr");
    assert_eq!(report.explored, 5268);
}

#[test]
fn lda_pin_is_unchanged_by_cc_selection_plumbing() {
    // `scenario(name)` and `scenario_with_cc(name, lda)` must be the
    // same state space bit-for-bit: the trait refactor may not move
    // LDA's trajectories or digests.
    let spec = scenario_with_cc("basic", CcAlgorithm::default()).unwrap();
    let report = check(&spec, Mutation::None, &cfg(30, 1));
    assert_eq!(report.explored, 5289);
    assert_eq!(report.depth_reached, 11);
}

#[test]
fn deferred_scenario_is_clean_at_bounded_depth() {
    let spec = scenario("deferred").unwrap();
    let report = check(&spec, Mutation::None, &cfg(10, 0));
    assert!(report.counterexample.is_none(), "violation on main: {report:?}");
    assert_eq!(report.explored, 144_704);
}

#[test]
fn two_flow_scenario_is_clean_at_bounded_depth() {
    let spec = scenario("two-flow").unwrap();
    let report = check(&spec, Mutation::None, &cfg(8, 0));
    assert!(report.counterexample.is_none(), "violation on main: {report:?}");
    assert_eq!(report.explored, 149_404);
}

#[test]
fn two_flow_scenario_is_exhausted_without_timers() {
    // With the timer axis off, the cross-flow delivery/app interleaving
    // space closes: every reachable interleaving is checked.
    let spec = scenario("two-flow").unwrap();
    let config = CheckerConfig {
        max_depth: 30,
        drop_budget: 0,
        tick_budget: 0,
    };
    let report = check(&spec, Mutation::None, &config);
    assert!(report.counterexample.is_none(), "violation on main: {report:?}");
    assert!(report.complete, "two-flow space should close without ticks");
    assert_eq!(report.depth_reached, 12);
    assert_eq!(report.explored, 61_858);
}

#[test]
fn exploration_is_deterministic() {
    let spec = scenario("basic").unwrap();
    let a = check(&spec, Mutation::None, &cfg(30, 1));
    let b = check(&spec, Mutation::None, &cfg(30, 1));
    assert_eq!(a.explored, b.explored);
    assert_eq!(a.depth_reached, b.depth_reached);
}

/// Runs a seeded mutation, asserts the checker catches it with the
/// expected invariant, and that replaying the recorded trace
/// reproduces the identical violation.
fn catches(scenario_name: &str, mutation: Mutation, expected: Invariant) {
    let spec = scenario(scenario_name).unwrap();
    let config = cfg(10, 0);
    let report = check(&spec, mutation, &config);
    let ce = report
        .counterexample
        .unwrap_or_else(|| panic!("{mutation:?} not caught on {scenario_name}"));
    assert_eq!(ce.violation.invariant, expected, "{}", ce.violation);
    assert_eq!(
        ce.trace.len() as u32,
        report.depth_reached,
        "iterative deepening should make the trace minimal"
    );
    let replayed = replay(&spec, mutation, &config, &ce.trace)
        .expect("replaying the counterexample must reproduce the violation");
    assert_eq!(replayed.invariant, ce.violation.invariant);
    assert_eq!(replayed.flow, ce.violation.flow);
    assert_eq!(replayed.step, ce.violation.step);
}

#[test]
fn seeded_reinflate_bug_is_caught() {
    catches("basic", Mutation::SkipReinflate, Invariant::Reinflation);
}

#[test]
fn seeded_reinflate_bug_is_caught_under_cubic() {
    // The invariants keep their teeth on a non-LDA controller.
    let spec = scenario_with_cc("basic", CcAlgorithm::from_name("cubic").unwrap()).unwrap();
    let config = cfg(10, 0);
    let report = check(&spec, Mutation::SkipReinflate, &config);
    let ce = report.counterexample.expect("SkipReinflate not caught under cubic");
    assert_eq!(ce.violation.invariant, Invariant::Reinflation);
    let replayed = replay(&spec, Mutation::SkipReinflate, &config, &ce.trace)
        .expect("replaying the counterexample must reproduce the violation");
    assert_eq!(replayed.invariant, Invariant::Reinflation);
}

#[test]
fn seeded_cond_correction_bug_is_caught() {
    catches("deferred", Mutation::DropCondCorrection, Invariant::CondCorrection);
}

#[test]
fn seeded_deferral_bug_is_caught() {
    catches("deferred", Mutation::IgnoreDeferral, Invariant::Deferral);
}

#[test]
fn replay_rejects_a_foreign_trace() {
    let spec = scenario("basic").unwrap();
    // Deliver-data at index 5 is never enabled in the initial state.
    let trace = [iq_mc::Choice::DeliverData { flow: 0, idx: 5 }];
    assert!(replay(&spec, Mutation::None, &cfg(10, 0), &trace).is_none());
}
