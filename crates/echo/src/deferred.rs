//! Deferred (limited-granularity) adaptation, §3.5.
//!
//! Some applications "cannot adapt until all packets belonging to the
//! same frame or frame group have been sent". This wrapper delays the
//! execution of a resolution adaptation until the next frame whose
//! sequence number is divisible by the granularity (the paper uses 20),
//! announcing the delay to the transport through `ADAPT_WHEN` and —
//! optionally — describing the conditions the decision was based on
//! through `ADAPT_COND` at execution time.

use iq_attrs::{names, AttrList};
use iq_rudp::NetCond;

use crate::adapters::ResolutionAdapter;

/// A decided-but-not-yet-executed adaptation.
#[derive(Debug, Clone, Copy)]
struct Decision {
    /// Which threshold fired.
    upper: bool,
    /// Error ratio at decision time.
    eratio: f64,
    /// Frame at which the adaptation executes.
    execute_at_frame: u64,
}

/// Wraps a [`ResolutionAdapter`] with frame-granularity deferral.
#[derive(Debug, Clone)]
pub struct DeferredResolution {
    /// The underlying resolution policy.
    pub inner: ResolutionAdapter,
    /// Adaptations may only execute at frames divisible by this.
    pub granularity: u64,
    /// Whether execution attaches `ADAPT_COND` (scheme 3 vs scheme 2).
    pub include_cond: bool,
    pending: Option<Decision>,
    /// Executed deferrals (diagnostics).
    pub executions: u64,
}

impl DeferredResolution {
    /// Creates a deferred wrapper with the paper's granularity of 20.
    pub fn new(inner: ResolutionAdapter, granularity: u64, include_cond: bool) -> Self {
        Self {
            inner,
            granularity: granularity.max(1),
            include_cond,
            pending: None,
            executions: 0,
        }
    }

    fn next_boundary(&self, frame: u64) -> u64 {
        let g = self.granularity;
        frame.div_ceil(g).max(1) * g
    }

    /// Threshold callback: records the decision and returns the
    /// `ADAPT_WHEN` announcement for the transport. A newer decision
    /// replaces an older pending one.
    pub fn on_threshold(&mut self, upper: bool, cond: &NetCond, frame: u64) -> AttrList {
        let execute_at_frame = self.next_boundary(frame + 1);
        self.pending = Some(Decision {
            upper,
            // Deliberately record the ratio seen at callback time: a
            // deferred application decides on whatever it sees then, and
            // that snapshot is exactly the "obsolete information" the
            // ADAPT_COND correction (§3.5 scheme 3) exists to fix. The
            // paper's measuring periods are long, so its per-period
            // ratios carry no single-burst spikes; ours are short, so
            // spikes are capped at twice the smoothed level.
            eratio: cond
                .eratio
                .min(2.0 * cond.eratio_smoothed)
                .clamp(0.0, 0.5),
            execute_at_frame,
        });
        AttrList::new().with(
            names::ADAPT_WHEN,
            (execute_at_frame - frame) as i64,
        )
    }

    /// Called for every frame emission: if a pending decision is due at
    /// `frame`, executes it and returns the execution attributes to
    /// attach to this frame's `CMwritev_attr` call.
    pub fn on_frame(&mut self, frame: u64) -> AttrList {
        let Some(d) = self.pending else {
            return AttrList::new();
        };
        if frame < d.execute_at_frame {
            return AttrList::new();
        }
        self.pending = None;
        let cond = NetCond {
            eratio: d.eratio,
            eratio_smoothed: d.eratio,
            ..NetCond::default()
        };
        let mut attrs = if d.upper {
            self.inner.on_upper(&cond)
        } else {
            self.inner.on_lower(&cond)
        };
        if attrs.is_empty() {
            return attrs; // clamped away; nothing to report
        }
        self.executions += 1;
        if self.include_cond {
            attrs.set(names::ADAPT_COND_ERATIO, d.eratio);
        }
        attrs
    }

    /// Whether a decision is waiting for its frame boundary.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(eratio: f64) -> NetCond {
        NetCond {
            eratio,
            eratio_smoothed: eratio,
            ..NetCond::default()
        }
    }

    #[test]
    fn defers_to_next_multiple_of_granularity() {
        let mut d = DeferredResolution::new(ResolutionAdapter::default(), 20, false);
        let attrs = d.on_threshold(true, &cond(0.3), 7);
        // Next boundary after frame 7 is 20, i.e. 13 frames away.
        assert_eq!(attrs.get_int(names::ADAPT_WHEN), Some(13));
        assert!(d.has_pending());
        // Frames before the boundary do nothing.
        for f in 8..20 {
            assert!(d.on_frame(f).is_empty());
        }
        let exec = d.on_frame(20);
        assert!((exec.get_float(names::ADAPT_PKTSIZE).unwrap() - 0.3).abs() < 1e-12);
        assert!(!d.has_pending());
        assert!((d.inner.scale - 0.7).abs() < 1e-12);
    }

    #[test]
    fn decision_exactly_on_boundary_waits_a_full_cycle() {
        let mut d = DeferredResolution::new(ResolutionAdapter::default(), 20, false);
        let attrs = d.on_threshold(true, &cond(0.2), 20);
        assert_eq!(attrs.get_int(names::ADAPT_WHEN), Some(20));
        assert!(d.on_frame(21).is_empty());
        assert!(!d.on_frame(40).is_empty());
    }

    #[test]
    fn newer_decision_replaces_pending() {
        let mut d = DeferredResolution::new(ResolutionAdapter::default(), 20, false);
        d.on_threshold(true, &cond(0.10), 5);
        d.on_threshold(true, &cond(0.30), 12);
        let exec = d.on_frame(20);
        // The executed reduction reflects the newer 0.30 ratio.
        assert!((exec.get_float(names::ADAPT_PKTSIZE).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn include_cond_attaches_decision_eratio() {
        let mut d = DeferredResolution::new(ResolutionAdapter::default(), 20, true);
        d.on_threshold(true, &cond(0.25), 3);
        let exec = d.on_frame(20);
        assert_eq!(exec.get_float(names::ADAPT_COND_ERATIO), Some(0.25));
    }

    #[test]
    fn lower_threshold_defers_increases_too() {
        let mut d = DeferredResolution::new(ResolutionAdapter::default(), 10, false);
        // Shrink first so an increase is possible.
        d.on_threshold(true, &cond(0.5), 1);
        d.on_frame(10);
        assert!((d.inner.scale - 0.5).abs() < 1e-12);
        d.on_threshold(false, &cond(0.0), 11);
        let exec = d.on_frame(20);
        assert!(exec.get_float(names::ADAPT_PKTSIZE).unwrap() < 0.0);
        assert!((d.inner.scale - 0.55).abs() < 1e-12);
    }
}
