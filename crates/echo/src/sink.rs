//! Receiver-side adaptation: a sink that tunes its own loss tolerance.
//!
//! IQ-RUDP's adaptive reliability is two-sided (§2.1): the receiver can
//! change how much loss it tolerates while the connection runs. This
//! sink watches its own delivery latency and relaxes the tolerance when
//! messages arrive late (prefer timeliness), tightening it again when
//! latency recovers (prefer completeness). The new tolerance reaches
//! the sender on the next ACK.

use iq_metrics::FlowMetrics;
use iq_netsim::{Agent, Ctx, FlowId, Packet, Time};
use iq_rudp::{ReceiverDriver, RudpConfig};
use iq_telemetry::{TelemetryEvent, TelemetrySink};

/// Policy for the receiver-side tolerance controller.
#[derive(Debug, Clone)]
pub struct TolerancePolicy {
    /// One-way message latency above which the receiver starts trading
    /// reliability for timeliness, seconds.
    pub late_latency_s: f64,
    /// Latency below which the receiver tightens back up.
    pub ok_latency_s: f64,
    /// Tolerance step per decision.
    pub step: f64,
    /// Upper bound on tolerance.
    pub max_tolerance: f64,
    /// Decide every this many delivered messages.
    pub decide_every: u64,
}

impl Default for TolerancePolicy {
    fn default() -> Self {
        Self {
            late_latency_s: 0.200,
            ok_latency_s: 0.060,
            step: 0.15,
            max_tolerance: 0.6,
            decide_every: 25,
        }
    }
}

/// A sink whose loss tolerance follows its observed delivery latency.
pub struct AdaptiveToleranceSink {
    driver: ReceiverDriver,
    policy: TolerancePolicy,
    /// Receiver-side application metrics.
    pub metrics: FlowMetrics,
    /// Latency accumulated since the last decision (sum, count).
    window: (f64, u64),
    /// Tolerance adjustments made (ups, downs).
    pub adjustments: (u64, u64),
    msgs_scratch: Vec<iq_rudp::DeliveredMsg>,
}

impl AdaptiveToleranceSink {
    /// Creates the sink; `cfg.loss_tolerance` is the starting point.
    pub fn new(conn_id: u32, cfg: RudpConfig, flow: FlowId, policy: TolerancePolicy) -> Self {
        Self {
            driver: cfg.builder(conn_id, flow).build_receiver(),
            policy,
            metrics: FlowMetrics::new(),
            window: (0.0, 0),
            adjustments: (0, 0),
            msgs_scratch: Vec::new(),
        }
    }

    /// Attaches a telemetry sink so tolerance changes land on the bus.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        let flow = self.driver.conn.telemetry_flow();
        self.driver.conn.set_telemetry(sink, flow);
        self
    }

    /// Current loss tolerance.
    pub fn tolerance(&self) -> f64 {
        self.driver.conn.loss_tolerance()
    }

    /// Whether the transfer finished.
    pub fn is_finished(&self) -> bool {
        self.driver.conn.is_finished()
    }

    fn decide(&mut self, now: Time) {
        let (sum, n) = self.window;
        if n < self.policy.decide_every {
            return;
        }
        let mean_latency = sum / n as f64;
        self.window = (0.0, 0);
        let current = self.driver.conn.loss_tolerance();
        if mean_latency > self.policy.late_latency_s {
            // Messages are late: accept more loss to regain timeliness.
            let next = (current + self.policy.step).min(self.policy.max_tolerance);
            if next > current {
                self.driver.conn.set_loss_tolerance(next);
                self.adjustments.0 += 1;
                self.emit_tolerance(now, next, true);
            }
        } else if mean_latency < self.policy.ok_latency_s && current > 0.0 {
            let next = (current - self.policy.step).max(0.0);
            self.driver.conn.set_loss_tolerance(next);
            self.adjustments.1 += 1;
            self.emit_tolerance(now, next, false);
        }
    }

    fn emit_tolerance(&self, now: Time, tolerance: f64, raised: bool) {
        self.driver.conn.telemetry().emit(
            now,
            self.driver.conn.telemetry_flow(),
            TelemetryEvent::ToleranceChange { tolerance, raised },
        );
    }
}

impl Agent for AdaptiveToleranceSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if !self.driver.handle_packet(ctx, &pkt) {
            return;
        }
        let mut msgs = std::mem::take(&mut self.msgs_scratch);
        self.driver.conn.take_messages_into(&mut msgs);
        for msg in msgs.drain(..) {
            let latency = (msg.delivered_at.saturating_sub(msg.sent_at)) as f64 / 1e9;
            self.window.0 += latency;
            self.window.1 += 1;
            self.metrics.on_message(
                msg.delivered_at,
                msg.sent_at,
                u64::from(msg.size),
                msg.marked,
            );
        }
        self.msgs_scratch = msgs;
        self.decide(ctx.now());
        self.driver.conn.clear_events();
        self.driver.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::{time, Addr, LinkSpec, Simulator};
    use iq_rudp::{BulkSenderAgent, SenderConn};

    fn run(link_bps: f64) -> (f64, u64, (u64, u64)) {
        let mut sim = Simulator::new(15);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(link_bps, time::millis(10), 24_000));
        let cfg = RudpConfig::default();
        sim.add_agent(
            a,
            1,
            Box::new(BulkSenderAgent::new(
                SenderConn::new(4, cfg.clone()),
                Addr::new(b, 1),
                FlowId(4),
                600,
                1400,
            )),
        );
        let rx = sim.add_agent(
            b,
            1,
            Box::new(AdaptiveToleranceSink::new(
                4,
                cfg,
                FlowId(4),
                TolerancePolicy::default(),
            )),
        );
        sim.run_until(time::secs(120.0));
        let sink = sim.agent::<AdaptiveToleranceSink>(rx).unwrap();
        (sink.tolerance(), sink.metrics.messages(), sink.adjustments)
    }

    #[test]
    fn controller_moves_with_latency() {
        // Drive the decision logic directly: low latency never raises
        // the tolerance; high latency raises it; recovery lowers it.
        let mut sink = AdaptiveToleranceSink::new(
            1,
            RudpConfig::default(),
            FlowId(1),
            TolerancePolicy::default(),
        );
        let p = TolerancePolicy::default();
        // 25 punctual messages: stays at zero.
        sink.window = (0.010 * p.decide_every as f64, p.decide_every);
        sink.decide(0);
        assert_eq!(sink.tolerance(), 0.0);
        assert_eq!(sink.adjustments, (0, 0));
        // 25 late messages: tolerance rises one step.
        sink.window = (0.500 * p.decide_every as f64, p.decide_every);
        sink.decide(0);
        assert!((sink.tolerance() - p.step).abs() < 1e-12);
        assert_eq!(sink.adjustments.0, 1);
        // Latency recovers: tolerance steps back down to zero.
        sink.window = (0.010 * p.decide_every as f64, p.decide_every);
        sink.decide(0);
        assert_eq!(sink.tolerance(), 0.0);
        assert_eq!(sink.adjustments.1, 1);
        // Partial windows never decide.
        sink.window = (100.0, p.decide_every - 1);
        sink.decide(0);
        assert_eq!(sink.adjustments, (1, 1));
    }

    #[test]
    fn slow_link_raises_tolerance() {
        // 1 Mb/s: a 600-message backlog queues deeply, latency blows past
        // the policy threshold, and the receiver relaxes its tolerance.
        let (tolerance, delivered, (ups, _)) = run(1e6);
        assert!(ups > 0, "receiver never adapted");
        assert!(tolerance > 0.0);
        // Bulk traffic is marked, so everything is still delivered —
        // the relaxed tolerance is an offer, not a demand.
        assert_eq!(delivered, 600);
    }

    #[test]
    fn tolerance_is_clamped_at_policy_max() {
        let (tolerance, _, _) = run(0.8e6);
        assert!(tolerance <= TolerancePolicy::default().max_tolerance + 1e-12);
    }
}
